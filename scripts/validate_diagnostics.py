#!/usr/bin/env python
"""Validate `repro lint --json` / `repro analyze --json` documents
against the pinned diagnostics schema (``docs/diagnostics.schema.json``).

    python scripts/validate_diagnostics.py report.json [more.json ...]
    repro analyze "..." --format json | python scripts/validate_diagnostics.py -

Uses the dependency-free validator in :mod:`repro.obs.schema` (the
container has no ``jsonschema`` package).  Exits 1 listing every
violation; the ``plan-verify`` CI job runs this against fresh CLI
output so the document shape cannot drift from the schema silently.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.schema import validate  # noqa: E402

SCHEMA_PATH = (Path(__file__).resolve().parent.parent
               / "docs" / "diagnostics.schema.json")


def main(argv: list) -> int:
    targets = argv or ["-"]
    schema = json.loads(SCHEMA_PATH.read_text())
    failures = 0
    for target in targets:
        if target == "-":
            name, text = "<stdin>", sys.stdin.read()
        else:
            name, text = target, Path(target).read_text()
        try:
            instance = json.loads(text)
        except json.JSONDecodeError as exc:
            print(f"{name}: not JSON: {exc}", file=sys.stderr)
            failures += 1
            continue
        errors = validate(instance, schema)
        if errors:
            failures += 1
            print(f"{name}: {len(errors)} schema violation(s)",
                  file=sys.stderr)
            for error in errors:
                print(f"  {error}", file=sys.stderr)
        else:
            codes = sorted({d["code"] for d in instance["diagnostics"]})
            print(f"{name}: ok ({len(instance['diagnostics'])} "
                  f"diagnostic(s){': ' + ', '.join(codes) if codes else ''})")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
