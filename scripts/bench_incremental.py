#!/usr/bin/env python3
"""Regenerate BENCH_incremental.json: incremental view maintenance vs
full recompute on update-heavy workloads.

Usage:  PYTHONPATH=src python scripts/bench_incremental.py [output_path]
                                                           [--smoke]

Each point replays one :func:`random_update_stream` twice on
independent copies of the same database:

* **incremental** — a registered :class:`~repro.incremental.View`
  absorbs each committed batch through per-operator deltas; the timed
  loop is "apply batch, read ``view.answers``".
* **recompute** — the same mutations with no view attached, followed by
  a fresh compiled-plan execution per batch (the fastest
  non-incremental strategy the repo has).

Both loops pay the identical mutation cost, so the ratio isolates
maintenance against recomputation.  Final answer sets are asserted
equal before a point is recorded, and the smallest size of each series
is additionally cross-checked batch-by-batch.

``--smoke`` shrinks every series to CI-sized inputs (seconds, not
minutes) while keeping the correctness assertions; CI runs it on every
push.  The committed JSON comes from a full run.

Honest caveats (also in docs/INCREMENTAL.md): view *registration*
materializes every plan operator and is excluded from the maintenance
loop but reported per point as ``setup_s`` — incremental maintenance
pays off after roughly ``setup_s / (recompute_per_batch)`` batches.
Plans with active-domain operators fall back to subtree recomputation
whenever domain membership moves and would show far smaller speedups;
the guarded rewritings benchmarked here compile without them
(``fallback_recomputes`` is asserted zero).
"""

import json
import pathlib
import random
import sys
import time

from repro.core.atoms import RelationSchema
from repro.core.terms import Variable
from repro.cqa.certain_answers import OpenQuery, certain_answers
from repro.db.database import Database
from repro.incremental import ViewManager
from repro.workloads.generators import (
    UpdateStreamParams,
    random_update_stream,
)
from repro.workloads.poll import random_poll_database
from repro.workloads.queries import poll_qa, q3

# (n_people, n_towns, n_batches): largest point is >= 10k facts.
POLL_SIZES = [(400, 50, 60), (1500, 120, 60), (4000, 250, 60)]
# (n_people, block, n_batches)
Q3_SIZES = [(1000, 500, 60), (4000, 2000, 60), (8000, 4000, 60)]
SMOKE_POLL_SIZES = [(60, 12, 8), (150, 25, 8)]
SMOKE_Q3_SIZES = [(120, 60, 8), (300, 150, 8)]
BATCH_SIZE = 6
STREAM_SEED = 2018


def q3_database(n_people, block, seed=7):
    """P facts for ``n_people`` keys plus one N block of ``block`` rows."""
    rng = random.Random(seed)
    db = Database([RelationSchema("P", 2, 1), RelationSchema("N", 2, 1)])
    values = [f"v{j}" for j in range(max(block * 2, 50))]
    for i in range(n_people):
        for v in rng.sample(values, rng.choice([1, 1, 2])):
            db.add("P", (f"p{i}", v))
    for v in rng.sample(values, block):
        db.add("N", ("c", v))
    return db


def _apply(db, batch):
    with db.batch():
        for insert, relation, row in batch:
            if insert:
                db.add(relation, row)
            else:
                db.discard(relation, row)


def run_incremental(db, query, free, batches, check_each=None):
    """Timed loop: apply each batch, read the maintained answers."""
    db = db.copy()
    manager = ViewManager(db)
    t0 = time.perf_counter()
    view = manager.register_view(query, free)
    setup = time.perf_counter() - t0
    t0 = time.perf_counter()
    for i, batch in enumerate(batches):
        _apply(db, batch)
        answers = view.answers
        if check_each is not None:
            assert answers == check_each[i], f"batch {i} diverged"
    elapsed = time.perf_counter() - t0
    stats = view.stats()
    assert stats["fallback_recomputes"] == 0, "guarded plan took fallback"
    return view.answers, elapsed, setup, stats


def run_recompute(db, query, free, batches, record=False):
    """Timed loop: apply each batch, run the compiled plan from scratch."""
    db = db.copy()
    open_query = OpenQuery(query, free)
    certain_answers(open_query, db, "compiled")  # warm the plan cache
    per_batch = [] if record else None
    t0 = time.perf_counter()
    for batch in batches:
        _apply(db, batch)
        answers = certain_answers(open_query, db, "compiled")
        if per_batch is not None:
            per_batch.append(answers)
    elapsed = time.perf_counter() - t0
    return answers, elapsed, per_batch


def bench_series(name, make_db, sizes, query, free_names):
    free = [Variable(n) for n in free_names]
    rows = []
    for point_index, (a, b, n_batches) in enumerate(sizes):
        db = make_db(a, b)
        stream_params = UpdateStreamParams(
            n_batches=n_batches, batch_size=BATCH_SIZE,
            delete_fraction=0.5, churn=0.6,
        )
        batches = random_update_stream(db, stream_params,
                                       random.Random(STREAM_SEED))
        # Cross-check every batch at the smallest size; final-state
        # equality everywhere (per-step agreement is also covered by the
        # hypothesis suite in tests/).
        check = point_index == 0
        full_answers, t_full, per_batch = run_recompute(
            db, query, free, batches, record=check)
        inc_answers, t_inc, setup, stats = run_incremental(
            db, query, free, batches, check_each=per_batch)
        assert inc_answers == full_answers, (name, a, b)
        ops = sum(len(batch) for batch in batches)
        rows.append({
            "size": [a, b],
            "facts": db.size(),
            "batches": n_batches,
            "ops": ops,
            "answers": len(inc_answers),
            "incremental_s": round(t_inc, 6),
            "recompute_s": round(t_full, 6),
            "speedup": round(t_full / t_inc, 2) if t_inc else None,
            "setup_s": round(setup, 6),
            "rows_touched": stats["rows_touched"],
            "plan_nodes": stats["nodes"],
        })
        print(f"{name} {a}x{b}: {db.size()} facts, {ops} ops -> "
              f"incremental {t_inc:.4f}s vs recompute {t_full:.4f}s "
              f"({rows[-1]['speedup']}x)")
    return rows


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    smoke = "--smoke" in argv
    out_path = pathlib.Path(args[0]) if args else (
        pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_incremental.json"
    )
    poll_sizes = SMOKE_POLL_SIZES if smoke else POLL_SIZES
    q3_sizes = SMOKE_Q3_SIZES if smoke else Q3_SIZES

    report = {
        "mode": "smoke" if smoke else "full",
        "queries": {
            "poll_qa": "{Lives(p|t), not Born(p|t), not Likes(p,t|)}",
            "q3": "{P(x|y), not N('c'|y)}",
        },
        "workload": {
            "batch_size": BATCH_SIZE,
            "delete_fraction": 0.5,
            "churn": 0.6,
            "stream": "random_update_stream (workloads/generators.py), "
                      "seed 2018",
        },
        "methods": {
            "incremental": "registered view, per-operator delta "
                           "maintenance per committed batch",
            "recompute": "same mutations, fresh compiled-plan execution "
                         "per batch (plan cache warm)",
        },
        "poll_qa_answers_p": bench_series(
            "poll_qa(p)",
            lambda a, b: random_poll_database(
                a, b, conflict_rate=0.5, rng=random.Random(71)),
            poll_sizes, poll_qa(), ["p"]),
        "q3_answers_x": bench_series(
            "q3(x)", q3_database, q3_sizes, q3(), ["x"]),
        "notes": [
            "Both loops pay identical mutation costs; the ratio "
            "isolates maintenance vs recomputation.",
            "setup_s (one-time view materialization) is excluded from "
            "incremental_s and reported separately; maintenance "
            "amortizes it after setup_s / (recompute_s / batches) "
            "batches.",
            "Guarded rewritings compile without active-domain "
            "operators; fallback_recomputes is asserted 0 here. Plans "
            "that do use Adom* operators recompute dirty subtrees and "
            "would not see these speedups.",
            "The smallest point of each series is cross-checked "
            "against full recompute after every batch; larger points "
            "on final state (per-step agreement is property-tested in "
            "tests/test_incremental_property.py).",
        ],
    }
    report["largest_size_speedups"] = {
        "poll_qa_answers_p": report["poll_qa_answers_p"][-1]["speedup"],
        "q3_answers_x": report["q3_answers_x"][-1]["speedup"],
    }
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")
    for key, value in report["largest_size_speedups"].items():
        print(f"{key:24s} speedup at largest size: {value}x")
    if not smoke:
        weakest = min(report["largest_size_speedups"].values())
        assert weakest >= 5.0, (
            f"incremental maintenance under 5x at largest size "
            f"({weakest}x)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
