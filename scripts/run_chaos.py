#!/usr/bin/env python3
"""Drive the storage chaos harness: N randomized kill-9 trials.

Usage:  PYTHONPATH=src python scripts/run_chaos.py [--trials N] [--seed S]
                                                   [--ops K] [--keep]

Each trial runs a seeded update stream in a worker subprocess, tears it
down at a randomized byte (mid-WAL-write or mid-checkpoint), recovers
the store, and checks the result against the in-memory oracle — see
``repro.storage.chaos``.  Exits nonzero on the first durability
violation.  The CI ``storage-durability`` job runs this with the
default 200 trials; ``tests/test_storage_chaos.py`` runs a 12-trial
slice on every test run.
"""

import argparse
import pathlib
import shutil
import sys
import tempfile
import time

from repro.storage.chaos import ChaosFailure, run_chaos


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trials", type=int, default=200)
    parser.add_argument("--seed", type=int, default=2018,
                        help="meta-seed for crash points and streams")
    parser.add_argument("--ops", type=int, default=120,
                        help="update-stream length per trial")
    parser.add_argument("--keep", action="store_true",
                        help="keep trial store directories for autopsy")
    args = parser.parse_args(argv[1:])

    base = pathlib.Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    print(f"chaos: {args.trials} trials, seed={args.seed}, "
          f"ops={args.ops}, stores under {base}")

    def progress(i, result):
        if (i + 1) % 25 == 0:
            print(f"  trial {i + 1:4d}/{args.trials}  "
                  f"crashed={result['crashed']}  "
                  f"acked={result['acked']}  "
                  f"recovered_clock={result['recovered_clock']}")

    t0 = time.perf_counter()
    try:
        summary = run_chaos(base, trials=args.trials, seed=args.seed,
                            ops=args.ops, progress=progress)
    except ChaosFailure as exc:
        print(f"\nDURABILITY VIOLATION: {exc}", file=sys.stderr)
        if args.keep:
            print(f"trial stores kept under {base}", file=sys.stderr)
        return 1
    finally:
        if not args.keep:
            shutil.rmtree(base, ignore_errors=True)
    elapsed = time.perf_counter() - t0
    print(f"ok: {summary['trials']} trials in {elapsed:.1f}s — "
          f"{summary['crashes']} crashed, {summary['clean_exits']} ran to "
          f"completion; {summary['wal_trials']} WAL tears, "
          f"{summary['snapshot_trials']} checkpoint tears; "
          f"{summary['acked_total']} committed batches acknowledged and "
          f"verified recovered")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
