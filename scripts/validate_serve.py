#!/usr/bin/env python
"""Validate `repro serve` wire documents against the pinned schema
(``docs/serve.schema.json``).

    python scripts/validate_serve.py SHAPE doc.json [more.json ...]
    curl -s localhost:8100/v1/healthz | python scripts/validate_serve.py healthz_response -

SHAPE names a ``$defs`` entry of the schema (``certain_response``,
``answers_response``, ``facts_response``, ``view_response``,
``views_response``, ``changes_response``, ``metrics_response``,
``healthz_response``, ``error_response``, or the request shapes).
Uses the dependency-free validator in :mod:`repro.obs.schema` (the
container has no ``jsonschema`` package).  Exits 1 listing every
violation; the ``serve-smoke`` CI job runs this against live server
responses so the wire contract cannot drift from the schema silently.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.schema import validate  # noqa: E402

SCHEMA_PATH = Path(__file__).resolve().parent.parent / "docs" / "serve.schema.json"


def main(argv: list) -> int:
    if not argv:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    shape, targets = argv[0], argv[1:] or ["-"]
    root = json.loads(SCHEMA_PATH.read_text())
    if shape not in root.get("$defs", {}):
        known = ", ".join(sorted(root.get("$defs", {})))
        print(f"unknown shape {shape!r}; expected one of: {known}",
              file=sys.stderr)
        return 2
    schema = {"$ref": f"#/$defs/{shape}", "$defs": root["$defs"]}
    failures = 0
    for target in targets:
        if target == "-":
            name, text = "<stdin>", sys.stdin.read()
        else:
            name, text = target, Path(target).read_text()
        try:
            instance = json.loads(text)
        except json.JSONDecodeError as exc:
            print(f"{name}: not JSON: {exc}", file=sys.stderr)
            failures += 1
            continue
        errors = validate(instance, schema)
        if errors:
            failures += 1
            for error in errors:
                print(f"{name}: {error}", file=sys.stderr)
        else:
            print(f"{name}: valid {shape}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
