#!/usr/bin/env python3
"""Regenerate BENCH_serve.json: the `repro serve` daemon under load.

Usage:  PYTHONPATH=src python scripts/bench_serve.py [output_path] [--smoke]

Boots a real server subprocess on a temp store seeded with the poll
workload, then measures three phases:

* **Quiescent parity** — for every benchmarked query × method, the
  answer set fetched over HTTP must carry the same canonical sha256
  digest as a direct in-process ``certain_answers`` call on an
  identical database.  The daemon's speed claims are only meaningful
  for provably identical answers.
* **Mixed load** — query clients (rotating methods), view long-pollers,
  and a batch writer run concurrently; per-class p50/p99 latency and
  sustained total QPS are recorded.
* **Post-load parity + durability** — after the load drains, every
  query × method is digest-checked again versus a local mirror that
  applied the same write batches; the server is then stopped with
  SIGINT and the store reopened directly to verify the WAL carried
  every batch.

``--smoke`` (or ``BENCH_SERVE_SMOKE=1``) shrinks the load for CI; the
parity and durability checks still run at every point.  The JSON is
committed so CI and future sessions can compare against a known-good
baseline.
"""

import json
import os
import pathlib
import random
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

import http.client  # noqa: E402

from repro.core.parser import parse_query  # noqa: E402
from repro.core.terms import Variable  # noqa: E402
from repro.cqa.certain_answers import OpenQuery, certain_answers  # noqa: E402
from repro.serve.protocol import answers_digest  # noqa: E402
from repro.storage import PersistentDatabase  # noqa: E402
from repro.workloads.poll import random_poll_database  # noqa: E402

QUERIES = [
    ("poll_qa", "Lives(p | t), not Born(p | t), not Likes(p, t |)", ["p"]),
    ("lives_not_born", "Lives(p | t), not Born(p | t)", ["p"]),
    ("mayor_towns", "Mayor(t | p)", ["t"]),
]
METHODS = ["auto", "compiled", "sql", "columnar", "parallel"]

FULL = {"people": 300, "towns": 30, "query_threads": 4, "pollers": 2,
        "batches": 60, "rows_per_batch": 20, "queries_per_thread": 60}
SMOKE = {"people": 60, "towns": 8, "query_threads": 2, "pollers": 1,
         "batches": 8, "rows_per_batch": 5, "queries_per_thread": 8}


def percentile(samples, q):
    if not samples:
        return None
    ordered = sorted(samples)
    return round(ordered[min(len(ordered) - 1, int(q * len(ordered)))], 3)


class Client:
    """One keep-alive connection to the benched server."""

    def __init__(self, port):
        self.conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)

    def request(self, method, path, payload=None):
        body = None if payload is None else json.dumps(payload)
        self.conn.request(method, path, body=body,
                          headers={"Content-Type": "application/json"})
        response = self.conn.getresponse()
        data = json.loads(response.read())
        if response.status != 200:
            raise RuntimeError(f"{method} {path} -> {response.status}: {data}")
        return data

    def close(self):
        self.conn.close()


def seed_store(path, people, towns):
    db = random_poll_database(n_people=people, n_towns=towns,
                              rng=random.Random(7))
    store = PersistentDatabase(path)
    for schema in db.schemas.values():
        store.add_relation(schema)
    with store.batch():
        for name in db.relations():
            store.add_all(name, db.facts(name))
    store.checkpoint()
    store.close()
    return db


def direct_digest(db, text, free):
    rows = certain_answers(
        OpenQuery(parse_query(text), tuple(Variable(n) for n in free)),
        db, "compiled")
    return answers_digest(rows), len(rows)


def options_for(method):
    if method == "parallel":
        return {"method": "parallel", "jobs": 2}
    return {"method": method}


def parity_sweep(client, mirror, label):
    results, ok = [], True
    for name, text, free in QUERIES:
        expected, count = direct_digest(mirror, text, free)
        for method in METHODS:
            body = client.request("POST", "/v1/answers", {
                "query": text, "free": free, "options": options_for(method)})
            match = body["digest"] == expected and body["count"] == count
            ok = ok and match
            results.append({"query": name, "method": method,
                            "digest": body["digest"], "count": body["count"],
                            "match": match})
    print(f"  {label}: {len(results)} query×method points, "
          f"all_match={ok}")
    return results, ok


def make_batches(cfg):
    """Deterministic write batches: new people with conflicting Lives."""
    rng = random.Random(99)
    batches = []
    for i in range(cfg["batches"]):
        ops = []
        for j in range(cfg["rows_per_batch"] // 2):
            person, town = f"w{i}_{j}", f"t{rng.randrange(cfg['towns'])}"
            ops.append({"op": "+", "relation": "Lives", "row": [person, town]})
            ops.append({"op": "+", "relation": "Born", "row": [person, town]})
        batches.append(ops)
    return batches


def apply_batches(db, batches):
    for ops in batches:
        with db.batch():
            for op in ops:
                if op["op"] == "+":
                    db.add(op["relation"], tuple(op["row"]))
                else:
                    db.discard(op["relation"], tuple(op["row"]))


def run_load(port, cfg, batches, view_version):
    lat = {"query": [], "write": [], "poll": []}
    errors = []
    done = threading.Event()

    def query_client(tid):
        client = Client(port)
        rng = random.Random(tid)
        try:
            for i in range(cfg["queries_per_thread"]):
                name, text, free = QUERIES[i % len(QUERIES)]
                method = METHODS[rng.randrange(len(METHODS))]
                t0 = time.perf_counter()
                client.request("POST", "/v1/answers", {
                    "query": text, "free": free,
                    "options": options_for(method)})
                lat["query"].append((time.perf_counter() - t0) * 1000.0)
        except Exception as exc:
            errors.append(f"query[{tid}]: {exc!r}")
        finally:
            client.close()

    def writer():
        client = Client(port)
        try:
            for ops in batches:
                t0 = time.perf_counter()
                client.request("POST", "/v1/facts", {"ops": ops})
                lat["write"].append((time.perf_counter() - t0) * 1000.0)
        except Exception as exc:
            errors.append(f"writer: {exc!r}")
        finally:
            client.close()

    def poller(tid):
        client = Client(port)
        since = view_version  # windows before registration don't exist
        try:
            while not done.is_set():
                t0 = time.perf_counter()
                body = client.request(
                    "GET", f"/v1/views/bench/changes?since={since}&wait=1")
                lat["poll"].append((time.perf_counter() - t0) * 1000.0)
                since = body["version"]
        except Exception as exc:
            errors.append(f"poller[{tid}]: {exc!r}")
        finally:
            client.close()

    threads = (
        [threading.Thread(target=query_client, args=(t,))
         for t in range(cfg["query_threads"])]
        + [threading.Thread(target=writer)]
        + [threading.Thread(target=poller, args=(t,))
           for t in range(cfg["pollers"])]
    )
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads[:cfg["query_threads"] + 1]:
        t.join()
    done.set()
    for t in threads[cfg["query_threads"] + 1:]:
        t.join()
    duration = time.perf_counter() - t0
    if errors:
        raise RuntimeError("; ".join(errors))
    total = sum(len(v) for v in lat.values())
    return {
        "duration_s": round(duration, 3),
        "total_requests": total,
        "qps": round(total / duration, 1),
        "classes": {
            name: {
                "count": len(samples),
                "p50_ms": percentile(samples, 0.50),
                "p99_ms": percentile(samples, 0.99),
            }
            for name, samples in lat.items()
        },
    }


def main(argv):
    smoke = "--smoke" in argv or os.environ.get("BENCH_SERVE_SMOKE") == "1"
    argv = [a for a in argv if a != "--smoke"]
    out_path = pathlib.Path(argv[0]) if argv else \
        pathlib.Path(__file__).resolve().parent.parent / "BENCH_serve.json"
    cfg = SMOKE if smoke else FULL

    tmp = pathlib.Path(tempfile.mkdtemp(prefix="bench_serve_"))
    store_path = tmp / "store"
    report = {"mode": "smoke" if smoke else "full",
              "config": cfg,
              "queries": {name: text for name, text, _ in QUERIES},
              "methods": METHODS,
              "digests": "canonical sha256 over the sorted answer set "
                         "(repro.serve.answers_digest), asserted identical "
                         "between every server response and a direct "
                         "certain_answers call"}
    proc = None
    try:
        print(f"seeding store ({cfg['people']} people, {cfg['towns']} towns)")
        mirror = seed_store(store_path, cfg["people"], cfg["towns"])
        report["seed_facts"] = mirror.size()

        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--db-path",
             str(store_path), "--port", "0", "--jobs", "2"],
            env={**os.environ,
                 "PYTHONPATH": str(pathlib.Path(__file__).resolve().parent.parent / "src")},
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
        ready = proc.stdout.readline().strip()
        assert ready.startswith("listening on "), ready
        port = int(ready.rsplit(":", 1)[1])
        print(f"server up on port {port}")
        client = Client(port)

        # Phase A: quiescent digest parity, every query × method.
        t0 = time.perf_counter()
        parity_before, ok_before = parity_sweep(client, mirror, "phase A")
        report["phase_a_parity"] = {
            "points": parity_before, "all_match": ok_before,
            "elapsed_s": round(time.perf_counter() - t0, 3)}

        # Phase B: mixed load (queries + long-pollers + batch writer).
        view = client.request("POST", "/v1/views", {
            "name": "bench", "query": QUERIES[0][1], "free": QUERIES[0][2]})
        batches = make_batches(cfg)
        print(f"mixed load: {cfg['query_threads']} query threads, "
              f"{cfg['pollers']} pollers, {len(batches)} write batches")
        report["load"] = run_load(port, cfg, batches, view["version"])
        print(f"  {report['load']['total_requests']} requests in "
              f"{report['load']['duration_s']}s "
              f"({report['load']['qps']} qps)")

        # Phase C: post-load parity against a mirror that applied the
        # same batches, then durability through SIGINT + direct reopen.
        apply_batches(mirror, batches)
        parity_after, ok_after = parity_sweep(client, mirror, "phase C")
        health = client.request("GET", "/v1/healthz")
        metrics = client.request("GET", "/v1/metrics")
        report["phase_c_parity"] = {"points": parity_after,
                                    "all_match": ok_after}
        report["server_counters"] = metrics["server"]
        client.close()

        proc.send_signal(signal.SIGINT)
        proc.wait(timeout=30)
        reopened = PersistentDatabase(store_path)
        durable_ok = reopened.size() == mirror.size() == health["facts"]
        for name, text, free in QUERIES:
            d_mirror, _ = direct_digest(mirror, text, free)
            d_store, _ = direct_digest(reopened, text, free)
            durable_ok = durable_ok and d_mirror == d_store
        reopened.close()
        report["durability"] = {
            "facts_after_reopen": mirror.size(), "match": durable_ok}
        print(f"durability after SIGINT + reopen: match={durable_ok}")

        report["all_match"] = ok_before and ok_after and durable_ok
        out_path.write_text(json.dumps(report, indent=1) + "\n")
        print(f"wrote {out_path}")
        if not report["all_match"]:
            print("DIGEST MISMATCH", file=sys.stderr)
            return 1
        return 0
    finally:
        if proc is not None and proc.poll() is None:
            proc.kill()
        shutil.rmtree(tmp, ignore_errors=True)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
