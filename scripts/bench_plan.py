#!/usr/bin/env python3
"""Regenerate BENCH_plan.json: interpreter vs compiled-plan speedups.

Usage:  PYTHONPATH=src python scripts/bench_plan.py [output_path]

Times the ``rewriting`` (tuple-at-a-time evaluator; a per-candidate
loop for open queries) and ``compiled`` (one set-at-a-time plan
execution) strategies and records the speedup per point:

* Boolean certainty of ``poll_qa`` — evaluated with the executor's
  short-circuit probe mode, which stops at the first witness (or first
  violation) like the interpreter does but drives index lookups
  set-at-a-time, so compiled is expected to be *ahead* here too (see
  docs/PERFORMANCE.md; this grid used to regress to ~0.5x when plans
  materialized full witness relations only to test emptiness).
* Certain answers of ``poll_qa`` with free ``(p)`` and ``(p, t)`` — the
  batch case the plan compiler exists for.
* Certain answers of ``q3`` with a large ``N(c, ·)`` block — negation
  against one big block, an anti-join in plan form.

The JSON is committed so CI and future sessions can compare against a
known-good baseline.
"""

import json
import pathlib
import random
import sys
import time

from repro.core.atoms import RelationSchema
from repro.core.terms import Variable
from repro.cqa.certain_answers import OpenQuery, certain_answers
from repro.cqa.engine import CertaintyEngine
from repro.db.database import Database
from repro.fo.compile import plan_cache
from repro.workloads.poll import random_poll_database
from repro.workloads.queries import poll_qa, q3

BOOLEAN_SIZES = [(300, 40), (1200, 100), (2400, 160)]
ANSWER_SIZES = [(300, 40), (1200, 100), (2400, 160)]
Q3_SIZES = [(800, 400), (1600, 800), (3200, 1600)]


def timed(fn, *args, repeat=5):
    best = None
    for _ in range(repeat):
        t0 = time.perf_counter()
        result = fn(*args)
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return result, best


def q3_database(n_people, block, seed=7):
    """P facts for ``n_people`` keys plus one N block of ``block`` rows."""
    rng = random.Random(seed)
    db = Database([RelationSchema("P", 2, 1), RelationSchema("N", 2, 1)])
    values = [f"v{j}" for j in range(max(block * 2, 50))]
    for i in range(n_people):
        for v in rng.sample(values, rng.choice([1, 1, 2])):
            db.add("P", (f"p{i}", v))
    for v in rng.sample(values, block):
        db.add("N", ("c", v))
    return db


def bench_boolean():
    engine = CertaintyEngine(poll_qa())
    rows = []
    for people, towns in BOOLEAN_SIZES:
        db = random_poll_database(people, towns, conflict_rate=0.5,
                                  rng=random.Random(71))
        expected, t_rw = timed(engine.certain, db, "rewriting")
        engine.certain(db, "compiled")  # warm the plan cache
        got, t_cp = timed(engine.certain, db, "compiled")
        assert got == expected, (people, towns)
        rows.append({
            "people": people,
            "towns": towns,
            "facts": db.size(),
            "answer": expected,
            "rewriting_s": round(t_rw, 6),
            "compiled_s": round(t_cp, 6),
            "speedup": round(t_rw / t_cp, 2) if t_cp else None,
        })
    return rows


def bench_answers(free_names):
    open_query = OpenQuery(poll_qa(), [Variable(n) for n in free_names])
    rows = []
    for people, towns in ANSWER_SIZES:
        db = random_poll_database(people, towns, conflict_rate=0.5,
                                  rng=random.Random(73))
        expected, t_rw = timed(certain_answers, open_query, db, "rewriting")
        certain_answers(open_query, db, "compiled")  # warm the plan cache
        got, t_cp = timed(certain_answers, open_query, db, "compiled")
        assert got == expected, (people, towns)
        rows.append({
            "people": people,
            "towns": towns,
            "facts": db.size(),
            "answers": len(expected),
            "rewriting_s": round(t_rw, 6),
            "compiled_s": round(t_cp, 6),
            "speedup": round(t_rw / t_cp, 2) if t_cp else None,
        })
    return rows


def bench_q3_answers():
    open_query = OpenQuery(q3(), [Variable("x")])
    rows = []
    for people, block in Q3_SIZES:
        db = q3_database(people, block)
        expected, t_rw = timed(certain_answers, open_query, db, "rewriting")
        certain_answers(open_query, db, "compiled")  # warm the plan cache
        got, t_cp = timed(certain_answers, open_query, db, "compiled")
        assert got == expected, (people, block)
        rows.append({
            "people": people,
            "block": block,
            "facts": db.size(),
            "answers": len(expected),
            "rewriting_s": round(t_rw, 6),
            "compiled_s": round(t_cp, 6),
            "speedup": round(t_rw / t_cp, 2) if t_cp else None,
        })
    return rows


def main(argv):
    out_path = pathlib.Path(argv[1]) if len(argv) > 1 else (
        pathlib.Path(__file__).resolve().parent.parent / "BENCH_plan.json"
    )
    report = {
        "queries": {
            "poll_qa": "{Lives(p|t), not Born(p|t), not Likes(p,t|)}",
            "q3": "{P(x|y), not N('c'|y)}",
        },
        "methods": {
            "rewriting": "guarded tuple-at-a-time evaluator "
                         "(per-candidate loop for open queries)",
            "compiled": "set-at-a-time relational plan, one execution",
        },
        "boolean_certainty": bench_boolean(),
        "certain_answers_p": bench_answers(["p"]),
        "certain_answers_pt": bench_answers(["p", "t"]),
        "certain_answers_q3": bench_q3_answers(),
        "plan_cache": plan_cache.stats(),
    }
    report["largest_size_speedups"] = {
        "boolean_certainty": report["boolean_certainty"][-1]["speedup"],
        "certain_answers_p": report["certain_answers_p"][-1]["speedup"],
        "certain_answers_pt": report["certain_answers_pt"][-1]["speedup"],
        "certain_answers_q3": report["certain_answers_q3"][-1]["speedup"],
    }
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")
    for key, value in report["largest_size_speedups"].items():
        print(f"{key:24s} speedup at largest size: {value}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
