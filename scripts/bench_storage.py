#!/usr/bin/env python3
"""Regenerate BENCH_storage.json: the durable store's three cost axes.

Usage:  PYTHONPATH=src python scripts/bench_storage.py [output_path] [--smoke]

* **Commit throughput** — single-fact commits and batched commits per
  second under ``sync="always"`` (every commit fsyncs; the durability
  guarantee the chaos harness tests) and ``sync="off"`` (page-cache
  speed, the upper bound), so the fsync tax is visible.
* **Replay time vs WAL length** — recovery time as a function of the
  number of uncheckpointed WAL records, plus the same store reopened
  after a checkpoint (snapshot load, zero replay): the number QP111
  exists to keep bounded.
* **SQL-pushdown crossover** — certain answers of ``poll_qa`` via the
  native plan-IR SQL compiler on the delta-maintained integer-encoded
  mirror (``method="sql"``) against the in-memory compiled and
  columnar executors, the previous formula-SQL mirror design (warm
  TEXT connection, load excluded), and the legacy per-call-load path,
  across a size grid.  At every point a SHA-256 digest over the
  sorted answer set of each method is recorded and asserted identical
  — the speedups are only claimed for provably identical answers.

``--smoke`` (or ``BENCH_STORAGE_SMOKE=1``) shrinks every grid to CI
sizes; the digest cross-check still runs at every point.

The JSON is committed so CI and future sessions can compare against a
known-good baseline.
"""

import hashlib
import json
import os
import pathlib
import random
import shutil
import sys
import tempfile
import time

from repro.core.terms import Variable
from repro.cqa.certain_answers import OpenQuery, certain_answers
from repro.storage import PersistentDatabase, storage_stats
from repro.workloads.poll import random_poll_database
from repro.workloads.queries import poll_qa

COMMIT_COUNTS = {"single": 2000, "batched": 200, "rows_per_batch": 50}
REPLAY_GRID = [500, 2000, 8000]
CROSSOVER_SIZES = [(600, 60), (2400, 200), (9600, 640), (19200, 1280)]

SMOKE_COMMIT_COUNTS = {"single": 200, "batched": 20, "rows_per_batch": 20}
SMOKE_REPLAY_GRID = [100, 400]
SMOKE_CROSSOVER_SIZES = [(300, 40), (1200, 100)]


def answer_digest(answers):
    payload = "\n".join(repr(row) for row in sorted(answers, key=repr))
    return hashlib.sha256(payload.encode()).hexdigest()


def timed(fn, *args, repeat=3):
    best = None
    for _ in range(repeat):
        t0 = time.perf_counter()
        result = fn(*args)
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return result, best


def fresh_dir(base, name):
    path = base / name
    if path.exists():
        shutil.rmtree(path)
    return path


def seed_store(path, db, sync=None):
    """A store holding a copy of ``db``'s facts, committed in one batch."""
    store = PersistentDatabase(path, sync=sync)
    for schema in db.schemas.values():
        store.add_relation(schema)
    with store.batch():
        for name in db.relations():
            store.add_all(name, db.facts(name))
    return store


def bench_commit_throughput(base, counts):
    from repro.core.atoms import RelationSchema

    rows = []
    for sync in ("always", "off"):
        store = PersistentDatabase(fresh_dir(base, f"commit-{sync}"),
                                   sync=sync)
        store.add_relation(RelationSchema("R", 2, 1))
        n = counts["single"]
        t0 = time.perf_counter()
        for i in range(n):
            store.add("R", (i, i))
        single_s = time.perf_counter() - t0

        b, width = counts["batched"], counts["rows_per_batch"]
        t0 = time.perf_counter()
        for i in range(b):
            with store.batch():
                for j in range(width):
                    store.add("R", (n + i * width + j, j))
        batched_s = time.perf_counter() - t0
        status = store.storage_status()
        store.close()
        rows.append({
            "sync": sync,
            "single_commits": n,
            "single_commits_per_s": round(n / single_s, 1),
            "batches": b,
            "rows_per_batch": width,
            "batched_rows_per_s": round(b * width / batched_s, 1),
            "wal_bytes": status["wal_bytes"],
        })
    return rows


def bench_replay(base, grid):
    from repro.core.atoms import RelationSchema

    rows = []
    for n in grid:
        directory = fresh_dir(base, f"replay-{n}")
        store = PersistentDatabase(directory, sync="off")
        store.add_relation(RelationSchema("R", 2, 1))
        for i in range(n):
            store.add("R", (i % 97, i))
        store.close()

        def reopen():
            db = PersistentDatabase(directory, sync="off")
            recovery = db.last_recovery
            db.close()
            return recovery

        recovery, replay_s = timed(reopen)
        entry = {
            "wal_records": n,
            "replayed_records": recovery["replayed_records"],
            "reopen_s": round(replay_s, 6),
            "replay_ms": round(recovery["replay_ms"], 3),
        }
        # Checkpoint, then measure the snapshot-only reopen.
        store = PersistentDatabase(directory, sync="off")
        store.checkpoint()
        store.close()
        recovery, snap_s = timed(reopen)
        entry["after_checkpoint_reopen_s"] = round(snap_s, 6)
        entry["after_checkpoint_replayed"] = recovery["replayed_records"]
        rows.append(entry)
    return rows


def bench_sql_crossover(base, sizes):
    from repro.cqa.certain_answers import _certain_answers_sql
    from repro.db.sqlite_backend import load_database

    open_query = OpenQuery(poll_qa(), [Variable("p")])
    os.environ["REPRO_SQL_MIN_FACTS"] = "0"
    rows = []
    for people, towns in sizes:
        db = random_poll_database(people, towns, conflict_rate=0.5,
                                  rng=random.Random(73))
        store = seed_store(fresh_dir(base, f"xover-{people}"), db,
                           sync="off")
        expected = certain_answers(open_query, store, "compiled")
        digest = answer_digest(expected)
        point = {"people": people, "towns": towns, "facts": store.size(),
                 "answers": len(expected), "sha256": digest}
        # native_sql: method="sql" on the store runs the compiled plan
        # inside the integer-encoded mirror (single SELECT, no load).
        for method, key in (("compiled", "compiled_s"),
                            ("columnar", "columnar_s"),
                            ("sql", "native_sql_s")):
            certain_answers(open_query, store, method)  # warm caches/mirror
            got, seconds = timed(certain_answers, open_query, store, method)
            assert answer_digest(got) == digest, (people, towns, method)
            point[key] = round(seconds, 6)
        # formula_sql: the previous mirror design — formula-level SQL
        # over TEXT-encoded tables on an already-loaded warm connection
        # (load excluded from the timing).  The baseline the native
        # plan-IR compiler is gated against.
        warm = load_database(store)
        try:
            got, seconds = timed(_certain_answers_sql, open_query, store,
                                 warm)
            assert answer_digest(got) == digest, (people, towns,
                                                  "formula-sql")
            point["formula_sql_s"] = round(seconds, 6)
        finally:
            warm.close()
        # legacy_sql: the same formula SQL on the plain in-memory
        # database — every call loads every fact into a fresh sqlite
        # connection first (the copy the mirror exists to avoid).
        got, seconds = timed(certain_answers, open_query, db, "sql")
        assert answer_digest(got) == digest, (people, towns, "legacy-sql")
        point["legacy_sql_s"] = round(seconds, 6)
        point["native_vs_formula_sql"] = (
            round(point["formula_sql_s"] / point["native_sql_s"], 2)
            if point["native_sql_s"] else None)
        point["native_vs_legacy_sql"] = (
            round(point["legacy_sql_s"] / point["native_sql_s"], 2)
            if point["native_sql_s"] else None)
        point["native_vs_compiled"] = (
            round(point["compiled_s"] / point["native_sql_s"], 2)
            if point["native_sql_s"] else None)
        store.close()
        rows.append(point)
    return rows


def main(argv):
    args = [a for a in argv[1:] if a != "--smoke"]
    smoke = ("--smoke" in argv[1:]
             or os.environ.get("BENCH_STORAGE_SMOKE") == "1")
    out_path = pathlib.Path(args[0]) if args else (
        pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_storage.json"
    )
    commit_counts = SMOKE_COMMIT_COUNTS if smoke else COMMIT_COUNTS
    replay_grid = SMOKE_REPLAY_GRID if smoke else REPLAY_GRID
    crossover = SMOKE_CROSSOVER_SIZES if smoke else CROSSOVER_SIZES

    base = pathlib.Path(tempfile.mkdtemp(prefix="repro-bench-storage-"))
    try:
        report = {
            "mode": "smoke" if smoke else "full",
            "query": "{Lives(p|t), not Born(p|t), not Likes(p,t|)}",
            "digests": "per crossover point, sha256 over the sorted "
                       "answer set; asserted identical across compiled, "
                       "columnar, native plan-IR SQL through the mirror, "
                       "warm formula-SQL, and per-call-load formula-SQL",
            "commit_throughput": bench_commit_throughput(base, commit_counts),
            "replay_vs_wal_length": bench_replay(base, replay_grid),
            "sql_crossover": bench_sql_crossover(base, crossover),
            "storage_stats": storage_stats(),
        }
    finally:
        shutil.rmtree(base, ignore_errors=True)
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")
    fsync, nosync = report["commit_throughput"]
    print(f"commits/s  sync=always: {fsync['single_commits_per_s']}, "
          f"sync=off: {nosync['single_commits_per_s']}")
    largest = report["sql_crossover"][-1]
    print(f"at {largest['facts']} facts: native plan-IR sql is "
          f"{largest['native_vs_formula_sql']}x the warm formula-sql "
          f"mirror, {largest['native_vs_legacy_sql']}x the per-call-load "
          f"sql, {largest['native_vs_compiled']}x the in-memory compiled "
          f"plan")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
