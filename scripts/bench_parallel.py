#!/usr/bin/env python3
"""Regenerate BENCH_parallel.json: serial vs sharded-parallel answers.

Usage:  PYTHONPATH=src python scripts/bench_parallel.py [output_path]

Times the serial ``compiled`` strategy against the sharded parallel
executor (``method="parallel"``) for the certain answers of
``poll_qa`` with free ``(p)``, on the high-mass poll workload
(``towns=8, likes_per_person=8, conflict_rate=0.6``) at increasing
sizes, with a ``jobs in {2, 4, 8}`` grid.

Methodology
-----------
* The shard layout is held fixed across the jobs grid
  (``jobs * shard_factor = 64`` shards), so the grid isolates the
  worker count; 64 shards is where the per-shard working set becomes
  cache-resident on the benchmark host (see docs/PERFORMANCE.md).
* Serial and parallel executions are timed in the *same process* and
  *interleaved* round-robin (serial, jobs=2, jobs=4, jobs=8, repeat),
  then reduced by min-of-rounds: the host shows between-phase clock
  drift larger than the effect under test, and interleaving exposes
  every method to every phase.
* Pools and shard layouts are warmed before timing — steady-state
  latency is the quantity of interest; the one-time partition cost is
  reported separately per size.
* Every parallel answer set is asserted equal to the serial one, and
  the canonical byte rendering (sorted reprs) is hashed so the JSON
  itself witnesses that parallel answers are byte-identical to serial
  answers on every configuration.

The JSON is committed so CI and future sessions can compare against a
known-good baseline.  ``REPRO_MAX_WORKERS`` caps the grid (CI smoke
runs set it to 2 and shrink sizes via BENCH_PARALLEL_SMOKE=1).
"""

import hashlib
import json
import os
import pathlib
import random
import sys
import time

from repro.core.terms import Variable
from repro.cqa.certain_answers import OpenQuery, certain_answers
from repro.obs import RunConfig
from repro.parallel import (
    parallel_certain_answers,
    parallel_stats,
    reset_parallel_stats,
    shutdown_pools,
)
from repro.workloads.poll import random_poll_database
from repro.workloads.queries import poll_qa

RUN_CONFIG = RunConfig.from_env()

SIZES = [50_000, 200_000, 500_000]
JOBS_GRID = [2, 4, 8]
N_SHARDS = 64
ROUNDS = 3

if RUN_CONFIG.parallel_smoke:
    SIZES = [2_000, 5_000]
    JOBS_GRID = [2]
    ROUNDS = 2


def answers_digest(answers) -> str:
    """SHA-256 of the canonical rendering (sorted reprs) of an answer set."""
    blob = "\n".join(sorted(map(repr, answers))).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def timed(fn, *args, **kwargs):
    t0 = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - t0


def bench_size(open_query, n_people):
    db = random_poll_database(
        n_people, 8, likes_per_person=8, conflict_rate=0.6,
        rng=random.Random(7),
    )
    serial, _ = timed(certain_answers, open_query, db, "compiled")  # warm
    digest = answers_digest(serial)

    jobs_grid = [j for j in JOBS_GRID if N_SHARDS % j == 0]
    reset_parallel_stats()
    partition_s = 0.0
    for jobs in jobs_grid:  # warm pools; first config pays the partition
        par, _ = timed(
            parallel_certain_answers, open_query, db,
            jobs=jobs, min_facts=0, shard_factor=N_SHARDS // jobs,
        )
        assert par == serial, f"jobs={jobs} disagrees at {n_people}"
    partition_s = parallel_stats()["partition_ms"] / 1e3

    serial_times = []
    parallel_times = {jobs: [] for jobs in jobs_grid}
    for _ in range(ROUNDS):
        got, t = timed(certain_answers, open_query, db, "compiled")
        assert got == serial
        serial_times.append(t)
        for jobs in jobs_grid:
            par, t = timed(
                parallel_certain_answers, open_query, db,
                jobs=jobs, min_facts=0, shard_factor=N_SHARDS // jobs,
            )
            assert par == serial, f"jobs={jobs} disagrees at {n_people}"
            assert answers_digest(par) == digest
            parallel_times[jobs].append(t)

    serial_s = min(serial_times)
    row = {
        "people": n_people,
        "facts": db.size(),
        "answers": len(serial),
        "n_shards": N_SHARDS,
        "answers_sha256": digest,
        "partition_s": round(partition_s, 3),
        "serial_s": round(serial_s, 4),
        "parallel": {},
    }
    for jobs in jobs_grid:
        t = min(parallel_times[jobs])
        row["parallel"][f"jobs={jobs}"] = {
            "seconds": round(t, 4),
            "speedup": round(serial_s / t, 2) if t else None,
            "identical_to_serial": True,
        }
    shutdown_pools()
    return row


def main(argv):
    out_path = pathlib.Path(argv[1]) if len(argv) > 1 else (
        pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_parallel.json"
    )
    open_query = OpenQuery(poll_qa(), [Variable("p")])
    grid = [bench_size(open_query, n) for n in SIZES]
    largest = grid[-1]
    report = {
        "query": "{Lives(p|t), not Born(p|t), not Likes(p,t|)} with free (p)",
        "workload": "random_poll_database(n, towns=8, likes_per_person=8, "
                    "conflict_rate=0.6, seed=7)",
        "host_cpus": os.cpu_count(),
        "methodology": (
            "serial compiled vs sharded parallel, 64 shards for every "
            "jobs value, interleaved rounds in one process, min over "
            f"{ROUNDS} rounds; parallel answer sets asserted equal to "
            "serial and sha256 of their sorted reprs recorded per point"
        ),
        "grid": grid,
    }
    if not RUN_CONFIG.parallel_smoke:
        best = largest["parallel"].get("jobs=4", {}).get("speedup")
        report["largest_size_jobs4_speedup"] = best
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")
    for row in grid:
        line = ", ".join(
            f"{k} {v['speedup']}x" for k, v in row["parallel"].items()
        )
        print(f"people={row['people']:>7} facts={row['facts']:>8} "
              f"serial={row['serial_s']}s  {line}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
