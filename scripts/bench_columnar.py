#!/usr/bin/env python3
"""Regenerate BENCH_columnar.json: tuple executor vs columnar backend.

Usage:  PYTHONPATH=src python scripts/bench_columnar.py [output_path] [--smoke]

Times the ``compiled`` strategy (the serial tuple-at-a-time plan
executor — the oracle) against ``columnar`` (the vectorized batch
executor of :mod:`repro.columnar`) and records the speedup per point:

* Certain answers of ``poll_qa`` with free ``(p)`` and ``(p, t)`` and
  of ``q3`` with one large ``N(c, ·)`` block — the batch grids the
  columnar backend exists for.  The grids extend the BENCH_plan sizes
  upward because the batch win grows with input size: dictionary
  encoding and the version-tagged scan cache amortize across reruns
  the way the tuple executor's per-run set comprehensions cannot.
* Boolean certainty of ``poll_qa`` — recorded for honesty, expected at
  ~1.0x: sentences are *delegated* to the row executor's probe-mode
  short-circuit by design (see ``VectorExecutor.nonempty``), so both
  methods run the same code.

Every point also records a SHA-256 digest over the sorted answer set
of each method and asserts the two digests are identical — the
"byte-identical answers" contract the parity suites pin, re-checked on
the exact data the speedups are claimed for.

``--smoke`` (or ``BENCH_COLUMNAR_SMOKE=1``) shrinks every grid to CI
sizes; the digest cross-check still runs at every point.

The JSON is committed so CI and future sessions can compare against a
known-good baseline.
"""

import hashlib
import json
import os
import pathlib
import random
import sys
import time

from bench_plan import q3_database
from repro.core.terms import Variable
from repro.cqa.certain_answers import OpenQuery, certain_answers
from repro.cqa.engine import CertaintyEngine
from repro.fo.compile import plan_cache
from repro.workloads.poll import random_poll_database
from repro.workloads.queries import poll_qa, q3

ANSWER_SIZES = [(1200, 100), (4800, 320), (9600, 640), (19200, 1280)]
Q3_SIZES = [(1600, 800), (6400, 3200), (12800, 6400)]
BOOLEAN_SIZES = [(1200, 100), (2400, 160)]

SMOKE_ANSWER_SIZES = [(300, 40), (600, 80)]
SMOKE_Q3_SIZES = [(400, 200), (800, 400)]
SMOKE_BOOLEAN_SIZES = [(300, 40)]


def timed(fn, *args, repeat=5):
    best = None
    for _ in range(repeat):
        t0 = time.perf_counter()
        result = fn(*args)
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return result, best


def answer_digest(answers):
    """SHA-256 over the sorted answer tuples (method-order independent)."""
    payload = "\n".join(repr(row) for row in sorted(answers, key=repr))
    return hashlib.sha256(payload.encode()).hexdigest()


def bench_answers(free_names, sizes):
    open_query = OpenQuery(poll_qa(), [Variable(n) for n in free_names])
    rows = []
    for people, towns in sizes:
        db = random_poll_database(people, towns, conflict_rate=0.5,
                                  rng=random.Random(73))
        certain_answers(open_query, db, "compiled")  # warm the plan cache
        expected, t_cp = timed(certain_answers, open_query, db, "compiled")
        certain_answers(open_query, db, "columnar")  # warm the scan cache
        got, t_col = timed(certain_answers, open_query, db, "columnar")
        digest = answer_digest(expected)
        assert answer_digest(got) == digest, (people, towns)
        rows.append({
            "people": people,
            "towns": towns,
            "facts": db.size(),
            "answers": len(expected),
            "compiled_s": round(t_cp, 6),
            "columnar_s": round(t_col, 6),
            "speedup": round(t_cp / t_col, 2) if t_col else None,
            "sha256": digest,
        })
    return rows


def bench_q3_answers(sizes):
    open_query = OpenQuery(q3(), [Variable("x")])
    rows = []
    for people, block in sizes:
        db = q3_database(people, block)
        certain_answers(open_query, db, "compiled")
        expected, t_cp = timed(certain_answers, open_query, db, "compiled")
        certain_answers(open_query, db, "columnar")
        got, t_col = timed(certain_answers, open_query, db, "columnar")
        digest = answer_digest(expected)
        assert answer_digest(got) == digest, (people, block)
        rows.append({
            "people": people,
            "block": block,
            "facts": db.size(),
            "answers": len(expected),
            "compiled_s": round(t_cp, 6),
            "columnar_s": round(t_col, 6),
            "speedup": round(t_cp / t_col, 2) if t_col else None,
            "sha256": digest,
        })
    return rows


def bench_boolean(sizes):
    engine = CertaintyEngine(poll_qa())
    rows = []
    for people, towns in sizes:
        db = random_poll_database(people, towns, conflict_rate=0.5,
                                  rng=random.Random(71))
        engine.certain(db, "compiled")
        expected, t_cp = timed(engine.certain, db, "compiled")
        got, t_col = timed(engine.certain, db, "columnar")
        assert got == expected, (people, towns)
        rows.append({
            "people": people,
            "towns": towns,
            "facts": db.size(),
            "answer": expected,
            "compiled_s": round(t_cp, 6),
            "columnar_s": round(t_col, 6),
            "speedup": round(t_cp / t_col, 2) if t_col else None,
        })
    return rows


def main(argv):
    args = [a for a in argv[1:] if a != "--smoke"]
    smoke = ("--smoke" in argv[1:]
             or os.environ.get("BENCH_COLUMNAR_SMOKE") == "1")
    out_path = pathlib.Path(args[0]) if args else (
        pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_columnar.json"
    )
    answer_sizes = SMOKE_ANSWER_SIZES if smoke else ANSWER_SIZES
    q3_sizes = SMOKE_Q3_SIZES if smoke else Q3_SIZES
    boolean_sizes = SMOKE_BOOLEAN_SIZES if smoke else BOOLEAN_SIZES
    report = {
        "mode": "smoke" if smoke else "full",
        "queries": {
            "poll_qa": "{Lives(p|t), not Born(p|t), not Likes(p,t|)}",
            "q3": "{P(x|y), not N('c'|y)}",
        },
        "methods": {
            "compiled": "serial tuple-at-a-time plan executor (oracle)",
            "columnar": "vectorized batch executor, dictionary-encoded "
                        "int columns and batch hash joins",
        },
        "digests": "per point, sha256 over the sorted answer set; "
                   "asserted identical between both methods",
        "certain_answers_p": bench_answers(["p"], answer_sizes),
        "certain_answers_pt": bench_answers(["p", "t"], answer_sizes),
        "certain_answers_q3": bench_q3_answers(q3_sizes),
        "boolean_certainty_probe_delegated": bench_boolean(boolean_sizes),
        "plan_cache": plan_cache.stats(),
    }
    report["largest_size_speedups"] = {
        "certain_answers_p": report["certain_answers_p"][-1]["speedup"],
        "certain_answers_pt": report["certain_answers_pt"][-1]["speedup"],
        "certain_answers_q3": report["certain_answers_q3"][-1]["speedup"],
    }
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")
    for key, value in report["largest_size_speedups"].items():
        print(f"{key:24s} speedup at largest size: {value}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
