"""Unit tests for repro.core.terms."""

import pytest

from repro.core.terms import (
    Constant,
    PlaceholderConstant,
    Variable,
    fresh_constant,
    is_constant,
    is_variable,
    make_variables,
    variables_of,
)


class TestVariable:
    def test_equality_by_name(self):
        assert Variable("x") == Variable("x")

    def test_inequality_by_name(self):
        assert Variable("x") != Variable("y")

    def test_hash_consistent_with_equality(self):
        assert hash(Variable("x")) == hash(Variable("x"))

    def test_not_equal_to_constant_with_same_payload(self):
        assert Variable("x") != Constant("x")

    def test_ordering_by_name(self):
        assert Variable("a") < Variable("b")

    def test_sorted(self):
        vs = [Variable(n) for n in "cab"]
        assert [v.name for v in sorted(vs)] == ["a", "b", "c"]

    def test_empty_name_rejected(self):
        with pytest.raises(TypeError):
            Variable("")

    def test_non_string_name_rejected(self):
        with pytest.raises(TypeError):
            Variable(3)

    def test_str(self):
        assert str(Variable("foo")) == "foo"

    def test_repr(self):
        assert "foo" in repr(Variable("foo"))


class TestConstant:
    def test_equality_by_value(self):
        assert Constant(1) == Constant(1)

    def test_inequality(self):
        assert Constant(1) != Constant(2)

    def test_hash_consistent(self):
        assert hash(Constant("a")) == hash(Constant("a"))

    def test_tuple_values_allowed(self):
        c = Constant(("pair", 1, 2))
        assert c.value == ("pair", 1, 2)

    def test_unhashable_value_rejected(self):
        with pytest.raises(TypeError):
            Constant([1, 2])

    def test_int_and_string_distinct(self):
        assert Constant(1) != Constant("1")

    def test_usable_in_sets(self):
        assert len({Constant(1), Constant(1), Constant(2)}) == 2


class TestPlaceholderConstant:
    def test_remembers_variable(self):
        x = Variable("x")
        p = PlaceholderConstant(x)
        assert p.variable == x

    def test_two_placeholders_for_same_variable_differ(self):
        x = Variable("x")
        assert PlaceholderConstant(x) != PlaceholderConstant(x)

    def test_placeholder_not_equal_to_plain_constant(self):
        p = PlaceholderConstant(Variable("x"))
        assert p != Constant(p.value)

    def test_is_constant(self):
        assert is_constant(PlaceholderConstant(Variable("x")))

    def test_self_equality(self):
        p = PlaceholderConstant(Variable("x"))
        assert p == p
        assert hash(p) == hash(p)


class TestHelpers:
    def test_fresh_constants_distinct(self):
        assert fresh_constant() != fresh_constant()

    def test_is_variable(self):
        assert is_variable(Variable("x"))
        assert not is_variable(Constant(1))

    def test_is_constant(self):
        assert is_constant(Constant(1))
        assert not is_constant(Variable("x"))

    def test_variables_of_mixed(self):
        x, y = Variable("x"), Variable("y")
        assert variables_of([x, Constant(1), y, x]) == {x, y}

    def test_variables_of_empty(self):
        assert variables_of([]) == frozenset()

    def test_make_variables(self):
        x, y, z = make_variables("x y z")
        assert (x.name, y.name, z.name) == ("x", "y", "z")
