"""Adversarial rewriting cases: composite keys, constants in key
positions, several negated atoms sharing variables, chained joins.

Every case is validated against brute force on random databases through
all four strategies.
"""

import pytest

from repro.core.atoms import atom
from repro.core.classify import classify
from repro.core.query import Query
from repro.core.terms import Constant, Variable
from repro.cqa.engine import CertaintyEngine
from repro.workloads.generators import random_small_database

x, y, z, u, w = (Variable(n) for n in "xyzuw")


def case_composite_key():
    """Positive atom with a two-variable key."""
    return Query(
        [atom("R", [x, y], [z])],
        [atom("N", [x], [z])],
    )


def case_constant_in_positive_key():
    """Positive atom whose key mixes a constant and a variable."""
    return Query(
        [atom("R", [Constant("k"), x], [y])],
        [atom("N", [x], [y])],
    )


def case_two_negated_sharing_var():
    """Two negated atoms over the same variables (guarded)."""
    return Query(
        [atom("R", [x], [y])],
        [atom("N1", [x], [y]), atom("N2", [x], [y])],
    )


def case_join_chain():
    """R -> S join with negation at the end."""
    return Query(
        [atom("R", [x], [y]), atom("S", [y], [z])],
        [atom("N", [y], [z])],
    )


def case_negated_composite_key():
    """Negated atom with a composite key, guarded by one wide positive."""
    return Query(
        [atom("R", [x], [y, z])],
        [atom("N", [x, y], [z])],
    )


def case_wide_positive():
    """Arity-4 positive atom with repeated value variable."""
    return Query(
        [atom("R", [x], [y, y, z])],
        [atom("N", [x], [z])],
    )


def case_constant_value_in_negated():
    """Negated atom with a constant in a value position."""
    return Query(
        [atom("R", [x], [y])],
        [atom("N", [x], [Constant("v"), y])],
    )


def case_all_key_positive_with_negation():
    """All-key positive guard with a simple-key negated atom."""
    return Query(
        [atom("R", [x, y])],
        [atom("N", [x], [y])],
    )


ALL_CASES = [
    ("composite_key", case_composite_key),
    ("constant_in_positive_key", case_constant_in_positive_key),
    ("two_negated_sharing_var", case_two_negated_sharing_var),
    ("join_chain", case_join_chain),
    ("negated_composite_key", case_negated_composite_key),
    ("wide_positive", case_wide_positive),
    ("constant_value_in_negated", case_constant_value_in_negated),
    ("all_key_positive", case_all_key_positive_with_negation),
]


@pytest.mark.parametrize("name,make", ALL_CASES)
def test_case_is_in_scope(name, make):
    q = make()
    assert q.is_safe
    assert q.has_weakly_guarded_negation, name


@pytest.mark.parametrize("name,make", ALL_CASES)
def test_all_strategies_agree(name, make, rng):
    q = make()
    if not classify(q).in_fo:
        pytest.skip(f"{name} has a cyclic attack graph")
    engine = CertaintyEngine(q)
    for _ in range(20):
        db = random_small_database(q, rng, domain_size=3,
                                   facts_per_relation=4)
        cv = engine.cross_validate(db)
        assert cv.consistent, (name, db, cv.results)


@pytest.mark.parametrize("name,make", ALL_CASES)
def test_brute_only_when_cyclic(name, make, rng):
    q = make()
    engine = CertaintyEngine(q)
    db = random_small_database(q, rng, domain_size=3, facts_per_relation=3)
    # Must never crash, whatever the classification.
    assert engine.certain(db, "brute") in (True, False)
