"""Tests for the workload generators."""

import pytest

from repro.core.classify import classify
from repro.workloads.generators import (
    DatabaseParams,
    QueryParams,
    random_database,
    random_query,
    random_small_database,
)
from repro.workloads.poll import (
    empty_poll_database,
    paper_flavoured_poll_database,
    random_poll_database,
)
from repro.workloads.queries import all_named_queries, q3, q_hall


class TestRandomDatabase:
    def test_schema_matches_query(self, rng):
        db = random_database(q3(), rng=rng)
        assert set(db.relations()) == {"P", "N"}

    def test_block_count_respected(self, rng):
        params = DatabaseParams(blocks_per_relation=3, domain_size=50)
        db = random_database(q3(), params, rng)
        assert len(db.blocks("P")) == 3

    def test_block_sizes_bounded(self, rng):
        params = DatabaseParams(max_block_size=2, domain_size=50)
        db = random_database(q3(), params, rng)
        for _, _, rows in db.all_blocks():
            assert 1 <= len(rows) <= 2

    def test_query_constants_present_in_pool(self, rng):
        # q3 has constant "c" in N's key: some N-block should use it.
        found = False
        for _ in range(20):
            db = random_database(q3(), DatabaseParams(domain_size=2), rng)
            if any(row[0] == "c" for row in db.facts("N")):
                found = True
                break
        assert found

    def test_inconsistency_rate_zero_gives_consistent(self, rng):
        params = DatabaseParams(inconsistent_fraction=0.0, domain_size=60,
                                blocks_per_relation=4)
        db = random_database(q3(), params, rng)
        assert db.is_consistent

    def test_small_database_bounds(self, rng):
        db = random_small_database(q3(), rng, domain_size=2,
                                   facts_per_relation=3)
        assert len(db.facts("P")) <= 3
        assert len(db.facts("N")) <= 3


class TestRandomQuery:
    def test_respects_counts(self, rng):
        params = QueryParams(n_positive=2, n_negative=2)
        q = random_query(params, rng)
        assert len(q.positives) == 2
        assert len(q.negatives) == 2

    def test_safe_and_self_join_free(self, rng):
        for _ in range(30):
            q = random_query(QueryParams(), rng)
            assert q.is_safe
            names = [a.relation for a in q.atoms]
            assert len(names) == len(set(names))

    def test_weak_guardedness_enforced(self, rng):
        for _ in range(30):
            q = random_query(QueryParams(require_weakly_guarded=True), rng)
            assert q.has_weakly_guarded_negation

    def test_unguarded_allowed_when_requested(self, rng):
        params = QueryParams(require_weakly_guarded=False)
        q = random_query(params, rng)
        assert q.is_safe  # only safety is required

    def test_classifiable(self, rng):
        for _ in range(20):
            q = random_query(QueryParams(), rng)
            classify(q)  # must not raise


class TestPollWorkload:
    def test_schema(self):
        db = empty_poll_database()
        assert db.schemas["Likes"].is_all_key
        assert db.schemas["Born"].key_size == 1

    def test_random_poll_blocks(self, rng):
        db = random_poll_database(8, 4, conflict_rate=1.0, rng=rng)
        assert any(len(rows) > 1 for _, _, rows in db.all_blocks())

    def test_zero_conflicts_consistent(self, rng):
        db = random_poll_database(8, 4, conflict_rate=0.0, rng=rng)
        assert db.is_consistent

    def test_paper_flavoured_is_inconsistent(self):
        db = paper_flavoured_poll_database()
        assert not db.is_consistent
        assert db.repair_count() > 1


class TestQueryZoo:
    def test_all_named_queries_valid(self):
        for name, q in all_named_queries():
            assert q.is_safe, name

    def test_q_hall_sizes(self):
        assert len(q_hall(0).negatives) == 0
        assert len(q_hall(4).negatives) == 4

    def test_q_hall_negative_size_rejected(self):
        with pytest.raises(ValueError):
            q_hall(-1)

    def test_fresh_objects(self):
        assert q3() is not q3()
        assert q3() == q3()
