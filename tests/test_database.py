"""Tests for repro.db.database."""

import pytest

from repro.core.atoms import RelationSchema, atom
from repro.core.terms import Constant
from repro.db.database import Database, SchemaError, database_from_facts

from conftest import db_from


class TestConstruction:
    def test_add_requires_registered_relation(self):
        db = Database()
        with pytest.raises(SchemaError):
            db.add("R", (1, 2))

    def test_arity_checked(self):
        db = Database([RelationSchema("R", 2, 1)])
        with pytest.raises(SchemaError):
            db.add("R", (1,))

    def test_conflicting_signature_rejected(self):
        db = Database([RelationSchema("R", 2, 1)])
        with pytest.raises(SchemaError):
            db.add_relation(RelationSchema("R", 2, 2))

    def test_reregistering_same_schema_ok(self):
        db = Database([RelationSchema("R", 2, 1)])
        db.add_relation(RelationSchema("R", 2, 1))
        assert db.relations() == ("R",)

    def test_set_semantics(self):
        db = db_from({"R/2/1": [(1, 2), (1, 2)]})
        assert db.size() == 1

    def test_add_fact_from_atom(self):
        db = Database()
        db.add_fact(atom("R", [Constant(1)], [Constant(2)]))
        assert db.contains("R", (1, 2))

    def test_database_from_facts(self):
        db = database_from_facts([
            atom("R", [Constant(1)], [Constant(2)]),
            atom("S", [Constant(3)]),
        ])
        assert db.size() == 2


class TestBlocks:
    def test_blocks_grouped_by_key(self):
        db = db_from({"R/2/1": [(1, 2), (1, 3), (2, 2)]})
        blocks = db.blocks("R")
        assert blocks[(1,)] == {(1, 2), (1, 3)}
        assert blocks[(2,)] == {(2, 2)}

    def test_block_of(self):
        db = db_from({"R/2/1": [(1, 2), (1, 3)]})
        assert db.block_of("R", (1,)) == {(1, 2), (1, 3)}
        assert db.block_of("R", (9,)) == frozenset()

    def test_all_key_blocks_are_singletons(self):
        db = db_from({"R/2/2": [(1, 2), (1, 3)]})
        assert all(len(b) == 1 for b in db.blocks("R").values())

    def test_all_blocks_iteration(self):
        db = db_from({"R/2/1": [(1, 2)], "S/1/1": [(5,)]})
        items = list(db.all_blocks())
        assert len(items) == 2
        assert items[0][0] == "R"

    def test_all_blocks_mixed_type_keys(self):
        db = db_from({"R/2/1": [(1, 2), ("a", 2)]})
        assert len(list(db.all_blocks())) == 2


class TestConsistency:
    def test_consistent(self):
        assert db_from({"R/2/1": [(1, 2), (2, 2)]}).is_consistent

    def test_inconsistent(self):
        assert not db_from({"R/2/1": [(1, 2), (1, 3)]}).is_consistent

    def test_all_key_relation_always_consistent(self):
        assert db_from({"R/2/2": [(1, 2), (1, 3), (2, 3)]}).is_consistent

    def test_repair_count(self):
        db = db_from({"R/2/1": [(1, 2), (1, 3), (2, 1)],
                      "S/2/1": [(1, 1), (1, 2)]})
        assert db.repair_count() == 2 * 1 * 2

    def test_repair_count_empty(self):
        assert Database().repair_count() == 1


class TestOperations:
    def test_copy_is_independent(self):
        db = db_from({"R/2/1": [(1, 2)]})
        other = db.copy()
        other.add("R", (3, 4))
        assert not db.contains("R", (3, 4))

    def test_union(self):
        a = db_from({"R/2/1": [(1, 2)]})
        b = db_from({"R/2/1": [(3, 4)], "S/1/1": [(9,)]})
        u = a.union(b)
        assert u.size() == 3
        assert a.size() == 1

    def test_restrict(self):
        db = db_from({"R/2/1": [(1, 2)], "S/1/1": [(9,)]})
        r = db.restrict(["R"])
        assert r.relations() == ("R",)

    def test_discard(self):
        db = db_from({"R/2/1": [(1, 2)]})
        db.discard("R", (1, 2))
        assert db.size() == 0
        db.discard("R", (1, 2))  # idempotent

    def test_active_domain(self):
        db = db_from({"R/2/1": [(1, "a")], "S/1/1": [(2,)]})
        assert db.active_domain() == {1, "a", 2}

    def test_equality(self):
        assert db_from({"R/2/1": [(1, 2)]}) == db_from({"R/2/1": [(1, 2)]})
        assert db_from({"R/2/1": [(1, 2)]}) != db_from({"R/2/1": [(1, 3)]})

    def test_len(self):
        assert len(db_from({"R/2/1": [(1, 2), (2, 3)]})) == 2
