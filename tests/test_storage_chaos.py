"""A quick slice of the crash-injection chaos harness.

The CI ``storage-durability`` job runs the full 200+ randomized
trials (``scripts/run_chaos.py``); here we pin the harness's building
blocks (deterministic streams, the digest oracle) and run a dozen
kill-9 rounds so the suite exercises genuine subprocess crashes on
every run without dominating its wall-clock.
"""

from __future__ import annotations

from repro.db.database import Database
from repro.storage import PersistentDatabase
from repro.storage.chaos import (
    build_ops,
    expected_digests,
    run_chaos,
    run_trial,
    state_digest,
)


class TestOracle:
    def test_streams_are_deterministic(self):
        assert build_ops(7, 50) == build_ops(7, 50)
        assert build_ops(7, 50) != build_ops(8, 50)

    def test_stream_mixes_op_kinds(self):
        kinds = {op[0] for op in build_ops(3, 300)}
        assert {"add", "discard", "batch", "discard_all",
                "checkpoint"} <= kinds

    def test_digest_ignores_empty_relations(self):
        from repro.core.atoms import RelationSchema

        a, b = Database(), Database()
        a.add_relation(RelationSchema("R", 2, 1))
        a.add_relation(RelationSchema("S", 2, 1))
        b.add_relation(RelationSchema("R", 2, 1))
        a.add("R", ("x", "y"))
        b.add("R", ("x", "y"))
        assert state_digest(a) == state_digest(b)

    def test_oracle_covers_every_clock_stop(self, tmp_path):
        # A store that runs the stream with no crash must end on a
        # clock the oracle knows, with the matching digest.
        oracle = expected_digests(5, 60)
        db = PersistentDatabase(tmp_path / "store")
        from repro.storage.chaos import apply_ops

        apply_ops(db, build_ops(5, 60))
        assert oracle[db.clock] == state_digest(db)
        db.close()
        db2 = PersistentDatabase(tmp_path / "store")
        assert oracle[db2.clock] == state_digest(db2)
        db2.close()


class TestTrials:
    def test_chaos_slice(self, tmp_path):
        summary = run_chaos(tmp_path, trials=12, seed=1234, ops=80)
        assert summary["trials"] == 12
        # The byte budgets are drawn to land mid-stream: most trials
        # must actually crash, or the harness is testing nothing.
        assert summary["crashes"] >= 4
        assert summary["wal_trials"] + summary["snapshot_trials"] == 12

    def test_survivor_without_crash_env(self, tmp_path):
        result = run_trial(tmp_path / "t", seed=2, ops=40, crash_env={})
        assert not result["crashed"]
        assert result["recovered_clock"] >= result["max_ack"]
