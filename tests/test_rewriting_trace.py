"""Tests for the Algorithm 1 trace and extended CLI commands."""

import random

from repro.cqa.rewriting import Rewriter
from repro.workloads.queries import poll_qa, q3, q_hall


class TestTrace:
    def test_disabled_by_default(self):
        r = Rewriter(q3())
        r.rewrite()
        assert r.trace == []

    def test_steps_recorded(self):
        r = Rewriter(q3(), trace=True)
        r.rewrite()
        actions = [s.action for s in r.trace]
        assert any("eliminate negated" in a for a in actions)
        assert any("reify" in a for a in actions)
        assert any("base case" in a for a in actions)

    def test_first_step_picks_unattacked_atom(self):
        r = Rewriter(q3(), trace=True)
        r.rewrite()
        first = r.trace[0]
        assert first.atom.relation == "N"

    def test_depth_nesting(self):
        r = Rewriter(q_hall(2), trace=True)
        r.rewrite()
        assert max(s.depth for s in r.trace) >= 2
        assert min(s.depth for s in r.trace) >= 0

    def test_render(self):
        r = Rewriter(poll_qa(), trace=True)
        r.rewrite()
        text = "\n".join(s.render() for s in r.trace)
        assert "Lives" in text

    def test_trace_does_not_change_result(self):
        plain = Rewriter(q_hall(2)).rewrite()
        traced = Rewriter(q_hall(2), trace=True).rewrite()
        assert plain == traced


class TestCliExtras:
    def test_rewrite_trace_flag(self, capsys):
        from repro.cli import main

        assert main(["rewrite", "P(x | y), not N('c' | y)", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "Algorithm 1 trace" in out
        assert "eliminate negated" in out

    def test_explain_command_uncertain(self, capsys, tmp_path):
        from repro.cli import main
        from repro.db.io import save_database
        from conftest import db_from

        db = db_from({"P/2/1": [(1, "a")], "N/2/1": [("c", "a")]})
        path = tmp_path / "db.json"
        save_database(db, path)
        assert main(["explain", "P(x | y), not N('c' | y)",
                     "--db", str(path)]) == 0
        assert "NOT certain" in capsys.readouterr().out

    def test_explain_command_certain(self, capsys, tmp_path):
        from repro.cli import main
        from repro.db.io import save_database
        from conftest import db_from

        db = db_from({"P/2/1": [(1, "z")], "N/2/1": [("c", "a")]})
        path = tmp_path / "db.json"
        save_database(db, path)
        assert main(["explain", "P(x | y), not N('c' | y)",
                     "--db", str(path)]) == 0
        assert "sampled" in capsys.readouterr().out


class TestRandomAcyclicSqlAgreement:
    def test_sql_path_on_random_acyclic_queries(self):
        """The SQL pipeline agrees with brute force on random acyclic
        queries — the compiled-SQL analogue of Theorem 4.3(2)."""
        from repro.core.classify import classify
        from repro.cqa.brute_force import is_certain_brute_force
        from repro.cqa.engine import CertaintyEngine
        from repro.workloads.generators import (
            QueryParams,
            random_query,
            random_small_database,
        )

        rng = random.Random(61)
        tested = 0
        while tested < 12:
            q = random_query(
                QueryParams(n_positive=2, n_negative=1, n_variables=3,
                            max_arity=2), rng)
            if not classify(q).in_fo:
                continue
            tested += 1
            engine = CertaintyEngine(q)
            for _ in range(5):
                db = random_small_database(q, rng, domain_size=2,
                                           facts_per_relation=3)
                assert engine.certain(db, "sql") == \
                    is_certain_brute_force(q, db), f"{q} on {db!r}"
