"""Unit tests for the relational plan IR, its executor, the formula
lowering, and the plan cache."""

from __future__ import annotations

import pytest

from repro.core.atoms import atom
from repro.core.terms import Constant, Variable
from repro.cqa.engine import CertaintyEngine
from repro.db.database import Database
from repro.fo.compile import (
    CompileError,
    PlanCache,
    compile_formula,
    standardize_apart,
)
from repro.fo.eval import Evaluator
from repro.fo.formula import (
    And,
    AtomF,
    Eq,
    Exists,
    FALSE,
    Forall,
    Not,
    Or,
    TRUE,
)
from repro.fo.plan import (
    AdomEq,
    AdomGuard,
    AdomProduct,
    AntiJoin,
    Difference,
    Executor,
    Join,
    Literal,
    Plan,
    PlanError,
    Project,
    Scan,
    Select,
    SemiJoin,
    Union,
    execute_plan,
    explain,
    plan_nodes,
)
from repro.workloads.queries import q3

from conftest import db_from

x, y, z = Variable("x"), Variable("y"), Variable("z")


def run(plan: Plan, db: Database, adom=None):
    if adom is None:
        adom = sorted(db.active_domain(), key=repr)
    return Executor(db, adom).run(plan)


class TestOperators:
    def test_scan_plain(self):
        db = db_from({"R/2/1": [(1, 2), (3, 4)]})
        plan = Scan(atom("R", [x], [y]))
        assert plan.cols == (x, y)
        assert run(plan, db) == {(1, 2), (3, 4)}

    def test_scan_constant_pushdown(self):
        db = db_from({"R/2/1": [(1, 2), (3, 4), (1, 5)]})
        plan = Scan(atom("R", [Constant(1)], [y]))
        assert plan.cols == (y,)
        assert run(plan, db) == {(2,), (5,)}

    def test_scan_repeated_variable(self):
        db = db_from({"R/2/1": [(1, 1), (1, 2), (3, 3)]})
        plan = Scan(atom("R", [x], [x]))
        assert plan.cols == (x,)
        assert run(plan, db) == {(1,), (3,)}

    def test_scan_unknown_relation_is_empty(self):
        db = db_from({"R/2/1": [(1, 2)]})
        assert run(Scan(atom("S", [x], [y])), db) == set()

    def test_literal(self):
        db = db_from({})
        assert run(Literal((), [()]), db) == {()}
        assert run(Literal((), []), db) == set()
        assert run(Literal((x,), [(7,)]), db) == {(7,)}

    def test_adom_product(self):
        db = db_from({"S/1/1": [(1,), (2,)]})
        assert run(AdomProduct((x,)), db) == {(1,), (2,)}
        assert run(AdomProduct((x, y)), db) == {
            (1, 1), (1, 2), (2, 1), (2, 2)
        }
        assert run(AdomProduct(()), db) == {()}

    def test_adom_guard(self):
        empty = db_from({"S/1/1": []})
        nonempty = db_from({"S/1/1": [(1,)]})
        assert run(AdomGuard(), empty) == set()
        assert run(AdomGuard(), nonempty) == {()}

    def test_adom_eq_is_diagonal(self):
        db = db_from({"S/1/1": [(1,), (2,)]})
        assert run(AdomEq(x, y), db) == {(1, 1), (2, 2)}
        with pytest.raises(PlanError):
            AdomEq(x, x)

    def test_select(self):
        db = db_from({"R/2/1": [(1, 1), (1, 2), (2, 2)]})
        scan = Scan(atom("R", [x], [y]))
        eq = Select(scan, [(("col", 0), ("col", 1), True)])
        neq = Select(scan, [(("col", 0), ("const", 1), False)])
        assert run(eq, db) == {(1, 1), (2, 2)}
        assert run(neq, db) == {(2, 2)}

    def test_project_reorders_and_dedupes(self):
        db = db_from({"R/2/1": [(1, 2), (1, 3)]})
        scan = Scan(atom("R", [x], [y]))
        assert run(Project(scan, (y, x)), db) == {(2, 1), (3, 1)}
        assert run(Project(scan, (x,)), db) == {(1,)}
        with pytest.raises(PlanError):
            Project(scan, (z,))

    def test_join_on_shared_column(self):
        db = db_from({"R/2/1": [(1, 2), (3, 4)], "S/2/1": [(2, 9), (5, 9)]})
        plan = Join(Scan(atom("R", [x], [y])), Scan(atom("S", [y], [z])))
        assert plan.cols == (x, y, z)
        assert run(plan, db) == {(1, 2, 9)}

    def test_join_without_shared_is_product(self):
        db = db_from({"R/1/1": [(1,), (2,)], "S/1/1": [(8,)]})
        plan = Join(Scan(atom("R", [x])), Scan(atom("S", [y])))
        assert run(plan, db) == {(1, 8), (2, 8)}

    def test_semi_and_anti_join(self):
        db = db_from({"R/2/1": [(1, 2), (3, 4)], "S/1/1": [(2,)]})
        left = Scan(atom("R", [x], [y]))
        right = Scan(atom("S", [y]))
        assert run(SemiJoin(left, right), db) == {(1, 2)}
        assert run(AntiJoin(left, right), db) == {(3, 4)}

    def test_union_and_difference(self):
        db = db_from({"R/1/1": [(1,), (2,)], "S/1/1": [(2,), (3,)]})
        r, s = Scan(atom("R", [x])), Scan(atom("S", [x]))
        assert run(Union([r, s]), db) == {(1,), (2,), (3,)}
        assert run(Difference(r, s), db) == {(1,)}
        with pytest.raises(PlanError):
            Union([r, Scan(atom("S", [y]))])
        with pytest.raises(PlanError):
            Difference(r, Scan(atom("S", [y])))

    def test_executor_memoizes_shared_subplans(self):
        db = db_from({"R/1/1": [(1,)]})
        shared = Project(Scan(atom("R", [x])), [x])
        plan = Union([shared, shared])
        ex = Executor(db, (1,))
        ex.run(plan)
        assert id(shared) in ex._memo

    def test_executor_memoizes_scans_structurally(self):
        # Same relation/pattern under different variable names is
        # materialized once: the rows do not depend on column names.
        db = db_from({"R/2/1": [(1, 2), (3, 4)]})
        a, b = Scan(atom("R", [x], [y])), Scan(atom("R", [y], [z]))
        ex = Executor(db, (1, 2, 3, 4))
        assert ex.run(a) == ex.run(b)
        assert sum(1 for k in ex._memo if isinstance(k, tuple)) == 1

    def test_explain_renders_every_node(self):
        plan = AntiJoin(Scan(atom("R", [x], [y])), Scan(atom("S", [y])))
        text = explain(plan)
        assert "AntiJoin on [y]" in text
        assert "Scan R(x, y)" in text
        assert len(text.splitlines()) == len(list(plan_nodes(plan)))


class TestCompile:
    def test_standardize_apart_renames_shadowed_binders(self):
        f = Exists((x,), And((AtomF(atom("R", [x])),
                              Exists((x,), AtomF(atom("S", [x]))))))
        renamed = standardize_apart(f)

        def binders(g):
            if isinstance(g, (Exists, Forall)):
                for v in g.vars:
                    yield v.name
                yield from binders(g.sub)
            elif isinstance(g, (And, Or)):
                for s in g.subs:
                    yield from binders(s)
            elif isinstance(g, Not):
                yield from binders(g.sub)
        names = list(binders(renamed))
        assert len(names) == len(set(names)) == 2

    def test_boolean_sentence(self):
        f = Exists((x, y), And((AtomF(atom("R", [x], [y])),
                                Not(AtomF(atom("S", [y]))))))
        db_true = db_from({"R/2/1": [(1, 2)], "S/1/1": []})
        db_false = db_from({"R/2/1": [(1, 2)], "S/1/1": [(2,)]})
        compiled = compile_formula(f)
        assert compiled.free == ()
        assert compiled.holds(db_true)
        assert not compiled.holds(db_false)

    def test_open_formula_returns_assignments(self):
        f = And((AtomF(atom("R", [x], [y])), Not(AtomF(atom("S", [y])))))
        db = db_from({"R/2/1": [(1, 2), (3, 4)], "S/1/1": [(4,)]})
        compiled = compile_formula(f, (y, x))
        assert compiled.free == (y, x)
        assert compiled.rows(db) == {(2, 1)}

    def test_free_superset_ranges_over_adom(self):
        f = AtomF(atom("R", [x]))
        db = db_from({"R/1/1": [(1,)], "S/1/1": [(2,)]})
        compiled = compile_formula(f, (x, y))
        assert compiled.rows(db) == {(1, 1), (1, 2)}

    def test_free_must_cover_and_be_distinct(self):
        f = AtomF(atom("R", [x], [y]))
        with pytest.raises(CompileError):
            compile_formula(f, (x,))
        with pytest.raises(CompileError):
            compile_formula(f, (x, x, y))

    def test_vacuous_exists_on_empty_domain(self):
        # exists x TRUE is false on an empty active domain.
        f = Exists((x,), TRUE)
        assert not compile_formula(f).holds(db_from({"S/1/1": []}))
        assert compile_formula(f).holds(db_from({"S/1/1": [(1,)]}))

    def test_vacuous_forall_on_empty_domain(self):
        # forall x FALSE is vacuously true on an empty active domain.
        f = Forall((x,), FALSE)
        assert compile_formula(f).holds(db_from({"S/1/1": []}))
        assert not compile_formula(f).holds(db_from({"S/1/1": [(1,)]}))

    def test_formula_constants_enter_the_domain(self):
        # exists x (x = 5) is true even on an empty database, because
        # the active domain includes the formula's constants.
        f = Exists((x,), Eq(x, Constant(5)))
        assert compile_formula(f).holds(db_from({"S/1/1": []}))

    def test_forall_guarded_division(self):
        # forall y (not R(x, y) or S(y)): every R-neighbour is in S.
        f = Forall((y,), Or((Not(AtomF(atom("R", [x], [y]))),
                             AtomF(atom("S", [y])))))
        db = db_from({"R/2/1": [(1, 2), (1, 3), (4, 2)], "S/1/1": [(2,)]})
        compiled = compile_formula(f, (x,))
        expected = {
            (v,) for v in db.active_domain()
            if Evaluator(f, db).evaluate({x: v})
        }
        assert compiled.rows(db) == expected

    def test_shadowed_quantifier_matches_evaluator(self):
        f = Exists((x,), And((AtomF(atom("R", [x])),
                              Exists((x,), AtomF(atom("S", [x]))))))
        for spec in (
            {"R/1/1": [(1,)], "S/1/1": [(2,)]},
            {"R/1/1": [(1,)], "S/1/1": []},
            {"R/1/1": [], "S/1/1": [(2,)]},
        ):
            db = db_from(spec)
            assert compile_formula(f).holds(db) == Evaluator(f, db).evaluate()

    def test_disequality_filter(self):
        f = And((AtomF(atom("R", [x], [y])), Not(Eq(x, y))))
        db = db_from({"R/2/1": [(1, 1), (1, 2)]})
        assert compile_formula(f, (x, y)).rows(db) == {(1, 2)}


class TestPlanCache:
    def _formula(self):
        return Exists((x, y), AtomF(atom("R", [x], [y])))

    def test_hit_and_miss_counters(self):
        cache = PlanCache(maxsize=4)
        db = db_from({"R/2/1": [(1, 2)]})
        f = self._formula()
        first = cache.get_or_compile(f, db)
        second = cache.get_or_compile(f, db)
        assert first is second
        assert cache.stats()["misses"] == 1
        assert cache.stats()["hits"] == 1

    def test_schema_change_invalidates(self):
        cache = PlanCache(maxsize=4)
        f = self._formula()
        cache.get_or_compile(f, db_from({"R/2/1": [(1, 2)]}))
        # Same relation name, different key: a different signature.
        cache.get_or_compile(f, db_from({"R/2/2": [(1, 2)]}))
        assert cache.stats()["misses"] == 2
        assert cache.stats()["hits"] == 0
        # Data changes without schema changes still hit.
        cache.get_or_compile(f, db_from({"R/2/1": [(3, 4), (5, 6)]}))
        assert cache.stats()["hits"] == 1

    def test_missing_relation_is_part_of_signature(self):
        cache = PlanCache(maxsize=4)
        f = self._formula()
        cache.get_or_compile(f, db_from({}))
        cache.get_or_compile(f, db_from({"R/2/1": []}))
        assert cache.stats()["misses"] == 2

    def test_lru_eviction(self):
        cache = PlanCache(maxsize=1)
        db = db_from({"R/2/1": [], "S/1/1": []})
        f1 = Exists((x, y), AtomF(atom("R", [x], [y])))
        f2 = Exists((x,), AtomF(atom("S", [x])))
        cache.get_or_compile(f1, db)
        cache.get_or_compile(f2, db)
        assert cache.stats()["evictions"] == 1
        assert len(cache) == 1
        # f1 was evicted: recompiling it is a miss again.
        cache.get_or_compile(f1, db)
        assert cache.stats()["misses"] == 3

    def test_clear_resets(self):
        cache = PlanCache(maxsize=4)
        db = db_from({"R/2/1": []})
        cache.get_or_compile(self._formula(), db)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["misses"] == 0

    def test_engine_stats_hook_observes_hits(self):
        engine = CertaintyEngine(q3())
        db = db_from({"P/2/1": [(1, "a")], "N/2/1": []})
        before = engine.metrics().plan_cache["hits"]
        engine.certain(db, "compiled")
        engine.certain(db, "compiled")
        after = engine.metrics().plan_cache["hits"]
        assert after >= before + 1


class TestProbe:
    """The executor's short-circuit mode: probe/nonempty answer
    emptiness questions without materializing intermediate results."""

    def _db(self):
        return db_from({
            "R/2/1": [(i, i + 1) for i in range(50)],
            "S/2/1": [(i, i + 1) for i in range(0, 50, 2)],
        })

    def test_probe_matches_materialized_membership(self):
        db = self._db()
        plan = Scan(atom("R", [x], [y]))
        ex = Executor(db, sorted(db.active_domain(), key=repr))
        assert ex.probe(plan, {x: 4, y: 5})
        assert not ex.probe(plan, {x: 4, y: 6})
        assert ex.probe(plan, {}) == bool(ex.run(plan))

    def test_probe_does_not_materialize(self):
        db = self._db()
        plan = Difference(Scan(atom("R", [x], [y])),
                          Scan(atom("S", [x], [y])))
        ex = Executor(db, sorted(db.active_domain(), key=repr))
        assert ex.nonempty(plan)
        assert id(plan) not in ex._memo  # answered lazily, never ran

    def test_nonempty_reuses_materialized_runs(self):
        db = self._db()
        plan = Project(Scan(atom("R", [x], [y])), (x,))
        ex = Executor(db, sorted(db.active_domain(), key=repr))
        ex.run(plan)
        assert id(plan) in ex._memo  # Scans memoize structurally, Projects by id
        assert ex.nonempty(plan)

    @pytest.mark.parametrize("rows,expected", [
        ([(1, 2)], True),
        ([], False),
    ])
    def test_execute_plan_nonempty_sentence(self, rows, expected):
        from repro.fo.plan import execute_plan_nonempty

        db = db_from({"R/2/1": rows})
        plan = Project(Scan(atom("R", [x], [y])), ())
        assert execute_plan_nonempty(plan, db, ()) is expected

    def test_probe_through_joins_and_antijoins(self):
        db = self._db()
        joined = Join(Scan(atom("R", [x], [y])), Scan(atom("S", [y], [z])))
        ex = Executor(db, sorted(db.active_domain(), key=repr))
        reference = ex2 = Executor(db, sorted(db.active_domain(), key=repr))
        rows = reference.run(joined)
        for binding in ({x: 1, y: 2}, {x: 1, y: 3}, {z: 3}, {}):
            want = any(
                all(row[joined.cols.index(c)] == v for c, v in binding.items())
                for row in rows
            )
            assert ex.probe(joined, binding) == want, binding
        anti = AntiJoin(Scan(atom("R", [x], [y])), Scan(atom("S", [x], [y])))
        anti_rows = reference.run(anti)
        assert ex.probe(anti, {x: 1}) == any(r[0] == 1 for r in anti_rows)
        assert ex.probe(anti, {x: 2}) == any(r[0] == 2 for r in anti_rows)
