"""Concurrent access through `repro serve`: one writer, many readers.

The server serializes fact batches behind a write-preferring RW lock
while queries and view reads share the database.  These tests hammer a
single store-backed server with overlapping reader threads and a
batch writer and assert the three invariants the lock exists for:

- **clock monotonicity** — the ``clock`` each response reports never
  goes backwards on one connection;
- **untorn batches** — every batch inserts ``A(k,k)`` and ``B(k,k)``
  together, so the certain answers of ``A(x | y), not B(x | y)`` are
  empty at every instant a read can observe; any nonempty answer set
  is a torn batch made visible;
- **composable change windows** — folding successive
  ``changed_since`` diffs from long-polls reproduces exactly the final
  answer set (same canonical digest) a fresh query reports.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.core.atoms import RelationSchema
from repro.serve import answers_digest
from repro.serve.app import _RWLock
from repro.storage import PersistentDatabase

from test_serve import ServerHandle, check_shape

TEARS_QUERY = "A(x | y), not B(x | y)"
GROWTH_QUERY = "A(x | y)"
BATCHES = 30
READERS = 4


class TestRWLock:
    def test_readers_share(self):
        async def scenario():
            lock = _RWLock()
            order = []

            async def reader(i):
                async with lock.read_locked():
                    order.append(f"r{i}-in")
                    await asyncio.sleep(0.02)
                    order.append(f"r{i}-out")

            await asyncio.gather(reader(1), reader(2))
            return order

        order = asyncio.run(scenario())
        # both readers were inside simultaneously
        assert order[:2] == ["r1-in", "r2-in"]

    def test_writer_excludes_readers(self):
        async def scenario():
            lock = _RWLock()
            order = []

            async def writer():
                async with lock.write_locked():
                    order.append("w-in")
                    await asyncio.sleep(0.02)
                    order.append("w-out")

            async def reader():
                await asyncio.sleep(0.005)  # arrive while writer holds
                async with lock.read_locked():
                    order.append("r-in")

            await asyncio.gather(writer(), reader())
            return order

        assert asyncio.run(scenario()) == ["w-in", "w-out", "r-in"]

    def test_waiting_writer_blocks_new_readers(self):
        async def scenario():
            lock = _RWLock()
            order = []

            async def long_reader():
                async with lock.read_locked():
                    order.append("r1-in")
                    await asyncio.sleep(0.03)

            async def writer():
                await asyncio.sleep(0.005)
                async with lock.write_locked():
                    order.append("w-in")

            async def late_reader():
                await asyncio.sleep(0.015)  # after the writer queued
                async with lock.read_locked():
                    order.append("r2-in")

            await asyncio.gather(long_reader(), writer(), late_reader())
            return order

        # write preference: the queued writer runs before the late reader
        assert asyncio.run(scenario()) == ["r1-in", "w-in", "r2-in"]


@pytest.fixture
def store_server(tmp_path):
    db = PersistentDatabase(tmp_path / "store")
    db.add_relation(RelationSchema("A", 2, 1))
    db.add_relation(RelationSchema("B", 2, 1))
    with ServerHandle(db, jobs=2) as handle:
        yield handle


def _writer(handle, errors):
    try:
        for i in range(BATCHES):
            status, body = handle.post("/v1/facts", {"ops": [
                {"op": "+", "relation": "A", "row": [f"k{i}", f"k{i}"]},
                {"op": "+", "relation": "B", "row": [f"k{i}", f"k{i}"]},
            ]})
            assert status == 200, body
    except Exception as exc:  # pragma: no cover - surfaced via errors
        errors.append(f"writer: {exc!r}")


def _tear_detector(handle, stop, errors):
    """Queries must never observe half a batch."""
    conn = handle.connection()
    last_clock = -1
    try:
        while not stop.is_set():
            status, body = handle.request(
                "POST", "/v1/answers",
                {"query": TEARS_QUERY, "free": ["x"]}, conn=conn)
            assert status == 200, body
            if body["answers"]:
                errors.append(f"torn batch visible: {body['answers']}")
                return
            if body["clock"] < last_clock:
                errors.append(
                    f"clock went backwards: {last_clock} -> {body['clock']}")
                return
            last_clock = body["clock"]
    except Exception as exc:  # pragma: no cover
        errors.append(f"reader: {exc!r}")
    finally:
        conn.close()


def test_readers_never_observe_torn_batches(store_server):
    errors, stop = [], threading.Event()
    readers = [threading.Thread(target=_tear_detector,
                                args=(store_server, stop, errors))
               for _ in range(READERS)]
    writer = threading.Thread(target=_writer, args=(store_server, errors))
    for t in readers:
        t.start()
    writer.start()
    writer.join(120)
    stop.set()
    for t in readers:
        t.join(30)
    assert not writer.is_alive() and not any(t.is_alive() for t in readers)
    assert errors == []
    # all batches landed
    status, body = store_server.get("/v1/healthz")
    assert body["facts"] == 2 * BATCHES


def test_long_poll_windows_compose_to_final_answers(store_server):
    status, body = store_server.post("/v1/views", {
        "name": "growth", "query": GROWTH_QUERY, "free": ["x"]})
    assert status == 200, body
    version = body["version"]

    errors = []
    local = set()
    done = threading.Event()

    def poller():
        nonlocal version
        try:
            while True:  # exits once the writer is done and a window drains
                status, body = store_server.get(
                    f"/v1/views/growth/changes?since={version}&wait=1")
                assert status == 200, body
                check_shape(body, "changes_response")
                assert body["version"] >= version
                for row in body["deleted"]:
                    local.discard(tuple(row))
                for row in body["inserted"]:
                    local.add(tuple(row))
                version = body["version"]
                if done.is_set() and body["timed_out"]:
                    return  # drained: no change since the last window
        except Exception as exc:  # pragma: no cover
            errors.append(f"poller: {exc!r}")

    thread = threading.Thread(target=poller)
    thread.start()
    _writer(store_server, errors)
    done.set()
    thread.join(60)
    assert not thread.is_alive()
    assert errors == []

    status, final = store_server.post(
        "/v1/answers", {"query": GROWTH_QUERY, "free": ["x"]})
    assert status == 200
    assert answers_digest(local) == final["digest"]
    assert len(local) == final["count"] == BATCHES


def test_stale_long_poll_window_is_refused(tmp_path):
    db = PersistentDatabase(tmp_path / "store")
    db.add_relation(RelationSchema("A", 2, 1))
    db.add_relation(RelationSchema("B", 2, 1))
    with ServerHandle(db, history_limit=2) as handle:
        status, body = handle.post("/v1/views", {
            "name": "tiny", "query": GROWTH_QUERY, "free": ["x"]})
        first_version = body["version"]
        for i in range(6):  # exceed history_limit so early windows trim
            handle.post("/v1/facts", {"ops": [
                {"op": "+", "relation": "A", "row": [f"k{i}", f"k{i}"]}]})
        status, body = handle.get(
            f"/v1/views/tiny/changes?since={first_version}")
        assert status == 409
        assert body["error"]["code"] == "stale-version"
        assert body["error"]["version"] > first_version
