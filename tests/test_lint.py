"""Tests for the query linter (repro.lint): every rule code positive and
negative, JSON golden output, CLI exit codes, and engine integration."""

import json

import pytest

from repro.core.parser import ParseError, parse_query
from repro.core.spans import SourceText, Span
from repro.lint import (
    RULES,
    Diagnostic,
    LintError,
    Severity,
    lint_query,
    lint_text,
    require_clean,
)
from repro.cli import main
from repro.cqa.rewriting import NotInFO, consistent_rewriting


def codes(result):
    return [d.code for d in result.diagnostics]


def diag(result, code):
    matching = [d for d in result.diagnostics if d.code == code]
    assert matching, f"no {code} in {codes(result)}"
    return matching[0]


class TestRegistry:
    def test_all_codes_catalogued(self):
        expected = {f"QL{i:03d}" for i in range(11)}
        assert set(RULES) == expected

    def test_every_rule_has_citation_and_summary(self):
        for info in RULES.values():
            assert info.summary
            assert info.citation
            assert info.name


class TestQL000Syntax:
    def test_fires_on_garbage(self):
        result = lint_text("R(x | y) @ S(y | x)")
        d = diag(result, "QL000")
        assert d.severity is Severity.ERROR
        assert result.has_errors
        assert result.source.text[d.span.start:d.span.end] == "@"

    def test_silent_on_wellformed(self):
        assert "QL000" not in codes(lint_text("R(x | y), not S(y | x)"))


class TestQL001SelfJoin:
    def test_fires_on_distinct_atoms_same_relation(self):
        result = lint_text("R(x | y), R(y | x)")
        d = diag(result, "QL001")
        assert d.severity is Severity.ERROR
        # span points at the second occurrence
        assert result.source.text[d.span.start:d.span.end] == "R(y | x)"

    def test_silent_on_self_join_free(self):
        assert "QL001" not in codes(lint_text("R(x | y), S(y | x)"))

    def test_exact_duplicate_reported_as_ql009_instead(self):
        result = lint_text("R(x | y), R(x | y)")
        assert "QL001" not in codes(result)
        assert "QL009" in codes(result)


class TestQL002WeakGuardedness:
    def test_fires_and_span_points_at_negated_atom(self):
        result = lint_text("P(x | y), not N(z | y)")
        d = diag(result, "QL002")
        assert d.severity is Severity.ERROR
        assert result.source.text[d.span.start:d.span.end] == "N(z | y)"
        assert "weakly guarded" in d.message

    def test_fires_on_unguarded_diseq(self):
        # y and z never co-occur positively
        result = lint_text("R(x | y), S(x | z), (y, z) != (1, 2)")
        d = diag(result, "QL002")
        assert "disequality" in d.message

    def test_silent_on_guarded_query(self):
        result = lint_text("Likes(p, t), not Lives(p | t), not Mayor(t | p)")
        assert "QL002" not in codes(result)

    def test_silent_on_weakly_guarded_via_two_atoms(self):
        # vars of N pairwise co-occur positively even though no single
        # positive atom contains them all
        result = lint_text("R(x | y), S(y | z), T(x, z), not N(x, y, z)")
        assert "QL002" not in codes(result)


class TestQL003Safety:
    def test_fires_with_span_on_the_variable(self):
        result = lint_text("P(x | y), not N(z | y)")
        d = diag(result, "QL003")
        assert d.severity is Severity.ERROR
        assert result.source.text[d.span.start:d.span.end] == "z"

    def test_fires_on_diseq_only_variable(self):
        result = lint_text("P(x | y), x != w")
        d = diag(result, "QL003")
        assert "'w'" in d.message

    def test_silent_on_safe_query(self):
        assert "QL003" not in codes(lint_text("P(x | y), not N(y | x)"))


class TestQL004AttackCycle:
    def test_fires_on_paper_q1_with_witness(self):
        result = lint_text("R(x | y), not S(y | x)")
        d = diag(result, "QL004")
        assert d.severity is Severity.ERROR
        assert "R ~> S ~> R" in d.message or "S ~> R ~> S" in d.message
        assert "Lemma 5.6" in d.message  # one negated atom on the 2-cycle

    def test_silent_on_acyclic(self):
        assert "QL004" not in codes(lint_text("P(x | y), not N('c' | y)"))

    def test_downgraded_to_warning_outside_dichotomy(self):
        # cyclic but not weakly guarded and no 2-cycle hardness lemma:
        # Theorem 4.3 does not apply, so the cycle is only a warning
        result = lint_text(
            "R(x | y), S(y | z), T(z | x), not N(x, y, z)"
        )
        if "QL004" in codes(result):
            assert diag(result, "QL004").severity in (
                Severity.ERROR, Severity.WARNING
            )


class TestQL005VariableFreeKey:
    def test_fires_on_constant_key(self):
        result = lint_text("P(x | y), not N('c' | y)")
        d = diag(result, "QL005")
        assert d.severity is Severity.INFO
        assert "Lemma 6.5/6.6" in d.message

    def test_ground_negated_atom_cites_lemma_6_2(self):
        result = lint_text("P(x | y), not N('c' | 'd')")
        assert "Lemma 6.2" in diag(result, "QL005").message

    def test_silent_when_key_has_variables(self):
        assert "QL005" not in codes(lint_text("P(x | y), not N(y | x)"))


class TestQL006Reifiable:
    def test_fires_on_unattacked_key(self):
        result = lint_text("R(x | y), S(x | y)")
        d = diag(result, "QL006")
        assert d.severity is Severity.HINT
        assert "Corollary 6.9" in d.message

    def test_silent_when_key_attacked(self):
        # in q1 both keys are attacked (the 2-cycle)
        assert "QL006" not in codes(lint_text("R(x | y), not S(y | x)"))


class TestQL007UnusedVariable:
    def test_fires_on_singleton_variable(self):
        result = lint_text("R(x | y), S(y | w)")
        messages = [d.message for d in result.diagnostics if d.code == "QL007"]
        assert any("'w'" in m for m in messages)
        assert any("'x'" in m for m in messages)

    def test_silent_on_joined_variables(self):
        assert "QL007" not in codes(lint_text("R(x | y), S(y | x)"))


class TestQL008ConstantOnly:
    def test_fires_on_fact_atom(self):
        result = lint_text("R(x | y), T('a' | 'b')")
        d = diag(result, "QL008")
        assert d.severity is Severity.INFO

    def test_silent_with_variables(self):
        assert "QL008" not in codes(lint_text("R(x | y), T('a' | y)"))


class TestQL009Duplicates:
    def test_fires_on_duplicate_literal_as_error(self):
        result = lint_text("R(x | y), R(x | y)")
        assert diag(result, "QL009").severity is Severity.ERROR

    def test_duplicate_diseq_is_warning_only(self):
        result = lint_text("R(x | y), x != 1, x != 1")
        d = diag(result, "QL009")
        assert d.severity is Severity.WARNING
        assert not result.has_errors

    def test_silent_without_duplicates(self):
        assert "QL009" not in codes(lint_text("R(x | y), not S(y | x)"))


class TestQL010EmptyKey:
    def test_fires_with_recovery(self):
        result = lint_text("R(| x), S(x | y)")
        d = diag(result, "QL010")
        assert d.severity is Severity.ERROR
        assert result.source.text[d.span.start:d.span.end] == "R(| x)"

    def test_fires_on_no_terms_at_all(self):
        assert "QL010" in codes(lint_text("T(), S(x | y)"))

    def test_silent_on_keyed_atoms(self):
        assert "QL010" not in codes(lint_text("R(x | y), S(x)"))

    def test_strict_parser_still_raises(self):
        with pytest.raises(ParseError):
            parse_query("R(| x), S(x | y)")


class TestLintQueryObjects:
    """lint_query: the span-less path used by the CQA engine."""

    def test_same_codes_as_text_path(self):
        text = "R(x | y), not S(y | x)"
        from_text = {d.code for d in lint_text(text).errors}
        from_query = {d.code for d in lint_query(parse_query(text)).errors}
        assert from_text == from_query == {"QL004"}

    def test_spans_are_none(self):
        result = lint_query(parse_query("R(x | y), not S(y | x)"))
        assert all(d.span is None for d in result.diagnostics)

    def test_require_clean_raises_with_codes(self):
        with pytest.raises(LintError) as excinfo:
            require_clean(parse_query("R(x | y), not S(y | x)"))
        assert "QL004" in str(excinfo.value)

    def test_require_clean_passes_acyclic(self):
        result = require_clean(parse_query("P(x | y), not N('c' | y)"))
        assert result.ok


class TestEngineIntegration:
    def test_rewriter_notinfo_carries_diagnostics(self):
        with pytest.raises(NotInFO) as excinfo:
            consistent_rewriting(parse_query("R(x | y), not S(y | x)"))
        assert "QL004" in str(excinfo.value)
        assert [d.code for d in excinfo.value.diagnostics] == ["QL004"]

    def test_engine_fails_fast_with_code(self):
        from repro.cqa.engine import CertaintyEngine
        from repro.db.database import Database

        engine = CertaintyEngine(parse_query("R(x | y), not S(y | x)"))
        with pytest.raises(NotInFO) as excinfo:
            engine.certain(Database(), "sql")
        assert "QL004" in str(excinfo.value)


class TestJsonGolden:
    def test_unguarded_negation_json_payload(self):
        result = lint_text("P(x | y), not N(z | y)")
        payload = json.loads(result.to_json())
        assert payload["ok"] is False
        assert payload["summary"]["error"] == 2
        by_code = {d["code"]: d for d in payload["diagnostics"]}
        ql002 = by_code["QL002"]
        assert ql002["severity"] == "error"
        # the span points exactly at the negated atom
        assert "P(x | y), not N(z | y)"[
            ql002["span"]["start"]:ql002["span"]["end"]
        ] == "N(z | y)"
        ql003 = by_code["QL003"]
        assert "P(x | y), not N(z | y)"[
            ql003["span"]["start"]:ql003["span"]["end"]
        ] == "z"

    def test_clean_query_json(self):
        result = lint_text("R(x | y), not S(y | 'c')")
        payload = json.loads(result.to_json())
        assert payload["ok"] is True
        assert payload["summary"]["error"] == 0


class TestCli:
    def test_clean_query_exits_zero(self, capsys):
        assert main(["lint", "P(x | y), not N('c' | y)"]) == 0
        out = capsys.readouterr().out
        assert "error[" not in out

    def test_unguarded_exits_one_with_ql002_text(self, capsys):
        assert main(["lint", "P(x | y), not N(z | y)"]) == 1
        out = capsys.readouterr().out
        assert "error[QL002]" in out
        assert "N(z | y)" in out
        assert "^^^^^^^^" in out  # caret underline of the negated atom

    def test_unguarded_exits_one_with_ql002_json(self, capsys):
        assert main(["lint", "P(x | y), not N(z | y)", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert any(d["code"] == "QL002" for d in payload["diagnostics"])

    def test_syntax_error_exits_one(self, capsys):
        assert main(["lint", "R(x |"]) == 1
        assert "QL000" in capsys.readouterr().out

    def test_certain_with_cyclic_query_prints_code(self, capsys, tmp_path):
        from repro.db.io import save_database
        from repro.db.database import Database

        path = tmp_path / "empty.json"
        save_database(Database(), path)
        code = main(["certain", "R(x | y), not S(y | x)",
                     "--db", str(path), "--method", "rewriting"])
        assert code == 1
        err = capsys.readouterr().err
        assert "QL004" in err
        assert "Traceback" not in err


class TestParserPositions:
    def test_parse_error_reports_line_and_column(self):
        with pytest.raises(ParseError) as excinfo:
            parse_query("R(x | y),\nnot S(y | @)")
        exc = excinfo.value
        assert exc.line == 2
        assert exc.column == 11
        assert "line 2, column 11" in str(exc)

    def test_parse_error_includes_excerpt(self):
        with pytest.raises(ParseError) as excinfo:
            parse_query("R(x | y) @ S(y | x)")
        assert "@" in str(excinfo.value)
        pretty = excinfo.value.pretty()
        assert "^" in pretty

    def test_source_text_positions(self):
        source = SourceText("ab\ncd")
        assert source.position(0) == (1, 1)
        assert source.position(3) == (2, 1)
        assert source.position(4) == (2, 2)

    def test_span_validation(self):
        with pytest.raises(ValueError):
            Span(3, 1)

    def test_spans_survive_multiline_queries(self):
        result = lint_text("P(x | y),\n  not N(z | y)")
        d = diag(result, "QL002")
        assert result.source.text[d.span.start:d.span.end] == "N(z | y)"
        line, column = result.source.position(d.span.start)
        assert (line, column) == (2, 7)


class TestDiagnosticRendering:
    def test_render_without_source(self):
        d = Diagnostic("QL001", Severity.ERROR, "boom")
        assert d.render() == "error[QL001]: boom"
        assert d.one_line() == "error[QL001]: boom"

    def test_one_line_with_source(self):
        result = lint_text("P(x | y), not N(z | y)")
        line = diag(result, "QL002").one_line(result.source)
        assert line.startswith("error[QL002] at line 1, column 15:")


class TestDedupeAndOrder:
    def test_identical_diagnostics_collapse(self):
        from repro.lint import dedupe_diagnostics

        d = Diagnostic("QL001", Severity.ERROR, "boom", span=Span(0, 3))
        other = Diagnostic("QL001", Severity.ERROR, "boom", span=Span(0, 3))
        kept = dedupe_diagnostics([d, other, d])
        assert kept == [d]

    def test_same_code_different_span_or_message_survive(self):
        from repro.lint import dedupe_diagnostics

        a = Diagnostic("QL007", Severity.WARNING, "unused x", span=Span(0, 1))
        b = Diagnostic("QL007", Severity.WARNING, "unused x", span=Span(4, 5))
        c = Diagnostic("QL007", Severity.WARNING, "unused y", span=Span(4, 5))
        assert dedupe_diagnostics([a, b, c, a, b]) == [a, b, c]

    def test_sorted_by_span_then_severity_then_code(self):
        from repro.lint import dedupe_diagnostics

        late = Diagnostic("QL001", Severity.ERROR, "late", span=Span(9, 10))
        early_warn = Diagnostic(
            "QL007", Severity.WARNING, "warn", span=Span(0, 1)
        )
        early_err = Diagnostic(
            "QL002", Severity.ERROR, "err", span=Span(0, 1)
        )
        spanless = Diagnostic("QP101", Severity.INFO, "info")
        kept = dedupe_diagnostics([spanless, late, early_warn, early_err])
        assert kept == [early_err, early_warn, late, spanless]

    def test_lint_results_arrive_deduped(self):
        result = lint_text("P(x | y), not N(z | y)")
        keys = [(d.code, d.span, d.message) for d in result.diagnostics]
        assert len(keys) == len(set(keys))
