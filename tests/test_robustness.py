"""Edge-case robustness: empty databases, unicode values, arity-1
relations, huge tuples, mixed value types, repeated operations."""


from repro.core.atoms import RelationSchema, atom
from repro.core.parser import parse_query
from repro.core.query import Query
from repro.core.terms import Variable
from repro.cqa.engine import CertaintyEngine
from repro.db.database import Database
from repro.workloads.queries import q3

from conftest import db_from

x, y = Variable("x"), Variable("y")


class TestEmptyEverything:
    def test_engine_on_empty_database(self):
        engine = CertaintyEngine(q3())
        db = Database()
        cv_results = {
            "brute": engine.certain(db, "brute"),
            "interpreted": engine.certain(db, "interpreted"),
            "rewriting": engine.certain(db, "rewriting"),
            "sql": engine.certain(db, "sql"),
        }
        assert set(cv_results.values()) == {False}

    def test_empty_query_on_empty_database(self):
        engine = CertaintyEngine(Query())
        assert engine.certain(Database(), "brute")
        assert engine.certain(Database(), "rewriting")

    def test_registered_but_empty_relations(self):
        engine = CertaintyEngine(q3())
        db = db_from({"P/2/1": [], "N/2/1": []})
        assert engine.cross_validate(db).consistent


class TestUnicodeAndMixedValues:
    def test_unicode_values_through_sql(self):
        engine = CertaintyEngine(q3())
        db = db_from({"P/2/1": [("κλειδί", "τιμή"), ("ключ", "значение")],
                      "N/2/1": [("c", "τιμή")]})
        assert engine.cross_validate(db).consistent

    def test_quotes_and_separators_in_values(self):
        engine = CertaintyEngine(q3())
        db = db_from({"P/2/1": [("it's", "a|b"), ("x,y", "z%25")],
                      "N/2/1": [("c", "a|b")]})
        assert engine.cross_validate(db).consistent

    def test_mixed_int_str_bool_values(self):
        engine = CertaintyEngine(q3())
        db = db_from({"P/2/1": [(1, "1"), (True, False), ("k", 0)],
                      "N/2/1": [("c", "1"), ("c", True)]})
        assert engine.cross_validate(db).consistent

    def test_deeply_nested_tuple_values(self):
        deep = ("a", ("b", ("c", ("d", 1))))
        engine = CertaintyEngine(q3())
        db = db_from({"P/2/1": [(deep, deep)], "N/2/1": [("c", deep)]})
        assert engine.cross_validate(db).consistent


class TestShapes:
    def test_unary_relations_everywhere(self, rng):
        q = Query([atom("A", [x])], [atom("B", [x])])
        engine = CertaintyEngine(q)
        for _ in range(10):
            db = Database([RelationSchema("A", 1, 1),
                           RelationSchema("B", 1, 1)])
            for _ in range(rng.randint(0, 4)):
                db.add("A", (rng.randint(0, 2),))
            for _ in range(rng.randint(0, 4)):
                db.add("B", (rng.randint(0, 2),))
            assert engine.cross_validate(db).consistent

    def test_wide_relation(self):
        terms = [Variable(f"v{i}") for i in range(8)]
        q = Query([atom("Wide", terms[:2], terms[2:])])
        engine = CertaintyEngine(q)
        db = Database([RelationSchema("Wide", 8, 2)])
        db.add("Wide", tuple(range(8)))
        db.add("Wide", (0, 1) + tuple(range(10, 16)))
        assert engine.cross_validate(db).consistent

    def test_many_blocks_single_relation(self):
        q = parse_query("R(x | y), not N(x | y)")
        engine = CertaintyEngine(q)
        db = Database([RelationSchema("R", 2, 1), RelationSchema("N", 2, 1)])
        for i in range(200):
            db.add("R", (i, i % 7))
        assert engine.certain(db, "sql") == engine.certain(db, "rewriting")

    def test_repeated_engine_calls_stable(self, rng):
        engine = CertaintyEngine(q3())
        db = db_from({"P/2/1": [(1, "a"), (1, "b")], "N/2/1": [("c", "a")]})
        answers = {engine.certain(db, "sql") for _ in range(5)}
        assert len(answers) == 1

    def test_mutating_database_between_calls(self):
        engine = CertaintyEngine(q3())
        db = db_from({"P/2/1": [(1, "z")], "N/2/1": [("c", "a")]})
        assert engine.certain(db, "rewriting")
        db.add("P", (1, "a"))
        # Block 1 can now land on the blocked value.
        assert not engine.certain(db, "rewriting")
        db.discard("P", (1, "a"))
        assert engine.certain(db, "rewriting")


class TestSqlInjectionSafety:
    def test_malicious_values_are_inert(self):
        engine = CertaintyEngine(q3())
        evil = "'; DROP TABLE \"P\"; --"
        db = db_from({"P/2/1": [(evil, evil)], "N/2/1": [("c", evil)]})
        # If the literal escaping were broken this would error or lie.
        assert engine.cross_validate(db).consistent

    def test_malicious_relation_name(self):
        name = 'P"; DROP TABLE x; --'
        q = Query([atom(name, [x], [y])])
        engine = CertaintyEngine(q)
        db = Database([RelationSchema(name, 2, 1)])
        db.add(name, (1, 2))
        assert engine.certain(db, "sql")
