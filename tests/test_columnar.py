"""The columnar backend: dictionary encoding, the vector executor,
store invalidation under update streams, parallel marshaling, routing,
and the `repro plan --columnar` surface.

The tuple :class:`repro.fo.plan.Executor` is the oracle throughout:
every batch operator is checked against the row-at-a-time result on
the same plan, and the hypothesis suite cross-validates whole compiled
queries on random databases.
"""

from __future__ import annotations

import json
import random
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import db_from
from repro.cli import main
from repro.columnar import (
    ColumnarRelation,
    ValueDictionary,
    VectorExecutor,
    columnar_holds,
    columnar_rows,
    columnar_stats,
    columnar_store,
    fuse,
    prefer_columnar,
)
from repro.core.atoms import atom
from repro.core.terms import Constant, Variable
from repro.cqa.certain_answers import (
    OpenQuery,
    _guarded_open_rewriting,
    certain_answers,
)
from repro.db.database import Database
from repro.db.io import save_database
from repro.fo.compile import plan_cache
from repro.fo.plan import (
    AdomGuard,
    AdomProduct,
    AntiJoin,
    Difference,
    Executor,
    Join,
    Literal,
    Project,
    Scan,
    Select,
    SemiJoin,
    Union,
)
from repro.obs.profile import PlanProfile
from repro.obs.schema import validate
from repro.parallel import pool as pool_mod
from repro.workloads.poll import random_poll_database
from repro.workloads.queries import poll_q1, poll_qa, poll_qb

x, y, z = Variable("x"), Variable("y"), Variable("z")
p, t = Variable("p"), Variable("t")

TRACE_SCHEMA = json.loads(
    (Path(__file__).resolve().parent.parent
     / "docs" / "trace.schema.json").read_text()
)


def vrun(plan, db, constants=(), profile=None):
    """Execute a plan on the vectorized backend, decoded to rows."""
    executor = VectorExecutor(db, constants, profile=profile)
    return executor.run(plan).to_rows(executor.store.dictionary)


def rrun(plan, db, constants=()):
    """The tuple-executor oracle for the same plan."""
    return Executor(db, None, constants).run(plan)


def both(plan, db):
    got, want = vrun(plan, db), rrun(plan, db)
    assert got == want, f"columnar {sorted(got, key=repr)} != " \
                        f"row {sorted(want, key=repr)}"
    return got


# ----------------------------------------------------------------------
# dictionary and relation representation
# ----------------------------------------------------------------------


class TestValueDictionary:
    def test_dense_first_seen_codes(self):
        d = ValueDictionary()
        assert d.encode("a") == 0
        assert d.encode("b") == 1
        assert d.encode("a") == 0
        assert len(d) == 2
        assert d.decode(1) == "b"
        assert d.values == ["a", "b"]

    def test_code_of_without_assignment(self):
        d = ValueDictionary()
        d.encode("a")
        assert d.code_of("a") == 0
        assert d.code_of("never-seen") is None
        assert len(d) == 1

    def test_encode_many(self):
        d = ValueDictionary()
        d.encode_many(["a", "b", "a", 3])
        assert len(d) == 3 and d.code_of(3) == 2


class TestColumnarRelation:
    def test_round_trip(self):
        d = ValueDictionary()
        rows = {(1, "a"), (2, "b"), (1, "c")}
        rel = ColumnarRelation.from_rows((x, y), rows, d)
        assert len(rel) == 3 and rel.width == 2
        assert rel.to_rows(d) == rows

    def test_zero_width(self):
        d = ValueDictionary()
        assert ColumnarRelation.from_rows((), {()}, d).to_rows(d) == {()}
        assert ColumnarRelation.empty(()).to_rows(d) == set()

    def test_memoryviews_are_zero_copy(self):
        d = ValueDictionary()
        rel = ColumnarRelation.from_rows((x,), {(10,), (20,)}, d)
        (view,) = rel.memoryviews()
        assert view.obj is rel.columns[0]
        assert sorted(view.tolist()) == sorted(rel.columns[0].tolist())

    def test_fuse_injective_below_base(self):
        d = ValueDictionary()
        rows = {(a, b) for a in range(17) for b in range(13)}
        rel = ColumnarRelation.from_rows((x, y), rows, d)
        keys = fuse(rel.columns, (0, 1), rel.length, len(d))
        assert len(set(keys)) == len(rows)

    def test_fuse_nullary(self):
        assert fuse((), (), 4, 10) == [0, 0, 0, 0]


# ----------------------------------------------------------------------
# store invalidation (the satellite-1 regression: update streams and
# discard_all must never serve stale encoded columns)
# ----------------------------------------------------------------------


class TestStoreInvalidation:
    def test_update_stream_refreshes_encoded_columns(self):
        db = db_from({"R/2/1": [(1, "a"), (2, "b")]})
        store = columnar_store(db)
        columns, n = store.encoded(db, "R")
        assert n == 2
        code_a = store.dictionary.code_of("a")
        # An incremental update stream: inserts and deletes, some in
        # explicit batches, each bumping the relation version.
        db.add("R", (3, "c"))
        columns, n = store.encoded(db, "R")
        assert n == 3
        db.discard("R", (1, "a"))
        db.begin_batch()
        db.add("R", (4, "d"))
        db.add("R", (5, "e"))
        db.commit()
        columns, n = store.encoded(db, "R")
        assert n == 4
        decoded = {
            tuple(store.dictionary.decode(col[i]) for col in columns)
            for i in range(n)
        }
        assert decoded == {(2, "b"), (3, "c"), (4, "d"), (5, "e")}
        # Append-only dictionary: the deleted value keeps its code.
        assert store.dictionary.code_of("a") == code_a

    def test_discard_all_invalidates(self):
        db = db_from({"R/2/1": [(1, "a"), (2, "b"), (3, "c")]})
        store = columnar_store(db)
        _, n = store.encoded(db, "R")
        assert n == 3
        db.discard_all("R", [(1, "a"), (3, "c")])
        _, n = store.encoded(db, "R")
        assert n == 1

    def test_scan_cache_follows_relation_version(self):
        db = db_from({"R/2/1": [(1, "a"), (1, "b"), (2, "a")]})
        plan = Scan(atom("R", [Constant(1)], [y]))
        before = vrun(plan, db)
        assert before == {("a",), ("b",)}
        db.add("R", (1, "c"))
        assert vrun(plan, db) == {("a",), ("b",), ("c",)}
        db.discard_all("R", [(1, "a"), (1, "b"), (1, "c")])
        assert vrun(plan, db) == set()

    def test_whole_query_tracks_update_stream(self):
        # End-to-end regression: method=columnar across a mutation
        # stream always matches method=compiled on the same database.
        db = random_poll_database(8, 3, conflict_rate=0.5,
                                  rng=random.Random(11))
        oq = OpenQuery(poll_qa(), [p])
        rng = random.Random(7)
        for step in range(6):
            facts = sorted(
                ((r, row) for r in db.relations() for row in db.facts(r)),
                key=repr,
            )
            rel, row = facts[rng.randrange(len(facts))]
            if step % 2:
                db.discard(rel, row)
            else:
                db.add(rel, row[:1] + ("t-new-%d" % step,))
            assert certain_answers(oq, db, "columnar") == \
                certain_answers(oq, db, "compiled")

    def test_copy_gets_fresh_store(self):
        db = db_from({"R/1/1": [(1,)]})
        store = columnar_store(db)
        clone = db.copy()
        assert columnar_store(clone) is not store


# ----------------------------------------------------------------------
# batch operators against the row-executor oracle
# ----------------------------------------------------------------------


class TestVectorOperators:
    def test_scan_variants(self):
        db = db_from({"R/2/1": [(1, 2), (3, 4), (1, 5), (3, 3)]})
        both(Scan(atom("R", [x], [y])), db)
        both(Scan(atom("R", [Constant(1)], [y])), db)
        both(Scan(atom("R", [x], [x])), db)
        both(Scan(atom("S", [x], [y])), db)  # unknown relation

    def test_scan_projection_dedup(self):
        db = db_from({"R/2/1": [(1, 2), (1, 3), (4, 2)]})
        plan = Project(Scan(atom("R", [x], [y])), (y,))
        assert both(plan, db) == {(2,), (3,)}

    def test_literal(self):
        db = db_from({})
        both(Literal((), [()]), db)
        both(Literal((), []), db)
        both(Literal((x,), [(7,), (9,)]), db)

    def test_select_conditions(self):
        db = db_from({"R/2/1": [(1, 1), (1, 2), (2, 2), (3, 1)]})
        scan = Scan(atom("R", [x], [y]))
        both(Select(scan, ((("col", 0), ("col", 1), True),)), db)
        both(Select(scan, ((("col", 0), ("col", 1), False),)), db)
        both(Select(scan, ((("col", 0), ("const", 1), True),)), db)
        both(Select(scan, ((("col", 1), ("const", 1), False),)), db)
        both(Select(scan, ((("const", 1), ("const", 2), True),)), db)
        both(Select(scan, ((("const", 1), ("const", 1), True),)), db)

    def test_join(self):
        db = db_from({
            "R/2/1": [(1, 2), (3, 4), (5, 2)],
            "S/2/1": [(2, "a"), (4, "b"), (2, "c")],
        })
        r = Scan(atom("R", [x], [y]))
        s = Scan(atom("S", [y], [z]))
        assert both(Join(r, s), db) == rrun(Join(r, s), db)

    def test_join_no_shared_is_cross_product(self):
        db = db_from({"R/1/1": [(1,), (2,)], "S/1/1": [("a",), ("b",)]})
        plan = Join(Scan(atom("R", [x], [])), Scan(atom("S", [y], [])))
        assert len(both(plan, db)) == 4

    def test_semi_and_anti_join(self):
        db = db_from({
            "R/2/1": [(1, 2), (3, 4), (5, 6)],
            "S/1/1": [(2,), (6,)],
        })
        r = Scan(atom("R", [x], [y]))
        s = Scan(atom("S", [y], []))
        assert both(SemiJoin(r, s), db) == {(1, 2), (5, 6)}
        assert both(AntiJoin(r, s), db) == {(3, 4)}

    def test_union_dedups_across_parts(self):
        db = db_from({"R/1/1": [(1,), (2,)], "S/1/1": [(2,), (3,)]})
        plan = Union((Scan(atom("R", [x], [])), Scan(atom("S", [x], []))))
        assert both(plan, db) == {(1,), (2,), (3,)}

    def test_difference(self):
        db = db_from({"R/1/1": [(1,), (2,), (3,)], "S/1/1": [(2,)]})
        plan = Difference(Scan(atom("R", [x], [])), Scan(atom("S", [x], [])))
        assert both(plan, db) == {(1,), (3,)}

    def test_zero_width_difference(self):
        db = db_from({"R/1/1": [(1,)], "S/1/1": [(2,)]})
        left = Project(Scan(atom("R", [x], [])), ())
        right = Project(Scan(atom("S", [x], [])), ())
        assert both(Difference(left, right), db) == set()

    def test_adom_fallback_counts_and_agrees(self):
        db = db_from({"R/1/1": [(1,), (2,)]})
        adom = AdomProduct((y,))
        plan = Join(Scan(atom("R", [x], [])), adom)
        profile = PlanProfile()
        got = vrun(plan, db, profile=profile)
        assert got == rrun(plan, db)
        stats = profile.stats_for(adom)
        assert stats.decode_fallbacks == 1 and stats.batches == 1

    def test_adom_guard_fallback(self):
        db = db_from({"R/1/1": [(1,)]})
        assert both(AdomGuard(), db) == {()}

    def test_memoization_counts(self):
        db = db_from({"R/2/1": [(1, 2), (3, 4)]})
        scan = Scan(atom("R", [x], [y]))
        executor = VectorExecutor(db, profile=PlanProfile())
        first = executor.run(scan)
        assert executor.run(scan) is first
        # Structural scan memo: an equal but distinct Scan node hits too.
        assert executor.run(Scan(atom("R", [x], [y]))) is first


# ----------------------------------------------------------------------
# whole-query parity (hypothesis) and the boolean probe path
# ----------------------------------------------------------------------


QUERIES = {
    "qa(p)": (poll_qa, (p,)),
    "qb(p)": (poll_qb, (p,)),
    "q1(t)": (poll_q1, (t,)),
    "qa(p,t)": (poll_qa, (p, t)),
}


class TestCompiledParity:
    @pytest.mark.parametrize("name", sorted(QUERIES))
    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_matches_tuple_executor(self, name, seed):
        make_query, free = QUERIES[name]
        db = random_poll_database(
            n_people=7, n_towns=3, conflict_rate=0.5,
            rng=random.Random(seed),
        )
        oq = OpenQuery(make_query(), list(free))
        compiled = plan_cache.get_or_compile(
            _guarded_open_rewriting(oq), db, oq.free
        )
        expected = compiled.rows(db)
        assert columnar_rows(compiled, db) == expected
        profile = PlanProfile()
        assert columnar_rows(compiled, db, profile=profile) == expected
        assert profile.stats_for(compiled.plan).batches >= 1

    def test_fuse_base_read_after_right_side_encodes(self):
        """Regression: the union-filter fold fused with a stale base.

        ``_filter_mask`` captured ``base = len(dictionary)`` *before*
        running a guard's right side; that run encoded fresh values, so
        distinct key tuples collided under the too-small base and the
        guard kept a row it should not have (here: every method but
        columnar answered ``{(1,)}``, columnar answered ``{}``).  The
        shape needs evaluation order to matter, so the plan is run
        top-down, left side first, exactly as ``certain_answers`` does.
        """
        db = db_from({
            "Lives/2/1": [(1, 2)],
            "Likes/2/1": [(0, 1)],
            "Born/2/1": [],
        })
        oq = OpenQuery(poll_qa(), [p])
        compiled = plan_cache.get_or_compile(
            _guarded_open_rewriting(oq), db, oq.free
        )
        assert compiled.rows(db) == frozenset({(1,)})
        assert columnar_rows(compiled, db) == frozenset({(1,)})

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_boolean_probe_delegation(self, seed):
        db = random_poll_database(
            n_people=5, n_towns=3, conflict_rate=0.6,
            rng=random.Random(seed),
        )
        from repro.cqa.rewriting import consistent_rewriting

        compiled = plan_cache.get_or_compile(
            consistent_rewriting(poll_qa()), db
        )
        before = columnar_stats()["boolean_probe_delegations"]
        assert columnar_holds(compiled, db) == compiled.holds(db)
        assert columnar_stats()["boolean_probe_delegations"] == before + 1


# ----------------------------------------------------------------------
# parallel marshaling: compact int columns with the value fallback
# ----------------------------------------------------------------------


class TestColumnarMarshal:
    def _batch(self, rows):
        d = ValueDictionary()
        return ColumnarRelation.from_rows((x, y), rows, d), d

    def test_column_form_round_trip(self, monkeypatch):
        rows = {(1, "a"), (2, "b"), (3, "a")}
        batch, d = self._batch(rows)
        monkeypatch.setattr(pool_mod, "_group_safe_codes", len(d))
        entry = pool_mod._encode_columnar_shard(batch, d)
        assert entry[0] == "C"
        assert set(pool_mod._decode_columnar_shard(entry, d)) == rows

    def test_post_fork_codes_fall_back_to_values(self, monkeypatch):
        rows = {(1, "a"), (2, "b")}
        batch, d = self._batch(rows)
        # Pretend the fork happened before 'b' was assigned: any column
        # carrying its code must ship decoded values, not raw codes.
        monkeypatch.setattr(pool_mod, "_group_safe_codes", len(d) - 1)
        entry = pool_mod._encode_columnar_shard(batch, d)
        assert entry[0] == "V"
        assert set(pool_mod._decode_columnar_shard(entry, d)) == rows

    def test_unprimed_store_falls_back_to_values(self, monkeypatch):
        batch, d = self._batch({(1, "a")})
        monkeypatch.setattr(pool_mod, "_group_safe_codes", None)
        assert pool_mod._encode_columnar_shard(batch, d)[0] == "V"

    def test_empty_batch(self, monkeypatch):
        d = ValueDictionary()
        batch = ColumnarRelation.empty((x, y))
        monkeypatch.setattr(pool_mod, "_group_safe_codes", 0)
        entry = pool_mod._encode_columnar_shard(batch, d)
        assert pool_mod._decode_columnar_shard(entry, d) == []


# ----------------------------------------------------------------------
# cost-model routing for method="auto"
# ----------------------------------------------------------------------


class TestRouting:
    def _compiled(self, db, free=(p,)):
        oq = OpenQuery(poll_qa(), list(free))
        return plan_cache.get_or_compile(
            _guarded_open_rewriting(oq), db, oq.free
        )

    def test_small_database_stays_on_tuples(self, monkeypatch):
        db = random_poll_database(6, 3, conflict_rate=0.5,
                                  rng=random.Random(1))
        compiled = self._compiled(db)
        assert not prefer_columnar(compiled, db)

    def test_boolean_never_routes(self, monkeypatch):
        monkeypatch.setenv("REPRO_COLUMNAR_MIN_FACTS", "0")
        monkeypatch.setenv("REPRO_COLUMNAR_COST", "0")
        db = random_poll_database(6, 3, conflict_rate=0.5,
                                  rng=random.Random(2))
        from repro.cqa.rewriting import consistent_rewriting

        compiled = plan_cache.get_or_compile(
            consistent_rewriting(poll_qa()), db
        )
        assert not prefer_columnar(compiled, db)

    def test_auto_upgrades_above_thresholds(self, monkeypatch):
        monkeypatch.setenv("REPRO_COLUMNAR_MIN_FACTS", "0")
        monkeypatch.setenv("REPRO_COLUMNAR_COST", "0")
        db = random_poll_database(6, 3, conflict_rate=0.5,
                                  rng=random.Random(3))
        oq = OpenQuery(poll_qa(), [p])
        before = columnar_stats()["runs"]
        answers = certain_answers(oq, db, "auto")
        assert columnar_stats()["runs"] == before + 1
        assert answers == certain_answers(oq, db, "compiled")

    def test_high_cost_threshold_keeps_tuples(self, monkeypatch):
        monkeypatch.setenv("REPRO_COLUMNAR_MIN_FACTS", "0")
        monkeypatch.setenv("REPRO_COLUMNAR_COST", "1e18")
        db = random_poll_database(6, 3, conflict_rate=0.5,
                                  rng=random.Random(4))
        compiled = self._compiled(db)
        assert not prefer_columnar(compiled, db)


# ----------------------------------------------------------------------
# QP109 and the plan --columnar CLI surface
# ----------------------------------------------------------------------


class TestQP109:
    def test_fires_on_adom_plan(self):
        from types import SimpleNamespace

        from repro.analysis import AnalysisContext, run_qp_rules

        plan = Project(AdomProduct((x,)), (x,))
        ctx = AnalysisContext(
            compiled=SimpleNamespace(plan=plan, free=(x,)), free=(x,)
        )
        codes = {d.code for d in run_qp_rules(ctx)}
        assert "QP109" in codes

    def test_silent_without_adom(self):
        from repro.analysis import analyze_query

        report = analyze_query(poll_qa(), free=(p,))
        assert "QP109" not in {d.code for d in report.diagnostics}


QA_TEXT = "Lives(p | t), not Born(p | t), not Likes(p, t)"


class TestPlanColumnarCLI:
    @pytest.fixture
    def poll_file(self, tmp_path):
        db = random_poll_database(10, 4, conflict_rate=0.5,
                                  rng=random.Random(5))
        path = tmp_path / "poll.json"
        save_database(db, path)
        return str(path)

    def test_static_view_marks_batch_operators(self, capsys):
        assert main(["plan", QA_TEXT, "--free", "p", "--columnar"]) == 0
        out = capsys.readouterr().out
        assert "[batch]" in out and "fallback" not in out

    def test_analyze_prints_both_profiles(self, capsys, poll_file):
        assert main(["plan", QA_TEXT, "--free", "p", "--columnar",
                     "--analyze", "--db", poll_file]) == 0
        out = capsys.readouterr().out
        assert "row executor:" in out and "columnar executor:" in out
        assert "batches=" in out

    def test_analyze_json_is_schema_pinned(self, capsys, poll_file):
        assert main(["plan", QA_TEXT, "--free", "p", "--columnar",
                     "--analyze", "--db", poll_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"row", "columnar"}
        operator_def = TRACE_SCHEMA["$defs"]["operator"]
        for tree in payload.values():
            assert validate(tree, operator_def, root=TRACE_SCHEMA) == []
        assert payload["columnar"]["batches"] >= 1
        assert payload["row"]["batches"] == 0
