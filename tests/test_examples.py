"""Smoke tests: every example script runs cleanly."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "example produced no output"


def test_there_are_at_least_three_examples():
    assert len(EXAMPLES) >= 3


def test_quickstart_mentions_all_strategies():
    script = [p for p in EXAMPLES if p.name == "quickstart.py"][0]
    result = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True,
        timeout=240)
    for method in ("brute", "interpreted", "rewriting", "sql"):
        assert method in result.stdout
