"""Tests for the FO -> SQL compiler and the sqlite backend."""

import random

import pytest

from repro.core.atoms import RelationSchema, atom
from repro.core.terms import Constant, Variable
from repro.db.sqlite_backend import load_database, run_sentence_sql
from repro.fo.eval import Evaluator
from repro.fo.formula import (
    AtomF,
    Eq,
    Exists,
    FALSE,
    Forall,
    TRUE,
    implies,
    make_and,
    make_exists,
    make_forall,
    make_not,
)
from repro.fo.sql import encode_value

from conftest import db_from

x, y, z = Variable("x"), Variable("y"), Variable("z")
r_xy = AtomF(atom("R", [x], [y]))


class TestEncodeValue:
    def test_types_distinguished(self):
        assert encode_value(1) != encode_value("1")
        assert encode_value(True) != encode_value(1)

    def test_tuples(self):
        assert encode_value(("pair", 1, 2)) == encode_value(("pair", 1, 2))
        assert encode_value(("a",)) != encode_value(("a", "a"))

    def test_nested_tuples(self):
        v1 = ("edge", ("a", 1), ("b", 2))
        v2 = ("edge", ("a", 1), ("b", 3))
        assert encode_value(v1) != encode_value(v2)

    def test_injective_on_tricky_strings(self):
        # Separator characters inside strings must not collide.
        assert encode_value(("a|b",)) != encode_value(("a", "b"))

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            encode_value(3.14)


class TestLoadDatabase:
    def test_roundtrip_count(self):
        db = db_from({"R/2/1": [(1, 2), (1, 3)], "S/1/1": [("a",)]})
        conn = load_database(db)
        n = conn.execute('SELECT COUNT(*) FROM "R"').fetchone()[0]
        assert n == 2
        conn.close()

    def test_duplicate_inserts_ignored(self):
        db = db_from({"R/2/1": [(1, 2)]})
        conn = load_database(db)
        conn.execute('INSERT OR IGNORE INTO "R" VALUES (?, ?)',
                     (encode_value(1), encode_value(2)))
        n = conn.execute('SELECT COUNT(*) FROM "R"').fetchone()[0]
        assert n == 1
        conn.close()


class TestCompilation:
    def test_simple_exists(self):
        db = db_from({"R/2/1": [(1, 2)]})
        f = make_exists([x, y], r_xy)
        assert run_sentence_sql(f, db)

    def test_false_on_empty(self):
        db = db_from({"R/2/1": []})
        f = make_exists([x, y], r_xy)
        assert not run_sentence_sql(f, db)

    def test_constants(self):
        db = db_from({"R/2/1": [("c", 5)]})
        f = make_exists([y], AtomF(atom("R", [Constant("c")], [y])))
        assert run_sentence_sql(f, db)
        f = make_exists([y], AtomF(atom("R", [Constant("z")], [y])))
        assert not run_sentence_sql(f, db)

    def test_forall_guarded(self):
        db = db_from({"R/2/1": [(1, 1), (2, 2)]})
        f = make_forall([x, y], implies(r_xy, Eq(x, y)))
        assert run_sentence_sql(f, db)
        db.add("R", (3, 4))
        assert not run_sentence_sql(f, db)

    def test_unguarded_exists_uses_adom(self):
        db = db_from({"R/2/1": [(1, 2)]})
        f = make_exists([x, y], make_not(r_xy))
        assert run_sentence_sql(f, db)

    def test_missing_relation_created_empty(self):
        db = db_from({"R/2/1": [(1, 2)]})
        f = make_exists([x], AtomF(atom("Z", [x])))
        assert not run_sentence_sql(f, db)

    def test_verum_falsum(self):
        db = db_from({"R/2/1": [(1, 2)]})
        assert run_sentence_sql(TRUE, db)
        assert not run_sentence_sql(FALSE, db)

    def test_tuple_valued_constants(self):
        pair = ("pair", "a", "b")
        db = db_from({"R/2/1": [(pair, 1)]})
        f = make_exists([y], AtomF(atom("R", [Constant(pair)], [y])))
        assert run_sentence_sql(f, db)

    def test_quoted_relation_names(self):
        db = db_from({})
        db.add_relation(RelationSchema("weird name", 1, 1))
        db.add("weird name", ("v",))
        f = make_exists([x], AtomF(atom("weird name", [x])))
        assert run_sentence_sql(f, db)


class TestSqlMatchesPythonEvaluator:
    def test_random_guarded_sentences_agree(self):
        rng = random.Random(41)
        s_yz = AtomF(atom("S", [y], [z]))
        shapes = [
            make_exists([x, y], r_xy),
            make_exists([x, y, z], make_and([r_xy, s_yz])),
            make_forall([x, y], implies(r_xy, make_exists([z], s_yz))),
            make_and([
                make_exists([x, y], r_xy),
                make_forall([y, z], implies(s_yz, make_exists([x], r_xy))),
            ]),
            make_forall([x, y], implies(r_xy, make_not(AtomF(atom("S", [x], [y]))))),
            make_exists([x, y], make_and([r_xy, make_not(Eq(x, y))])),
        ]
        for _ in range(20):
            db = db_from({
                "R/2/1": [(rng.randint(0, 2), rng.randint(0, 2))
                          for _ in range(rng.randint(0, 4))],
                "S/2/1": [(rng.randint(0, 2), rng.randint(0, 2))
                          for _ in range(rng.randint(0, 4))],
            })
            for f in shapes:
                assert run_sentence_sql(f, db) == Evaluator(f, db).evaluate(), \
                    f"SQL/Python disagreement on {f!r} with {db!r}"

    def test_shadowed_quantifier(self):
        db = db_from({"R/2/1": [(1, 0)]})
        inner = Exists((y, z), r_xy)
        f = Exists((x,), make_and([AtomF(atom("R", [x], [y])).__class__(
            atom("R", [x], [Constant(0)])), Forall((y,), inner)]))
        assert run_sentence_sql(f, db) == Evaluator(f, db).evaluate()
