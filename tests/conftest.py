"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os
import random

# Every plan the suites compile runs the PV001-PV013 verifier
# (repro.analysis.verifier); set before any repro import so the gate
# is decided once.  Export REPRO_VERIFY_PLANS=0 to measure the
# unverified baseline.
os.environ.setdefault("REPRO_VERIFY_PLANS", "1")

import pytest
from hypothesis import HealthCheck, settings

from repro.core.terms import Variable
from repro.db.database import Database

# Hypothesis profiles: CI runs with HYPOTHESIS_PROFILE=ci for a
# deterministic (derandomized, no-deadline) run; locally the default
# profile keeps random exploration but still disables deadlines, which
# flake under coverage and slow containers.
settings.register_profile(
    "ci",
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("dev", deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture
def rng():
    """A deterministic RNG per test."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def xy():
    """The ubiquitous variables x and y."""
    return Variable("x"), Variable("y")


def db_from(spec: dict) -> Database:
    """Build a database from {"R/arity/key": [rows...]} specs.

    Example: db_from({"R/2/1": [(1, 2), (1, 3)], "S/2/2": [(2, 1)]})
    """
    from repro.core.atoms import RelationSchema

    db = Database()
    for key, rows in spec.items():
        name, arity, k = key.split("/")
        db.add_relation(RelationSchema(name, int(arity), int(k)))
        for row in rows:
            db.add(name, row)
    return db
