"""Tests for the observability layer (:mod:`repro.obs`).

Covers the span tracer (nesting, counters, JSONL round-trip, the no-op
default), per-operator plan profiling and its renderers, trace-on/off
answer parity for every execution method (the tracer must be a pure
observer), the unified ``EngineMetrics`` API with its deprecated
static shims, ``RunConfig`` env consolidation, the worker-counter
merge bugfix, the JSON-Schema-subset validator, the pinned trace
document schema, and the new CLI surfaces (``plan --analyze``,
``certain/answers --trace [--json] [--trace-out]``).
"""

from __future__ import annotations

import json
import random
import time

import pytest

from repro.cli import main
from repro.core.parser import parse_query
from repro.core.terms import Variable
from repro.cqa.certain_answers import OpenQuery, certain_answers
from repro.cqa.engine import CertaintyEngine
from repro.db.io import save_database
from repro.fo.compile import plan_cache
from repro.fo.plan import Executor, Scan
from repro.incremental import ViewManager
from repro.obs import (
    NULL_TRACER,
    EngineMetrics,
    MetricsRegistry,
    NullTracer,
    PlanProfile,
    RunConfig,
    Tracer,
    collect_metrics,
    profile_tree,
    read_jsonl,
    render_profile,
    render_spans,
    trace_payload,
    validate,
)
from repro.obs.schema import SchemaError, check
from repro.parallel import (
    parallel_certain_answers,
    parallel_stats,
    reset_parallel_stats,
    shutdown_pools,
)
from repro.parallel.pool import fork_context
from repro.workloads.poll import paper_flavoured_poll_database, random_poll_database
from repro.workloads.queries import poll_qa

from conftest import db_from

p, x = Variable("p"), Variable("x")

needs_fork = pytest.mark.skipif(
    fork_context() is None, reason="platform has no fork start method"
)

QA = "Lives(p | t), not Born(p | t), not Likes(p, t)"


@pytest.fixture(autouse=True)
def _clean_pools():
    yield
    shutdown_pools()


@pytest.fixture
def poll_db():
    return paper_flavoured_poll_database()


@pytest.fixture
def qa_open():
    return OpenQuery(parse_query(QA), [p])


@pytest.fixture
def poll_file(tmp_path):
    path = tmp_path / "poll.json"
    save_database(paper_flavoured_poll_database(), path)
    return str(path)


# ----------------------------------------------------------------------
# Tracer / Span
# ----------------------------------------------------------------------


class TestTracer:
    def test_span_nesting_and_depths(self):
        tracer = Tracer()
        with tracer.span("outer", kind="test") as outer:
            outer.count("ticks", 2)
            with tracer.span("inner"):
                tracer.count("ticks")  # attributes to innermost (inner)
            tracer.event("point", reason="why")
        assert len(tracer.roots) == 1
        forest = list(tracer.iter_spans())
        assert [(s.name, d) for s, _, d in forest] == [
            ("outer", 0), ("inner", 1), ("point", 1),
        ]
        outer_span, inner_span, point = [s for s, _, _ in forest]
        assert outer_span.counters == {"ticks": 2}
        assert inner_span.counters == {"ticks": 1}
        assert outer_span.tags == {"kind": "test"}
        assert point.tags == {"reason": "why"}
        assert point.duration_ms == 0.0
        parents = [par.span_id if par else None for _, par, _ in forest]
        assert parents == [None, outer_span.span_id, outer_span.span_id]
        assert outer_span.duration_ms >= inner_span.duration_ms

    def test_record_external_duration(self):
        tracer = Tracer()
        span = tracer.record("worker", 0.25, worker=3)
        assert abs(span.duration_ms - 250.0) < 1.0
        assert tracer.roots == [span]

    def test_mismatched_exit_tolerated(self):
        tracer = Tracer()
        outer = tracer.span("outer")
        inner = tracer.span("inner")
        outer.__enter__()
        inner.__enter__()
        outer.__exit__(None, None, None)  # inner leaked; stack unwinds
        assert tracer.current() is None
        with tracer.span("next"):
            pass
        assert [s.name for s in tracer.roots] == ["outer", "next"]

    def test_to_records_shape(self):
        tracer = Tracer()
        with tracer.span("a", db=object()):  # non-primitive tag coerced
            tracer.count("n", 5)
        (record,) = tracer.to_records()
        assert record["name"] == "a"
        assert record["parent"] is None and record["depth"] == 0
        assert record["counters"] == {"n": 5}
        assert isinstance(record["tags"]["db"], str)
        json.dumps(record)  # fully serializable

    def test_jsonl_round_trip_and_append(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert tracer.write_jsonl(str(path)) == 2
        assert read_jsonl(str(path)) == tracer.to_records()
        # Appends, never truncates.
        assert tracer.write_jsonl(str(path)) == 2
        assert len(read_jsonl(str(path))) == 4

    def test_render_spans_indents(self):
        tracer = Tracer()
        with tracer.span("outer", method="compiled"):
            with tracer.span("inner"):
                pass
        text = render_spans(tracer)
        lines = text.splitlines()
        assert lines[0].startswith("outer") and "method=compiled" in lines[0]
        assert lines[1].startswith("  inner")


class TestNullTracer:
    def test_all_noops(self, tmp_path):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)
        with NULL_TRACER.span("x", tag=1) as span:
            span.count("n")
            NULL_TRACER.count("n")
        NULL_TRACER.event("e")
        NULL_TRACER.record("r", 1.0)
        NULL_TRACER.add_profile(None, None)
        assert NULL_TRACER.current() is None
        assert NULL_TRACER.to_records() == []
        assert list(NULL_TRACER.iter_spans()) == []
        assert NULL_TRACER.write_jsonl(str(tmp_path / "x.jsonl")) == 0
        assert not (tmp_path / "x.jsonl").exists()
        assert NULL_TRACER.roots == [] and NULL_TRACER.profiles == []


# ----------------------------------------------------------------------
# PlanProfile / renderers
# ----------------------------------------------------------------------


class TestPlanProfile:
    def _compiled(self, qa_open, db):
        from repro.cqa.certain_answers import _guarded_open_rewriting

        formula = _guarded_open_rewriting(qa_open)
        return plan_cache.get_or_compile(formula, db, qa_open.free)

    def test_rows_profile_counts_operators(self, qa_open, poll_db):
        compiled = self._compiled(qa_open, poll_db)
        profile = PlanProfile()
        rows = compiled.rows(poll_db, profile=profile)
        root = profile.stats_for(compiled.plan)
        assert root.calls == 1
        assert root.rows_out == len(rows)
        assert root.seconds > 0.0
        assert len(profile) >= 1
        # Scans report index usage on this indexed workload.
        tree = profile_tree(compiled.plan, profile)

        def any_node(node, pred):
            return pred(node) or any(any_node(c, pred) for c in node["children"])

        assert any_node(tree, lambda n: n["op"] == "Scan" and n["index_hits"] > 0)

    def test_profile_accumulates_and_memoizes(self, qa_open, poll_db):
        compiled = self._compiled(qa_open, poll_db)
        profile = PlanProfile()
        compiled.rows(poll_db, profile=profile)
        first_calls = profile.stats_for(compiled.plan).calls
        compiled.rows(poll_db, profile=profile)
        assert profile.stats_for(compiled.plan).calls == first_calls + 1

    def test_render_profile_one_line_per_operator(self, qa_open, poll_db):
        from repro.fo.plan import plan_nodes

        compiled = self._compiled(qa_open, poll_db)
        profile = PlanProfile()
        compiled.rows(poll_db, profile=profile)
        text = render_profile(compiled.plan, profile)
        n_nodes = sum(1 for _ in plan_nodes(compiled.plan))
        assert len(text.splitlines()) == n_nodes
        assert "time=" in text and "rows=" in text

    def test_profile_tree_self_time_bounded(self, qa_open, poll_db):
        compiled = self._compiled(qa_open, poll_db)
        profile = PlanProfile()
        compiled.rows(poll_db, profile=profile)

        def walk(node):
            assert 0.0 <= node["self_ms"] <= node["time_ms"] + 1e-9
            for child in node["children"]:
                walk(child)

        walk(profile_tree(compiled.plan, profile))

    def test_boolean_probe_profile(self, poll_db):
        engine = CertaintyEngine(parse_query(QA))
        tracer = Tracer()
        assert engine.certain(poll_db, "compiled", tracer=tracer) is True
        ((plan, profile, tags),) = tracer.profiles
        assert tags["method"] == "compiled" and tags["phase"] == "probe"
        root = profile.stats_for(plan)
        assert root.calls == 1 and root.rows_out == 1  # True as 1
        total = sum(
            profile.stats_for(node).probe_calls
            for node in _all_nodes(plan)
        )
        assert total > 0  # the probe fast path actually ran


def _all_nodes(plan):
    yield plan
    for child in plan.children():
        yield from _all_nodes(child)


# ----------------------------------------------------------------------
# Parity: tracing is a pure observer
# ----------------------------------------------------------------------


class TestTracingParity:
    SERIAL_METHODS = ("brute", "interpreted", "rewriting", "compiled", "sql")

    @pytest.mark.parametrize("method", SERIAL_METHODS)
    def test_answers_identical_with_and_without_tracer(
        self, method, qa_open, poll_db
    ):
        plain = certain_answers(qa_open, poll_db, method)
        tracer = Tracer()
        traced = certain_answers(qa_open, poll_db, method, tracer=tracer)
        assert traced == plain
        assert tracer.roots, f"method {method} produced no spans"

    @pytest.mark.parametrize("method", SERIAL_METHODS)
    def test_boolean_identical_with_and_without_tracer(
        self, method, poll_db
    ):
        engine = CertaintyEngine(parse_query(QA))
        plain = engine.certain(poll_db, method)
        tracer = Tracer()
        assert engine.certain(poll_db, method, tracer=tracer) == plain
        assert tracer.roots

    @needs_fork
    def test_parallel_identical_with_and_without_tracer(self, qa_open, rng):
        db = random_poll_database(40, 5, rng=rng)
        plain = parallel_certain_answers(qa_open, db, jobs=2, min_facts=0)
        tracer = Tracer()
        traced = parallel_certain_answers(
            qa_open, db, jobs=2, min_facts=0, tracer=tracer
        )
        assert traced == plain
        names = {s.name for s, _, _ in tracer.iter_spans()}
        assert "worker" in names and "merge" in names

    def test_parallel_fallback_event_recorded(self, qa_open, poll_db):
        tracer = Tracer()
        with pytest.warns(DeprecationWarning, match="jobs="):
            certain_answers(qa_open, poll_db, "parallel", jobs=1,
                            tracer=tracer)
        events = [s for s, _, _ in tracer.iter_spans()
                  if s.name == "parallel-fallback"]
        assert events and events[0].tags["reason"] == "jobs=1"


# ----------------------------------------------------------------------
# EngineMetrics / MetricsRegistry / deprecated shims
# ----------------------------------------------------------------------


class TestEngineMetrics:
    def test_collect_shape(self):
        metrics = collect_metrics()
        assert isinstance(metrics, EngineMetrics)
        doc = metrics.to_dict()
        assert doc["schema_version"] == 1
        assert {"hits", "misses", "size"} <= set(doc["plan_cache"])
        assert {"runs", "serial_fallbacks", "worker_plan_cache",
                "worker_rows"} <= set(doc["parallel"])
        assert {"views_registered", "commits_seen"} <= set(doc["views"])
        json.loads(metrics.to_json())

    def test_engine_metrics_method(self):
        engine = CertaintyEngine(parse_query(QA))
        db = paper_flavoured_poll_database()
        before = engine.metrics().plan_cache["hits"]
        engine.certain(db, "compiled")
        engine.certain(db, "compiled")
        assert engine.metrics().plan_cache["hits"] >= before + 1

    def test_registry_extra_sources(self):
        registry = MetricsRegistry()
        registry.register("plan_cache", lambda: {"hits": 1})
        registry.register("custom", lambda: {"widgets": 7})
        metrics = registry.collect()
        assert metrics.plan_cache == {"hits": 1}
        assert metrics.parallel == {} and metrics.views == {}
        assert metrics.extra == {"custom": {"widgets": 7}}
        assert metrics.to_dict()["custom"] == {"widgets": 7}
        registry.unregister("custom")
        assert "custom" not in registry.sources()

    @pytest.mark.parametrize("name", ["plan_cache_stats", "parallel_stats",
                                      "view_stats"])
    def test_static_shims_warn_and_delegate(self, name):
        with pytest.warns(DeprecationWarning, match="metrics()"):
            out = getattr(CertaintyEngine, name)()
        assert isinstance(out, dict) and out


# ----------------------------------------------------------------------
# Worker-counter merge (the --jobs --stats bugfix)
# ----------------------------------------------------------------------


@needs_fork
class TestWorkerCounterMerge:
    def test_worker_plan_cache_and_rows_merged(self, qa_open, rng):
        db = random_poll_database(40, 5, rng=rng)
        reset_parallel_stats()
        answers = parallel_certain_answers(qa_open, db, jobs=2, min_facts=0)
        stats = parallel_stats()
        cache = stats["worker_plan_cache"]
        # Workers compiled/executed in their own processes; their
        # counters must now be visible in the parent.
        assert cache["hits"] + cache["misses"] > 0
        assert stats["worker_rows"] >= len(answers)

    def test_no_double_counting_on_warm_pool(self, qa_open, rng):
        db = random_poll_database(40, 5, rng=rng)
        reset_parallel_stats()
        parallel_certain_answers(qa_open, db, jobs=2, min_facts=0)
        first = dict(parallel_stats()["worker_plan_cache"])
        parallel_certain_answers(qa_open, db, jobs=2, min_facts=0)
        second = parallel_stats()["worker_plan_cache"]
        # The second (warm) run ships only deltas: misses cannot repeat.
        assert second["misses"] == first["misses"]


# ----------------------------------------------------------------------
# RunConfig
# ----------------------------------------------------------------------


class TestRunConfig:
    def test_from_env_reads_consolidated_vars(self):
        env = {
            "REPRO_MAX_WORKERS": "3",
            "REPRO_PARALLEL_MIN_FACTS": "0",
            "REPRO_TRACE_FILE": "/tmp/t.jsonl",
            "BENCH_PARALLEL_SMOKE": "1",
        }
        config = RunConfig.from_env(env)
        assert config.max_workers == 3
        assert config.parallel_min_facts == 0
        assert config.trace_file == "/tmp/t.jsonl"
        assert config.parallel_smoke is True
        assert config.tracing is True  # trace file implies tracing

    def test_from_env_defaults_and_garbage(self):
        config = RunConfig.from_env({"REPRO_MAX_WORKERS": "banana"})
        assert config.max_workers is None
        assert config.parallel_min_facts is None
        assert config.trace_file is None
        assert config.tracing is False
        assert config.make_tracer() is None

    def test_overrides_beat_env(self):
        env = {"REPRO_MAX_WORKERS": "3", "REPRO_PARALLEL_MIN_FACTS": "100"}
        config = RunConfig.from_env(env, max_workers=8, trace=True)
        assert config.max_workers == 8
        assert config.parallel_min_facts == 100  # None override kept env
        assert isinstance(config.make_tracer(), Tracer)

    def test_resolved_jobs_clamps(self):
        config = RunConfig(jobs=4, max_workers=2)
        assert config.resolved_jobs() == 2
        assert config.resolved_jobs(1) == 1
        assert RunConfig().resolved_jobs(6) == 6

    def test_resolved_min_facts(self):
        assert RunConfig().resolved_min_facts() == 2000
        assert RunConfig(parallel_min_facts=5).resolved_min_facts() == 5
        assert RunConfig(parallel_min_facts=5).resolved_min_facts(9) == 9

    def test_certain_answers_accepts_config(self, qa_open, poll_db):
        config = RunConfig(jobs=1, parallel_min_facts=0)
        with pytest.warns(DeprecationWarning, match="config="):
            got = certain_answers(qa_open, poll_db, "parallel",
                                  config=config)
        assert got == certain_answers(qa_open, poll_db, "compiled")

    def test_from_env_reads_sql_knobs(self):
        env = {"REPRO_SQL_MIN_FACTS": "17", "REPRO_SQL_STMT_CACHE": "0"}
        config = RunConfig.from_env(env)
        assert config.sql_min_facts == 17
        assert config.sql_stmt_cache == 0
        assert config.resolved_sql_min_facts() == 17
        assert config.resolved_sql_stmt_cache() == 0

    @pytest.mark.parametrize("bad", ["-5", "0x10", "  ", "", "many", "4.5"])
    def test_bad_sql_knobs_fall_back_to_defaults(self, bad):
        from repro.obs.config import (
            DEFAULT_SQL_MIN_FACTS,
            DEFAULT_SQL_STMT_CACHE,
        )

        env = {"REPRO_SQL_MIN_FACTS": bad, "REPRO_SQL_STMT_CACHE": bad}
        config = RunConfig.from_env(env)
        assert config.sql_min_facts is None
        assert config.sql_stmt_cache is None
        assert config.resolved_sql_min_facts() == DEFAULT_SQL_MIN_FACTS
        assert config.resolved_sql_stmt_cache() == DEFAULT_SQL_STMT_CACHE

    def test_sql_knob_defaults_without_env(self):
        from repro.obs.config import (
            DEFAULT_SQL_MIN_FACTS,
            DEFAULT_SQL_STMT_CACHE,
        )

        config = RunConfig.from_env({})
        assert config.resolved_sql_min_facts() == DEFAULT_SQL_MIN_FACTS
        assert config.resolved_sql_stmt_cache() == DEFAULT_SQL_STMT_CACHE


# ----------------------------------------------------------------------
# Schema validator + pinned trace schema
# ----------------------------------------------------------------------


class TestSchemaValidator:
    def test_type_checks(self):
        assert validate(1, {"type": "integer"}) == []
        assert validate(True, {"type": "integer"})  # bool is NOT integer
        assert validate(True, {"type": "boolean"}) == []
        assert validate(1.5, {"type": "number"}) == []
        assert validate(1, {"type": "number"}) == []
        assert validate(None, {"type": ["integer", "null"]}) == []
        assert validate("x", {"type": ["integer", "null"]})

    def test_object_keywords(self):
        schema = {
            "type": "object",
            "required": ["a"],
            "properties": {"a": {"type": "integer"}},
            "additionalProperties": False,
        }
        assert validate({"a": 1}, schema) == []
        assert any("missing required" in e for e in validate({}, schema))
        assert any("unexpected property" in e
                   for e in validate({"a": 1, "b": 2}, schema))
        assert any("expected type" in e for e in validate({"a": "x"}, schema))

    def test_items_enum_minimum_anyof(self):
        assert validate([1, 2], {"type": "array",
                                 "items": {"type": "integer"}}) == []
        assert validate([1, "x"], {"type": "array",
                                   "items": {"type": "integer"}})
        assert validate("a", {"enum": ["a", "b"]}) == []
        assert validate("c", {"enum": ["a", "b"]})
        assert validate(-1, {"type": "integer", "minimum": 0})
        assert validate(0, {"type": "integer", "minimum": 0}) == []
        any_of = {"anyOf": [{"type": "string"}, {"type": "null"}]}
        assert validate(None, any_of) == []
        assert validate(3, any_of)

    def test_ref_resolution(self):
        schema = {
            "$defs": {"node": {
                "type": "object",
                "properties": {
                    "children": {"type": "array",
                                 "items": {"$ref": "#/$defs/node"}},
                },
            }},
            "$ref": "#/$defs/node",
        }
        assert validate({"children": [{"children": []}]}, schema) == []
        errors = validate({"children": [5]}, schema)
        assert errors and "[0]" in errors[0]
        with pytest.raises(SchemaError, match="dangling"):
            validate({}, {"$ref": "#/nowhere"})

    def test_check_raises(self):
        with pytest.raises(SchemaError):
            check(5, {"type": "string"})
        check("ok", {"type": "string"})


class TestTraceDocumentSchema:
    def _schema(self):
        import pathlib

        path = (pathlib.Path(__file__).resolve().parent.parent
                / "docs" / "trace.schema.json")
        return json.loads(path.read_text())

    def test_boolean_payload_validates(self, poll_db):
        engine = CertaintyEngine(parse_query(QA))
        tracer = Tracer()
        answer = engine.certain(poll_db, "compiled", tracer=tracer)
        payload = trace_payload(QA, "compiled", tracer, answer=answer)
        assert validate(payload, self._schema()) == []

    def test_answers_payload_validates(self, qa_open, poll_db):
        tracer = Tracer()
        answers = certain_answers(qa_open, poll_db, "compiled",
                                  tracer=tracer)
        payload = trace_payload(QA, "compiled", tracer, free=["p"],
                                answers=len(answers))
        assert validate(payload, self._schema()) == []
        assert payload["operators"], "compiled method must attach a profile"
        assert payload["total_ms"] >= 0.0

    def test_schema_rejects_corrupted_payload(self, qa_open, poll_db):
        tracer = Tracer()
        certain_answers(qa_open, poll_db, "compiled", tracer=tracer)
        payload = trace_payload(QA, "compiled", tracer)
        payload["schema_version"] = 99
        assert validate(payload, self._schema())
        del payload["schema_version"]
        assert validate(payload, self._schema())


# ----------------------------------------------------------------------
# Incremental-view tracing
# ----------------------------------------------------------------------


class TestViewTracing:
    def test_view_maintain_span(self):
        db = db_from({
            "P/2/1": [(1, "a"), (1, "b")],
            "N/2/1": [("c", "a")],
        })
        tracer = Tracer()
        manager = ViewManager(db, tracer=tracer)
        query = parse_query("P(x | y), not N('c' | y)")
        view = manager.register_view(query, [x])
        db.discard("N", ("c", "a"))
        spans = [s for s, _, _ in tracer.iter_spans()
                 if s.name == "view-maintain"]
        assert spans
        span = spans[-1]
        assert span.counters["delta_size"] == 1
        assert span.counters["deltas_applied"] == 1
        assert span.counters["rows_touched"] >= 1
        assert view.answers == {(1,)}
        events = [s for s, _, _ in tracer.iter_spans()
                  if s.name == "view-delta"]
        assert events and events[0].tags["inserted"] == 1

    def test_untraced_manager_unchanged(self):
        db = db_from({"P/2/1": [(1, "a")], "N/2/1": []})
        manager = ViewManager(db)
        assert manager.tracer is NULL_TRACER


# ----------------------------------------------------------------------
# Disabled-tracing overhead
# ----------------------------------------------------------------------


class _BareExecutor(Executor):
    """The pre-instrumentation executor body, for A/B overhead timing."""

    def run(self, plan):
        if type(plan) is Scan:
            key = ("scan", plan.atom.relation,
                   tuple(sorted(plan.consts.items())),
                   plan.eq_checks, plan.proj)
        else:
            key = id(plan)
        cached = self._memo.get(key)
        if cached is None:
            cached = self._dispatch(plan)
            self._memo[key] = cached
        return cached


class TestDisabledOverhead:
    def test_noop_overhead_below_five_percent(self):
        """Executor with profile=None must track the pre-instrumentation
        executor within 5% on the bench_plan smoke grid workload.

        Interleaved min-of-N timing with retries: min-of-N discards
        scheduler noise, interleaving discards clock drift, and a small
        absolute floor keeps sub-millisecond jitter from failing runs
        on loaded CI hosts.
        """
        db = random_poll_database(150, 25, conflict_rate=0.5,
                                  rng=random.Random(71))
        open_query = OpenQuery(poll_qa(), [p])
        from repro.cqa.certain_answers import _guarded_open_rewriting

        formula = _guarded_open_rewriting(open_query)
        compiled = plan_cache.get_or_compile(formula, db, open_query.free)
        plan, constants = compiled.plan, compiled.constants

        expected = _BareExecutor(db, None, constants).run(plan)
        assert Executor(db, None, constants).run(plan) == expected

        def attempt(repeat=7):
            best_bare = best_instr = None
            for _ in range(repeat):
                t0 = time.perf_counter()
                _BareExecutor(db, None, constants).run(plan)
                bare = time.perf_counter() - t0
                t0 = time.perf_counter()
                Executor(db, None, constants).run(plan)
                instr = time.perf_counter() - t0
                best_bare = bare if best_bare is None else min(best_bare, bare)
                best_instr = (instr if best_instr is None
                              else min(best_instr, instr))
            return best_bare, best_instr

        last = None
        for _ in range(5):
            bare, instr = attempt()
            last = (bare, instr)
            if instr <= bare * 1.05 or instr - bare <= 0.0005:
                return
        bare, instr = last
        pytest.fail(
            f"disabled-tracing overhead too high: bare={bare * 1e3:.3f}ms "
            f"instrumented(off)={instr * 1e3:.3f}ms "
            f"({(instr / bare - 1) * 100:.1f}%)"
        )


# ----------------------------------------------------------------------
# CLI surfaces
# ----------------------------------------------------------------------


class TestCliTracing:
    def test_plan_analyze_text(self, capsys, poll_file):
        assert main(["plan", QA, "--free", "p", "--analyze",
                     "--db", poll_file]) == 0
        out = capsys.readouterr().out
        assert "executed on" in out
        assert "time=" in out and "rows=" in out
        assert "Scan Lives" in out

    def test_plan_analyze_json(self, capsys, poll_file):
        assert main(["plan", QA, "--free", "p", "--analyze",
                     "--db", poll_file, "--json"]) == 0
        tree = json.loads(capsys.readouterr().out)
        assert tree["cols"] == ["p"]
        assert tree["rows_out"] >= 1
        assert tree["children"]

    def test_plan_analyze_requires_db(self, poll_file):
        with pytest.raises(SystemExit, match="--analyze requires --db"):
            main(["plan", QA, "--analyze"])
        with pytest.raises(SystemExit, match="--json requires --analyze"):
            main(["plan", QA, "--json"])

    def test_certain_trace_text(self, capsys, poll_file):
        assert main(["certain", QA, "--db", poll_file, "--trace"]) == 0
        out = capsys.readouterr().out
        assert "CERTAINTY = True" in out
        assert "trace:" in out and "certain " in out
        assert "operators" in out

    def test_certain_trace_json_validates(self, capsys, poll_file):
        assert main(["certain", QA, "--db", poll_file, "--trace",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        schema = TestTraceDocumentSchema()._schema()
        assert validate(payload, schema) == []
        assert payload["answer"] is True

    def test_answers_trace_json_validates(self, capsys, poll_file):
        assert main(["answers", QA, "--free", "p", "--db", poll_file,
                     "--trace", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        schema = TestTraceDocumentSchema()._schema()
        assert validate(payload, schema) == []
        assert payload["answers"] == 1 and payload["free"] == ["p"]

    def test_json_requires_trace(self, poll_file):
        with pytest.raises(SystemExit, match="--json requires --trace"):
            main(["certain", QA, "--db", poll_file, "--json"])

    def test_trace_out_writes_jsonl(self, capsys, tmp_path, poll_file):
        out_file = tmp_path / "spans.jsonl"
        assert main(["certain", QA, "--db", poll_file,
                     "--trace-out", str(out_file)]) == 0
        records = read_jsonl(str(out_file))
        assert records and records[0]["name"] == "certain"
        err = capsys.readouterr().err
        assert "span records" in err

    def test_trace_file_env_fallback(self, capsys, tmp_path, poll_file,
                                     monkeypatch):
        out_file = tmp_path / "env.jsonl"
        monkeypatch.setenv("REPRO_TRACE_FILE", str(out_file))
        assert main(["certain", QA, "--db", poll_file]) == 0
        capsys.readouterr()
        assert read_jsonl(str(out_file))

    def test_watch_trace_out(self, capsys, tmp_path, poll_file):
        stream = tmp_path / "ops.txt"
        stream.write_text("+ Likes 'dan' 'mons'\n")
        out_file = tmp_path / "watch.jsonl"
        assert main(["watch", QA, "--db", poll_file, "--free", "p",
                     "--stream", str(stream),
                     "--trace-out", str(out_file)]) == 0
        capsys.readouterr()
        records = read_jsonl(str(out_file))
        assert any(r["name"] == "view-maintain" for r in records)

    def test_stats_payload_has_schema_version(self, capsys, poll_file):
        assert main(["certain", QA, "--db", poll_file, "--stats"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["schema_version"] == 1
        assert {"plan_cache", "parallel", "views"} <= set(payload)
