"""Tests for the remaining reductions: S-COVERING (Ex 1.2), Lemma 5.4,
Lemma 6.6, the Θ gadgets (Lemmas 5.6/5.7), q4 (Ex 7.1), and the
non-reifiability gadget (Prop 7.2)."""

import pytest

from repro.core.query import Diseq, Query, QueryError
from repro.core.terms import Constant, Variable
from repro.cqa.brute_force import (
    find_falsifying_repair,
    is_certain_brute_force,
)
from repro.matching.hall import SCoveringInstance
from repro.reductions.diseq import eliminate_all_diseqs, eliminate_diseq
from repro.reductions.drop_negated import check_applicable, reduce_database
from repro.reductions.gadgets import (
    BOT,
    TwoCycleGadget,
    pair,
    reduce_lemma_5_6,
    reduce_lemma_5_7,
)
from repro.reductions.q4 import is_certain_q4
from repro.reductions.reify_gadget import build_gadget
from repro.reductions.scovering import (
    covering_from_repair,
    query_for,
    scovering_to_database,
)
from repro.workloads.generators import random_small_database
from repro.workloads.queries import (
    poll_q1,
    poll_q2,
    q1,
    q2,
    q3,
    q4,
    q_hall,
)

from conftest import db_from

x, y = Variable("x"), Variable("y")


class TestSCoveringReduction:
    def test_database_shape(self):
        inst = SCoveringInstance(["a", "b"], [["a"], ["a", "b"]])
        db = scovering_to_database(inst)
        assert db.contains("S", ("a",))
        assert db.contains("N1", ("c", "a"))
        assert db.contains("N2", ("c", "b"))
        assert not db.contains("N1", ("c", "b"))

    def test_equivalence(self, rng):
        for _ in range(25):
            n = rng.randint(1, 3)
            ell = rng.randint(0, 3)
            elements = list(range(n))
            subsets = [[e for e in elements if rng.random() < 0.5]
                       for _ in range(ell)]
            inst = SCoveringInstance(elements, subsets)
            db = scovering_to_database(inst)
            certain = is_certain_brute_force(query_for(inst), db)
            assert certain == (not inst.solvable)

    def test_covering_extraction(self):
        inst = SCoveringInstance(["a", "b"], [["a", "b"], ["a", "b"]])
        db = scovering_to_database(inst)
        repair = find_falsifying_repair(query_for(inst), db)
        assert repair is not None
        covering = covering_from_repair(inst, repair)
        assert covering is not None
        assert set(covering) == {"a", "b"}
        assert len(set(covering.values())) == 2


class TestLemma54:
    def test_hypothesis_checked(self):
        with pytest.raises(ValueError):
            check_applicable(q3(), q_hall(2))

    def test_reduction_empties_added_relations(self):
        sub, full = q_hall(1), q_hall(2)
        db = db_from({"S/1/1": [("a",)], "N1/2/1": [("c", "a")],
                      "N2/2/1": [("c", "zzz")]})
        out = reduce_database(sub, full, db)
        assert out.facts("N2") == frozenset()
        assert out.facts("N1") == {("c", "a")}

    def test_certainty_preserved(self, rng):
        sub, full = q_hall(1), q_hall(3)
        for _ in range(20):
            db = random_small_database(sub, rng, domain_size=3)
            out = reduce_database(sub, full, db)
            assert is_certain_brute_force(sub, db) == \
                is_certain_brute_force(full, out)


class TestLemma66Diseq:
    def test_eliminate_one(self):
        d = Diseq([(y, Constant(9))])
        q = q3().with_diseq(d)
        db = db_from({"P/2/1": [(1, 2)], "N/2/1": []})
        new_q, new_db = eliminate_diseq(q, d, db)
        assert not new_q.diseqs
        assert len(new_q.negatives) == 2
        e_atom = [a for a in new_q.negatives if a.relation.startswith("E")][0]
        assert e_atom.is_all_key
        assert new_db.contains(e_atom.relation, (9,))

    def test_certainty_preserved(self, rng):
        d = Diseq([(y, Constant(1))])
        q = q3().with_diseq(d)
        for _ in range(20):
            db = random_small_database(q3(), rng, domain_size=3)
            new_q, new_db = eliminate_all_diseqs(q, db)
            assert is_certain_brute_force(q, db) == \
                is_certain_brute_force(new_q, new_db)

    def test_variable_vs_variable_rejected(self):
        d = Diseq([(x, y)])
        q = Query([__import__("repro.core.atoms", fromlist=["atom"]).atom(
            "R", [x], [y])], [], [d])
        with pytest.raises(QueryError):
            eliminate_diseq(q, d, db_from({}))

    def test_foreign_diseq_rejected(self):
        d = Diseq([(y, Constant(1))])
        with pytest.raises(QueryError):
            eliminate_diseq(q3(), d, db_from({}))


class TestThetaGadgets:
    def test_requires_two_cycle(self):
        q = q3()
        with pytest.raises(ValueError):
            TwoCycleGadget(q, q.atom_for("P"), q.atom_for("N"))

    def test_theta_values(self):
        q = q1()
        g = TwoCycleGadget(q, q.atom_for("R"), q.atom_for("S"))
        theta = g.theta("a", "b")
        values = set(theta.values())
        assert values <= {"a", "b", pair("a", "b"), BOT}

    def test_lemma56_preserves_certainty(self, rng):
        source = q1()
        target = poll_q1()
        f, g = target.atom_for("Mayor"), target.atom_for("Lives")
        for _ in range(20):
            db = random_small_database(source, rng, domain_size=3)
            _, out = reduce_lemma_5_6(target, f, g, db)
            assert is_certain_brute_force(source, db) == \
                is_certain_brute_force(target, out)

    def test_lemma56_polarity_checked(self):
        q = q1()
        with pytest.raises(ValueError):
            reduce_lemma_5_6(q, q.atom_for("S"), q.atom_for("R"), db_from({}))

    def test_lemma57_preserves_certainty(self, rng):
        source = q2()
        target = poll_q2()
        f, g = target.atom_for("Lives"), target.atom_for("Mayor")
        for _ in range(20):
            db = random_small_database(source, rng, domain_size=3)
            _, out = reduce_lemma_5_7(target, f, g, db)
            assert is_certain_brute_force(source, db) == \
                is_certain_brute_force(target, out)

    def test_lemma57_polarity_checked(self):
        q = poll_q2()
        with pytest.raises(ValueError):
            reduce_lemma_5_7(q, q.atom_for("Likes"), q.atom_for("Mayor"),
                             db_from({}))


class TestQ4Solver:
    def test_counting_region(self):
        db = db_from({"X/1/1": [(i,) for i in range(3)],
                      "Y/1/1": [(j,) for j in range(3)],
                      "R/2/1": [], "S/2/1": []})
        assert is_certain_q4(db)  # 9 > 6

    def test_empty_side(self):
        db = db_from({"X/1/1": [], "Y/1/1": [(1,)], "R/2/1": [], "S/2/1": []})
        assert not is_certain_q4(db)

    def test_m1_coverable(self):
        db = db_from({"X/1/1": [("a",)], "Y/1/1": [("b1",), ("b2",)],
                      "R/2/1": [], "S/2/1": [("b1", "a"), ("b2", "a")]})
        assert not is_certain_q4(db)

    def test_m1_uncoverable(self):
        db = db_from({"X/1/1": [("a",)], "Y/1/1": [("b1",), ("b2",)],
                      "R/2/1": [], "S/2/1": [("b1", "a")]})
        assert is_certain_q4(db)

    def test_m1_r_pick_covers_last(self):
        db = db_from({"X/1/1": [("a",)], "Y/1/1": [("b1",), ("b2",)],
                      "R/2/1": [("a", "b2")], "S/2/1": [("b1", "a")]})
        assert not is_certain_q4(db)

    def test_2x2_cross_configuration(self):
        db = db_from({
            "X/1/1": [("a1",), ("a2",)],
            "Y/1/1": [("b1",), ("b2",)],
            "R/2/1": [("a1", "b1"), ("a2", "b2")],
            "S/2/1": [("b1", "a2"), ("b2", "a1")],
        })
        assert not is_certain_q4(db)

    def test_2x2_without_cross(self):
        db = db_from({
            "X/1/1": [("a1",), ("a2",)],
            "Y/1/1": [("b1",), ("b2",)],
            "R/2/1": [("a1", "b1"), ("a2", "b1")],
            "S/2/1": [("b1", "a2"), ("b2", "a1")],
        })
        assert is_certain_q4(db)

    def test_matches_brute_force(self, rng):
        query = q4()
        for _ in range(80):
            db = random_small_database(query, rng, domain_size=3,
                                       facts_per_relation=4)
            assert is_certain_q4(db) == is_certain_brute_force(query, db), \
                repr(db)


class TestProposition72Gadget:
    @pytest.mark.parametrize("make,f_name,var_name", [
        (q1, "R", "y"), (q1, "S", "x"),
        (q2, "S", "y"), (q2, "T", "x"),
        (q3, "N", "x"), (q3, "N", "y"),
    ])
    def test_gadget_exhibits_non_reifiability(self, make, f_name, var_name):
        query = make()
        var = Variable(var_name)
        gadget = build_gadget(query, query.atom_for(f_name), var)
        assert gadget.db.repair_count() == 2
        assert is_certain_brute_force(query, gadget.db)
        for c in (gadget.constant_a, gadget.constant_b):
            grounded = query.substitute({var: Constant(c)})
            assert not is_certain_brute_force(grounded, gadget.db)

    def test_repairs_are_the_two_claimed(self):
        query = q1()
        gadget = build_gadget(query, query.atom_for("R"), Variable("y"))
        from repro.db.repairs import is_repair_of

        assert is_repair_of(gadget.repair_a, gadget.db)
        assert is_repair_of(gadget.repair_b, gadget.db)
        assert gadget.repair_a != gadget.repair_b

    def test_unattacked_variable_rejected(self):
        query = q3()
        with pytest.raises(ValueError):
            build_gadget(query, query.atom_for("P"), Variable("x"))

    def test_distinct_constants_required(self):
        query = q1()
        with pytest.raises(ValueError):
            build_gadget(query, query.atom_for("R"), Variable("y"), "a", "a")
