"""SQL pushdown: the sqlite mirror and the method="auto" routing gate.

The mirror must stay delta-consistent with its store (one transaction
per changelog batch, clock recorded alongside), rebuild exactly when
its recorded clock diverges, and the ``prefer_sql`` gate must route to
it only for mirror-backed databases above the size threshold whose
compiled plan avoids Adom* operators.
"""

from __future__ import annotations

import pytest

from repro.core.atoms import RelationSchema
from repro.core.parser import parse_query
from repro.core.terms import Variable
from repro.cqa.certain_answers import OpenQuery, certain_answers
from repro.cqa.engine import CertaintyEngine
from repro.fo.compile import plan_cache
from repro.db.database import Database
from repro.fo.sql import encode_value, table_name
from repro.workloads.queries import poll_qa
from repro.storage import (
    PersistentDatabase,
    mirror_capable,
    mirror_connection,
    prefer_sql,
    reset_storage_stats,
    sql_mirror,
    storage_stats,
)

QUERY = "R(x | y), not S(y | x)"  # data-plane tests only (not in FO)

#: poll_qa's schemas, for the tests that need a compiled Boolean plan.
POLL_SCHEMAS = (RelationSchema("Lives", 2, 1), RelationSchema("Born", 2, 1),
                RelationSchema("Likes", 2, 2))


@pytest.fixture(autouse=True)
def _fresh_stats():
    reset_storage_stats()
    yield
    reset_storage_stats()


def make_store(path):
    db = PersistentDatabase(path)
    db.add_relation(RelationSchema("R", 2, 1))
    db.add_relation(RelationSchema("S", 2, 1))
    return db


def make_poll_store(path):
    db = PersistentDatabase(path)
    for schema in POLL_SCHEMAS:
        db.add_relation(schema)
    return db


def mirror_rows(mirror, relation):
    """The mirror's rows for one relation, decoded for comparison
    against plain fact tuples (the mirror stores the sqlite backend's
    TEXT encoding)."""
    cur = mirror.conn.execute(f"SELECT * FROM {table_name(relation)}")
    return set(cur.fetchall())


def encoded(rows):
    return {tuple(encode_value(v) for v in row) for row in rows}


class TestMirror:
    def test_rebuild_then_delta_consistency(self, tmp_path):
        db = make_store(tmp_path / "store")
        db.add_all("R", [("a", "1"), ("b", "2")])
        mirror = sql_mirror(db)
        assert storage_stats()["pushdown"]["mirror_rebuilds"] == 1
        assert mirror_rows(mirror, "R") == encoded({("a", "1"), ("b", "2")})

        db.add("R", ("c", "3"))
        db.discard("R", ("a", "1"))
        with db.batch():
            db.add("S", ("9", "z"))
            db.add("S", ("8", "y"))
        assert mirror_rows(mirror, "R") == encoded({("b", "2"), ("c", "3")})
        assert mirror_rows(mirror, "S") == encoded({("9", "z"), ("8", "y")})
        assert mirror.clock == db.clock
        # Deltas, not rebuilds, carried all of that.
        assert storage_stats()["pushdown"]["mirror_rebuilds"] == 1
        db.close()

    def test_reattach_at_matching_clock_skips_rebuild(self, tmp_path):
        db = make_store(tmp_path / "store")
        db.add("R", ("a", "1"))
        sql_mirror(db)
        db.close()
        reset_storage_stats()

        db2 = PersistentDatabase(tmp_path / "store")
        mirror = sql_mirror(db2)
        assert storage_stats()["pushdown"]["mirror_rebuilds"] == 0
        assert mirror_rows(mirror, "R") == encoded({("a", "1")})
        db2.close()

    def test_stale_mirror_rebuilds(self, tmp_path):
        db = make_store(tmp_path / "store")
        db.add("R", ("a", "1"))
        sql_mirror(db)
        db.close()
        # Mutate without attaching the mirror: its clock goes stale.
        db2 = PersistentDatabase(tmp_path / "store")
        db2.add("R", ("b", "2"))
        db2.close()
        reset_storage_stats()

        db3 = PersistentDatabase(tmp_path / "store")
        mirror = sql_mirror(db3)
        assert storage_stats()["pushdown"]["mirror_rebuilds"] == 1
        assert mirror_rows(mirror, "R") == encoded({("a", "1"), ("b", "2")})
        db3.close()

    def test_new_relation_after_attach(self, tmp_path):
        db = make_store(tmp_path / "store")
        mirror = sql_mirror(db)
        db.add_relation(RelationSchema("T", 1, 1))
        db.add("T", ("t",))
        assert mirror_rows(mirror, "T") == encoded({("t",)})
        db.close()

    def test_close_detaches_mirror(self, tmp_path):
        db = make_store(tmp_path / "store")
        sql_mirror(db)
        db.close()
        assert not hasattr(db, "_sql_mirror")


class TestRouting:
    def compiled(self, db):
        engine = CertaintyEngine(poll_qa())
        return plan_cache.get_or_compile(engine.rewriting, db)

    def test_plain_database_never_routed(self):
        db = Database()
        for schema in POLL_SCHEMAS:
            db.add_relation(schema)
        db.add("Lives", ("p", "t"))
        assert not mirror_capable(db)
        assert not prefer_sql(self.compiled(db), db)
        assert mirror_connection(db) is None
        assert storage_stats()["pushdown"]["legacy_sql"] == 1

    def test_small_store_falls_back(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_SQL_MIN_FACTS", raising=False)
        db = make_poll_store(tmp_path / "store")
        db.add("Lives", ("p", "t"))
        assert not prefer_sql(self.compiled(db), db)
        assert storage_stats()["pushdown"]["fallback_small"] == 1
        db.close()

    def test_threshold_env_routes(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SQL_MIN_FACTS", "2")
        db = make_poll_store(tmp_path / "store")
        db.add_all("Lives", [("p", "t"), ("q", "u")])
        compiled = self.compiled(db)
        from repro.analysis.verifier import plan_uses_adom

        assert prefer_sql(compiled, db) == (not plan_uses_adom(compiled.plan))
        db.close()

    def test_adom_plan_falls_back(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SQL_MIN_FACTS", "0")
        db = make_store(tmp_path / "store")
        db.add("R", ("a", "1"))
        # A constant in a negated key position compiles through an
        # active-domain operator, which the pushdown refuses (QP110).
        engine = CertaintyEngine(parse_query("P(x | y), not N('c' | y)"))
        db.add_relation(RelationSchema("P", 2, 1))
        db.add_relation(RelationSchema("N", 2, 1))
        compiled = plan_cache.get_or_compile(engine.rewriting, db)
        from repro.analysis.verifier import plan_uses_adom

        if plan_uses_adom(compiled.plan):
            assert not prefer_sql(compiled, db)
            assert storage_stats()["pushdown"]["fallback_adom"] == 1
        else:  # pragma: no cover - plan shape changed; gate is moot
            assert prefer_sql(compiled, db)
        db.close()

    def test_mirror_connection_counts_routed(self, tmp_path):
        db = make_store(tmp_path / "store")
        assert mirror_connection(db) is not None
        assert storage_stats()["pushdown"]["routed_sql"] == 1
        db.close()


class TestEndToEnd:
    def seed(self, db):
        db.add_all("R", [("a", "1"), ("a", "2"), ("b", "1"), ("c", "4")])
        db.add_all("S", [("1", "b"), ("4", "c")])

    def test_sql_method_answers_match(self, tmp_path):
        db = make_store(tmp_path / "store")
        self.seed(db)
        oq = OpenQuery(parse_query(QUERY), [Variable("x")])
        assert (certain_answers(oq, db, "sql")
                == certain_answers(oq, db, "compiled"))
        # The sql run went through the mirror, not a fresh load.
        assert storage_stats()["pushdown"]["routed_sql"] >= 1
        assert storage_stats()["pushdown"]["legacy_sql"] == 0
        db.close()

    def seed_poll(self, db):
        db.add_all("Lives", [("ann", "ghent"), ("ann", "mons"),
                             ("bob", "ghent")])
        db.add_all("Born", [("ann", "mons")])
        db.add_all("Likes", [("bob", "ghent")])

    def test_sql_method_boolean_match(self, tmp_path):
        db = make_poll_store(tmp_path / "store")
        self.seed_poll(db)
        engine = CertaintyEngine(poll_qa())
        assert engine.certain(db, "sql") == engine.certain(db, "compiled")
        assert storage_stats()["pushdown"]["routed_sql"] >= 1
        db.close()

    def test_auto_routes_to_sql_above_threshold(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SQL_MIN_FACTS", "2")
        db = make_poll_store(tmp_path / "store")
        self.seed_poll(db)
        engine = CertaintyEngine(poll_qa())
        expected = engine.certain(db, "compiled")
        assert engine.certain(db, "auto") == expected
        db.close()

    def test_mirror_answers_track_updates(self, tmp_path):
        db = make_store(tmp_path / "store")
        self.seed(db)
        oq = OpenQuery(parse_query(QUERY), [Variable("x")])
        certain_answers(oq, db, "sql")  # warm the mirror
        db.add("S", ("2", "a"))
        db.discard("S", ("1", "b"))
        assert (certain_answers(oq, db, "sql")
                == certain_answers(oq, db, "compiled"))
        db.close()
