"""SQL pushdown: the integer-encoded mirror and the routing gate.

The mirror must stay delta-consistent with its store (one transaction
per changelog batch, clock + dictionary + active-domain refcounts
recorded alongside), rebuild exactly when its recorded clock, format,
or persisted dictionary diverges, and the ``prefer_sql`` gate must
route to it only for mirror-backed databases above the size threshold
whose compiled plan the native SQL compiler can translate — which,
since the ``repro_adom`` table, includes every ``Adom*``-bearing plan.
"""

from __future__ import annotations

import types

import pytest

from repro.core.atoms import RelationSchema
from repro.core.parser import parse_query
from repro.core.terms import Variable
from repro.cqa.certain_answers import OpenQuery, certain_answers
from repro.cqa.engine import CertaintyEngine
from repro.fo.compile import plan_cache
from repro.fo.plan import (
    AdomEq,
    AdomGuard,
    AdomProduct,
    Join,
    Plan,
    Project,
    Scan,
    execute_plan,
)
from repro.db.database import Database
from repro.fo.sql import table_name
from repro.workloads.queries import poll_qa
from repro.storage import (
    PersistentDatabase,
    mirror_capable,
    native_sql_answers,
    native_sql_holds,
    prefer_sql,
    reset_storage_stats,
    sql_mirror,
    storage_stats,
    supports_plan,
)

QUERY = "R(x | y), not S(y | x)"

#: poll_qa's schemas, for the tests that need a compiled Boolean plan.
POLL_SCHEMAS = (RelationSchema("Lives", 2, 1), RelationSchema("Born", 2, 1),
                RelationSchema("Likes", 2, 2))

x, y = Variable("x"), Variable("y")


@pytest.fixture(autouse=True)
def _fresh_stats():
    reset_storage_stats()
    yield
    reset_storage_stats()


def make_store(path):
    db = PersistentDatabase(path)
    db.add_relation(RelationSchema("R", 2, 1))
    db.add_relation(RelationSchema("S", 2, 1))
    return db


def make_poll_store(path):
    db = PersistentDatabase(path)
    for schema in POLL_SCHEMAS:
        db.add_relation(schema)
    return db


def mirror_rows(mirror, relation):
    """The mirror's rows for one relation, decoded back to values
    (the mirror stores dictionary codes in INTEGER columns)."""
    cur = mirror.conn.execute(f"SELECT * FROM {table_name(relation)}")
    decode = mirror.dictionary.decode
    return {tuple(decode(code) for code in row) for row in cur.fetchall()}


def adom_values(mirror):
    """The decoded contents of the maintained active-domain table."""
    cur = mirror.conn.execute("SELECT code FROM repro_adom")
    return {mirror.dictionary.decode(code) for (code,) in cur.fetchall()}


def fake_compiled(plan, constants=(), free=None):
    """A CompiledQuery stand-in for synthetic plans."""
    return types.SimpleNamespace(
        plan=plan, constants=tuple(constants),
        free=tuple(plan.cols if free is None else free))


class _OpaquePlan(Plan):
    """A plan node type the SQL compiler has never heard of."""

    __slots__ = ()

    def __init__(self):
        super().__init__((x,))


class TestMirror:
    def test_rebuild_then_delta_consistency(self, tmp_path):
        db = make_store(tmp_path / "store")
        db.add_all("R", [("a", "1"), ("b", "2")])
        mirror = sql_mirror(db)
        assert storage_stats()["pushdown"]["mirror_rebuilds"] == 1
        assert mirror_rows(mirror, "R") == {("a", "1"), ("b", "2")}

        db.add("R", ("c", "3"))
        db.discard("R", ("a", "1"))
        with db.batch():
            db.add("S", ("9", "z"))
            db.add("S", ("8", "y"))
        assert mirror_rows(mirror, "R") == {("b", "2"), ("c", "3")}
        assert mirror_rows(mirror, "S") == {("9", "z"), ("8", "y")}
        assert mirror.clock == db.clock
        # Deltas, not rebuilds, carried all of that.
        assert storage_stats()["pushdown"]["mirror_rebuilds"] == 1
        db.close()

    def test_adom_table_tracks_active_domain(self, tmp_path):
        db = make_store(tmp_path / "store")
        db.add_all("R", [("a", "1"), ("a", "2")])
        mirror = sql_mirror(db)
        assert adom_values(mirror) == {"a", "1", "2"}
        # "a" occurs twice: deleting one occurrence must keep it.
        db.discard("R", ("a", "1"))
        assert adom_values(mirror) == {"a", "2"}
        db.add("S", ("1", "z"))
        assert adom_values(mirror) == {"a", "2", "1", "z"}
        db.discard("R", ("a", "2"))
        assert adom_values(mirror) == {"1", "z"}
        db.close()

    def test_reattach_at_matching_clock_skips_rebuild(self, tmp_path):
        db = make_store(tmp_path / "store")
        db.add("R", ("a", "1"))
        sql_mirror(db)
        db.close()
        reset_storage_stats()

        # A fresh process has an empty in-process dictionary; the
        # persisted repro_dict replays into it code-for-code, so the
        # integer columns stay meaningful without a rebuild.
        db2 = PersistentDatabase(tmp_path / "store")
        mirror = sql_mirror(db2)
        assert storage_stats()["pushdown"]["mirror_rebuilds"] == 0
        assert mirror_rows(mirror, "R") == {("a", "1")}
        db2.close()

    def test_diverged_dictionary_rebuilds(self, tmp_path):
        db = make_store(tmp_path / "store")
        db.add_all("R", [("a", "1"), ("b", "2")])
        sql_mirror(db)
        db.close()
        reset_storage_stats()

        db2 = PersistentDatabase(tmp_path / "store")
        # Prime the in-process dictionary in a different first-seen
        # order than the persisted one before the mirror attaches.
        from repro.columnar.dictionary import columnar_store

        columnar_store(db2).dictionary.encode("something-new")
        mirror = sql_mirror(db2)
        assert storage_stats()["pushdown"]["mirror_rebuilds"] == 1
        assert mirror_rows(mirror, "R") == {("a", "1"), ("b", "2")}
        db2.close()

    def test_stale_mirror_rebuilds(self, tmp_path):
        db = make_store(tmp_path / "store")
        db.add("R", ("a", "1"))
        sql_mirror(db)
        db.close()
        # Mutate without attaching the mirror: its clock goes stale.
        db2 = PersistentDatabase(tmp_path / "store")
        db2.add("R", ("b", "2"))
        db2.close()
        reset_storage_stats()

        db3 = PersistentDatabase(tmp_path / "store")
        mirror = sql_mirror(db3)
        assert storage_stats()["pushdown"]["mirror_rebuilds"] == 1
        assert mirror_rows(mirror, "R") == {("a", "1"), ("b", "2")}
        db3.close()

    def test_old_text_mirror_format_rebuilds(self, tmp_path):
        db = make_store(tmp_path / "store")
        db.add("R", ("a", "1"))
        mirror = sql_mirror(db)
        # Forge a pre-integer mirror: wrong format marker, same clock.
        mirror.conn.execute(
            "INSERT OR REPLACE INTO repro_meta VALUES ('format', '1')")
        mirror.conn.commit()
        db.close()
        reset_storage_stats()

        db2 = PersistentDatabase(tmp_path / "store")
        mirror2 = sql_mirror(db2)
        assert storage_stats()["pushdown"]["mirror_rebuilds"] == 1
        assert mirror_rows(mirror2, "R") == {("a", "1")}
        db2.close()

    def test_tables_are_integer_with_indexes(self, tmp_path):
        db = make_store(tmp_path / "store")
        db.add("R", ("a", "1"))
        mirror = sql_mirror(db)
        cols = mirror.conn.execute('PRAGMA table_info("R")').fetchall()
        assert [c[2] for c in cols] == ["INTEGER", "INTEGER"]
        # key_size 1 < arity 2: a non-key suffix index exists.
        indexes = mirror.conn.execute(
            "SELECT name FROM sqlite_master "
            "WHERE type = 'index' AND tbl_name = 'R'").fetchall()
        assert any("suffix" in name for (name,) in indexes)
        db.close()

    def test_new_relation_after_attach(self, tmp_path):
        db = make_store(tmp_path / "store")
        mirror = sql_mirror(db)
        db.add_relation(RelationSchema("T", 1, 1))
        db.add("T", ("t",))
        assert mirror_rows(mirror, "T") == {("t",)}
        db.close()

    def test_close_detaches_mirror(self, tmp_path):
        db = make_store(tmp_path / "store")
        sql_mirror(db)
        db.close()
        assert not hasattr(db, "_sql_mirror")


class TestRouting:
    def compiled(self, db):
        engine = CertaintyEngine(poll_qa())
        return plan_cache.get_or_compile(engine.rewriting, db)

    def test_plain_database_never_routed(self):
        db = Database()
        for schema in POLL_SCHEMAS:
            db.add_relation(schema)
        db.add("Lives", ("p", "t"))
        compiled = self.compiled(db)
        assert not mirror_capable(db)
        assert not prefer_sql(compiled, db)
        assert native_sql_holds(compiled, db) is None
        # method="sql" still works, via the legacy load-per-call path.
        engine = CertaintyEngine(poll_qa())
        assert engine.certain(db, "sql") == engine.certain(db, "compiled")
        assert storage_stats()["pushdown"]["legacy_sql"] == 1
        assert storage_stats()["pushdown"]["routed_sql"] == 0

    def test_small_store_falls_back(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_SQL_MIN_FACTS", raising=False)
        db = make_poll_store(tmp_path / "store")
        db.add("Lives", ("p", "t"))
        assert not prefer_sql(self.compiled(db), db)
        assert storage_stats()["pushdown"]["fallback_small"] == 1
        db.close()

    def test_threshold_env_routes(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SQL_MIN_FACTS", "2")
        db = make_poll_store(tmp_path / "store")
        db.add_all("Lives", [("p", "t"), ("q", "u")])
        assert prefer_sql(self.compiled(db), db)
        db.close()

    def test_bad_threshold_env_uses_default(self, tmp_path, monkeypatch):
        # Negatives, hex, whitespace junk: ignored, default 4096 holds,
        # so a 2-fact store falls back small instead of crashing.
        for bad in ("-5", "0x10", "  ", "many"):
            monkeypatch.setenv("REPRO_SQL_MIN_FACTS", bad)
            db = make_poll_store(tmp_path / f"store-{hash(bad) % 997}")
            db.add_all("Lives", [("p", "t"), ("q", "u")])
            assert not prefer_sql(self.compiled(db), db)
            db.close()

    def test_adom_plans_route(self, tmp_path, monkeypatch):
        # The flip of the old gate: Adom*-bearing plans are served by
        # the maintained repro_adom table instead of forcing the
        # in-memory executors.
        monkeypatch.setenv("REPRO_SQL_MIN_FACTS", "0")
        db = make_store(tmp_path / "store")
        db.add("R", ("a", "1"))
        compiled = fake_compiled(Project(AdomProduct((x,)), (x,)))
        assert supports_plan(compiled.plan)
        assert prefer_sql(compiled, db)
        assert storage_stats()["pushdown"]["fallback_unsupported"] == 0
        db.close()

    def test_unsupported_plan_falls_back(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SQL_MIN_FACTS", "0")
        db = make_store(tmp_path / "store")
        db.add("R", ("a", "1"))
        compiled = fake_compiled(_OpaquePlan())
        assert not supports_plan(compiled.plan)
        assert not prefer_sql(compiled, db)
        assert storage_stats()["pushdown"]["fallback_unsupported"] == 1
        # The native entry points refuse it too (callers fall back).
        assert native_sql_answers(compiled, db) is None
        assert storage_stats()["pushdown"]["native_sql"] == 0
        db.close()


class TestStatementCache:
    def test_repeat_queries_hit_cache(self, tmp_path):
        db = make_store(tmp_path / "store")
        db.add_all("R", [("a", "1"), ("b", "2")])
        db.add_all("S", [("1", "b")])
        oq = OpenQuery(parse_query(QUERY), [Variable("x")])
        certain_answers(oq, db, "sql")
        misses = storage_stats()["pushdown"]["stmt_cache_misses"]
        assert misses >= 1
        certain_answers(oq, db, "sql")
        certain_answers(oq, db, "sql")
        stats = storage_stats()["pushdown"]
        assert stats["stmt_cache_hits"] >= 2
        assert stats["stmt_cache_misses"] == misses
        db.close()

    def test_cache_disabled_by_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SQL_STMT_CACHE", "0")
        db = make_store(tmp_path / "store")
        db.add_all("R", [("a", "1")])
        oq = OpenQuery(parse_query(QUERY), [Variable("x")])
        certain_answers(oq, db, "sql")
        certain_answers(oq, db, "sql")
        stats = storage_stats()["pushdown"]
        assert stats["stmt_cache_hits"] == 0
        assert stats["stmt_cache_misses"] == 0
        assert sql_mirror(db).stats()["stmt_cache"]["capacity"] == 0
        db.close()


class TestAdomNative:
    """Adom* plans execute natively with executor parity on real stores."""

    def seed(self, tmp_path):
        db = make_store(tmp_path / "store")
        db.add_all("R", [("a", "1"), ("a", "2"), ("d", "d")])
        db.add_all("S", [("1", "b")])
        return db

    @pytest.mark.parametrize("make_plan,constants", [
        (lambda: Project(AdomProduct((x,)), (x,)), ()),
        (lambda: Project(AdomProduct((x,)), (x,)), ("zzz",)),
        (lambda: AdomEq(x, y), ()),
        (lambda: Join(Scan(parse_query("R(x | y)").atoms[0]),
                      AdomGuard()), ()),
    ])
    def test_synthetic_adom_parity(self, tmp_path, make_plan, constants):
        db = self.seed(tmp_path)
        plan = make_plan()
        compiled = fake_compiled(plan, constants)
        got = native_sql_answers(compiled, db)
        expect = frozenset(execute_plan(plan, db, constants))
        assert got == expect
        # Stays correct after deltas shrink and grow the domain.
        db.discard("R", ("a", "1"))
        db.add("R", ("e", "f"))
        got = native_sql_answers(compiled, db)
        expect = frozenset(execute_plan(plan, db, constants))
        assert got == expect
        db.close()

    def test_adom_constants_outside_database(self, tmp_path):
        # The executor's adom is active_domain ∪ plan constants; a
        # constant the database has never seen must still be ranged
        # over, via a bind-time parameter in the adom CTE.
        db = self.seed(tmp_path)
        plan = Project(AdomProduct((x,)), (x,))
        got = native_sql_answers(fake_compiled(plan, ("ghost",)), db)
        assert got is not None and ("ghost",) in got
        db.close()


class TestEndToEnd:
    def seed(self, db):
        db.add_all("R", [("a", "1"), ("a", "2"), ("b", "1"), ("c", "4")])
        db.add_all("S", [("1", "b"), ("4", "c")])

    def test_sql_method_answers_match(self, tmp_path):
        db = make_store(tmp_path / "store")
        self.seed(db)
        oq = OpenQuery(parse_query(QUERY), [Variable("x")])
        assert (certain_answers(oq, db, "sql")
                == certain_answers(oq, db, "compiled"))
        # The sql run ran natively inside the mirror, not a fresh load.
        stats = storage_stats()["pushdown"]
        assert stats["routed_sql"] >= 1
        assert stats["native_sql"] >= 1
        assert stats["legacy_sql"] == 0
        db.close()

    def seed_poll(self, db):
        db.add_all("Lives", [("ann", "ghent"), ("ann", "mons"),
                             ("bob", "ghent")])
        db.add_all("Born", [("ann", "mons")])
        db.add_all("Likes", [("bob", "ghent")])

    def test_sql_method_boolean_match(self, tmp_path):
        db = make_poll_store(tmp_path / "store")
        self.seed_poll(db)
        engine = CertaintyEngine(poll_qa())
        assert engine.certain(db, "sql") == engine.certain(db, "compiled")
        assert storage_stats()["pushdown"]["native_sql"] >= 1
        db.close()

    def test_auto_routes_to_sql_above_threshold(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SQL_MIN_FACTS", "2")
        db = make_poll_store(tmp_path / "store")
        self.seed_poll(db)
        engine = CertaintyEngine(poll_qa())
        expected = engine.certain(db, "compiled")
        assert engine.certain(db, "auto") == expected
        db.close()

    def test_mirror_answers_track_updates(self, tmp_path):
        db = make_store(tmp_path / "store")
        self.seed(db)
        oq = OpenQuery(parse_query(QUERY), [Variable("x")])
        certain_answers(oq, db, "sql")  # warm the mirror
        db.add("S", ("2", "a"))
        db.discard("S", ("1", "b"))
        assert (certain_answers(oq, db, "sql")
                == certain_answers(oq, db, "compiled"))
        db.close()
