"""Property tests: incremental views agree with full recompute (and
with brute force) over randomized insert/discard sequences.

Extends the strategies of ``test_compiled_vs_eval_property``: the same
hypothesis formula generator drives arbitrary FO views through update
streams, and randomized sjfBCQ¬ workloads cross-validate maintained
certain answers against fresh compiled runs and repair enumeration —
including the deletions that *flip a query certain* (retraction-induced
insertions through anti-join/difference state).
"""

from __future__ import annotations

import random

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.classify import Verdict, classify
from repro.core.terms import Variable
from repro.cqa.brute_force import is_certain_brute_force
from repro.cqa.certain_answers import OpenQuery, certain_answers
from repro.cqa.engine import CertaintyEngine
from repro.fo.compile import compile_formula
from repro.fo.formula import free_variables
from repro.incremental import ViewManager
from repro.workloads.generators import (
    QueryParams,
    random_query,
    random_small_database,
)
from repro.workloads.queries import poll_qa, q3

from test_compiled_vs_eval_property import _db, formulas, rows1, rows2

# One update op: (insert?, relation, row); rows are truncated to the
# relation's arity when applied.
ops_lists = st.lists(
    st.tuples(
        st.booleans(),
        st.sampled_from(("R", "S")),
        st.tuples(st.integers(0, 2), st.integers(0, 2)),
    ),
    max_size=12,
)


def _apply(db, insert, relation, row):
    row = row if relation == "R" else row[:1]
    if insert:
        db.add(relation, row)
    else:
        db.discard(relation, row)


def _recompute(compiled, free, db):
    return compiled.rows(db) if free else compiled.holds(db)


def _observe(view, free):
    return view.answers if free else view.holds


@given(formulas, rows2, rows1, ops_lists)
@settings(max_examples=60, deadline=None)
def test_view_matches_recompute_per_mutation(formula, r_rows, s_rows, ops):
    """Single-op commits: after every mutation the maintained answers
    equal a fresh plan execution."""
    db = _db(r_rows, s_rows)
    free = tuple(sorted(free_variables(formula)))
    view = ViewManager(db).register_formula(formula, free)
    compiled = compile_formula(formula, free or None)
    assert _observe(view, free) == _recompute(compiled, free, db)
    for insert, relation, row in ops:
        _apply(db, insert, relation, row)
        assert _observe(view, free) == _recompute(compiled, free, db), (
            formula, ("+" if insert else "-", relation, row))


@given(formulas, rows2, rows1, ops_lists, st.integers(1, 5))
@settings(max_examples=40, deadline=None)
def test_view_matches_recompute_per_batch(formula, r_rows, s_rows, ops,
                                          batch_size):
    """Batched commits: ops are folded into net deltas before the view
    sees them (add-then-discard cancellation included)."""
    db = _db(r_rows, s_rows)
    free = tuple(sorted(free_variables(formula)))
    view = ViewManager(db).register_formula(formula, free)
    compiled = compile_formula(formula, free or None)
    for start in range(0, len(ops), batch_size):
        with db.batch():
            for insert, relation, row in ops[start:start + batch_size]:
                _apply(db, insert, relation, row)
        assert _observe(view, free) == _recompute(compiled, free, db)


@pytest.mark.parametrize("seed", range(4))
def test_random_boolean_stream_vs_brute_force(seed):
    """Random FO workloads under random update streams: the maintained
    Boolean view agrees with the compiled strategy at every step and
    with repair enumeration whenever that stays feasible."""
    rng = random.Random(0xD1F7A + seed)
    params = QueryParams(n_positive=2, n_negative=1, max_arity=2,
                         n_variables=3)
    query = random_query(params, rng)
    while classify(query).verdict is not Verdict.IN_FO:
        query = random_query(params, rng)
    db = random_small_database(query, rng, domain_size=3,
                               facts_per_relation=2)
    view = ViewManager(db).register_view(query)
    engine = CertaintyEngine(query)
    assert view.holds == engine.certain(db, "compiled")
    pool = sorted(set(db.active_domain()) | {0, 1, 2}, key=repr)
    schemas = [db.schemas[name] for name in db.relations()]
    for _ in range(20):
        schema = rng.choice(schemas)
        existing = sorted(db.facts(schema.name), key=repr)
        if existing and rng.random() < 0.45:
            db.discard(schema.name, rng.choice(existing))
        else:
            db.add(schema.name,
                   tuple(rng.choice(pool) for _ in range(schema.arity)))
        assert view.holds == engine.certain(db, "compiled"), (query, db)
        if db.repair_count() <= 400:
            assert view.holds == is_certain_brute_force(query, db), (query, db)


@pytest.mark.parametrize("make_query,free_names", [
    (q3, ["x"]),
    (poll_qa, ["p"]),
    (poll_qa, ["p", "t"]),
])
def test_open_view_stream_cross_validation(make_query, free_names, rng):
    """Maintained certain answers track the compiled recompute (and
    brute force on small instances) across mixed insert/discard streams;
    deletion-driven answer growth is asserted to actually occur."""
    query = make_query()
    free = [Variable(n) for n in free_names]
    open_query = OpenQuery(query, free)
    db = random_small_database(query, rng, domain_size=3,
                               facts_per_relation=3)
    view = ViewManager(db).register_view(query, free)
    assert view.answers == certain_answers(open_query, db, "compiled")
    pool = sorted(set(db.active_domain()) | {0, 1, 2}, key=repr)
    schemas = [db.schemas[name] for name in db.relations()]
    retraction_growth = 0
    for step in range(30):
        schema = rng.choice(schemas)
        existing = sorted(db.facts(schema.name), key=repr)
        before = view.answers
        deleted = bool(existing) and rng.random() < 0.5
        if deleted:
            db.discard(schema.name, rng.choice(existing))
        else:
            db.add(schema.name,
                   tuple(rng.choice(pool) for _ in range(schema.arity)))
        if deleted and view.answers - before:
            retraction_growth += 1
        assert view.answers == certain_answers(open_query, db, "compiled"), (
            query, db)
        if db.repair_count() <= 200:
            assert view.answers == certain_answers(open_query, db, "brute"), (
                query, db)
    # The streams are seeded so that certainty flips caused purely by
    # retraction show up; if this starts failing after a generator
    # change, re-seed rather than delete.
    if make_query is q3:
        assert retraction_growth > 0
