"""ExecutionOptions: the one request-shaped execution API.

The same frozen dataclass travels three ways — positionally into
``certain``/``certain_answers``, as the JSON body of a ``repro serve``
request, and merged out of the deprecated ``method=``/``jobs=``/
``config=`` keywords — so these tests pin its validation, coercion,
wire round-trip, and the legacy-shim semantics the engine relies on.
"""

from __future__ import annotations

import warnings

import pytest

from repro.core.parser import parse_query
from repro.cqa.engine import CertaintyEngine
from repro.db.database import Database
from repro.core.atoms import RelationSchema
from repro.obs import ExecutionOptions, OptionsError, RunConfig
from repro.obs.options import merge_legacy_options


class TestConstruction:
    def test_defaults(self):
        opts = ExecutionOptions()
        assert opts.method == "auto"
        assert opts.jobs is None
        assert opts.trace is False
        assert opts.resolved_method == "auto"

    def test_frozen(self):
        with pytest.raises(Exception):
            ExecutionOptions().method = "sql"  # type: ignore[misc]

    def test_unknown_method_rejected(self):
        with pytest.raises(OptionsError, match="unknown method"):
            ExecutionOptions(method="turbo")

    def test_jobs_requires_parallelizable_method(self):
        with pytest.raises(OptionsError, match="jobs= only applies"):
            ExecutionOptions(method="compiled", jobs=2)

    def test_jobs_with_auto_resolves_to_parallel(self):
        opts = ExecutionOptions(jobs=2)
        assert opts.method == "auto"
        assert opts.resolved_method == "parallel"

    def test_positive_fields_validated(self):
        with pytest.raises(OptionsError):
            ExecutionOptions(method="parallel", jobs=0)
        with pytest.raises(OptionsError):
            ExecutionOptions(shard_factor=-1)

    def test_nonnegative_fields_validated(self):
        assert ExecutionOptions(sql_min_facts=0).sql_min_facts == 0
        with pytest.raises(OptionsError):
            ExecutionOptions(parallel_min_facts=-5)

    def test_bool_is_not_an_int(self):
        with pytest.raises(OptionsError):
            ExecutionOptions(method="parallel", jobs=True)


class TestCoercion:
    def test_none_is_defaults(self):
        assert ExecutionOptions.coerce(None) == ExecutionOptions()

    def test_string_is_method_shorthand(self):
        assert ExecutionOptions.coerce("sql").method == "sql"

    def test_mapping_goes_through_from_dict(self):
        opts = ExecutionOptions.coerce({"method": "parallel", "jobs": 3})
        assert (opts.method, opts.jobs) == ("parallel", 3)

    def test_instance_passes_through(self):
        opts = ExecutionOptions(method="brute")
        assert ExecutionOptions.coerce(opts) is opts

    def test_unknown_keys_rejected(self):
        with pytest.raises(OptionsError, match="unknown option field"):
            ExecutionOptions.from_dict({"method": "sql", "workers": 4})

    def test_other_types_rejected(self):
        with pytest.raises((TypeError, OptionsError)):
            ExecutionOptions.coerce(42)  # type: ignore[arg-type]


class TestWireRoundTrip:
    def test_to_dict_is_compact(self):
        assert ExecutionOptions().to_dict() == {"method": "auto"}

    def test_round_trip_preserves_everything(self):
        opts = ExecutionOptions(method="parallel", jobs=4, shard_factor=2,
                                sql_min_facts=10, columnar_min_facts=7)
        assert ExecutionOptions.from_dict(opts.to_dict()) == opts

    def test_replace(self):
        opts = ExecutionOptions(method="auto").replace(method="sql")
        assert opts.method == "sql"

    def test_from_env_reads_gates(self, monkeypatch):
        monkeypatch.setenv("REPRO_SQL_MIN_FACTS", "123")
        opts = ExecutionOptions.from_env(method="sql")
        assert opts.sql_min_facts == 123
        assert opts.method == "sql"

    def test_run_config_lift(self):
        opts = ExecutionOptions(method="parallel", jobs=3, shard_factor=2)
        config = opts.run_config()
        assert isinstance(config, RunConfig)
        assert config.jobs == 3
        assert config.shard_factor == 2


class TestLegacyShims:
    def test_positional_string_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            opts = merge_legacy_options("compiled", where="t")
        assert opts.method == "compiled"

    def test_method_keyword_warns(self):
        with pytest.warns(DeprecationWarning, match="deprecated"):
            opts = merge_legacy_options(None, where="t", method="sql")
        assert opts.method == "sql"

    def test_jobs_keyword_warns_and_routes_parallel(self):
        with pytest.warns(DeprecationWarning):
            opts = merge_legacy_options(None, where="t", jobs=2)
        assert opts.resolved_method == "parallel"
        assert opts.jobs == 2

    def test_config_keyword_lifts_gates(self):
        config = RunConfig(sql_min_facts=55)
        with pytest.warns(DeprecationWarning):
            opts = merge_legacy_options(None, where="t", config=config)
        assert opts.sql_min_facts == 55

    def test_config_jobs_only_lifts_for_parallel(self):
        # Historical contract: certain_answers(..., method="compiled",
        # config=RunConfig(jobs=2)) ran serial compiled — keep it legal.
        config = RunConfig(jobs=2)
        with pytest.warns(DeprecationWarning):
            opts = merge_legacy_options("compiled", where="t", config=config)
        assert opts.method == "compiled"
        assert opts.jobs is None

    def test_options_beat_legacy_keywords(self):
        with pytest.warns(DeprecationWarning):
            opts = merge_legacy_options(
                ExecutionOptions(method="sql"), where="t", method="brute"
            )
        assert opts.method == "sql"


class TestEngineIntegration:
    QUERY = "P(x | y), not N('c' | y)"  # acyclic: FO-rewritable

    @staticmethod
    def _db():
        db = Database([RelationSchema("P", 2, 1), RelationSchema("N", 2, 1)])
        db.add("P", ("a", "b"))
        db.add("N", ("c", "d"))
        return db

    def test_engine_accepts_options_positionally(self):
        engine = CertaintyEngine(parse_query(self.QUERY))
        db = self._db()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            expected = engine.certain(db, "brute")
            assert engine.certain(db, ExecutionOptions(method="compiled")) \
                == expected
            assert engine.certain(db, {"method": "interpreted"}) == expected

    def test_engine_deprecated_method_keyword_still_works(self):
        engine = CertaintyEngine(parse_query(self.QUERY))
        db = self._db()
        with pytest.warns(DeprecationWarning):
            legacy = engine.certain(db, method="compiled")
        assert legacy == engine.certain(db, "compiled")
