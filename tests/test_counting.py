"""Tests for repair counting (#CERTAINTY)."""

import random

from repro.cqa.brute_force import is_certain_brute_force
from repro.cqa.counting import (
    RepairCount,
    count_satisfying_repairs,
    estimate_satisfying_fraction,
)
from repro.workloads.generators import random_small_database
from repro.workloads.queries import q1, q3

from conftest import db_from


class TestExactCount:
    def test_simple_half(self):
        db = db_from({"P/2/1": [(1, "a"), (1, "b")], "N/2/1": [("c", "a")]})
        count = count_satisfying_repairs(q3(), db)
        assert count == RepairCount(satisfying=1, total=2)
        assert count.fraction == 0.5
        assert not count.certain
        assert count.possible

    def test_certain_iff_all_satisfy(self, rng):
        for _ in range(25):
            db = random_small_database(q3(), rng, domain_size=3)
            count = count_satisfying_repairs(q3(), db)
            assert count.certain == is_certain_brute_force(q3(), db)

    def test_total_matches_block_product(self, rng):
        db = random_small_database(q1(), rng, domain_size=3,
                                   facts_per_relation=5)
        count = count_satisfying_repairs(q1(), db)
        assert count.total == db.restrict(["R", "S"]).repair_count()

    def test_empty_query_relations(self):
        db = db_from({})
        count = count_satisfying_repairs(q3(), db)
        assert count.total == 1
        assert count.satisfying == 0  # positive atom unmatched

    def test_possible_flag(self):
        db = db_from({"P/2/1": [(1, "a")], "N/2/1": [("c", "a")]})
        count = count_satisfying_repairs(q3(), db)
        assert not count.possible


class TestEstimate:
    def test_interval_contains_truth(self):
        rng = random.Random(3)
        # One block {a, b} with a blocked: exactly half the repairs
        # satisfy q3.
        db = db_from({"P/2/1": [(1, "a"), (1, "b")],
                      "N/2/1": [("c", "a")]})
        exact = count_satisfying_repairs(q3(), db).fraction
        assert exact == 0.5
        estimate = estimate_satisfying_fraction(q3(), db, samples=500,
                                                rng=rng)
        assert estimate.contains(exact)

    def test_interval_contains_truth_boundary(self):
        rng = random.Random(3)
        db = db_from({"P/2/1": [(1, "a"), (1, "b"), (2, "z")],
                      "N/2/1": [("c", "a")]})
        exact = count_satisfying_repairs(q3(), db).fraction
        assert exact == 1.0
        estimate = estimate_satisfying_fraction(q3(), db, samples=300,
                                                rng=rng)
        assert estimate.contains(exact)

    def test_extremes(self):
        rng = random.Random(4)
        db = db_from({"P/2/1": [(1, "a")], "N/2/1": []})
        est = estimate_satisfying_fraction(q3(), db, samples=50, rng=rng)
        assert est.estimate == 1.0
        assert est.high == 1.0

    def test_confidence_bounds_validated(self):
        import pytest

        with pytest.raises(ValueError):
            estimate_satisfying_fraction(q3(), db_from({}), confidence=1.5)

    def test_wider_interval_with_fewer_samples(self):
        rng1, rng2 = random.Random(5), random.Random(5)
        db = db_from({"P/2/1": [(1, "a"), (1, "b")], "N/2/1": [("c", "a")]})
        small = estimate_satisfying_fraction(q3(), db, samples=20, rng=rng1)
        large = estimate_satisfying_fraction(q3(), db, samples=2000, rng=rng2)
        assert (large.high - large.low) < (small.high - small.low)

    def test_z_value_sane(self):
        from repro.cqa.counting import _erfinv
        import math

        z95 = math.sqrt(2) * _erfinv(0.95)
        assert abs(z95 - 1.96) < 0.01
