"""Tests for non-Boolean certain answers (the free-variables extension)."""

import pytest

from repro.core.query import QueryError
from repro.core.terms import Variable
from repro.cqa.certain_answers import (
    OpenQuery,
    candidate_values,
    certain_answers,
    certain_answers_sql_query,
    cross_validate_answers,
    open_rewriting,
)
from repro.fo.formula import free_variables
from repro.workloads.generators import random_small_database
from repro.workloads.queries import poll_qa, q1, q3

from conftest import db_from

x, y = Variable("x"), Variable("y")
p, t = Variable("p"), Variable("t")


class TestOpenQuery:
    def test_free_vars_must_occur(self):
        with pytest.raises(QueryError):
            OpenQuery(q3(), [Variable("zzz")])

    def test_free_vars_must_be_distinct(self):
        with pytest.raises(QueryError):
            OpenQuery(q3(), [x, x])

    def test_grounded(self):
        oq = OpenQuery(q3(), [x])
        grounded = oq.grounded((7,))
        assert x not in grounded.vars

    def test_in_fo_uses_grounded_form(self):
        # q1 is cyclic, but grounding x makes it acyclic: with x frozen,
        # R's key is constant, so the R->S / S->R cycle breaks.
        oq = OpenQuery(q1(), [x])
        assert oq.in_fo

    def test_boolean_form_has_fewer_vars(self):
        oq = OpenQuery(poll_qa(), [p])
        assert oq.boolean_form.vars == {t}


class TestOpenRewriting:
    def test_free_variables_exposed(self):
        oq = OpenQuery(q3(), [x])
        formula = open_rewriting(oq)
        assert free_variables(formula) == {x}

    def test_sentence_when_no_free_vars(self):
        oq = OpenQuery(q3(), [])
        assert free_variables(open_rewriting(oq)) == frozenset()


class TestCandidates:
    def test_candidates_from_positive_columns(self):
        db = db_from({"P/2/1": [(1, "a"), (2, "b")], "N/2/1": [("c", "zz")]})
        oq = OpenQuery(q3(), [x])
        assert set(candidate_values(oq, db)) == {(1,), (2,)}

    def test_two_variable_product(self):
        db = db_from({"Lives/2/1": [("p1", "t1")], "Born/2/1": [],
                      "Likes/2/2": []})
        oq = OpenQuery(poll_qa(), [p, t])
        assert set(candidate_values(oq, db)) == {("p1", "t1")}


class TestAnswers:
    def test_worked_q3_example(self):
        # Block 1 can always avoid the blocked value, block 2 cannot.
        db = db_from({"P/2/1": [(1, "safe"), (2, "blocked")],
                      "N/2/1": [("c", "blocked")]})
        oq = OpenQuery(q3(), [x])
        for method in ("brute", "rewriting", "sql"):
            assert certain_answers(oq, db, method) == {(1,)}, method

    def test_empty_when_no_candidates(self):
        db = db_from({"P/2/1": [], "N/2/1": []})
        oq = OpenQuery(q3(), [x])
        assert certain_answers(oq, db) == frozenset()

    def test_non_fo_open_query_still_answerable_by_brute(self):
        # q1 with y free stays cyclic? Grounding y: R(x̲, c) and S(c̲, x):
        # S's key is ground, so the cycle breaks here too.
        oq = OpenQuery(q1(), [y])
        db = db_from({"R/2/1": [(1, 2)], "S/2/1": [(2, 1), (2, 3)]})
        answers = certain_answers(oq, db, "brute")
        assert isinstance(answers, frozenset)

    @pytest.mark.parametrize("make,free", [
        (q3, [x]),
        (poll_qa, [p]),
        (poll_qa, [p, t]),
        (q1, [x]),
    ])
    def test_strategies_agree(self, make, free, rng):
        oq = OpenQuery(make(), free)
        for _ in range(15):
            db = random_small_database(make(), rng, domain_size=3,
                                       facts_per_relation=4)
            results = cross_validate_answers(oq, db)
            assert len(set(results.values())) == 1, (
                {k: sorted(v) for k, v in results.items()}, db)

    def test_auto_method(self, rng):
        oq = OpenQuery(q3(), [x])
        db = random_small_database(q3(), rng, domain_size=3)
        assert certain_answers(oq, db, "auto") == \
            certain_answers(oq, db, "brute")

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            certain_answers(OpenQuery(q3(), [x]), db_from({}), "magic")


class TestSqlQuery:
    def test_select_mentions_free_variables(self):
        db = db_from({"P/2/1": [(1, "a")], "N/2/1": []})
        sql = certain_answers_sql_query(OpenQuery(q3(), [x]), db)
        assert "SELECT DISTINCT" in sql
        assert "AS x" in sql

    def test_answers_decoded_to_python_values(self):
        db = db_from({"P/2/1": [(1, "a"), ("s", "b")], "N/2/1": []})
        oq = OpenQuery(q3(), [x])
        answers = certain_answers(oq, db, "sql")
        assert answers == {(1,), ("s",)}
        assert all(isinstance(a, (int, str)) for (a,) in answers)
