"""Tests for the matching substrate (Hopcroft–Karp, q1-certainty)."""


import networkx as nx

from repro.cqa.brute_force import is_certain_brute_force
from repro.db.satisfaction import satisfies
from repro.matching.bpm_certainty import (
    certainty_graph,
    falsifying_repair_q1,
    is_certain_q1,
)
from repro.matching.hopcroft_karp import (
    BipartiteGraph,
    has_perfect_matching,
    is_matching,
    maximum_matching,
    saturates_left,
)
from repro.workloads.bipartite import (
    bipartite_with_perfect_matching,
    bipartite_without_perfect_matching,
    random_bipartite,
)
from repro.workloads.generators import random_small_database
from repro.workloads.queries import q1

from conftest import db_from


def nx_max_matching_size(graph: BipartiteGraph) -> int:
    g = nx.Graph()
    g.add_nodes_from((("L", u) for u in graph.left), bipartite=0)
    g.add_nodes_from((("R", v) for v in graph.right), bipartite=1)
    for u in graph.left:
        for v in graph.neighbours(u):
            g.add_edge(("L", u), ("R", v))
    matching = nx.algorithms.bipartite.maximum_matching(
        g, top_nodes={("L", u) for u in graph.left})
    return sum(1 for k in matching if k[0] == "L")


class TestHopcroftKarp:
    def test_empty_graph(self):
        assert maximum_matching(BipartiteGraph()) == {}

    def test_single_edge(self):
        g = BipartiteGraph(edges=[("a", 1)])
        assert maximum_matching(g) == {"a": 1}

    def test_returned_matching_is_valid(self, rng):
        for _ in range(20):
            g = random_bipartite(rng.randint(1, 8), 0.4, rng)
            m = maximum_matching(g)
            assert is_matching(g, m)

    def test_size_matches_networkx(self, rng):
        for _ in range(30):
            g = random_bipartite(rng.randint(1, 8), rng.random(), rng)
            assert len(maximum_matching(g)) == nx_max_matching_size(g)

    def test_perfect_matching_planted(self, rng):
        for _ in range(10):
            g = bipartite_with_perfect_matching(rng.randint(2, 8), 0.2, rng)
            assert has_perfect_matching(g)

    def test_no_perfect_matching_planted(self, rng):
        for _ in range(10):
            g = bipartite_without_perfect_matching(rng.randint(2, 8), rng)
            assert not has_perfect_matching(g)

    def test_unbalanced_never_perfect(self):
        g = BipartiteGraph(left=[1, 2], right=["a"], edges=[(1, "a")])
        assert not has_perfect_matching(g)

    def test_saturates_left(self):
        g = BipartiteGraph(edges=[(1, "a"), (2, "a")])
        assert not saturates_left(g)
        g.add_edge(2, "b")
        assert saturates_left(g)

    def test_is_matching_rejects_shared_right(self):
        g = BipartiteGraph(edges=[(1, "a"), (2, "a")])
        assert not is_matching(g, {1: "a", 2: "a"})

    def test_is_matching_rejects_non_edges(self):
        g = BipartiteGraph(edges=[(1, "a")])
        assert not is_matching(g, {1: "b"})


class TestQ1Certainty:
    def test_certainty_graph_edges(self):
        db = db_from({"R/2/1": [("g", "b"), ("g", "c")],
                      "S/2/1": [("b", "g")]})
        g = certainty_graph(db)
        assert g.neighbours("g") == {"b"}

    def test_matches_brute_force(self, rng):
        query = q1()
        for _ in range(40):
            db = random_small_database(query, rng, domain_size=3,
                                       facts_per_relation=5)
            assert is_certain_q1(db) == is_certain_brute_force(query, db), \
                repr(db)

    def test_falsifying_repair_falsifies(self, rng):
        query = q1()
        for _ in range(30):
            db = random_small_database(query, rng, domain_size=3,
                                       facts_per_relation=5)
            repair = falsifying_repair_q1(db)
            if repair is None:
                assert is_certain_brute_force(query, db)
            else:
                assert not satisfies(repair, query)
                from repro.db.repairs import is_repair_of
                assert is_repair_of(repair.restrict(["R", "S"]),
                                    db.restrict(["R", "S"]))

    def test_accepts_renamed_q1_shape(self):
        from repro.core.atoms import atom
        from repro.core.query import Query
        from repro.core.terms import Variable

        u, w = Variable("u"), Variable("w")
        q = Query([atom("Knows", [u], [w])], [atom("Liked", [w], [u])])
        db = db_from({"Knows/2/1": [(1, 2)], "Liked/2/1": []})
        assert is_certain_q1(db, q) == is_certain_brute_force(q, db)

    def test_rejects_non_q1_shape(self):
        import pytest
        from repro.workloads.queries import q3

        with pytest.raises(ValueError):
            is_certain_q1(db_from({}), q3())
