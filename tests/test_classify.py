"""Tests for the Theorem 4.3 classifier."""

import random

from repro.core.classify import Hardness, Verdict, classify
from repro.workloads.generators import QueryParams, random_query
from repro.workloads.queries import (
    all_named_queries,
    poll_q1,
    poll_q2,
    poll_qa,
    poll_qb,
    q0,
    q1,
    q2,
    q2_example41,
    q3,
    q4,
    q_example611,
    q_hall,
)


class TestCanonicalVerdicts:
    def test_q0_not_in_fo(self):
        """[19]: the classic cyclic pair is L-hard."""
        c = classify(q0())
        assert c.verdict is Verdict.NOT_IN_FO
        assert c.hardness is Hardness.L_HARD

    def test_q1_nl_hard(self):
        """Lemma 5.2: one negated atom in the 2-cycle — NL-hard."""
        c = classify(q1())
        assert c.verdict is Verdict.NOT_IN_FO
        assert c.hardness is Hardness.NL_HARD

    def test_q2_l_hard(self):
        """Lemma 5.3/5.7: two negated atoms in the 2-cycle — L-hard."""
        c = classify(q2())
        assert c.verdict is Verdict.NOT_IN_FO
        assert c.hardness is Hardness.L_HARD

    def test_q2_example41_l_hard(self):
        c = classify(q2_example41())
        assert c.verdict is Verdict.NOT_IN_FO
        assert c.hardness is Hardness.L_HARD

    def test_q3_in_fo(self):
        """Example 4.5."""
        assert classify(q3()).verdict is Verdict.IN_FO

    def test_q_hall_in_fo(self):
        """Example 6.12: for fixed ell, CERTAINTY(q_Hall) is in FO."""
        for ell in range(0, 5):
            assert classify(q_hall(ell)).verdict is Verdict.IN_FO

    def test_q_example611_in_fo(self):
        assert classify(q_example611()).verdict is Verdict.IN_FO

    def test_q4_undecided(self):
        """Example 7.1: cyclic, not weakly guarded, no hardness lemma
        applies — and indeed q4 IS in FO, so UNDECIDED is the only
        honest verdict for the attack-graph test."""
        c = classify(q4())
        assert c.verdict is Verdict.UNDECIDED
        assert not c.weakly_guarded
        assert not c.acyclic

    def test_poll_queries(self):
        """Example 4.6's table."""
        assert classify(poll_q1()).verdict is Verdict.NOT_IN_FO
        assert classify(poll_q2()).verdict is Verdict.NOT_IN_FO
        assert classify(poll_qa()).verdict is Verdict.IN_FO
        assert classify(poll_qb()).verdict is Verdict.IN_FO


class TestCertificates:
    def test_cycle_certificate_present_when_cyclic(self):
        c = classify(q1())
        assert c.cycle is not None
        assert c.two_cycle is not None

    def test_two_cycle_is_mutual(self):
        c = classify(q1())
        f, g = c.two_cycle
        from repro.core.attack_graph import attacks_atom

        assert attacks_atom(c.query, f, g)
        assert attacks_atom(c.query, g, f)

    def test_reason_names_a_lemma(self):
        assert "Lemma" in classify(q1()).reason
        assert "6.1" in classify(q3()).reason or "Theorem" in classify(q3()).reason

    def test_in_fo_convenience(self):
        assert classify(q3()).in_fo
        assert not classify(q1()).in_fo

    def test_guarded_flag(self):
        assert classify(q1()).guarded
        assert not classify(q4()).guarded


class TestConsistencyProperties:
    def test_acyclic_weakly_guarded_is_always_in_fo(self):
        rng = random.Random(23)
        for _ in range(50):
            q = random_query(QueryParams(n_positive=2, n_negative=2), rng)
            c = classify(q)
            if c.weakly_guarded and c.acyclic:
                assert c.verdict is Verdict.IN_FO

    def test_weakly_guarded_never_undecided(self):
        rng = random.Random(29)
        for _ in range(50):
            q = random_query(QueryParams(n_positive=2, n_negative=2), rng)
            c = classify(q)
            assert c.verdict is not Verdict.UNDECIDED

    def test_all_named_queries_classify_without_error(self):
        for name, q in all_named_queries():
            c = classify(q)
            assert c.verdict in (Verdict.IN_FO, Verdict.NOT_IN_FO,
                                 Verdict.UNDECIDED), name
