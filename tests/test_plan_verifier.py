"""The plan-IR verifier: invariants PV001–PV013.

Every test corrupts one structural invariant of an otherwise-valid
plan and checks that the verifier rejects it with the right code;
valid plans (hand-built and compiler-produced) must pass.  The
``REPRO_VERIFY_PLANS`` gate that wires the verifier into
``compile_formula`` is covered at the end.
"""

from __future__ import annotations

import pytest

from repro.analysis.verifier import (
    PlanInvariantError,
    plan_uses_adom,
    verification_report,
    verify_compiled,
    verify_plan,
)
from repro.core.atoms import atom
from repro.core.parser import parse_query
from repro.core.terms import Constant, Variable
from repro.cqa.certain_answers import OpenQuery, open_rewriting
from repro.cqa.rewriting import Rewriter
from repro.fo.compile import compile_formula, verify_plans_enabled
from repro.fo.plan import (
    AdomGuard,
    AdomProduct,
    AntiJoin,
    Difference,
    Join,
    Literal,
    Plan,
    Project,
    Scan,
    Select,
    SemiJoin,
    Union,
)

x, y, z = Variable("x"), Variable("y"), Variable("z")


def scan_r():
    return Scan(atom("R", [x], [y]))


def scan_s():
    return Scan(atom("S", [y], [z]))


def code_of(plan, expected_cols=None) -> str:
    with pytest.raises(PlanInvariantError) as err:
        verify_plan(plan, expected_cols=expected_cols)
    return err.value.code


class TestValidPlans:
    def test_hand_built_plan_passes(self):
        plan = Project(Join(scan_r(), scan_s()), (x, z))
        assert verify_plan(plan) == 4
        assert verify_plan(plan, expected_cols=(x, z)) == 4

    def test_compiled_boolean_plan(self):
        query = parse_query("P(x | y), not N('c' | y)")
        compiled = compile_formula(Rewriter(query).rewrite())
        assert verify_compiled(compiled) > 0

    def test_compiled_open_plan(self):
        query = parse_query("P(x | y), not N('c' | y)")
        formula = open_rewriting(OpenQuery(query, [x]))
        compiled = compile_formula(formula, [x])
        assert verify_compiled(compiled) > 0

    def test_dag_nodes_counted_once(self):
        shared = scan_r()
        plan = Union((Project(shared, ()), Project(shared, ())))
        # Union + two Projects + ONE shared Scan.
        assert verify_plan(plan) == 4


class TestCorruptedPlans:
    def test_pv001_duplicate_columns(self):
        node = scan_r()
        node.cols = (x, x)
        assert code_of(node) == "PV001"

    def test_pv001_non_variable_columns(self):
        node = scan_r()
        node.cols = (x, "y")
        assert code_of(node) == "PV001"

    def test_pv002_unsorted_columns(self):
        node = Join(scan_r(), scan_s())
        node.cols = tuple(reversed(node.cols))
        assert code_of(node) == "PV002"

    def test_pv002_project_may_reorder(self):
        node = Project(Join(scan_r(), scan_s()), (z, x))
        assert verify_plan(node) == 4

    def test_pv003_projection_provenance(self):
        node = scan_r()
        node.proj = tuple(reversed(node.proj))
        assert code_of(node) == "PV003"

    def test_pv003_projection_out_of_range(self):
        node = scan_r()
        node.proj = (0, 7)
        assert code_of(node) == "PV003"

    def test_pv003_constant_at_variable_position(self):
        node = Scan(atom("N", [Constant("c")], [y]))
        node.consts = {1: "c"}
        assert code_of(node) == "PV003"

    def test_pv003_wrong_column_set(self):
        node = scan_r()
        node.cols = (x, z)
        assert code_of(node) == "PV003"

    def test_pv004_literal_row_width(self):
        node = Literal((x,), [("a",)])
        node.rows = frozenset({("a", "b")})
        assert code_of(node) == "PV004"

    def test_pv005_select_must_preserve_columns(self):
        node = Select(scan_r(), [(("col", 0), ("col", 1), False)])
        node.cols = (x,)
        assert code_of(node) == "PV005"

    def test_pv005_condition_out_of_range(self):
        node = Select(scan_r(), [(("col", 0), ("col", 9), False)])
        assert code_of(node) == "PV005"

    def test_pv005_unknown_operand_kind(self):
        node = Select(scan_r(), [(("wat", 0), ("const", 1), True)])
        assert code_of(node) == "PV005"

    def test_pv006_project_position_provenance(self):
        node = Project(Join(scan_r(), scan_s()), (x, z))
        node.positions = tuple(reversed(node.positions))
        assert code_of(node) == "PV006"

    def test_pv006_project_absent_column(self):
        node = Project(scan_r(), (x,))
        node.cols = (Variable("w"),)
        node.positions = (0,)
        assert code_of(node) == "PV006"

    def test_pv007_join_emit_provenance(self):
        node = Join(scan_r(), scan_s())
        node.emit = tuple((side, pos + 1) for side, pos in node.emit)
        assert code_of(node) == "PV007"

    def test_pv007_join_output_not_union(self):
        node = Join(scan_r(), scan_s())
        node.cols = (x, y)
        node.emit = node.emit[:2]
        assert code_of(node) == "PV007"

    def test_pv008_semijoin_columns(self):
        node = SemiJoin(scan_r(), scan_s())
        node.cols = (x,)
        assert code_of(node) == "PV008"

    def test_pv008_antijoin_columns(self):
        node = AntiJoin(scan_r(), scan_s())
        node.cols = (x,)
        assert code_of(node) == "PV008"

    def test_pv009_union_disagreement(self):
        node = Union((scan_r(), scan_r()))
        node.cols = (x,)
        assert code_of(node) == "PV009"

    def test_pv010_difference_union_compat(self):
        node = Difference(scan_r(), scan_r())
        node.right = scan_s()
        assert code_of(node) == "PV010"

    def test_pv011_adom_guard_nullary(self):
        node = AdomGuard()
        node.cols = (x,)
        assert code_of(node) == "PV011"

    def test_pv012_unknown_operator(self):
        class Mystery(Plan):
            __slots__ = ()

        assert code_of(Mystery(())) == "PV012"

    def test_pv013_root_columns(self):
        plan = Project(Join(scan_r(), scan_s()), (x, z))
        assert code_of(plan, expected_cols=(x, y)) == "PV013"


class TestReportAndHelpers:
    def test_report_ok(self):
        plan = Project(scan_r(), ())
        report = verification_report(plan)
        assert report.ok and report.probe_safe and not report.uses_adom
        assert report.nodes == 2 and report.code is None
        assert report.to_dict() == {
            "ok": True, "nodes": 2, "uses_adom": False, "probe_safe": True,
        }

    def test_report_failure_carries_code(self):
        node = scan_r()
        node.cols = (x, x)
        report = verification_report(node)
        assert not report.ok and not report.probe_safe
        assert report.code == "PV001"
        assert report.to_dict()["error"]["code"] == "PV001"

    def test_open_plan_not_probe_safe(self):
        report = verification_report(scan_r())
        assert report.ok and not report.probe_safe

    def test_plan_uses_adom(self):
        assert not plan_uses_adom(scan_r())
        assert plan_uses_adom(AdomProduct((x,)))
        assert plan_uses_adom(Project(Join(scan_r(), AdomProduct((z,))), ()))

    def test_parallel_helper_delegates(self):
        from repro.parallel.executor import plan_has_adom

        assert plan_has_adom(Project(AdomProduct((x,)), ()))
        assert not plan_has_adom(scan_r())


class TestCompileGate:
    def test_enabled_in_test_suite(self):
        assert verify_plans_enabled()

    @pytest.mark.parametrize("value,expected", [
        ("", False), ("0", False), ("false", False), ("no", False),
        ("off", False), ("OFF", False),
        ("1", True), ("true", True), ("yes", True), ("on", True),
    ])
    def test_env_values(self, monkeypatch, value, expected):
        monkeypatch.setenv("REPRO_VERIFY_PLANS", value)
        assert verify_plans_enabled() is expected

    def test_compile_runs_verifier_when_enabled(self, monkeypatch):
        calls = []
        import repro.analysis.verifier as verifier

        original = verifier.verify_plan
        monkeypatch.setattr(
            verifier, "verify_plan",
            lambda plan, expected_cols=None: calls.append(plan)
            or original(plan, expected_cols),
        )
        query = parse_query("P(x | y), not N('c' | y)")
        monkeypatch.setenv("REPRO_VERIFY_PLANS", "0")
        compile_formula(Rewriter(query).rewrite())
        assert calls == []
        monkeypatch.setenv("REPRO_VERIFY_PLANS", "1")
        compile_formula(Rewriter(query).rewrite())
        assert len(calls) == 1
