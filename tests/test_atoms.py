"""Unit tests for repro.core.atoms."""

import pytest

from repro.core.atoms import Atom, RelationSchema, atom
from repro.core.terms import Constant, Variable

x, y, z = Variable("x"), Variable("y"), Variable("z")


class TestRelationSchema:
    def test_signature_bounds(self):
        with pytest.raises(ValueError):
            RelationSchema("R", 2, 0)
        with pytest.raises(ValueError):
            RelationSchema("R", 2, 3)

    def test_all_key(self):
        assert RelationSchema("R", 2, 2).is_all_key
        assert not RelationSchema("R", 2, 1).is_all_key

    def test_simple_key(self):
        assert RelationSchema("R", 3, 1).is_simple_key
        assert not RelationSchema("R", 3, 2).is_simple_key

    def test_key_of(self):
        s = RelationSchema("R", 3, 2)
        assert s.key_of((1, 2, 3)) == (1, 2)

    def test_equality(self):
        assert RelationSchema("R", 2, 1) == RelationSchema("R", 2, 1)
        assert RelationSchema("R", 2, 1) != RelationSchema("R", 2, 2)

    def test_empty_name_rejected(self):
        with pytest.raises(TypeError):
            RelationSchema("", 2, 1)


class TestAtom:
    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Atom(RelationSchema("R", 2, 1), (x,))

    def test_key_terms(self):
        a = atom("R", [x, y], [z])
        assert a.key_terms == (x, y)
        assert a.value_terms == (z,)

    def test_key_vars_excludes_constants(self):
        a = atom("R", [Constant("c"), x], [y])
        assert a.key_vars == {x}

    def test_vars(self):
        a = atom("R", [x], [y, Constant(1)])
        assert a.vars == {x, y}

    def test_is_fact(self):
        assert atom("R", [Constant(1)], [Constant(2)]).is_fact
        assert not atom("R", [x], [Constant(2)]).is_fact

    def test_as_row(self):
        a = atom("R", [Constant(1)], [Constant("b")])
        assert a.as_row() == (1, "b")

    def test_as_row_rejects_variables(self):
        with pytest.raises(ValueError):
            atom("R", [x], []).as_row()

    def test_substitute(self):
        a = atom("R", [x], [y])
        b = a.substitute({x: Constant(1)})
        assert b.key_terms == (Constant(1),)
        assert b.value_terms == (y,)

    def test_substitute_leaves_original(self):
        a = atom("R", [x], [y])
        a.substitute({x: Constant(1)})
        assert a.key_terms == (x,)

    def test_key_equal(self):
        a = atom("R", [Constant(1)], [Constant(2)])
        b = atom("R", [Constant(1)], [Constant(3)])
        c = atom("R", [Constant(2)], [Constant(2)])
        assert a.key_equal(b)
        assert not a.key_equal(c)

    def test_key_equal_requires_same_relation(self):
        a = atom("R", [Constant(1)], [Constant(2)])
        b = atom("S", [Constant(1)], [Constant(2)])
        assert not a.key_equal(b)

    def test_all_key_property(self):
        assert atom("R", [x, y]).is_all_key
        assert not atom("R", [x], [y]).is_all_key

    def test_equality_and_hash(self):
        assert atom("R", [x], [y]) == atom("R", [x], [y])
        assert hash(atom("R", [x], [y])) == hash(atom("R", [x], [y]))

    def test_inequality_on_terms(self):
        assert atom("R", [x], [y]) != atom("R", [y], [x])

    def test_rejects_raw_python_values(self):
        with pytest.raises(TypeError):
            atom("R", [1], [2])


class TestAtomHelper:
    def test_builds_signature_from_lengths(self):
        a = atom("R", [x, y], [z])
        assert a.schema.arity == 3
        assert a.schema.key_size == 2

    def test_all_key_when_no_values(self):
        assert atom("R", [x]).schema.is_all_key
