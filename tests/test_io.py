"""Tests for database JSON I/O."""

import json

import pytest

from repro.db.io import (
    database_from_dict,
    database_to_dict,
    load_database_file,
    save_database,
)
from repro.workloads.poll import paper_flavoured_poll_database

from conftest import db_from


class TestRoundTrip:
    def test_simple(self, tmp_path):
        db = db_from({"R/2/1": [(1, 2), ("a", "b")], "S/1/1": [(True,)]})
        path = tmp_path / "db.json"
        save_database(db, path)
        loaded = load_database_file(path)
        assert loaded == db

    def test_tuple_values(self, tmp_path):
        db = db_from({"R/2/1": [(("edge", "a", "b"), 1)]})
        path = tmp_path / "db.json"
        save_database(db, path)
        assert load_database_file(path) == db

    def test_poll_database(self, tmp_path):
        db = paper_flavoured_poll_database()
        path = tmp_path / "poll.json"
        save_database(db, path)
        loaded = load_database_file(path)
        assert loaded == db
        assert loaded.schemas["Likes"].is_all_key

    def test_empty_relation_preserved(self, tmp_path):
        db = db_from({"R/2/1": []})
        path = tmp_path / "db.json"
        save_database(db, path)
        loaded = load_database_file(path)
        assert loaded.relations() == ("R",)
        assert loaded.facts("R") == frozenset()


class TestDictFormat:
    def test_shape(self):
        db = db_from({"R/2/1": [(1, 2)]})
        data = database_to_dict(db)
        assert data["relations"]["R"]["arity"] == 2
        assert data["relations"]["R"]["key"] == 1
        assert data["relations"]["R"]["facts"] == [[1, 2]]

    def test_json_serializable(self):
        db = db_from({"R/2/1": [(("pair", 1, 2), "x")]})
        json.dumps(database_to_dict(db))

    def test_missing_relations_key_rejected(self):
        with pytest.raises(ValueError):
            database_from_dict({})

    def test_unsupported_values_rejected(self):
        db = db_from({"R/1/1": []})
        db.add("R", (3.14,))
        with pytest.raises(TypeError):
            database_to_dict(db)

    def test_deterministic_output(self):
        db = db_from({"R/2/1": [(2, 1), (1, 2)]})
        assert database_to_dict(db) == database_to_dict(db.copy())
