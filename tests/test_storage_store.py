"""PersistentDatabase: recovery, checkpoints, views, and the query codec.

Each test drives a store directory through mutate / close / reopen
cycles and asserts the recovered state is exactly the committed one —
including the interactions the ISSUE singles out: ``discard_all``
against the columnar dictionary caches across a WAL replay, and
registered views surviving a restart.
"""

from __future__ import annotations

import pytest

from repro.columnar import columnar_store
from repro.core.atoms import RelationSchema
from repro.core.parser import parse_query
from repro.core.terms import Variable
from repro.cqa.certain_answers import OpenQuery, certain_answers
from repro.db.database import BatchError, Database
from repro.storage import (
    PersistentDatabase,
    StorageError,
    list_segments,
    list_snapshots,
    open_database,
    query_from_dict,
    query_to_dict,
    scan_wal,
    verify_store,
)


def make_store(path, **kwargs):
    db = PersistentDatabase(path, **kwargs)
    db.add_relation(RelationSchema("R", 2, 1))
    db.add_relation(RelationSchema("S", 2, 1))
    return db


class TestRecovery:
    def test_facts_survive_reopen(self, tmp_path):
        db = make_store(tmp_path / "store")
        db.add("R", ("a", "1"))
        db.add("R", ("a", "2"))
        db.add("S", ("1", "x"))
        clock = db.clock
        db.close()

        db2 = open_database(tmp_path / "store")
        assert db2.clock == clock
        assert db2.facts("R") == {("a", "1"), ("a", "2")}
        assert db2.facts("S") == {("1", "x")}
        assert db2.last_recovery["replayed_records"] == 3
        db2.close()

    def test_schemas_survive_without_snapshot(self, tmp_path):
        db = make_store(tmp_path / "store")
        db.close()
        db2 = open_database(tmp_path / "store")
        assert set(db2.schemas) == {"R", "S"}
        assert db2.schemas["R"].key_size == 1
        db2.close()

    def test_open_refuses_non_store(self, tmp_path):
        with pytest.raises(StorageError):
            open_database(tmp_path / "nothing-here")

    def test_double_open_refused(self, tmp_path):
        db = make_store(tmp_path / "store")
        with pytest.raises(StorageError):
            db.open()
        db.close()

    def test_mutating_closed_store_refused(self, tmp_path):
        db = make_store(tmp_path / "store")
        db.close()
        with pytest.raises(StorageError):
            db.add("R", ("a", "1"))

    def test_close_inside_batch_refused(self, tmp_path):
        db = make_store(tmp_path / "store")
        db.begin_batch()
        with pytest.raises(BatchError):
            db.close()
        db.commit()
        db.close()

    def test_batch_is_one_wal_record(self, tmp_path):
        db = make_store(tmp_path / "store")
        with db.batch():
            db.add("R", ("a", "1"))
            db.add("R", ("b", "1"))
            db.discard("R", ("z", "9"))  # no-op inside the batch
        _, records, _, damage = scan_wal(list_segments(db.path)[-1])
        batches = [r for r in records if r[0] == "B"]
        assert damage is None and len(batches) == 1
        assert set(batches[0][2]["R"][0]) == {("a", "1"), ("b", "1")}
        db.close()

    def test_cancelled_batch_bumps_clock_without_record(self, tmp_path):
        db = make_store(tmp_path / "store")
        db.add("R", ("a", "1"))
        with db.batch():
            db.add("R", ("q", "7"))
            db.discard("R", ("q", "7"))
        clock = db.clock
        db.close()
        db2 = open_database(tmp_path / "store")
        # The cancelled batch advanced the writer's clock but produced
        # nothing durable; recovery lands on the last durable LSN.
        assert db2.clock < clock
        assert db2.facts("R") == {("a", "1")}
        db2.close()

    def test_context_manager_closes(self, tmp_path):
        with make_store(tmp_path / "store") as db:
            db.add("R", ("a", "1"))
        assert not db.is_open

    def test_reopen_same_object(self, tmp_path):
        db = make_store(tmp_path / "store")
        db.add("R", ("a", "1"))
        db.close()
        db.open()
        assert db.is_open and db.facts("R") == {("a", "1")}
        db.close()


class TestCheckpoint:
    def test_checkpoint_prunes_wal(self, tmp_path):
        db = make_store(tmp_path / "store")
        for i in range(5):
            db.add("R", ("k", str(i)))
        size = db.checkpoint()
        assert size > 0
        status = db.storage_status()
        assert status["snapshot_clock"] == db.clock
        assert status["wal_records"] == 0 and status["wal_bytes"] == 0
        assert len(list_snapshots(db.path)) == 1
        db.close()

        db2 = open_database(tmp_path / "store")
        assert db2.last_recovery["replayed_records"] == 0
        assert db2.last_recovery["snapshot_clock"] == db2.clock
        assert db2.size() == 5
        db2.close()

    def test_commits_after_checkpoint_replay_on_top(self, tmp_path):
        db = make_store(tmp_path / "store")
        db.add("R", ("a", "1"))
        db.checkpoint()
        db.add("S", ("2", "y"))
        db.discard("R", ("a", "1"))
        db.close()
        db2 = open_database(tmp_path / "store")
        assert db2.facts("R") == set()
        assert db2.facts("S") == {("2", "y")}
        assert db2.last_recovery["replayed_records"] == 2
        db2.close()

    def test_checkpoint_inside_batch_refused(self, tmp_path):
        db = make_store(tmp_path / "store")
        db.begin_batch()
        with pytest.raises(BatchError):
            db.checkpoint()
        db.commit()
        db.close()

    def test_auto_checkpoint(self, tmp_path):
        db = make_store(tmp_path / "store", auto_checkpoint_bytes=1)
        db.add("R", ("a", "1"))
        db.add("R", ("b", "2"))
        # Every commit exceeds the 1-byte budget, so the WAL never
        # accumulates records.
        assert db.storage_status()["wal_records"] == 0
        assert len(list_snapshots(db.path)) == 1
        db.close()
        db2 = open_database(tmp_path / "store")
        assert db2.facts("R") == {("a", "1"), ("b", "2")}
        db2.close()

    def test_corrupt_snapshot_fails_verify(self, tmp_path):
        db = make_store(tmp_path / "store")
        db.add("R", ("a", "1"))
        db.checkpoint()
        db.close()
        snap = list_snapshots(tmp_path / "store")[-1]
        snap.write_bytes(snap.read_bytes()[:-1])
        report = verify_store(tmp_path / "store")
        assert not report["ok"]
        assert any(not entry["ok"] for entry in report["snapshots"])

    def test_verify_healthy_store(self, tmp_path):
        db = make_store(tmp_path / "store")
        db.add("R", ("a", "1"))
        db.add("R", ("a", "2"))  # key conflict: one violating block
        db.checkpoint()
        db.add("S", ("1", "z"))
        db.close()
        report = verify_store(tmp_path / "store", integrity=True)
        assert report["ok"] and not report["errors"]
        audit = report["integrity"]
        assert audit["facts"] == 3
        assert audit["key_violating_blocks"] == 1
        assert audit["repairs"] == 2


class TestColumnarInteraction:
    """The ISSUE's discard_all regression: replayed deletions must not
    leave the dictionary-encoded scan caches serving pre-delete rows."""

    QUERY = "R(x | y), not S(y | x)"

    def answers(self, db):
        oq = OpenQuery(parse_query(self.QUERY), [Variable("x")])
        return certain_answers(oq, db, "columnar")

    def test_discard_all_and_readd_across_replay(self, tmp_path):
        db = make_store(tmp_path / "store")
        db.add_all("R", [("a", "1"), ("b", "2")])
        before = self.answers(db)  # populates the scan caches
        assert before == {("a",), ("b",)}
        db.discard_all("R", [("a", "1"), ("b", "2")])
        db.add_all("R", [("c", "3")])
        db.close()

        db2 = open_database(tmp_path / "store")
        assert self.answers(db2) == {("c",)}
        db2.close()

    def test_reopen_drops_stale_columnar_store(self, tmp_path):
        db = make_store(tmp_path / "store")
        db.add_all("R", [("a", "1"), ("b", "2")])
        store = columnar_store(db)
        store.prime(db)
        old_dictionary = store.dictionary
        db.close()
        db.open()
        # A fresh store object: recovered version counters start over,
        # so any surviving version-tagged cache would be wrong.
        assert not hasattr(db, "_columnar_store")
        fresh = columnar_store(db)
        assert fresh is not store
        assert fresh.dictionary is not old_dictionary
        assert self.answers(db) == {("a",), ("b",)}
        db.close()

    def test_fresh_codes_after_replay(self, tmp_path):
        db = make_store(tmp_path / "store")
        db.add_all("R", [("a", "1")])
        columnar_store(db).prime(db)
        db.discard_all("R", [("a", "1")])
        db.add_all("R", [("z", "9")])
        db.close()
        db2 = open_database(tmp_path / "store")
        store = columnar_store(db2)
        store.prime(db2)
        # Only the recovered facts' values get codes; the deleted
        # generation never enters the new dictionary.
        assert store.dictionary.code_of("z") is not None
        assert store.dictionary.code_of("a") is None
        db2.close()


class TestViews:
    def test_views_survive_reopen(self, tmp_path):
        db = make_store(tmp_path / "store")
        db.add_all("R", [("a", "1"), ("b", "2")])
        db.add("S", ("2", "b"))
        query = parse_query("R(x | y), not S(y | x)")
        view = db.register_view(query, [Variable("x")])
        live = set(view.answers)
        db.close()

        db2 = open_database(tmp_path / "store")
        assert len(db2.views) == 1
        assert set(db2.views[0].answers) == live
        # The re-registered view keeps maintaining incrementally.
        db2.add("S", ("1", "a"))
        assert set(db2.views[0].answers) == live - {("a",)}
        db2.close()

    def test_duplicate_registration_recorded_once(self, tmp_path):
        db = make_store(tmp_path / "store")
        query = parse_query("R(x | y), not S(y | x)")
        db.register_view(query, [Variable("x")])
        db.register_view(query, [Variable("x")])
        db.close()
        db2 = open_database(tmp_path / "store")
        assert db2.storage_status()["views"] == 1
        db2.close()


class TestQueryCodec:
    ROUND_TRIPS = [
        "R(x | y), not S(y | x)",
        "P(x | y), not N('c' | y)",
        "R(x | y), S(y | z)",
        "R(x | y), S(y | z), x != z",
    ]

    @pytest.mark.parametrize("text", ROUND_TRIPS)
    def test_round_trip(self, text):
        query = parse_query(text)
        assert query_from_dict(query_to_dict(query)) == query

    def test_codec_is_json_ready(self, tmp_path):
        import json

        query = parse_query("P(x | y), not N('c' | y)")
        spec = json.loads(json.dumps(query_to_dict(query)))
        assert query_from_dict(spec) == query


class TestStatusAndEngine:
    def test_storage_status_shape(self, tmp_path):
        db = make_store(tmp_path / "store")
        db.add("R", ("a", "1"))
        status = db.storage_status()
        assert status["open"] and status["facts"] == 1
        assert status["relations"] == 2 and status["clock"] == db.clock
        assert status["wal_records"] == 3  # 2 schema records + 1 batch
        db.close()
        assert not db.storage_status()["open"]

    def test_every_method_runs_on_a_store(self, tmp_path):
        db = make_store(tmp_path / "store")
        db.add_all("R", [("a", "1"), ("a", "2"), ("b", "1")])
        db.add("S", ("1", "b"))
        oq = OpenQuery(parse_query("R(x | y), not S(y | x)"), [Variable("x")])
        reference = certain_answers(oq, db, "brute")
        for method in ("interpreted", "rewriting", "compiled", "sql",
                       "columnar"):
            assert certain_answers(oq, db, method) == reference, method
        db.close()

    def test_plain_database_unaffected(self):
        db = Database()
        db.add_relation(RelationSchema("R", 2, 1))
        db.add("R", ("a", "1"))
        assert not hasattr(db, "storage_status")
        assert not getattr(db, "is_open", False)
