"""`repro serve`: endpoint behavior, wire contract, and digest parity.

Each test boots an in-process :class:`ReproServer` on a loopback port
(its event loop runs on a helper thread) and talks real HTTP through
``http.client``.  Answers fetched over the wire are compared — by
canonical digest — against a direct ``certain_answers`` call on an
identical in-memory database, and response documents are validated
against ``docs/serve.schema.json`` with the in-tree validator.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import pathlib
import threading

import pytest

from repro.core.atoms import RelationSchema
from repro.core.parser import parse_query
from repro.core.terms import Variable
from repro.cqa.certain_answers import OpenQuery, certain_answers
from repro.cqa.engine import CertaintyEngine
from repro.db.database import Database
from repro.obs.schema import validate
from repro.serve import ReproServer, answers_digest
from repro.storage import PersistentDatabase

FO_QUERY = "P(x | y), not N('c' | y)"       # acyclic: every method works
CYCLIC_QUERY = "Mayor(t | p), not Lives(p | t)"  # Ex 4.6 q1: no FO rewriting

SCHEMA = json.loads(
    (pathlib.Path(__file__).resolve().parent.parent / "docs"
     / "serve.schema.json").read_text()
)


def check_shape(instance, shape):
    errors = validate(instance,
                      {"$ref": f"#/$defs/{shape}", "$defs": SCHEMA["$defs"]})
    assert not errors, errors


class ServerHandle:
    """An in-process server on its own event-loop thread."""

    def __init__(self, db, **kwargs):
        self.server = ReproServer(db, port=0, **kwargs)
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        await self.server.start()
        self._ready.set()
        assert self.server._closing is not None
        try:
            await self.server._closing.wait()
        finally:
            await self.server.shutdown()

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(10), "server did not come up"
        return self

    def __exit__(self, *exc):
        loop = self.server._loop
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(self.server.request_shutdown)
        self._thread.join(10)
        assert not self._thread.is_alive(), "server did not shut down"

    # -- tiny HTTP client ----------------------------------------------

    def connection(self):
        return http.client.HTTPConnection("127.0.0.1", self.server.port,
                                          timeout=30)

    def request(self, method, path, payload=None, conn=None):
        own = conn is None
        if own:
            conn = self.connection()
        body = None if payload is None else json.dumps(payload)
        conn.request(method, path, body=body,
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        data = json.loads(response.read())
        if own:
            conn.close()
        return response.status, data

    def post(self, path, payload):
        return self.request("POST", path, payload)

    def get(self, path):
        return self.request("GET", path)


def seeded_db():
    db = Database([RelationSchema("P", 2, 1), RelationSchema("N", 2, 1)])
    db.add_all("P", [("a", "b"), ("a", "c"), ("d", "e"), ("f", "g")])
    db.add_all("N", [("c", "b"), ("c", "x")])
    return db


@pytest.fixture
def served():
    with ServerHandle(seeded_db()) as handle:
        yield handle


class TestQueryEndpoints:
    def test_healthz(self, served):
        status, body = served.get("/v1/healthz")
        assert status == 200 and body["ok"] is True
        assert body["facts"] == seeded_db().size()
        check_shape(body, "healthz_response")

    def test_certain_matches_library(self, served):
        for method in ("auto", "brute", "interpreted", "rewriting",
                       "compiled", "sql", "columnar"):
            status, body = served.post(
                "/v1/certain", {"query": FO_QUERY,
                                "options": {"method": method}})
            assert status == 200, body
            check_shape(body, "certain_response")
            expected = CertaintyEngine(parse_query(FO_QUERY)).certain(
                seeded_db(), method)
            assert body["certain"] == expected, method

    def test_answers_digest_parity_per_method(self, served):
        oracle = certain_answers(
            OpenQuery(parse_query(FO_QUERY), (Variable("x"),)),
            seeded_db(), "compiled")
        expected = answers_digest(oracle)
        for method in ("auto", "brute", "compiled", "sql", "columnar"):
            status, body = served.post(
                "/v1/answers", {"query": FO_QUERY, "free": ["x"],
                                "options": {"method": method}})
            assert status == 200, body
            check_shape(body, "answers_response")
            assert body["digest"] == expected, method
            assert body["count"] == len(oracle)

    def test_options_string_shorthand(self, served):
        status, body = served.post(
            "/v1/certain", {"query": FO_QUERY, "options": "compiled"})
        assert status == 200 and body["method"] == "compiled"

    def test_parallel_method_over_the_wire(self, served):
        status, body = served.post(
            "/v1/answers", {"query": FO_QUERY, "free": ["x"],
                            "options": {"method": "parallel", "jobs": 2}})
        assert status == 200, body
        oracle = certain_answers(
            OpenQuery(parse_query(FO_QUERY), (Variable("x"),)),
            seeded_db(), "compiled")
        assert body["digest"] == answers_digest(oracle)

    def test_keep_alive_reuses_connection(self, served):
        conn = served.connection()
        try:
            ids = []
            for _ in range(3):
                status, body = served.request(
                    "POST", "/v1/certain", {"query": FO_QUERY}, conn=conn)
                assert status == 200
                ids.append(body["request_id"])
            assert len(set(ids)) == 3  # distinct, monotone request ids
            assert ids == sorted(ids)
        finally:
            conn.close()


class TestErrors:
    def test_unknown_endpoint_404(self, served):
        status, body = served.get("/v1/nope")
        assert status == 404 and body["error"]["code"] == "not-found"
        check_shape(body, "error_response")

    def test_wrong_http_method_405(self, served):
        status, body = served.get("/v1/certain")
        assert status == 405
        assert body["error"]["code"] == "method-not-allowed"

    def test_parse_error_400(self, served):
        status, body = served.post("/v1/certain", {"query": "P(x |"})
        assert status == 400 and body["error"]["code"] == "parse-error"

    def test_not_in_fo_422(self, served):
        status, body = served.post(
            "/v1/certain", {"query": CYCLIC_QUERY,
                            "options": {"method": "compiled"}})
        assert status == 422 and body["error"]["code"] == "not-in-fo"

    def test_unknown_option_field_400(self, served):
        status, body = served.post(
            "/v1/certain", {"query": FO_QUERY, "options": {"workers": 3}})
        assert status == 400 and body["error"]["code"] == "bad-options"

    def test_wire_tracing_rejected(self, served):
        status, body = served.post(
            "/v1/certain", {"query": FO_QUERY, "options": {"trace": True}})
        assert status == 400 and body["error"]["code"] == "bad-options"

    def test_unknown_body_field_400(self, served):
        status, body = served.post(
            "/v1/certain", {"query": FO_QUERY, "methods": "sql"})
        assert status == 400 and body["error"]["code"] == "bad-request"

    def test_bad_json_400(self, served):
        conn = served.connection()
        try:
            conn.request("POST", "/v1/certain", body="{nope",
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            body = json.loads(response.read())
            assert response.status == 400
            assert body["error"]["code"] == "bad-json"
        finally:
            conn.close()

    def test_arity_mismatch_rejected_atomically(self, served):
        status, body = served.post("/v1/facts", {
            "ops": [{"op": "+", "relation": "P", "row": ["only-one"]}]})
        assert status == 400
        _, health = served.get("/v1/healthz")
        assert health["facts"] == seeded_db().size()  # nothing applied


class TestFactsAndViews:
    def test_facts_batch_and_requery(self, served):
        status, body = served.post("/v1/facts", {
            "schemas": [{"name": "Q", "arity": 1, "key_size": 1}],
            "ops": [
                {"op": "+", "relation": "P", "row": ["h", "i"]},
                {"op": "-", "relation": "P", "row": ["f", "g"]},
                {"op": "+", "relation": "Q", "row": ["solo"]},
            ]})
        assert status == 200, body
        check_shape(body, "facts_response")
        assert body["inserted"] == 2 and body["deleted"] == 1
        oracle = seeded_db()
        oracle.add_relation(RelationSchema("Q", 1, 1))
        oracle.add("P", ("h", "i"))
        oracle.discard("P", ("f", "g"))
        oracle.add("Q", ("solo",))
        expected = certain_answers(
            OpenQuery(parse_query(FO_QUERY), (Variable("x"),)),
            oracle, "compiled")
        _, answers = served.post(
            "/v1/answers", {"query": FO_QUERY, "free": ["x"]})
        assert answers["digest"] == answers_digest(expected)

    def test_view_lifecycle_and_long_poll(self, served):
        status, body = served.post("/v1/views", {
            "name": "watch", "query": FO_QUERY, "free": ["x"]})
        assert status == 200 and body["created"] is True
        check_shape(body, "view_response")
        version = body["version"]

        # re-registering the same spec is idempotent
        status, body = served.post("/v1/views", {
            "name": "watch", "query": FO_QUERY, "free": ["x"]})
        assert status == 200 and body["created"] is False

        # conflicting spec under the same name is refused
        status, body = served.post("/v1/views", {
            "name": "watch", "query": FO_QUERY, "free": ["y"]})
        assert status == 409

        status, body = served.get("/v1/views")
        assert status == 200 and len(body["views"]) == 1
        check_shape(body, "views_response")

        # a long-poll parked on the current version wakes on a write
        result = {}

        def poll():
            result["r"] = served.get(
                f"/v1/views/watch/changes?since={version}&wait=10")

        thread = threading.Thread(target=poll)
        thread.start()
        served.post("/v1/facts", {
            "ops": [{"op": "+", "relation": "P", "row": ["new", "thing"]}]})
        thread.join(15)
        assert not thread.is_alive()
        status, changes = result["r"]
        assert status == 200 and changes["timed_out"] is False
        check_shape(changes, "changes_response")
        assert ["new"] in changes["inserted"]

    def test_long_poll_timeout(self, served):
        served.post("/v1/views", {"name": "idle", "query": FO_QUERY,
                                  "free": ["x"]})
        status, body = served.get("/v1/views/idle/changes?since=999999&wait=0.2")
        assert status == 200 and body["timed_out"] is True

    def test_unknown_view_404(self, served):
        status, body = served.get("/v1/views/ghost/changes?since=0")
        assert status == 404

    def test_view_not_in_fo_422(self, served):
        status, body = served.post("/v1/views", {
            "name": "bad", "query": CYCLIC_QUERY})
        assert status == 422 and body["error"]["code"] == "not-in-fo"

    def test_metrics_document(self, served):
        served.post("/v1/certain", {"query": FO_QUERY})
        status, body = served.get("/v1/metrics")
        assert status == 200
        check_shape(body, "metrics_response")
        assert body["server"]["requests_total"] >= 2
        assert body["engine"]["schema_version"] == 1
        assert body["storage"] is None  # in-memory database


class TestPersistence:
    def test_named_views_survive_restart(self, tmp_path):
        store_path = tmp_path / "store"
        with PersistentDatabase(store_path) as store:
            store.add_relation(RelationSchema("P", 2, 1))
            store.add_relation(RelationSchema("N", 2, 1))
            store.add_all("P", [("a", "b"), ("d", "e")])

        db = PersistentDatabase(store_path)
        with ServerHandle(db) as handle:
            status, body = handle.post("/v1/views", {
                "name": "durable", "query": FO_QUERY, "free": ["x"]})
            assert status == 200
            handle.post("/v1/facts", {
                "ops": [{"op": "+", "relation": "P", "row": ["h", "i"]}]})
            _, listing = handle.get("/v1/views")
            digest = listing["views"][0]["digest"]
            _, metrics = handle.get("/v1/metrics")
            assert metrics["storage"]["open"] is True
        assert not db.is_open  # server shutdown closed the store

        db2 = PersistentDatabase(store_path)
        with ServerHandle(db2) as handle:
            status, listing = handle.get("/v1/views")
            assert status == 200
            assert [v["name"] for v in listing["views"]] == ["durable"]
            assert listing["views"][0]["digest"] == digest

    def test_writes_survive_restart(self, tmp_path):
        store_path = tmp_path / "store"
        PersistentDatabase(store_path).close()
        with ServerHandle(PersistentDatabase(store_path)) as handle:
            handle.post("/v1/facts", {
                "schemas": [{"name": "R", "arity": 2, "key_size": 1}],
                "ops": [{"op": "+", "relation": "R", "row": ["k", "v"]}]})
        reopened = PersistentDatabase(store_path)
        try:
            assert reopened.contains("R", ("k", "v"))
        finally:
            reopened.close()
