"""Property-based tests (hypothesis) for the core invariants.

The central property is Theorem 4.3(2) made executable: for every
acyclic weakly-guarded query and every database, all four certainty
strategies agree with brute-force repair enumeration.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.atoms import RelationSchema, atom
from repro.core.classify import classify
from repro.core.fds import FD, closure
from repro.core.query import Query
from repro.core.terms import Constant, Variable
from repro.cqa.brute_force import is_certain_brute_force
from repro.cqa.engine import CertaintyEngine
from repro.db.database import Database
from repro.db.repairs import count_repairs, is_repair_of, iter_repairs
from repro.matching.bpm_certainty import is_certain_q1
from repro.reductions.q4 import is_certain_q4
from repro.workloads.queries import poll_qa, q1, q3, q4, q_example611, q_hall

# ----------------------------------------------------------------------
# database strategies
# ----------------------------------------------------------------------

values = st.integers(min_value=0, max_value=2)


def db_strategy(schemas, max_facts=4, extra_values=()):
    """Random small databases over fixed schemas."""
    pool = st.one_of(values, *[st.just(v) for v in extra_values]) \
        if extra_values else values

    def build(fact_lists):
        db = Database(schemas)
        for schema, rows in zip(schemas, fact_lists):
            for row in rows:
                db.add(schema.name, row)
        return db

    fact_lists = st.tuples(*[
        st.lists(st.tuples(*[pool] * s.arity), max_size=max_facts)
        for s in schemas
    ])
    return fact_lists.map(build)


# ----------------------------------------------------------------------
# repair invariants
# ----------------------------------------------------------------------


@given(db_strategy([RelationSchema("R", 2, 1), RelationSchema("S", 2, 2)]))
@settings(max_examples=60, deadline=None)
def test_repair_count_is_product_of_block_sizes(db):
    repairs = list(iter_repairs(db))
    assert len(repairs) == count_repairs(db)


@given(db_strategy([RelationSchema("R", 2, 1)]))
@settings(max_examples=60, deadline=None)
def test_every_enumerated_repair_is_a_repair(db):
    for r in iter_repairs(db):
        assert is_repair_of(r, db)


@given(db_strategy([RelationSchema("R", 2, 1)]))
@settings(max_examples=60, deadline=None)
def test_repairs_pairwise_distinct(db):
    repairs = list(iter_repairs(db))
    assert len({hash(r) for r in repairs}) == len(repairs)


# ----------------------------------------------------------------------
# FD closure invariants
# ----------------------------------------------------------------------

var_names = st.sampled_from("xyzuv")
var_sets = st.frozensets(var_names.map(Variable), max_size=4)
fds = st.lists(st.tuples(var_sets, var_sets).map(lambda p: FD(*p)), max_size=5)


@given(var_sets, fds)
@settings(max_examples=80, deadline=None)
def test_closure_is_extensive_and_idempotent(attrs, deps):
    closed = closure(attrs, deps)
    assert attrs <= closed
    assert closure(closed, deps) == closed


@given(var_sets, var_sets, fds)
@settings(max_examples=80, deadline=None)
def test_closure_is_monotone(a, b, deps):
    assert closure(a, deps) <= closure(a | b, deps)


# ----------------------------------------------------------------------
# the dichotomy, executable
# ----------------------------------------------------------------------


def _solver_agreement(query, db):
    engine = CertaintyEngine(query)
    brute = is_certain_brute_force(query, db)
    assert engine.certain(db, "interpreted") == brute
    assert engine.certain(db, "rewriting") == brute
    assert engine.certain(db, "sql") == brute


@given(db_strategy([RelationSchema("P", 2, 1), RelationSchema("N", 2, 1)],
                   extra_values=("c",)))
@settings(max_examples=50, deadline=None)
def test_theorem43_sufficiency_q3(db):
    _solver_agreement(q3(), db)


@given(db_strategy([RelationSchema("S", 1, 1), RelationSchema("N1", 2, 1),
                    RelationSchema("N2", 2, 1)], extra_values=("c",)))
@settings(max_examples=50, deadline=None)
def test_theorem43_sufficiency_q_hall(db):
    _solver_agreement(q_hall(2), db)


@given(db_strategy([RelationSchema("P", 1, 1), RelationSchema("N", 4, 1)],
                   extra_values=("c", "a"), max_facts=3))
@settings(max_examples=40, deadline=None)
def test_theorem43_sufficiency_example611(db):
    _solver_agreement(q_example611(), db)


@given(db_strategy([RelationSchema("Lives", 2, 1),
                    RelationSchema("Born", 2, 1),
                    RelationSchema("Likes", 2, 2)], max_facts=3))
@settings(max_examples=40, deadline=None)
def test_theorem43_sufficiency_poll_qa(db):
    _solver_agreement(poll_qa(), db)


# ----------------------------------------------------------------------
# the polynomial special-case solvers
# ----------------------------------------------------------------------


@given(db_strategy([RelationSchema("R", 2, 1), RelationSchema("S", 2, 1)]))
@settings(max_examples=60, deadline=None)
def test_q1_matching_solver_agrees_with_brute_force(db):
    assert is_certain_q1(db) == is_certain_brute_force(q1(), db)


@given(db_strategy([RelationSchema("X", 1, 1), RelationSchema("Y", 1, 1),
                    RelationSchema("R", 2, 1), RelationSchema("S", 2, 1)]))
@settings(max_examples=60, deadline=None)
def test_q4_combinatorial_solver_agrees_with_brute_force(db):
    assert is_certain_q4(db) == is_certain_brute_force(q4(), db)


# ----------------------------------------------------------------------
# classification invariants
# ----------------------------------------------------------------------

arities = st.tuples(st.integers(1, 3), st.integers(1, 3)).map(
    lambda t: (max(t), min(t)))


@st.composite
def queries(draw):
    """Random safe self-join-free queries (possibly unguarded)."""
    variables = [Variable(n) for n in "xyz"]
    n_pos = draw(st.integers(1, 2))
    n_neg = draw(st.integers(0, 2))
    positives = []
    for i in range(n_pos):
        arity, key = draw(arities)
        terms = [draw(st.sampled_from(variables)) for _ in range(arity)]
        positives.append(atom(f"P{i}", terms[:key], terms[key:]))
    pos_vars = sorted(set().union(*(a.vars for a in positives)))
    negatives = []
    for i in range(n_neg):
        arity, key = draw(arities)
        terms = [draw(st.sampled_from(pos_vars)) for _ in range(arity)]
        negatives.append(atom(f"N{i}", terms[:key], terms[key:]))
    return Query(positives, negatives)


@given(queries())
@settings(max_examples=100, deadline=None)
def test_classifier_total_and_consistent(query):
    c = classify(query)
    if c.weakly_guarded:
        assert c.in_fo == c.acyclic
    if not c.acyclic and c.two_cycle is not None:
        f, g = c.two_cycle
        from repro.core.attack_graph import attacks_atom

        assert attacks_atom(query, f, g)
        assert attacks_atom(query, g, f)


@given(queries())
@settings(max_examples=60, deadline=None)
def test_substitution_preserves_safety_and_shrinks_attacks(query):
    """Lemma 6.10 as a property."""
    if not query.vars:
        return
    v = sorted(query.vars)[0]
    sub = query.substitute({v: Constant("k")})
    assert sub.is_safe or not query.is_safe
    from repro.core.attack_graph import AttackGraph

    before = {(f.relation, g.relation) for f, g in AttackGraph(query).edges}
    after = {(f.relation, g.relation) for f, g in AttackGraph(sub).edges}
    assert after <= before
