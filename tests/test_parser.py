"""Tests for the query text parser."""

import pytest

from repro.core.parser import ParseError, parse_atom, parse_query, query_to_text
from repro.core.terms import Constant, Variable
from repro.workloads.queries import poll_q2, poll_qa, q1, q2, q3, q_hall

x, y = Variable("x"), Variable("y")


class TestParseAtom:
    def test_simple_key(self):
        a = parse_atom("R(x | y)")
        assert a.relation == "R"
        assert a.key_terms == (x,)
        assert a.value_terms == (y,)

    def test_all_key_without_bar(self):
        a = parse_atom("R(x, y)")
        assert a.is_all_key

    def test_all_key_with_trailing_bar(self):
        a = parse_atom("R(x, y |)")
        assert a.is_all_key

    def test_composite_key(self):
        a = parse_atom("R(x, y | x)")
        assert a.schema.key_size == 2
        assert a.schema.arity == 3

    def test_string_constants(self):
        a = parse_atom("N('c' | y)")
        assert a.key_terms == (Constant("c"),)

    def test_double_quoted_constants(self):
        a = parse_atom('N("hello world" | y)')
        assert a.key_terms == (Constant("hello world"),)

    def test_escaped_quote(self):
        a = parse_atom(r"N('it\'s' | y)")
        assert a.key_terms == (Constant("it's"),)

    def test_integer_constants(self):
        a = parse_atom("R(42 | y)")
        assert a.key_terms == (Constant(42),)

    def test_negative_integer(self):
        a = parse_atom("R(-7 | y)")
        assert a.key_terms == (Constant(-7),)

    def test_empty_key_rejected(self):
        with pytest.raises(ParseError):
            parse_atom("R(| y)")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_atom("R(x | y) extra")


class TestParseQuery:
    def test_q1(self):
        assert parse_query("R(x | y), not S(y | x)") == q1()

    def test_q2_with_all_key_positive(self):
        assert parse_query("R(x, y), not S(x | y), not T(y | x)") == q2()

    def test_q3_with_constant(self):
        assert parse_query("P(x | y), not N('c' | y)") == q3()

    def test_bang_negation(self):
        assert parse_query("R(x | y), !S(y | x)") == q1()

    def test_unicode_negation(self):
        assert parse_query("R(x | y), ¬S(y | x)") == q1()

    def test_poll_queries(self):
        assert parse_query(
            "Likes(p, t), not Lives(p | t), not Mayor(t | p)") == poll_q2()
        assert parse_query(
            "Lives(p | t), not Born(p | t), not Likes(p, t)") == poll_qa()

    def test_unsafe_rejected(self):
        with pytest.raises(ParseError):
            parse_query("R(x | x), not N(x | y)")

    def test_self_join_rejected(self):
        with pytest.raises(ParseError):
            parse_query("R(x | y), R(y | x)")

    def test_unknown_character_rejected(self):
        with pytest.raises(ParseError):
            parse_query("R(x | y) @ S(y | x)")

    def test_missing_comma_rejected(self):
        with pytest.raises(ParseError):
            parse_query("R(x | y) S(y | x)")


class TestRoundTrip:
    @pytest.mark.parametrize("make", [q1, q2, q3, poll_qa, poll_q2,
                                      lambda: q_hall(3)])
    def test_query_to_text_roundtrips(self, make):
        q = make()
        assert parse_query(query_to_text(q)) == q

    def test_text_uses_not_keyword(self):
        assert "not " in query_to_text(q1())


class TestDisequalities:
    def test_single_pair(self):
        from repro.core.query import Diseq

        q = parse_query("R(x | y), y != 0")
        assert q.diseqs == (Diseq([(y, Constant(0))]),)

    def test_tuple_form(self):
        q = parse_query("R(x | y, z), (y, z) != ('a', 'b')")
        assert len(q.diseqs) == 1
        assert len(q.diseqs[0].pairs) == 2

    def test_length_mismatch_rejected(self):
        with pytest.raises(ParseError):
            parse_query("R(x | y, z), (y, z) != ('a',)")

    def test_unsafe_diseq_rejected(self):
        with pytest.raises(ParseError):
            parse_query("R(x | y), zz != 0")

    def test_diseq_roundtrip(self):
        for text in ("R(x | y), y != 0",
                     "R(x | y, z), (y, z) != ('a', 'b')"):
            q = parse_query(text)
            assert parse_query(query_to_text(q)) == q

    def test_diseq_query_solvable_end_to_end(self):
        from repro.cqa.engine import CertaintyEngine
        from conftest import db_from

        q = parse_query("R(x | y), y != 0")
        engine = CertaintyEngine(q)
        db = db_from({"R/2/1": [(1, 0), (1, 5)]})
        assert not engine.certain(db, "sql")
        db2 = db_from({"R/2/1": [(1, 5)]})
        assert engine.certain(db2, "sql")
