"""Hypothesis property: the SQL compiler and the Python evaluator agree
on randomly generated sentences and databases."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.atoms import RelationSchema, atom
from repro.core.terms import Constant, Variable
from repro.db.database import Database
from repro.db.sqlite_backend import run_sentence_sql
from repro.fo.eval import Evaluator
from repro.fo.formula import (
    AtomF,
    Eq,
    make_and,
    make_exists,
    make_forall,
    make_not,
    make_or,
)

x, y, z = Variable("x"), Variable("y"), Variable("z")
VARS = (x, y, z)

leaf = st.one_of(
    st.builds(
        lambda a, b: AtomF(atom("R", [a], [b])),
        st.sampled_from(VARS), st.sampled_from(VARS),
    ),
    st.builds(lambda a: AtomF(atom("S", [a])), st.sampled_from(VARS)),
    st.builds(
        Eq, st.sampled_from(VARS),
        st.one_of(st.sampled_from(VARS), st.just(Constant(1))),
    ),
)


def _quantify(child):
    return st.builds(
        lambda vs, f, is_exists: (make_exists if is_exists else make_forall)(
            vs, f),
        st.lists(st.sampled_from(VARS), min_size=1, max_size=2, unique=True),
        child,
        st.booleans(),
    )


formulas = st.recursive(
    leaf,
    lambda child: st.one_of(
        st.builds(lambda a, b: make_and([a, b]), child, child),
        st.builds(lambda a, b: make_or([a, b]), child, child),
        st.builds(make_not, child),
        _quantify(child),
    ),
    max_leaves=6,
)

sentences = st.builds(
    lambda f: make_exists(sorted(VARS), f), formulas
)

rows2 = st.lists(
    st.tuples(st.integers(0, 2), st.integers(0, 2)), max_size=4)
rows1 = st.lists(st.tuples(st.integers(0, 2)), max_size=3)


@given(sentences, rows2, rows1)
@settings(max_examples=60, deadline=None)
def test_sql_matches_python_evaluator(sentence, r_rows, s_rows):
    db = Database([RelationSchema("R", 2, 1), RelationSchema("S", 1, 1)])
    for row in r_rows:
        db.add("R", row)
    for row in s_rows:
        db.add("S", row)
    # Close any stray free variables (nested quantifiers may shadow).
    from repro.fo.formula import free_variables, make_exists as mk

    closed = mk(sorted(free_variables(sentence)), sentence)
    assert Evaluator(closed, db).evaluate() == run_sentence_sql(closed, db)
