"""Tests for repair enumeration (repro.db.repairs)."""

import random

from repro.db.repairs import (
    count_repairs,
    find_repair_where,
    is_repair_of,
    iter_repairs,
    sample_repair,
    sample_repairs,
)

from conftest import db_from


class TestIterRepairs:
    def test_count_matches_product_of_block_sizes(self):
        db = db_from({"R/2/1": [(1, 2), (1, 3), (2, 5)],
                      "S/2/1": [(1, 1), (1, 2)]})
        repairs = list(iter_repairs(db))
        assert len(repairs) == 4 == count_repairs(db)

    def test_all_repairs_distinct(self):
        db = db_from({"R/2/1": [(1, 2), (1, 3)], "S/2/1": [(1, 1), (1, 2)]})
        repairs = list(iter_repairs(db))
        assert len({hash(r) for r in repairs}) == len(repairs)

    def test_every_repair_is_a_repair(self):
        db = db_from({"R/2/1": [(1, 2), (1, 3), (2, 5)],
                      "S/2/2": [(7, 7), (7, 8)]})
        for r in iter_repairs(db):
            assert is_repair_of(r, db)

    def test_consistent_db_single_repair(self):
        db = db_from({"R/2/1": [(1, 2), (2, 3)]})
        repairs = list(iter_repairs(db))
        assert len(repairs) == 1
        assert repairs[0] == db

    def test_empty_db_one_repair(self):
        from repro.db.database import Database

        repairs = list(iter_repairs(Database()))
        assert len(repairs) == 1

    def test_all_key_relation_kept_whole(self):
        db = db_from({"R/2/2": [(1, 2), (1, 3)]})
        (r,) = iter_repairs(db)
        assert r.facts("R") == {(1, 2), (1, 3)}


class TestIsRepairOf:
    def test_inconsistent_candidate_rejected(self):
        db = db_from({"R/2/1": [(1, 2), (1, 3)]})
        assert not is_repair_of(db, db)

    def test_subset_but_missing_block_rejected(self):
        db = db_from({"R/2/1": [(1, 2), (2, 3)]})
        partial = db_from({"R/2/1": [(1, 2)]})
        assert not is_repair_of(partial, db)

    def test_non_subset_rejected(self):
        db = db_from({"R/2/1": [(1, 2)]})
        other = db_from({"R/2/1": [(1, 9)]})
        assert not is_repair_of(other, db)

    def test_valid_repair_accepted(self):
        db = db_from({"R/2/1": [(1, 2), (1, 3)]})
        r = db_from({"R/2/1": [(1, 3)]})
        assert is_repair_of(r, db)


class TestSampling:
    def test_sample_is_repair(self, rng):
        db = db_from({"R/2/1": [(1, 2), (1, 3), (2, 5), (2, 6)]})
        for _ in range(10):
            assert is_repair_of(sample_repair(db, rng), db)

    def test_sample_repairs_count(self, rng):
        db = db_from({"R/2/1": [(1, 2), (1, 3)]})
        assert len(list(sample_repairs(db, 7, rng))) == 7

    def test_sampling_eventually_hits_all_repairs(self):
        db = db_from({"R/2/1": [(1, 2), (1, 3)]})
        rng = random.Random(5)
        seen = {hash(sample_repair(db, rng)) for _ in range(60)}
        assert len(seen) == 2


class TestFindRepairWhere:
    def test_finds_matching(self):
        db = db_from({"R/2/1": [(1, 2), (1, 3)]})
        found = find_repair_where(db, lambda r: r.contains("R", (1, 3)))
        assert found is not None
        assert found.contains("R", (1, 3))

    def test_none_when_no_match(self):
        db = db_from({"R/2/1": [(1, 2), (1, 3)]})
        assert find_repair_where(db, lambda r: r.contains("R", (9, 9))) is None
