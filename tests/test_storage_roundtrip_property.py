"""Property: durability is invisible to query answering.

For random update streams, a store that is closed and reopened
mid-stream (WAL replay, snapshot loading, fresh columnar caches, a
reattached sqlite mirror) must be indistinguishable from a plain
in-memory database that ran the same stream in one life: identical
fact-state digests and byte-identical certain-answer digests under
every evaluation method.
"""

from __future__ import annotations

import hashlib
import shutil
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parser import parse_query
from repro.core.terms import Variable
from repro.cqa.certain_answers import OpenQuery, certain_answers
from repro.db.database import Database
from repro.storage import PersistentDatabase
from repro.storage.chaos import apply_ops, build_ops, state_digest

#: Methods that answer open queries without enumerating repairs (the
#: streams' tiny key domains make repair counts exponential, so the
#: brute-force oracle is covered separately on small slices).
METHODS = ("interpreted", "rewriting", "compiled", "sql", "columnar")

QUERY = "R(x | y), not S(y | x)"


def answer_digest(db, method):
    oq = OpenQuery(parse_query(QUERY), [Variable("x")])
    answers = certain_answers(oq, db, method)
    h = hashlib.sha256()
    for row in sorted(answers, key=repr):
        h.update(repr(row).encode())
    return h.hexdigest()


@given(seed=st.integers(0, 10**6), n=st.integers(5, 60),
       cut=st.floats(0.1, 0.9))
@settings(max_examples=15, deadline=None)
def test_reopened_store_matches_in_memory(seed, n, cut):
    ops = build_ops(seed, n)
    split = max(1, min(len(ops) - 1, int(len(ops) * cut)))

    memory = Database()
    apply_ops(memory, ops)

    directory = tempfile.mkdtemp(prefix="repro-roundtrip-")
    try:
        store = PersistentDatabase(directory)
        apply_ops(store, ops[:split])
        store.close()
        store = PersistentDatabase(directory)  # mid-stream recovery
        apply_ops(store, ops[split:])
        store.close()

        recovered = PersistentDatabase(directory)
        try:
            assert state_digest(recovered) == state_digest(memory)
            from repro.storage import storage_stats

            native_before = storage_stats()["pushdown"]["native_sql"]
            for method in METHODS:
                assert (answer_digest(recovered, method)
                        == answer_digest(memory, method)), method
            # "sql" on the recovered store ran natively inside the
            # reattached mirror — recovery is invisible to pushdown too.
            assert (storage_stats()["pushdown"]["native_sql"]
                    == native_before + 1)
        finally:
            recovered.close()
    finally:
        shutil.rmtree(directory, ignore_errors=True)


@given(seed=st.integers(0, 10**6))
@settings(max_examples=10, deadline=None)
def test_small_streams_match_brute_force(seed):
    # On short streams the repair count stays tractable: pin the whole
    # method matrix, brute force included, against the reopened store.
    ops = [op for op in build_ops(seed, 8) if op[0] != "checkpoint"]
    memory = Database()
    apply_ops(memory, ops)

    directory = tempfile.mkdtemp(prefix="repro-roundtrip-")
    try:
        store = PersistentDatabase(directory)
        apply_ops(store, ops)
        store.close()
        recovered = PersistentDatabase(directory)
        try:
            expected = answer_digest(memory, "brute")
            assert answer_digest(recovered, "brute") == expected
            for method in METHODS:
                assert answer_digest(recovered, method) == expected, method
        finally:
            recovered.close()
    finally:
        shutil.rmtree(directory, ignore_errors=True)
