"""Tests for the typed-database transformation (Section 3)."""

import pytest

from repro.cqa.brute_force import is_certain_brute_force
from repro.db.typing import is_typed, junk_value, type_value, typed_database
from repro.workloads.generators import random_small_database
from repro.workloads.queries import (
    all_named_queries,
    poll_qa,
    q1,
    q3,
    q_example611,
)

from conftest import db_from


class TestTransform:
    def test_variable_positions_tagged(self):
        db = db_from({"R/2/1": [(1, 2)], "S/2/1": []})
        typed = typed_database(q1(), db)
        assert typed.facts("R") == {
            (type_value("x", 1), type_value("y", 2))
        }

    def test_constant_position_kept_when_matching(self):
        db = db_from({"P/2/1": [(1, 2)], "N/2/1": [("c", 2)]})
        typed = typed_database(q3(), db)
        (row,) = typed.facts("N")
        assert row[0] == "c"
        assert row[1] == type_value("y", 2)

    def test_constant_position_junked_when_mismatching(self):
        db = db_from({"P/2/1": [], "N/2/1": [("d", 2)]})
        typed = typed_database(q3(), db)
        (row,) = typed.facts("N")
        assert row[0] == junk_value("N", 0, "d")

    def test_blocks_preserved(self):
        db = db_from({"P/2/1": [(1, 2), (1, 3), (2, 2)], "N/2/1": []})
        typed = typed_database(q3(), db)
        assert len(typed.blocks("P")) == len(db.blocks("P"))
        assert typed.repair_count() == db.restrict(["P", "N"]).repair_count()

    def test_unrelated_relations_dropped(self):
        db = db_from({"P/2/1": [], "N/2/1": [], "Zzz/1/1": [(1,)]})
        typed = typed_database(q3(), db)
        assert "Zzz" not in typed.schemas

    def test_arity_mismatch_rejected(self):
        db = db_from({"P/3/1": [(1, 2, 3)]})
        with pytest.raises(ValueError):
            typed_database(q3(), db)

    def test_result_is_typed(self):
        db = db_from({"P/2/1": [(1, 2)], "N/2/1": [("c", 2), ("d", 9)]})
        typed = typed_database(q3(), db)
        assert is_typed(q3(), typed)
        assert not is_typed(q3(), db)


class TestCertaintyPreservation:
    @pytest.mark.parametrize("name,query", [
        (n, q) for n, q in all_named_queries()
        if n in ("q1", "q3", "q_hall_2", "q_ex611", "poll_qa", "poll_qb",
                 "q2", "q4")
    ])
    def test_certainty_preserved(self, name, query, rng):
        for _ in range(12):
            db = random_small_database(query, rng, domain_size=3,
                                       facts_per_relation=4)
            typed = typed_database(query, db)
            assert is_certain_brute_force(query, db) == \
                is_certain_brute_force(query, typed), (name, db)

    def test_cross_variable_joins_broken_harmlessly(self, rng):
        """Accidental value coincidences across different variables
        disappear under typing, without changing certainty."""
        query = poll_qa()
        db = db_from({
            "Lives/2/1": [("v", "v")],  # person and town share a value
            "Born/2/1": [("v", "w")],
            "Likes/2/2": [],
        })
        typed = typed_database(query, db)
        assert is_certain_brute_force(query, db) == \
            is_certain_brute_force(query, typed)

    def test_repeated_variable_positions_share_type(self):
        query = q_example611()
        db = db_from({"P/1/1": [(5,)], "N/4/1": [("c", "a", 5, 5)]})
        typed = typed_database(query, db)
        (row,) = typed.facts("N")
        assert row[2] == row[3] == type_value("y", 5)
        assert is_certain_brute_force(query, db) == \
            is_certain_brute_force(query, typed)
