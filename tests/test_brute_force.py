"""Tests for the brute-force certainty baseline."""


from repro.core.query import Query
from repro.core.terms import Variable
from repro.cqa.brute_force import (
    certainty_fraction,
    find_falsifying_repair,
    is_certain_brute_force,
    is_certain_sampled,
)
from repro.db.satisfaction import satisfies
from repro.workloads.queries import q1, q3

from conftest import db_from

x, y = Variable("x"), Variable("y")


class TestBasics:
    def test_certain_on_consistent_satisfying_db(self):
        db = db_from({"R/2/1": [(1, 2)], "S/2/1": [(2, 9)]})
        assert is_certain_brute_force(q1(), db)

    def test_not_certain_when_some_repair_fails(self):
        db = db_from({"R/2/1": [(1, 2)], "S/2/1": [(2, 1)]})
        assert not is_certain_brute_force(q1(), db)

    def test_empty_db_not_certain_for_positive_query(self):
        db = db_from({"R/2/1": [], "S/2/1": []})
        assert not is_certain_brute_force(q1(), db)

    def test_empty_query_always_certain(self):
        assert is_certain_brute_force(Query(), db_from({"R/2/1": [(1, 2)]}))

    def test_irrelevant_relations_ignored(self):
        # A huge unrelated relation must not blow up enumeration.
        db = db_from({
            "P/2/1": [(1, "v")],
            "N/2/1": [],
            "Huge/2/1": [(i, j) for i in range(8) for j in range(4)],
        })
        assert is_certain_brute_force(q3(), db)


class TestFalsifyingRepair:
    def test_repair_actually_falsifies(self):
        db = db_from({"R/2/1": [(1, 2), (1, 3)], "S/2/1": [(2, 1), (3, 1)]})
        repair = find_falsifying_repair(q1(), db)
        assert repair is not None
        assert not satisfies(repair, q1())

    def test_none_when_certain(self):
        db = db_from({"R/2/1": [(1, 2)], "S/2/1": [(2, 9)]})
        assert find_falsifying_repair(q1(), db) is None


class TestSampled:
    def test_sampled_false_is_definitive(self, rng):
        db = db_from({"R/2/1": [(1, 2)], "S/2/1": [(2, 1)]})
        assert not is_certain_sampled(q1(), db, samples=50, rng=rng)

    def test_sampled_agrees_on_certain(self, rng):
        db = db_from({"R/2/1": [(1, 2)], "S/2/1": [(2, 9)]})
        assert is_certain_sampled(q1(), db, samples=20, rng=rng)


class TestCertaintyFraction:
    def test_fraction_bounds(self, rng):
        from repro.workloads.generators import random_small_database

        q = q3()
        for _ in range(10):
            db = random_small_database(q, rng, domain_size=3)
            frac = certainty_fraction(q, db)
            assert 0.0 <= frac <= 1.0
            assert (frac == 1.0) == is_certain_brute_force(q, db)

    def test_fraction_exact_small_case(self):
        # R-block {(1,2),(1,3)}; q = exists R(x,2-ish)... build explicit:
        db = db_from({"P/2/1": [(1, "a"), (1, "b")], "N/2/1": [("c", "a")]})
        # Repairs: {(1,a)} fails (a blocked), {(1,b)} succeeds.
        assert certainty_fraction(q3(), db) == 0.5
