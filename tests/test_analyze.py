"""The static analyzer: cost model, QP rules, reports, `repro analyze`.

Covers the cost estimator (tables stats, per-operator cardinalities,
join-order ranking), the QP100-series rules, the unified
:class:`AnalysisReport` in all three formats (pinned by
``docs/diagnostics.schema.json``), the golden workload/example corpus,
a hypothesis property (every compiled plan verifies), and the QP101
static-flag → runtime-fallback end-to-end demonstration.
"""

from __future__ import annotations

import json
from pathlib import Path
from types import SimpleNamespace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import db_from
from repro.analysis import (
    AnalysisContext,
    CostModel,
    QP_RULES,
    analyze_query,
    analyze_text,
    run_qp_rules,
    table_stats,
    verification_report,
    verify_compiled,
)
from repro.analysis.cost import DEFAULT_ROWS, join_order_ratio
from repro.analysis.rules import JOIN_ORDER_THRESHOLD
from repro.cli import main
from repro.core.atoms import atom
from repro.core.classify import classify
from repro.core.parser import parse_query
from repro.core.terms import Constant, Variable
from repro.cqa.rewriting import consistent_rewriting
from repro.fo.compile import compile_formula
from repro.fo.plan import AdomProduct, Join, Project, Scan
from repro.fo.stats import stats
from repro.obs.schema import validate
from repro.obs.trace import Tracer
from repro.workloads.crm import (
    crm_blocked,
    crm_deliverable,
    crm_pilot_mismatch,
)
from repro.workloads.generators import QueryParams, random_query
from repro.workloads.queries import all_named_queries, poll_qa

x, y, z = Variable("x"), Variable("y"), Variable("z")

SCHEMA = json.loads(
    (Path(__file__).resolve().parent.parent
     / "docs" / "diagnostics.schema.json").read_text()
)


def assert_schema_valid(document: dict) -> None:
    errors = validate(document, SCHEMA)
    assert not errors, "\n".join(errors)


# ----------------------------------------------------------------------
# cost model
# ----------------------------------------------------------------------


class TestTableStats:
    def test_from_database(self):
        db = db_from({"R/2/1": [(1, 2), (1, 3), (2, 2)], "S/1/1": [(9,)]})
        ts = table_stats(db)
        assert ts.relation_rows("R") == 3
        assert ts.position_distinct("R", 0) == 2
        assert ts.position_distinct("R", 1) == 2
        assert ts.adom_size == 4  # {1, 2, 3, 9}

    def test_defaults_without_database(self):
        ts = table_stats(None)
        assert ts.relation_rows("Whatever") == DEFAULT_ROWS
        assert ts.position_distinct("Whatever", 0) >= 1


class TestCostModel:
    def test_scan_constants_reduce_rows(self):
        db = db_from({"R/2/1": [(i, i % 3) for i in range(10)]})
        model = CostModel(table_stats(db))
        plain = model.estimate(Scan(atom("R", [x], [y]))).estimated_rows
        pinned = model.estimate(
            Scan(atom("R", [Constant(1)], [y]))
        ).estimated_rows
        assert pinned < plain == 10

    def test_join_shared_vs_cartesian(self):
        model = CostModel()
        shared = model.estimate(
            Join(Scan(atom("R", [x], [y])), Scan(atom("S", [y], [z])))
        )
        cartesian = model.estimate(
            Join(Scan(atom("R", [x], [y])), Scan(atom("S", [z], [z])))
        )
        assert cartesian.estimated_rows > shared.estimated_rows
        assert len(cartesian.cartesian_nodes) == 1
        assert not shared.cartesian_nodes

    def test_adom_product_is_expensive(self):
        model = CostModel()
        one = model.estimate(AdomProduct((x,))).estimated_rows
        two = model.estimate(AdomProduct((x, y))).estimated_rows
        assert two == one * one

    def test_report_renders_and_serializes(self):
        report = CostModel().estimate(
            Project(Join(Scan(atom("R", [x], [y])),
                         Scan(atom("S", [y], [z]))), (x, z))
        )
        text = report.render()
        assert "estimated cost" in text and "Join" in text
        doc = report.to_dict()
        assert doc["tree"]["op"].startswith("Project")
        assert doc["join_order_ratio"] >= 1.0

    def test_join_order_ratio_flags_bad_order(self):
        # A and B share nothing; C connects them.  The compiled order
        # (A x B) then C pays the full cartesian product, the best
        # order joins through C and never multiplies.
        a = Scan(atom("A", [x], []))
        b = Scan(atom("B", [y], []))
        c = Scan(atom("C", [x], [y]))
        model = CostModel()
        bad = Join(Join(a, b), c)
        good = Join(Join(a, c), b)
        assert join_order_ratio(bad, model) > JOIN_ORDER_THRESHOLD
        assert join_order_ratio(good, model) == pytest.approx(1.0)


class TestFormulaStats:
    def test_negations_and_or_width(self):
        query = parse_query("P(x | y), not N('c' | y)")
        s = stats(consistent_rewriting(query))
        assert s.negations >= 1
        assert s.max_or_width >= 0
        assert s.size == s.nodes


# ----------------------------------------------------------------------
# QP rules
# ----------------------------------------------------------------------


def fake_compiled(plan, free=()):
    return SimpleNamespace(plan=plan, free=tuple(free))


class TestQPRules:
    def test_catalogue_is_complete(self):
        assert sorted(QP_RULES) == [f"QP1{i:02d}" for i in range(13)]
        for info in QP_RULES.values():
            assert info.summary and info.code.startswith("QP1")

    def test_qp100_on_corrupt_plan(self):
        node = Scan(atom("R", [x], [y]))
        node.cols = (x, x)
        ctx = AnalysisContext(
            verification=verification_report(node),
        )
        codes = [d.code for d in run_qp_rules(ctx)]
        assert "QP100" in codes

    def test_qp103_and_qp104_on_adom_plan(self):
        plan = Project(AdomProduct((x,)), (x,))
        ctx = AnalysisContext(compiled=fake_compiled(plan, (x,)), free=(x,))
        codes = {d.code for d in run_qp_rules(ctx)}
        assert {"QP103", "QP104"} <= codes

    def test_qp104_only_for_boolean_adom_plan(self):
        plan = Project(AdomProduct((x,)), ())
        ctx = AnalysisContext(compiled=fake_compiled(plan, ()))
        codes = {d.code for d in run_qp_rules(ctx)}
        assert "QP104" in codes and "QP103" not in codes

    def test_qp106_on_bad_join_order(self):
        a = Scan(atom("A", [x], []))
        b = Scan(atom("B", [y], []))
        c = Scan(atom("C", [x], [y]))
        plan = Join(Join(a, b), c)
        ctx = AnalysisContext(cost=CostModel().estimate(plan))
        codes = {d.code for d in run_qp_rules(ctx)}
        assert {"QP105", "QP106"} <= codes

    def test_qp110_unsupported_plan_on_large_store(self, tmp_path,
                                                   monkeypatch):
        from repro.fo.plan import Plan
        from repro.storage import PersistentDatabase

        class OpaquePlan(Plan):
            __slots__ = ()

            def __init__(self):
                super().__init__((x,))

        monkeypatch.setenv("REPRO_SQL_MIN_FACTS", "0")
        db = PersistentDatabase(tmp_path / "store")
        ctx = AnalysisContext(compiled=fake_compiled(OpaquePlan(), (x,)),
                              free=(x,), db=db)
        codes = {d.code for d in run_qp_rules(ctx)}
        assert "QP110" in codes
        db.close()

    def test_qp110_silent_for_adom_plans(self, tmp_path, monkeypatch):
        # The maintained repro_adom table gave Adom* plans a native
        # translation: the old forced-fallback diagnostic must not fire.
        from repro.storage import PersistentDatabase

        monkeypatch.setenv("REPRO_SQL_MIN_FACTS", "0")
        db = PersistentDatabase(tmp_path / "store")
        plan = Project(AdomProduct((x,)), (x,))
        ctx = AnalysisContext(compiled=fake_compiled(plan, (x,)),
                              free=(x,), db=db)
        assert "QP110" not in {d.code for d in run_qp_rules(ctx)}
        db.close()

    def test_qp110_silent_off_store_or_below_threshold(self, tmp_path,
                                                       monkeypatch):
        from repro.fo.plan import Plan
        from repro.storage import PersistentDatabase

        class OpaquePlan(Plan):
            __slots__ = ()

            def __init__(self):
                super().__init__((x,))

        # Plain in-memory database: never routed, never diagnosed.
        ctx = AnalysisContext(compiled=fake_compiled(OpaquePlan(), (x,)),
                              free=(x,), db=db_from({}))
        assert "QP110" not in {d.code for d in run_qp_rules(ctx)}
        # Store below the routing threshold: the fallback never bites.
        monkeypatch.setenv("REPRO_SQL_MIN_FACTS", "1000")
        db = PersistentDatabase(tmp_path / "store")
        ctx = AnalysisContext(compiled=fake_compiled(OpaquePlan(), (x,)),
                              free=(x,), db=db)
        assert "QP110" not in {d.code for d in run_qp_rules(ctx)}
        db.close()

    def test_qp112_constants_fire_with_qp108(self):
        report = analyze_text("P(x | y), not N('c' | y)")
        codes = [d.code for d in report.diagnostics]
        assert "QP108" in codes and "QP112" in codes

    def test_qp112_missing_relation_flags_ddl(self):
        from repro.workloads.queries import poll_qa

        db = db_from({})  # no schemas at all
        ctx = AnalysisContext(query=poll_qa(),
                              classification=classify(poll_qa()), db=db)
        messages = [d.message for d in run_qp_rules(ctx)
                    if d.code == "QP112"]
        assert any("absent from the database" in m for m in messages)

    def test_qp112_silent_without_constants_or_ddl(self):
        from repro.workloads.queries import poll_qa

        report = analyze_query(poll_qa(), free=(Variable("p"),))
        assert "QP112" not in {d.code for d in report.diagnostics}

    def test_qp111_wal_past_threshold(self, tmp_path, monkeypatch):
        from repro.core.atoms import RelationSchema
        from repro.storage import PersistentDatabase

        db = PersistentDatabase(tmp_path / "store")
        db.add_relation(RelationSchema("R", 2, 1))
        db.add("R", ("a", "1"))
        monkeypatch.setenv("REPRO_WAL_CHECKPOINT_BYTES", "1")
        codes = {d.code for d in run_qp_rules(AnalysisContext(db=db))}
        assert "QP111" in codes
        # A checkpoint prunes the WAL; the diagnostic clears.
        db.checkpoint()
        codes = {d.code for d in run_qp_rules(AnalysisContext(db=db))}
        assert "QP111" not in codes
        db.close()

    def test_qp111_end_to_end_via_cli(self, tmp_path, monkeypatch, capsys):
        from repro.core.atoms import RelationSchema
        from repro.storage import PersistentDatabase

        db = PersistentDatabase(tmp_path / "store")
        db.add_relation(RelationSchema("P", 2, 1))
        db.add_relation(RelationSchema("N", 2, 1))
        db.add("P", ("a", "1"))
        db.close()
        monkeypatch.setenv("REPRO_WAL_CHECKPOINT_BYTES", "1")
        assert main(["analyze", "P(x | y), not N('c' | y)",
                     "--db-path", str(tmp_path / "store")]) == 0
        assert "QP111" in capsys.readouterr().out


# ----------------------------------------------------------------------
# the unified report
# ----------------------------------------------------------------------


class TestAnalysisReport:
    def test_in_fo_report(self):
        report = analyze_text("P(x | y), not N('c' | y)")
        assert report.ok and report.verdict == "in FO"
        assert report.verification is not None and report.verification.ok
        assert report.cost is not None and report.cost.total_cost > 0
        text = report.render_text()
        assert "verdict: in FO" in text
        assert "plan verifier: ok" in text
        assert "estimated cost" in text

    def test_not_in_fo_report(self):
        report = analyze_text("R(x | y), not S(y | x)")
        assert not report.ok
        codes = [d.code for d in report.diagnostics]
        assert "QL004" in codes and "QP107" in codes
        assert report.verification is None and report.cost is None

    def test_boolean_query_flags_qp101(self):
        report = analyze_text("P(x | y), not N('c' | y)")
        assert "QP101" in [d.code for d in report.diagnostics]

    def test_open_query_with_shard_variable_is_clean(self):
        report = analyze_query(poll_qa(), free=(Variable("p"),))
        codes = {d.code for d in report.diagnostics}
        assert not codes & {"QP101", "QP102", "QP103"}

    def test_no_shard_variable_flags_qp102(self):
        report = analyze_text("Mayor(t | p)", free=(Variable("p"),))
        assert "QP102" in [d.code for d in report.diagnostics]

    def test_unknown_free_variable_raises(self):
        from repro.core.query import QueryError

        with pytest.raises(QueryError):
            analyze_text("P(x | y)", free=(Variable("nope"),))

    def test_syntax_error_reports_ql000(self):
        report = analyze_text("P(x |")
        assert not report.ok
        assert [d.code for d in report.diagnostics] == ["QL000"]
        assert report.verdict is None

    def test_json_is_schema_valid(self):
        for text in ("P(x | y), not N('c' | y)", "R(x | y), not S(y | x)",
                     "P(x |"):
            assert_schema_valid(analyze_text(text).to_dict())

    def test_lint_json_matches_same_schema(self):
        from repro.lint import lint_text

        assert_schema_valid(lint_text("P(x | y), not N(z | y)").to_dict())

    def test_github_rendering(self):
        out = analyze_text("R(x | y), not S(y | x)").render_github()
        lines = out.splitlines()
        assert any(l.startswith("::error title=QL004,line=1,col=") for l in lines)
        assert any(l.startswith("::warning title=QP107::") for l in lines)

    def test_diagnostics_sorted_and_unique(self):
        report = analyze_text("P(x | y), not N('c' | y)")
        keys = [(d.code, d.span, d.message) for d in report.diagnostics]
        assert len(keys) == len(set(keys))
        spanless = [d.code for d in report.diagnostics if d.span is None]
        assert spanless == sorted(
            spanless,
            key=lambda c: [d.code for d in report.diagnostics].index(c),
        )

    def test_pipeline_emits_spans(self):
        tracer = Tracer()
        analyze_text("P(x | y), not N('c' | y)", tracer=tracer)
        names = {span.name for span, _, _ in tracer.iter_spans()}
        assert {"analyze.lint", "analyze.classify", "analyze.compile",
                "analyze.verify", "analyze.cost",
                "analyze.rules"} <= names


class TestAnalyzeCli:
    def test_json_output_schema_valid(self, capsys):
        assert main(["analyze", "P(x | y), not N('c' | y)",
                     "--format", "json"]) == 0
        assert_schema_valid(json.loads(capsys.readouterr().out))

    def test_text_output_keeps_structural_report(self, capsys):
        assert main(["analyze", "P(x | y), not N('c' | y)"]) == 0
        out = capsys.readouterr().out
        assert "verdict: in FO" in out and "witness" in out
        assert "plan verifier: ok" in out

    def test_github_format(self, capsys):
        assert main(["analyze", "R(x | y), not S(y | x)",
                     "--format", "github"]) == 1
        assert "::error title=QL004" in capsys.readouterr().out

    def test_not_in_fo_exits_nonzero(self, capsys):
        assert main(["analyze", "R(x | y), not S(y | x)"]) == 1

    def test_db_feeds_cost_model(self, capsys, tmp_path):
        from repro.db.io import save_database

        db = db_from({"P/2/1": [(1, 2)], "N/2/1": [(9, 2)]})
        path = tmp_path / "db.json"
        save_database(db, path)
        assert main(["analyze", "P(x | y), not N(9 | y)",
                     "--db", str(path), "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["cost"]["total_cost"] < DEFAULT_ROWS

    def test_plan_check_flag(self, capsys):
        assert main(["plan", "P(x | y), not N('c' | y)", "--check"]) == 0
        assert "plan verifier: ok" in capsys.readouterr().out

    def test_plan_not_in_fo_coded_diagnostic(self, capsys):
        assert main(["plan", "R(x | y), not S(y | x)"]) == 2
        err = capsys.readouterr().err
        assert "error[QL004]" in err
        assert "no consistent first-order rewriting" in err


# ----------------------------------------------------------------------
# golden corpus: every workload + example query
# ----------------------------------------------------------------------

# (verdict, verifier passed, QP codes) per corpus query.  The examples
# under examples/ draw their queries from the workloads packages, so
# the corpus below covers them: the poll scripts use poll_*, the CRM
# cleanup example uses crm_*, quickstart/hall/matching use q3/q_hall/q1.
GOLDEN = {
    "q0": ("not in FO", None, ("QP107",)),
    "q1": ("not in FO", None, ("QP107",)),
    "q2": ("not in FO", None, ("QP107",)),
    "q2_ex41": ("not in FO", None, ("QP107",)),
    "q3": ("in FO", True, ("QP101", "QP105", "QP108", "QP112")),
    "q4": ("undecided (negation not weakly guarded)", None, ("QP107",)),
    "q_hall_2": ("in FO", True, ("QP101", "QP105", "QP108", "QP112")),
    "q_hall_3": ("in FO", True, ("QP101", "QP105", "QP108", "QP112")),
    "q_ex32_wg": ("not in FO", None, ("QP107",)),
    "q_gnfo": ("not in FO", None, ("QP107",)),
    "q_ex611": ("in FO", True, ("QP101", "QP105", "QP108", "QP112")),
    "poll_q1": ("not in FO", None, ("QP107",)),
    "poll_q2": ("not in FO", None, ("QP107",)),
    "poll_qa": ("in FO", True, ("QP101",)),
    "poll_qb": ("in FO", True, ("QP101",)),
    "crm_deliverable": ("in FO", True, ("QP101",)),
    "crm_blocked": ("in FO", True, ("QP101",)),
    "crm_pilot_mismatch": ("not in FO", None, ("QP107",)),
}


def corpus():
    queries = list(all_named_queries())
    queries += [
        ("crm_deliverable", crm_deliverable()),
        ("crm_blocked", crm_blocked()),
        ("crm_pilot_mismatch", crm_pilot_mismatch()),
    ]
    return queries


class TestGoldenCorpus:
    def test_corpus_matches_golden(self):
        names = [name for name, _ in corpus()]
        assert sorted(names) == sorted(GOLDEN)

    @pytest.mark.parametrize("name,query", corpus())
    def test_snapshot(self, name, query):
        verdict, verifier_ok, qp_codes = GOLDEN[name]
        report = analyze_query(query)
        assert report.verdict == verdict
        if verifier_ok is None:
            assert report.verification is None
        else:
            assert report.verification is not None
            assert report.verification.ok is verifier_ok
        got = tuple(sorted({d.code for d in report.diagnostics
                            if d.code.startswith("QP")}))
        assert got == qp_codes
        assert_schema_valid(report.to_dict())

    @pytest.mark.parametrize(
        "name,query", [(n, q) for n, q in corpus() if GOLDEN[n][0] == "in FO"]
    )
    def test_in_fo_corpus_plans_verify(self, name, query):
        compiled = compile_formula(consistent_rewriting(query))
        assert verify_compiled(compiled) > 0


# ----------------------------------------------------------------------
# property: every compiled plan passes verification
# ----------------------------------------------------------------------


class TestVerifierProperty:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_random_in_fo_queries_compile_to_valid_plans(self, seed):
        import random

        query = random_query(
            QueryParams(n_positive=2, n_negative=2, max_arity=3,
                        n_variables=4),
            random.Random(seed),
        )
        if not classify(query).in_fo:
            return
        compiled = compile_formula(consistent_rewriting(query))
        assert verify_compiled(compiled) > 0
        report = verification_report(compiled.plan,
                                     expected_cols=compiled.free)
        assert report.ok and report.probe_safe


# ----------------------------------------------------------------------
# QP101 end to end: the static flag predicts the runtime fallback
# ----------------------------------------------------------------------


class TestQP101EndToEnd:
    def test_static_flag_matches_runtime_fallback(self, rng):
        from repro.cqa.certain_answers import OpenQuery
        from repro.cqa.engine import CertaintyEngine
        from repro.parallel import (
            parallel_certain_answers,
            reset_parallel_stats,
        )
        from repro.workloads.poll import random_poll_database

        query = poll_qa()
        flagged = [d.code for d in analyze_query(query).diagnostics]
        assert "QP101" in flagged  # statically: parallel will fall back

        db = random_poll_database(8, 3, rng=rng)
        reset_parallel_stats()
        parallel_certain_answers(OpenQuery(query, []), db,
                                 jobs=2, min_facts=0)
        stats = CertaintyEngine(query).metrics().parallel
        assert stats["serial_fallbacks"] == 1
        assert stats["fallback_reasons"] == {"boolean": 1}
