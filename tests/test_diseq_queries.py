"""End-to-end tests for sjfBCQ¬≠ queries (with disequality constraints,
Definition 6.3) through every solver."""

import pytest

from repro.core.atoms import atom
from repro.core.query import Diseq, Query
from repro.core.terms import Constant, Variable
from repro.cqa.engine import CertaintyEngine
from repro.workloads.generators import random_small_database

x, y, z = Variable("x"), Variable("y"), Variable("z")


def diseq_query_simple():
    """∃x∃y (R(x̲, y) ∧ y ≠ 0)."""
    return Query([atom("R", [x], [y])], [],
                 [Diseq([(y, Constant(0))])])


def diseq_query_pairwise():
    """Example 6.4's shape: R(x̲, y, z) ∧ ¬N(y̲) ∧ (x, z) ≠ (a, b)."""
    return Query(
        [atom("R", [x], [y, z])],
        [atom("N", [y])],
        [Diseq([(x, Constant("a")), (z, Constant("b"))])],
    )


def diseq_query_two_constraints():
    return Query(
        [atom("R", [x], [y])],
        [],
        [Diseq([(y, Constant(0))]), Diseq([(x, Constant(1))])],
    )


class TestClassification:
    def test_diseq_queries_classify_in_fo(self):
        from repro.core.classify import classify

        for q in (diseq_query_simple(), diseq_query_pairwise(),
                  diseq_query_two_constraints()):
            assert classify(q).in_fo

    def test_diseq_never_creates_cycles(self):
        from repro.core.attack_graph import AttackGraph

        g = AttackGraph(diseq_query_pairwise())
        assert g.is_acyclic


class TestSolverAgreement:
    @pytest.mark.parametrize("make", [diseq_query_simple,
                                      diseq_query_pairwise,
                                      diseq_query_two_constraints])
    def test_all_strategies_agree(self, make, rng):
        q = make()
        engine = CertaintyEngine(q)
        for _ in range(25):
            db = random_small_database(q, rng, domain_size=3,
                                       facts_per_relation=4)
            cv = engine.cross_validate(db)
            assert cv.consistent, (q, db, cv.results)

    def test_hand_worked_instance(self):
        """One R-block {0, 5}: the repair picking 0 falsifies y ≠ 0."""
        from conftest import db_from

        q = diseq_query_simple()
        engine = CertaintyEngine(q)
        db = db_from({"R/2/1": [(1, 0), (1, 5)]})
        assert not engine.certain(db, "brute")
        assert not engine.certain(db, "rewriting")
        db2 = db_from({"R/2/1": [(1, 5), (1, 7)]})
        assert engine.certain(db2, "rewriting")
        assert engine.certain(db2, "sql")

    def test_lemma_66_route_agrees(self, rng):
        """Solving via the Lemma 6.6 translation (fresh ¬E atom + fact)
        matches solving with the native disequality."""
        from repro.cqa.brute_force import is_certain_brute_force
        from repro.reductions.diseq import eliminate_all_diseqs

        q = diseq_query_pairwise()
        for _ in range(15):
            db = random_small_database(q, rng, domain_size=3,
                                       facts_per_relation=4)
            translated_q, translated_db = eliminate_all_diseqs(q, db)
            assert is_certain_brute_force(q, db) == \
                is_certain_brute_force(translated_q, translated_db)
