"""Tests for query evaluation on databases (repro.db.satisfaction)."""

from repro.core.atoms import atom
from repro.core.query import Diseq, Query
from repro.core.terms import Constant, Variable
from repro.db.satisfaction import (
    key_relevant_facts,
    satisfies,
    satisfying_valuations,
)
from repro.workloads.queries import q1, q3

from conftest import db_from

x, y, z = Variable("x"), Variable("y"), Variable("z")


class TestPositiveOnly:
    def test_single_atom_match(self):
        db = db_from({"R/2/1": [(1, 2)]})
        assert satisfies(db, Query([atom("R", [x], [y])]))

    def test_single_atom_no_match(self):
        db = db_from({"R/2/1": []})
        assert not satisfies(db, Query([atom("R", [x], [y])]))

    def test_join(self):
        db = db_from({"R/2/1": [(1, 2)], "S/2/1": [(2, 3)]})
        q = Query([atom("R", [x], [y]), atom("S", [y], [z])])
        assert satisfies(db, q)

    def test_join_failure(self):
        db = db_from({"R/2/1": [(1, 2)], "S/2/1": [(9, 3)]})
        q = Query([atom("R", [x], [y]), atom("S", [y], [z])])
        assert not satisfies(db, q)

    def test_constants_filter(self):
        db = db_from({"R/2/1": [(1, 2), (3, 4)]})
        q = Query([atom("R", [Constant(3)], [y])])
        assert satisfies(db, q)
        q = Query([atom("R", [Constant(7)], [y])])
        assert not satisfies(db, q)

    def test_repeated_variable_in_atom(self):
        db = db_from({"R/2/1": [(1, 2), (3, 3)]})
        q = Query([atom("R", [x], [x])])
        vals = list(satisfying_valuations(q, db))
        assert len(vals) == 1
        assert vals[0][x] == 3

    def test_missing_relation_treated_as_empty(self):
        db = db_from({"S/1/1": [(1,)]})
        assert not satisfies(db, Query([atom("R", [x], [y])]))


class TestNegation:
    def test_negated_atom_blocks(self):
        db = db_from({"R/2/1": [(1, 2)], "S/2/1": [(2, 1)]})
        assert not satisfies(db, q1())

    def test_negated_atom_allows(self):
        db = db_from({"R/2/1": [(1, 2)], "S/2/1": [(2, 9)]})
        assert satisfies(db, q1())

    def test_negated_missing_relation_vacuous(self):
        db = db_from({"R/2/1": [(1, 2)]})
        q = Query([atom("R", [x], [y])], [atom("Z", [x], [y])])
        assert satisfies(db, q)

    def test_q3_with_constant_key(self):
        db = db_from({"P/2/1": [(1, 2)], "N/2/1": [("c", 2)]})
        assert not satisfies(db, q3())
        db = db_from({"P/2/1": [(1, 2)], "N/2/1": [("c", 9)]})
        assert satisfies(db, q3())


class TestDiseqs:
    def test_diseq_blocks_equal(self):
        db = db_from({"R/2/1": [(1, 2)]})
        q = Query([atom("R", [x], [y])], [], [Diseq([(y, Constant(2))])])
        assert not satisfies(db, q)

    def test_diseq_satisfied_by_other_fact(self):
        db = db_from({"R/2/1": [(1, 2), (3, 4)]})
        q = Query([atom("R", [x], [y])], [], [Diseq([(y, Constant(2))])])
        assert satisfies(db, q)

    def test_multi_pair_diseq_is_disjunction(self):
        db = db_from({"R/3/1": [(1, 2, 3)]})
        q = Query(
            [atom("R", [x], [y, z])],
            [],
            [Diseq([(y, Constant(2)), (z, Constant(9))])],
        )
        # y = 2 but z != 9, so the disequality holds.
        assert satisfies(db, q)


class TestValuations:
    def test_all_valuations_enumerated(self):
        db = db_from({"R/2/1": [(1, 2), (3, 4)]})
        q = Query([atom("R", [x], [y])])
        vals = list(satisfying_valuations(q, db))
        assert {(v[x], v[y]) for v in vals} == {(1, 2), (3, 4)}

    def test_empty_query_has_empty_valuation(self):
        db = db_from({})
        vals = list(satisfying_valuations(Query(), db))
        assert vals == [{}]


class TestKeyRelevance:
    def test_example33(self):
        """Example 3.3: S(1, a) key-relevant, S(2, a) not."""
        q = q1()
        r = db_from({"R/2/1": [("b", 1)], "S/2/1": [(1, "a"), (2, "a")]})
        relevant = key_relevant_facts(q, q.atom_for("S"), r)
        assert relevant == {(1, "a")}

    def test_no_satisfying_valuation_no_relevance(self):
        q = q1()
        r = db_from({"R/2/1": [], "S/2/1": [(1, "a")]})
        assert key_relevant_facts(q, q.atom_for("S"), r) == frozenset()
