"""Tests for formula simplification (repro.fo.simplify)."""

import random

from repro.core.atoms import atom
from repro.core.terms import Constant, Variable
from repro.fo.eval import Evaluator
from repro.fo.formula import (
    And,
    AtomF,
    Eq,
    FALSE,
    Not,
    Or,
    TRUE,
    make_and,
    make_exists,
    make_forall,
    make_not,
    make_or,
)
from repro.fo.simplify import simplify, simplify_fixpoint
from repro.fo.stats import stats

from conftest import db_from

x, y, z = Variable("x"), Variable("y"), Variable("z")
r_xy = AtomF(atom("R", [x], [y]))


class TestLocalRules:
    def test_trivial_eq_removed(self):
        assert simplify(Eq(x, x)) == TRUE

    def test_ground_eq_decided(self):
        assert simplify(Eq(Constant(1), Constant(1))) == TRUE
        assert simplify(Eq(Constant(1), Constant(2))) == FALSE

    def test_and_dedup(self):
        f = And((r_xy, r_xy, Eq(x, y)))
        g = simplify(f)
        assert isinstance(g, And)
        assert len(g.subs) == 2

    def test_or_dedup(self):
        g = simplify(Or((r_xy, r_xy)))
        assert g == r_xy

    def test_unused_quantified_var_dropped(self):
        f = make_exists([x, z], r_xy.__class__(r_xy.atom))
        g = simplify(make_exists([z], r_xy))
        assert g == r_xy  # z unused

    def test_forall_unused_var_dropped(self):
        g = simplify(make_forall([z], r_xy))
        assert g == r_xy

    def test_nested_constant_propagation(self):
        f = And((Or((FALSE, Eq(x, x))), r_xy))
        assert simplify(f) == r_xy

    def test_not_constant(self):
        assert simplify(Not(Eq(x, x))) == FALSE


class TestFixpoint:
    def test_fixpoint_idempotent(self):
        f = And((Or((FALSE, Eq(x, x), r_xy)), r_xy))
        g = simplify_fixpoint(f)
        assert simplify(g) == g

    def test_size_never_grows(self):
        f = make_and([make_or([r_xy, FALSE]), Eq(x, x),
                      make_exists([z], r_xy)])
        assert stats(simplify_fixpoint(f)).nodes <= stats(f).nodes


class TestSemanticPreservation:
    def test_simplify_preserves_truth_on_random_dbs(self):
        rng = random.Random(37)
        f = make_forall(
            [x, y],
            make_or([
                make_not(r_xy),
                make_and([Eq(x, x), make_exists([z], AtomF(atom("S", [z], [y])))]),
            ]),
        )
        g = simplify_fixpoint(f)
        for _ in range(25):
            db = db_from({
                "R/2/1": [(rng.randint(0, 2), rng.randint(0, 2))
                          for _ in range(rng.randint(0, 4))],
                "S/2/1": [(rng.randint(0, 2), rng.randint(0, 2))
                          for _ in range(rng.randint(0, 4))],
            })
            assert Evaluator(f, db).evaluate() == Evaluator(g, db).evaluate()
