"""Tests for the active-domain FO evaluator (repro.fo.eval)."""

import itertools
import random

import pytest

from repro.core.atoms import atom
from repro.core.terms import Constant, Variable
from repro.fo.eval import Evaluator, evaluate, nnf
from repro.fo.formula import (
    And,
    AtomF,
    Eq,
    Exists,
    FALSE,
    Forall,
    Not,
    Or,
    TRUE,
    implies,
    make_and,
    make_exists,
    make_forall,
    make_not,
    make_or,
)

from conftest import db_from

x, y, z = Variable("x"), Variable("y"), Variable("z")
r_xy = AtomF(atom("R", [x], [y]))


class TestNNF:
    def test_pushes_not_over_and(self):
        f = nnf(Not(And((r_xy, Eq(x, y)))))
        assert isinstance(f, Or)
        assert all(isinstance(s, Not) for s in f.subs)

    def test_pushes_not_over_quantifiers(self):
        f = nnf(Not(Exists((x,), r_xy)))
        assert isinstance(f, Forall)
        f = nnf(Not(Forall((x,), r_xy)))
        assert isinstance(f, Exists)

    def test_double_negation_removed(self):
        assert nnf(Not(Not(r_xy))) == r_xy

    def test_constants(self):
        assert nnf(Not(TRUE)) == FALSE


class TestBasicEvaluation:
    def test_atom_true(self):
        db = db_from({"R/2/1": [(1, 2)]})
        f = make_exists([x, y], r_xy)
        assert evaluate(f, db)

    def test_atom_false(self):
        db = db_from({"R/2/1": []})
        assert not evaluate(make_exists([x, y], r_xy), db)

    def test_verum_falsum(self):
        db = db_from({})
        assert evaluate(TRUE, db)
        assert not evaluate(FALSE, db)

    def test_unbound_free_variable_rejected(self):
        db = db_from({"R/2/1": [(1, 2)]})
        with pytest.raises(ValueError):
            evaluate(r_xy, db)

    def test_env_binding(self):
        db = db_from({"R/2/1": [(1, 2)]})
        ev = Evaluator(r_xy, db)
        assert ev.evaluate({x: 1, y: 2})
        assert not ev.evaluate({x: 1, y: 3})

    def test_equality(self):
        db = db_from({"R/2/1": [(1, 1), (2, 3)]})
        f = make_exists([x, y], make_and([r_xy, Eq(x, y)]))
        assert evaluate(f, db)

    def test_forall_over_relation(self):
        db = db_from({"R/2/1": [(1, 1), (2, 2)]})
        f = make_forall([x, y], implies(r_xy, Eq(x, y)))
        assert evaluate(f, db)
        db.add("R", (3, 4))
        assert not evaluate(f, db)

    def test_constants_join_active_domain(self):
        # ∃x (x = c) must be true even if c is not in the database.
        db = db_from({})
        f = make_exists([x], Eq(x, Constant("ghost")))
        assert evaluate(f, db)

    def test_forall_constant_body_collapses(self):
        # make_forall collapses constant bodies (non-empty-domain
        # convention documented on the constructor).
        assert make_forall([x], FALSE) == FALSE
        assert make_forall([x], TRUE) == TRUE

    def test_shadowed_quantifier_rebinds(self):
        db = db_from({"R/2/1": [(1, 0)]})
        # ∀y ∃y∃z R(x,y): inner y shadows outer y.
        f = Forall((y,), Exists((y, z), r_xy))
        assert Evaluator(f, db).evaluate({x: 1})
        assert not Evaluator(f, db).evaluate({x: 2})


class TestGuardOptimization:
    def test_guarded_exists_matches_bruteforce_quantification(self):
        db = db_from({"R/2/1": [(1, 2), (3, 4)], "S/2/1": [(2, 3)]})
        s_yz = AtomF(atom("S", [y], [z]))
        f = make_exists([x, y, z], make_and([r_xy, s_yz]))
        assert evaluate(f, db)

    def test_guarded_forall(self):
        db = db_from({"R/2/1": [(1, 2), (3, 4)], "S/1/1": [(2,), (4,)]})
        f = make_forall([x, y], implies(r_xy, AtomF(atom("S", [y]))))
        assert evaluate(f, db)
        db.discard("S", (4,))
        assert not evaluate(f, db)

    def test_partially_guarded_exists(self):
        # Guard binds y; z ranges over the active domain.
        db = db_from({"R/2/1": [(1, 2)]})
        f = make_exists([x, y, z], make_and([r_xy, Not(Eq(z, y))]))
        assert evaluate(f, db)

    def test_unguarded_negated_atom_exists(self):
        db = db_from({"R/2/1": [(1, 2)]})
        f = make_exists([x, y], Not(r_xy))
        assert evaluate(f, db)  # e.g. x=2, y=1


class TestAgainstNaiveEvaluator:
    """Cross-check the guarded evaluator against a naive one on random
    small formulas and databases."""

    def _naive(self, f, db, env):
        consts = {c.value for c in __import__(
            "repro.fo.formula", fromlist=["constants_of"]).constants_of(f)}
        adom = sorted(db.active_domain() | consts, key=repr)

        def go(g, e):
            from repro.fo.formula import (AtomF, And, Or, Not, Eq, Exists,
                                          Forall, Verum, Falsum)
            from repro.core.terms import is_variable
            if isinstance(g, Verum):
                return True
            if isinstance(g, Falsum):
                return False
            if isinstance(g, AtomF):
                row = tuple(e[t] if is_variable(t) else t.value
                            for t in g.atom.terms)
                return db.contains(g.atom.relation, row)
            if isinstance(g, Eq):
                lv = e[g.lhs] if is_variable(g.lhs) else g.lhs.value
                rv = e[g.rhs] if is_variable(g.rhs) else g.rhs.value
                return lv == rv
            if isinstance(g, Not):
                return not go(g.sub, e)
            if isinstance(g, And):
                return all(go(s, e) for s in g.subs)
            if isinstance(g, Or):
                return any(go(s, e) for s in g.subs)
            if isinstance(g, (Exists, Forall)):
                combos = itertools.product(adom, repeat=len(g.vars))
                results = (
                    go(g.sub, {**e, **dict(zip(g.vars, c))}) for c in combos
                )
                return any(results) if isinstance(g, Exists) else all(results)
            raise TypeError(g)

        return go(f, dict(env))

    def _random_formula(self, rng, depth=3):
        if depth == 0 or rng.random() < 0.3:
            choice = rng.random()
            if choice < 0.5:
                return AtomF(atom("R", [rng.choice([x, y, z])],
                                  [rng.choice([x, y, z])]))
            if choice < 0.8:
                return Eq(rng.choice([x, y, z]), rng.choice([x, y, z, Constant(1)]))
            return AtomF(atom("S", [rng.choice([x, y, z])]))
        op = rng.choice(["and", "or", "not", "exists", "forall"])
        if op == "and":
            return make_and([self._random_formula(rng, depth - 1),
                             self._random_formula(rng, depth - 1)])
        if op == "or":
            return make_or([self._random_formula(rng, depth - 1),
                            self._random_formula(rng, depth - 1)])
        if op == "not":
            return make_not(self._random_formula(rng, depth - 1))
        sub = self._random_formula(rng, depth - 1)
        v = rng.choice([x, y, z])
        return make_exists([v], sub) if op == "exists" else make_forall([v], sub)

    def test_random_formulas_agree(self):
        rng = random.Random(31)
        for _ in range(60):
            f = self._random_formula(rng)
            db = db_from({
                "R/2/1": [(rng.randint(0, 2), rng.randint(0, 2))
                          for _ in range(rng.randint(0, 4))],
                "S/1/1": [(rng.randint(0, 2),)
                          for _ in range(rng.randint(0, 3))],
            })
            env = {v: rng.randint(0, 2) for v in (x, y, z)}
            fast = Evaluator(f, db).evaluate(env)
            slow = self._naive(f, db, env)
            assert fast == slow, f"disagreement on {f!r} with {db!r}"
