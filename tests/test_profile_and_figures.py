"""Tests for database profiling, ASCII figures, and adversarial
workloads."""

import math

import pytest

from repro.db.profile import profile_database, profile_relation
from repro.experiments.figures import bar_chart, growth_series, timing_chart
from repro.matching.hopcroft_karp import has_perfect_matching
from repro.workloads.adversarial import (
    hall_critical_instance,
    long_augmenting_path_graph,
    max_repair_database,
    repair_count_upper_bound,
)

from conftest import db_from


class TestProfile:
    def test_relation_profile(self):
        db = db_from({"R/2/1": [(1, "a"), (1, "b"), (2, "a")]})
        p = profile_relation(db, "R")
        assert p.facts == 3
        assert p.blocks == 2
        assert p.inconsistent_blocks == 1
        assert p.max_block_size == 2
        assert p.repair_choices == 2
        assert p.inconsistency_ratio == 0.5

    def test_empty_relation(self):
        db = db_from({"R/2/1": []})
        p = profile_relation(db, "R")
        assert p.blocks == 0
        assert p.inconsistency_ratio == 0.0
        assert p.repair_choices == 1

    def test_database_profile_totals(self):
        db = db_from({"R/2/1": [(1, "a"), (1, "b")],
                      "S/2/1": [(1, 1), (1, 2), (2, 1)]})
        p = profile_database(db)
        assert p.facts == 5
        assert p.repair_count == 4 == db.repair_count()
        assert not p.is_consistent
        assert math.isclose(p.log10_repairs, math.log10(4))

    def test_worst_relations_order(self):
        db = db_from({"Clean/2/1": [(1, "a"), (2, "b")],
                      "Dirty/2/1": [(1, "a"), (1, "b")]})
        worst = profile_database(db).worst_relations(top=1)
        assert worst[0].relation == "Dirty"

    def test_render(self):
        db = db_from({"R/2/1": [(1, "a"), (1, "b")]})
        text = profile_database(db).render()
        assert "relation" in text
        assert "R" in text
        assert "consistent=False" in text


class TestFigures:
    def test_bar_lengths_monotone(self):
        chart = bar_chart("t", [("a", 1.0), ("b", 2.0), ("c", 4.0)], width=20)
        lines = chart.splitlines()[2:]
        lengths = [line.count("#") for line in lines]
        assert lengths == sorted(lengths)
        assert lengths[-1] == 20

    def test_log_scale_compresses(self):
        chart = timing_chart("t", [("fast", 1e-5), ("slow", 1.0)], width=30)
        lines = [ln for ln in chart.splitlines() if "|" in ln]
        assert lines[0].count("#") < lines[1].count("#")
        assert "log scale" in chart

    def test_zero_and_negative_render_empty(self):
        chart = bar_chart("t", [("none", 0.0), ("some", 5.0)])
        lines = [ln for ln in chart.splitlines() if "|" in ln]
        assert lines[0].count("#") == 0

    def test_empty_rows(self):
        assert "(no data)" in bar_chart("t", [])

    def test_growth_series(self):
        assert math.isclose(growth_series([1, 2, 4, 8]), 2.0)
        assert growth_series([5]) is None
        assert growth_series([0, 0]) is None


class TestAdversarial:
    def test_hall_critical_solvable(self):
        inst = hall_critical_instance(5)
        assert inst.solvable

    def test_hall_critical_tight(self):
        """Dropping any element from its singleton-introducing set
        breaks solvability."""
        n = 4
        inst = hall_critical_instance(n)
        # Remove e_1 from T_1 (its only early appearance): unsolvable.
        subsets = [list(t) for t in inst.subsets]
        subsets[0] = []
        from repro.matching.hall import SCoveringInstance

        broken = SCoveringInstance(inst.elements, subsets)
        assert not broken.solvable

    def test_long_augmenting_path_has_unique_pm(self):
        g = long_augmenting_path_graph(6)
        assert has_perfect_matching(g)

    def test_max_repair_database_attains_bound(self):
        for budget in (1, 2, 3, 4, 5, 6, 7, 10, 11):
            db = max_repair_database(budget)
            assert db.size() == budget
            assert db.repair_count() == repair_count_upper_bound(budget), budget

    def test_bound_beats_naive_splits(self):
        # All blocks of size 2 gives 2^(n/2) < 3^(n/3) for large n.
        assert repair_count_upper_bound(12) == 3 ** 4
        assert repair_count_upper_bound(12) > 2 ** 6

    def test_input_validation(self):
        with pytest.raises(ValueError):
            hall_critical_instance(0)
        with pytest.raises(ValueError):
            long_augmenting_path_graph(0)
        with pytest.raises(ValueError):
            max_repair_database(0)
