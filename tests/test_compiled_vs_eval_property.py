"""Property tests: the plan compiler agrees with the tuple-at-a-time
evaluator and the SQL backend.

Two layers: hypothesis-generated arbitrary FO sentences (exercising the
total lowering, including the active-domain fallbacks), and randomized
sjfBCQ¬ workloads whose consistent rewritings exercise the guarded
shapes the compiler is optimized for — with negated atoms, constants,
and empty relations all in scope.
"""

from __future__ import annotations

import itertools
import random

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.atoms import RelationSchema, atom
from repro.core.classify import Verdict, classify
from repro.core.terms import Constant, Variable
from repro.cqa.certain_answers import OpenQuery, cross_validate_answers
from repro.cqa.engine import CertaintyEngine
from repro.db.database import Database
from repro.db.sqlite_backend import run_sentence_sql
from repro.fo.compile import compile_formula
from repro.fo.eval import Evaluator
from repro.fo.formula import (
    AtomF,
    Eq,
    free_variables,
    make_and,
    make_exists,
    make_forall,
    make_not,
    make_or,
)
from repro.workloads.generators import (
    QueryParams,
    random_query,
    random_small_database,
)
from repro.workloads.queries import poll_qa, q3, q_hall

from conftest import db_from

x, y, z = Variable("x"), Variable("y"), Variable("z")
VARS = (x, y, z)

leaf = st.one_of(
    st.builds(
        lambda a, b: AtomF(atom("R", [a], [b])),
        st.sampled_from(VARS), st.sampled_from(VARS),
    ),
    st.builds(lambda a: AtomF(atom("S", [a])), st.sampled_from(VARS)),
    st.builds(
        Eq, st.sampled_from(VARS),
        st.one_of(st.sampled_from(VARS), st.just(Constant(1))),
    ),
)


def _quantify(child):
    return st.builds(
        lambda vs, f, is_exists: (make_exists if is_exists else make_forall)(
            vs, f),
        st.lists(st.sampled_from(VARS), min_size=1, max_size=2, unique=True),
        child,
        st.booleans(),
    )


formulas = st.recursive(
    leaf,
    lambda child: st.one_of(
        st.builds(lambda a, b: make_and([a, b]), child, child),
        st.builds(lambda a, b: make_or([a, b]), child, child),
        st.builds(make_not, child),
        _quantify(child),
    ),
    max_leaves=6,
)

rows2 = st.lists(
    st.tuples(st.integers(0, 2), st.integers(0, 2)), max_size=4)
rows1 = st.lists(st.tuples(st.integers(0, 2)), max_size=3)


def _db(r_rows, s_rows) -> Database:
    db = Database([RelationSchema("R", 2, 1), RelationSchema("S", 1, 1)])
    for row in r_rows:
        db.add("R", row)
    for row in s_rows:
        db.add("S", row)
    return db


@given(formulas, rows2, rows1)
@settings(max_examples=80, deadline=None)
def test_compiled_sentence_matches_evaluator_and_sql(formula, r_rows, s_rows):
    db = _db(r_rows, s_rows)
    closed = make_exists(sorted(free_variables(formula)), formula)
    expected = Evaluator(closed, db).evaluate()
    assert compile_formula(closed).holds(db) == expected
    assert run_sentence_sql(closed, db) == expected


@given(formulas, rows2, rows1)
@settings(max_examples=60, deadline=None)
def test_compiled_open_formula_matches_evaluator(formula, r_rows, s_rows):
    db = _db(r_rows, s_rows)
    free = tuple(sorted(free_variables(formula)))
    compiled = compile_formula(formula, free)
    evaluator = Evaluator(formula, db)
    expected = {
        values
        for values in itertools.product(evaluator.adom, repeat=len(free))
        if evaluator.evaluate(dict(zip(free, values)))
    }
    assert compiled.rows(db) == expected


QUERY_PARAM_GRID = (
    QueryParams(n_positive=2, n_negative=1, max_arity=2, n_variables=3),
    QueryParams(n_positive=2, n_negative=2, max_arity=3, n_variables=3,
                constant_probability=0.3),
    QueryParams(n_positive=3, n_negative=1, max_arity=2, n_variables=4),
)


@pytest.mark.parametrize("seed", range(6))
def test_random_workload_cross_validation(seed):
    """Every strategy (brute included) agrees on random FO workloads."""
    rng = random.Random(0xBEEF00 + seed)
    params = QUERY_PARAM_GRID[seed % len(QUERY_PARAM_GRID)]
    checked = 0
    while checked < 4:
        query = random_query(params, rng)
        if classify(query).verdict is not Verdict.IN_FO:
            continue
        checked += 1
        engine = CertaintyEngine(query)
        for _ in range(5):
            db = random_small_database(query, rng, domain_size=3)
            cv = engine.cross_validate(db)
            assert cv.consistent, (query, db, cv.results)


@pytest.mark.parametrize("make_query,free_names", [
    (q3, ["x"]),
    (poll_qa, ["p"]),
    (poll_qa, ["p", "t"]),
    (lambda: q_hall(2), ["x"]),
])
def test_random_certain_answers_cross_validation(make_query, free_names, rng):
    query = make_query()
    open_query = OpenQuery(query, [Variable(n) for n in free_names])
    for _ in range(6):
        db = random_small_database(query, rng, domain_size=3,
                                   facts_per_relation=3)
        results = cross_validate_answers(open_query, db)
        assert "compiled" in results
        values = set(map(frozenset, results.values()))
        assert len(values) == 1, (query, db, results)


def test_empty_relations_and_constants():
    """Compiled path on empty relations and constant-only candidates."""
    engine = CertaintyEngine(q3())
    assert not engine.certain(db_from({"P/2/1": [], "N/2/1": []}), "compiled")
    db = db_from({"P/2/1": [(1, "a")], "N/2/1": [("c", "a"), ("c", "b")]})
    cv = engine.cross_validate(db)
    assert cv.consistent
