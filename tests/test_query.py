"""Unit tests for repro.core.query (sjfBCQ¬ and sjfBCQ¬≠)."""

import pytest

from repro.core.atoms import atom
from repro.core.query import Diseq, Query, QueryError
from repro.core.terms import Constant, Variable
from repro.workloads.queries import (
    q1,
    q2,
    q3,
    q4,
    q_example32_weakly_guarded_not_guarded,
    q_hall,
)

x, y, z = Variable("x"), Variable("y"), Variable("z")


class TestConstruction:
    def test_self_join_rejected(self):
        with pytest.raises(QueryError):
            Query([atom("R", [x], [y]), atom("R", [y], [x])])

    def test_self_join_across_polarities_rejected(self):
        with pytest.raises(QueryError):
            Query([atom("R", [x], [y])], [atom("R", [y], [x])])

    def test_safety_violation_rejected(self):
        # y occurs negated but not positively.
        with pytest.raises(QueryError):
            Query([atom("R", [x])], [atom("N", [x], [y])])

    def test_safe_query_accepted(self):
        q = Query([atom("R", [x], [y])], [atom("N", [y], [x])])
        assert q.is_safe

    def test_diseq_safety_checked(self):
        d = Diseq([(z, Constant(1))])
        with pytest.raises(QueryError):
            Query([atom("R", [x], [y])], [], [d])

    def test_empty_query_allowed(self):
        q = Query()
        assert q.vars == frozenset()
        assert q.all_atoms_all_key

    def test_atoms_order(self):
        q = q1()
        assert [a.relation for a in q.atoms] == ["R", "S"]


class TestViews:
    def test_vars(self):
        assert q1().vars == {x, y}

    def test_positive_vars(self):
        q = q3()
        assert q.positive_vars == {x, y}

    def test_relations(self):
        assert q2().relations == ("R", "S", "T")

    def test_atom_for(self):
        assert q1().atom_for("S").relation == "S"

    def test_atom_for_missing(self):
        with pytest.raises(KeyError):
            q1().atom_for("Z")

    def test_is_positive_negative(self):
        q = q1()
        assert q.is_positive(q.atom_for("R"))
        assert q.is_negative(q.atom_for("S"))

    def test_non_all_key_count(self):
        assert q1().non_all_key_count == 2
        assert q2().non_all_key_count == 2  # R is all-key

    def test_all_atoms_all_key(self):
        q = Query([atom("R", [x, y])])
        assert q.all_atoms_all_key
        assert not q1().all_atoms_all_key


class TestGuardedness:
    def test_q4_not_weakly_guarded(self):
        assert not q4().has_weakly_guarded_negation

    def test_q1_guarded(self):
        # vars(S) = {x,y} ⊆ vars(R).
        assert q1().has_guarded_negation
        assert q1().has_weakly_guarded_negation

    def test_example32_weakly_guarded_not_guarded(self):
        q = q_example32_weakly_guarded_not_guarded()
        assert q.has_weakly_guarded_negation
        assert not q.has_guarded_negation

    def test_guarded_implies_weakly_guarded(self):
        for q in (q1(), q2(), q3(), q_hall(3)):
            if q.has_guarded_negation:
                assert q.has_weakly_guarded_negation

    def test_diseq_weak_guardedness(self):
        # x and y never co-occur positively: diseq (x,y) breaks WG.
        d = Diseq([(x, Constant(1)), (y, Constant(2))])
        q = Query([atom("R", [x]), atom("S", [y])], [], [d], check_safety=False)
        assert not q.has_weakly_guarded_negation
        q2_ = Query([atom("R", [x], [y])], [], [d], check_safety=False)
        assert q2_.has_weakly_guarded_negation


class TestSubstitution:
    def test_substitute_everywhere(self):
        q = q1().substitute({x: Constant(7)})
        assert x not in q.vars
        assert q.atom_for("R").key_terms == (Constant(7),)
        assert q.atom_for("S").value_terms == (Constant(7),)

    def test_substitute_diseqs(self):
        d = Diseq([(x, Constant(1))])
        q = Query([atom("R", [x], [y])], [], [d]).substitute({x: Constant(1)})
        assert q.diseqs[0].pairs == ((Constant(1), Constant(1)),)

    def test_without_positive(self):
        q = q1()
        r = q.without(q.atom_for("R"))
        assert r.positives == ()
        assert len(r.negatives) == 1

    def test_without_negative(self):
        q = q1()
        r = q.without(q.atom_for("S"))
        assert r.negatives == ()

    def test_with_diseq(self):
        d = Diseq([(x, Constant(1))])
        q = q1().with_diseq(d)
        assert d in q.diseqs

    def test_without_diseq(self):
        d = Diseq([(x, Constant(1))])
        q = q1().with_diseq(d).without_diseq(d)
        assert q.diseqs == ()


class TestDiseq:
    def test_needs_pairs(self):
        with pytest.raises(QueryError):
            Diseq([])

    def test_vars(self):
        d = Diseq([(x, Constant(1)), (Constant(2), y)])
        assert d.vars == {x, y}

    def test_ground_value_true(self):
        assert Diseq([(Constant(1), Constant(2))]).ground_value()

    def test_ground_value_false(self):
        d = Diseq([(Constant(1), Constant(1)), (Constant("a"), Constant("a"))])
        assert not d.ground_value()

    def test_ground_value_requires_ground(self):
        with pytest.raises(QueryError):
            Diseq([(x, Constant(1))]).ground_value()

    def test_substitute(self):
        d = Diseq([(x, y)]).substitute({x: Constant(1)})
        assert d.pairs == ((Constant(1), y),)

    def test_equality(self):
        assert Diseq([(x, y)]) == Diseq([(x, y)])
        assert Diseq([(x, y)]) != Diseq([(y, x)])


class TestEqualityAndRepr:
    def test_query_equality(self):
        assert q1() == q1()
        assert q1() != q2()

    def test_query_hashable(self):
        assert len({q1(), q1(), q2()}) == 2

    def test_repr_mentions_negation(self):
        assert "~" in repr(q1())
