"""The tutorial's worked example, executed end to end.

Keeps docs/TUTORIAL.md honest: if this test fails, the tutorial lies.
"""

from repro import (
    CertaintyEngine,
    Database,
    RelationSchema,
    Variable,
    classify,
    parse_query,
)
from repro.cqa import OpenQuery, certain_answers, count_satisfying_repairs
from repro.db import profile_database


def tutorial_database() -> Database:
    db = Database([
        RelationSchema("Assigned", 2, 1),
        RelationSchema("Office", 2, 1),
        RelationSchema("Blocked", 2, 2),
    ])
    db.add_all("Assigned", [
        ("ann", "apollo"), ("ann", "zeus"),
        ("bea", "hermes"),
        ("cal", "zeus"), ("cal", "hera"),
    ])
    db.add_all("Office", [("ann", "mons"), ("bea", "mons"),
                          ("cal", "paris")])
    db.add_all("Blocked", [("hq", "zeus"), ("hq", "hera")])
    return db


class TestTutorial:
    def test_setting(self):
        db = tutorial_database()
        assert not db.is_consistent
        assert db.repair_count() == 4
        assert len(db.blocks("Assigned")[("ann",)]) == 2

    def test_profile(self):
        text = profile_database(tutorial_database()).render()
        assert "Assigned" in text
        assert "consistent=False" in text

    def test_classification(self):
        q = parse_query("Assigned(e | p), not Blocked('hq', p)")
        assert classify(q).in_fo
        cyclic = parse_query("Ships(c | i), not Customer(i | c)")
        assert not classify(cyclic).in_fo

    def test_four_strategies(self):
        q = parse_query("Assigned(e | p), not Blocked('hq', p)")
        engine = CertaintyEngine(q)
        cv = engine.cross_validate(tutorial_database())
        assert cv.consistent
        assert cv.answer is True

    def test_certain_answers(self):
        q = parse_query("Assigned(e | p), not Blocked('hq', p)")
        open_q = OpenQuery(q, [Variable("e")])
        answers = certain_answers(open_q, tutorial_database(), "sql")
        assert answers == {("bea",)}

    def test_counting(self):
        q = parse_query("Assigned(e | p), not Blocked('hq', p)")
        count = count_satisfying_repairs(q, tutorial_database())
        assert count.satisfying == count.total == 4
