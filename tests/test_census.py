"""Tests for the small-query census and the census experiment (E14)."""


from repro.core.classify import Verdict, classify
from repro.core.terms import Constant, Variable
from repro.workloads.census import atom_shapes, census_size, enumerate_queries


class TestEnumeration:
    def test_census_size_stable(self):
        """The enumeration is deterministic; pin its size so accidental
        changes to the query model surface here."""
        assert census_size() == 3282

    def test_all_queries_valid(self):
        for q in enumerate_queries(max_positive=1, max_negative=1):
            assert q.is_safe
            names = [a.relation for a in q.atoms]
            assert len(names) == len(set(names))

    def test_no_duplicate_queries(self):
        seen = set()
        for q in enumerate_queries(max_positive=1, max_negative=1):
            assert q not in seen
            seen.add(q)

    def test_q1_shape_in_census(self):
        """The census contains the NL-hard q1 up to renaming."""
        target_found = False
        for q in enumerate_queries():
            if len(q.positives) == 1 and len(q.negatives) == 1:
                p, n = q.positives[0], q.negatives[0]
                if (p.schema.arity == 2 and p.schema.key_size == 1
                        and n.schema.arity == 2 and n.schema.key_size == 1
                        and p.terms == (n.terms[1], n.terms[0])
                        and p.terms[0] != p.terms[1]):
                    target_found = True
                    assert classify(q).verdict is Verdict.NOT_IN_FO
        assert target_found

    def test_constants_extend_the_space(self):
        with_const = census_size(constants=(Constant("c"),),
                                 max_positive=1, max_negative=1)
        without = census_size(max_positive=1, max_negative=1)
        assert with_const > without

    def test_atom_shapes_counts(self):
        x, y = Variable("x"), Variable("y")
        shapes = atom_shapes([x, y], max_arity=2)
        # arity 1: 2 term choices x 1 key size; arity 2: 4 x 2.
        assert len(shapes) == 2 + 8

    def test_three_variable_space_larger(self):
        z = Variable("z")
        bigger = census_size(
            variables=(Variable("x"), Variable("y"), z),
            max_positive=1, max_negative=1)
        assert bigger > census_size(max_positive=1, max_negative=1)


class TestCensusClassification:
    def test_classifier_total_on_census(self):
        """classify() succeeds on every census query — including the
        internal Lemma 4.9 assertion for every cyclic weakly-guarded
        one."""
        verdicts = set()
        for q in enumerate_queries():
            verdicts.add(classify(q).verdict)
        assert verdicts == {Verdict.IN_FO, Verdict.NOT_IN_FO,
                            Verdict.UNDECIDED}

    def test_experiment_tables(self):
        from repro.experiments.e14_census import (
            classification_census_table,
            dichotomy_verification_table,
        )

        table = classification_census_table()
        assert sum(row[2] for row in table.rows) == 3282
        sample = dichotomy_verification_table(every_nth=100,
                                              dbs_per_query=1)
        assert sample.rows[0][2] is True


class TestBeyondGnfoCensus:
    def test_size_and_guardedness(self):
        from repro.workloads.census import enumerate_wg_not_guarded_queries

        queries = list(enumerate_wg_not_guarded_queries())
        assert len(queries) == 1152
        # Guardedness invariants are asserted inside the generator;
        # spot-check the first and last anyway.
        for q in (queries[0], queries[-1]):
            assert q.has_weakly_guarded_negation
            assert not q.has_guarded_negation

    def test_classification_split(self):
        from repro.workloads.census import enumerate_wg_not_guarded_queries

        in_fo = sum(1 for q in enumerate_wg_not_guarded_queries()
                    if classify(q).in_fo)
        assert in_fo == 504

    def test_experiment_table(self):
        from repro.experiments.e14_census import beyond_gnfo_table

        table = beyond_gnfo_table(dbs_per_query=1)
        row = table.rows[0]
        assert row[0] == 1152
        assert row[1] == 504
        assert row[-1] is True
