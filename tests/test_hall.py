"""Tests for Hall's theorem and S-COVERING (Example 1.2)."""

import itertools

import pytest

from repro.matching.hall import (
    SCoveringInstance,
    hall_violator,
    satisfies_hall_condition,
)
from repro.matching.hopcroft_karp import BipartiteGraph


class TestHallViolator:
    def test_none_when_saturating(self):
        g = BipartiteGraph(edges=[(1, "a"), (2, "b")])
        assert hall_violator(g) is None
        assert satisfies_hall_condition(g)

    def test_violator_found(self):
        g = BipartiteGraph(edges=[(1, "a"), (2, "a")])
        v = hall_violator(g)
        assert v == {1, 2}

    def test_violator_is_actually_deficient(self, rng):
        for _ in range(30):
            m = rng.randint(1, 6)
            g = BipartiteGraph(left=range(m), right=range(m))
            for i in range(m):
                for j in range(m):
                    if rng.random() < 0.3:
                        g.add_edge(i, j)
            v = hall_violator(g)
            if v is not None:
                neighbourhood = set()
                for u in v:
                    neighbourhood |= g.neighbours(u)
                assert len(neighbourhood) < len(v)

    def test_isolated_left_vertex_is_violator(self):
        g = BipartiteGraph(left=[1], right=["a"])
        assert hall_violator(g) == {1}


class TestSCovering:
    def test_basic_solvable(self):
        inst = SCoveringInstance(["a", "b"], [["a"], ["b"]])
        sol = inst.solve()
        assert sol == {"a": 1, "b": 2}

    def test_solution_is_valid(self):
        inst = SCoveringInstance(
            ["a", "b", "c"], [["a", "b"], ["b", "c"], ["a", "c"]])
        sol = inst.solve()
        assert sol is not None
        assert len(set(sol.values())) == len(sol)
        for element, i in sol.items():
            assert element in inst.subsets[i - 1]

    def test_unsolvable_more_elements_than_sets(self):
        inst = SCoveringInstance(["a", "b"], [["a", "b"]])
        assert not inst.solvable

    def test_empty_subsets_allowed(self):
        inst = SCoveringInstance(["a"], [[], ["a"], []])
        assert inst.solve() == {"a": 2}

    def test_empty_elements_trivially_solvable(self):
        assert SCoveringInstance([], []).solvable
        assert SCoveringInstance([], [[], []]).solvable

    def test_foreign_elements_rejected(self):
        with pytest.raises(ValueError):
            SCoveringInstance(["a"], [["a", "zzz"]])

    def test_matches_brute_force_exhaustively(self):
        """All instances with |S| <= 3 and ell <= 3 over subsets of S."""
        elements = ["a", "b", "c"]
        all_subsets = list(
            itertools.chain.from_iterable(
                itertools.combinations(elements, k) for k in range(4))
        )
        count = 0
        for ell in range(3):
            for subsets in itertools.product(all_subsets, repeat=ell):
                inst = SCoveringInstance(elements[:2], [
                    [e for e in t if e in elements[:2]] for t in subsets])
                fast = inst.solve() is not None
                slow = inst.solve_brute_force() is not None
                assert fast == slow
                count += 1
        assert count > 50

    def test_hall_condition_equivalence(self, rng):
        for _ in range(30):
            n = rng.randint(0, 4)
            ell = rng.randint(0, 4)
            elements = list(range(n))
            subsets = [[e for e in elements if rng.random() < 0.5]
                       for _ in range(ell)]
            inst = SCoveringInstance(elements, subsets)
            assert inst.solvable == satisfies_hall_condition(inst.to_bipartite())
