"""Tests for the incremental materialized-view subsystem: Views,
ViewManager, the delta engine's visible behavior, and the engine API."""

import pytest

from repro.core.terms import Variable
from repro.cqa.certain_answers import OpenQuery, certain_answers
from repro.cqa.engine import CertaintyEngine
from repro.cqa.rewriting import NotInFO
from repro.core.atoms import RelationSchema, atom
from repro.core.query import Query
from repro.fo.compile import compile_formula
from repro.fo.formula import AtomF, make_not
from repro.incremental import (
    StaleVersionError,
    ViewManager,
    reset_view_stats,
    view_manager,
    view_stats,
)
from repro.workloads.queries import poll_qa, q3

from conftest import db_from

x, y = Variable("x"), Variable("y")


def q3_db():
    """q3 = P(x|y), not N('c'|y); x=1 is NOT certain here: the repair
    keeping N(c,a) refutes the only witness P(1,a)."""
    return db_from({"P/2/1": [(1, "a")], "N/2/1": [("c", "a"), ("c", "b")]})


def cyclic_query() -> Query:
    return Query([atom("R", [x], [y])], [atom("S", [y], [x])])


class TestViewMaintenance:
    def test_initial_answers_match_recompute(self):
        db = q3_db()
        view = ViewManager(db).register_view(q3(), [x])
        assert view.answers == certain_answers(OpenQuery(q3(), [x]), db,
                                               "compiled")
        assert view.answers == frozenset()

    def test_insertion_adds_answer(self):
        db = q3_db()
        view = ViewManager(db).register_view(q3(), [x])
        db.add("P", (2, "z"))  # z is outside N's c-block: certain
        assert view.answers == {(2,)}

    def test_retraction_induced_insertion(self):
        # Deleting N(c,a) collapses the block to {N(c,b)}: every repair
        # now keeps N(c,b), the witness P(1,a) survives, x=1 turns
        # certain.  A deletion *inserting* an answer is the anti-join
        # delta case the subsystem exists for.
        db = q3_db()
        view = ViewManager(db).register_view(q3(), [x])
        v0 = view.version
        db.discard("N", ("c", "a"))
        assert view.answers == {(1,)}
        assert view.changed_since(v0) == ({(1,)}, frozenset())
        assert certain_answers(OpenQuery(q3(), [x]), db, "brute") == {(1,)}

    def test_insertion_induced_deletion(self):
        db = q3_db()
        db.discard("N", ("c", "a"))
        view = ViewManager(db).register_view(q3(), [x])
        assert view.answers == {(1,)}
        db.add("N", ("c", "a"))  # block regrows: x=1 loses certainty
        assert view.answers == frozenset()

    def test_boolean_view_flips_both_ways(self):
        db = q3_db()
        view = ViewManager(db).register_view(q3())
        assert not view.holds
        db.discard("N", ("c", "a"))
        assert view.holds
        db.add("N", ("c", "a"))
        assert not view.holds

    def test_unrelated_relation_commits_are_skipped(self):
        db = q3_db()
        db.add_relation(RelationSchema("Z", 1, 1))
        view = ViewManager(db).register_view(q3(), [x])
        before = view.stats()["deltas_applied"]
        db.add("Z", (7,))
        assert view.stats()["deltas_applied"] == before
        assert view.version == db.clock  # still advances with the clock


class TestBatches:
    def test_batch_applies_net_effect_once(self):
        db = q3_db()
        view = ViewManager(db).register_view(q3(), [x])
        applied = view.stats()["deltas_applied"]
        with db.batch():
            db.add("P", (2, "z"))
            db.discard("N", ("c", "a"))
        assert view.answers == {(1,), (2,)}
        assert view.stats()["deltas_applied"] == applied + 1

    def test_cancelling_batch_leaves_no_history(self):
        db = q3_db()
        view = ViewManager(db).register_view(q3(), [x])
        v0 = view.version
        with db.batch():
            db.add("P", (2, "z"))
            db.discard("P", (2, "z"))
        assert view.answers == frozenset()
        assert view.changed_since(v0) == (frozenset(), frozenset())


class TestChangedSince:
    def test_net_merge_across_commits(self):
        db = q3_db()
        view = ViewManager(db).register_view(q3(), [x])
        v0 = view.version
        db.add("P", (2, "z"))       # +(2,)
        db.discard("N", ("c", "a"))  # +(1,)
        db.discard("P", (2, "z"))   # -(2,): nets out against the insert
        ins, dels = view.changed_since(v0)
        assert ins == {(1,)}
        assert dels == frozenset()

    def test_current_version_reports_empty(self):
        db = q3_db()
        view = ViewManager(db).register_view(q3(), [x])
        db.discard("N", ("c", "a"))
        assert view.changed_since(view.version) == (frozenset(), frozenset())

    def test_delete_nets_against_earlier_insert_window(self):
        db = q3_db()
        view = ViewManager(db).register_view(q3(), [x])
        db.discard("N", ("c", "a"))
        v_mid = view.version
        db.add("N", ("c", "a"))
        assert view.changed_since(v_mid) == (frozenset(), {(1,)})

    def test_stale_version_raises(self):
        db = q3_db()
        view = ViewManager(db, history_limit=1).register_view(q3(), [x])
        v0 = view.version
        db.discard("N", ("c", "a"))
        db.add("N", ("c", "a"))  # second changing commit trims the first
        with pytest.raises(StaleVersionError):
            view.changed_since(v0)


class TestLifecycle:
    def test_unregister_freezes_view(self):
        db = q3_db()
        manager = ViewManager(db)
        view = manager.register_view(q3(), [x])
        manager.unregister(view)
        db.discard("N", ("c", "a"))
        assert view.answers == frozenset()  # frozen at unregister time
        assert view not in manager.views

    def test_close_detaches_from_database(self):
        db = q3_db()
        manager = ViewManager(db)
        view = manager.register_view(q3(), [x])
        manager.close()
        db.discard("N", ("c", "a"))
        assert view.answers == frozenset()

    def test_view_manager_singleton_per_database(self):
        db = q3_db()
        assert view_manager(db) is view_manager(db)

    def test_register_rejects_cyclic_query(self):
        db = db_from({"R/2/1": [], "S/2/1": []})
        with pytest.raises(NotInFO):
            ViewManager(db).register_view(cyclic_query())


class TestEngineAPI:
    def test_register_boolean_view(self):
        db = q3_db()
        engine = CertaintyEngine(q3())
        view = engine.register_view(db)
        assert view.holds == engine.certain(db, "compiled")
        db.discard("N", ("c", "a"))
        assert view.holds
        assert engine.certain(db, "compiled")

    def test_register_open_view(self):
        db = db_from({
            "Lives/2/1": [("ann", "mons"), ("ann", "paris")],
            "Born/2/1": [("ann", "rome")],
            "Likes/2/2": [],
        })
        engine = CertaintyEngine(poll_qa())
        view = engine.register_view(db, [Variable("p")])
        oq = OpenQuery(poll_qa(), [Variable("p")])
        assert view.answers == certain_answers(oq, db, "compiled")
        db.add("Likes", ("ann", "mons"))
        db.add("Likes", ("ann", "paris"))
        assert view.answers == certain_answers(oq, db, "compiled")

    def test_register_view_rejects_non_fo(self):
        db = db_from({"R/2/1": [], "S/2/1": []})
        with pytest.raises(NotInFO):
            CertaintyEngine(cyclic_query()).register_view(db)

    def test_engine_view_stats_shape(self):
        stats = CertaintyEngine(q3()).metrics().views
        assert set(stats) == {"views_registered", "commits_seen",
                              "deltas_applied", "rows_touched",
                              "fallback_recomputes"}


class TestStats:
    def test_global_counters_advance(self):
        reset_view_stats()
        db = q3_db()
        view = ViewManager(db).register_view(q3(), [x])
        db.discard("N", ("c", "a"))
        stats = view_stats()
        assert stats["views_registered"] == 1
        assert stats["commits_seen"] == 1
        assert stats["deltas_applied"] == 1
        assert stats["rows_touched"] >= 1
        assert stats["fallback_recomputes"] == 0
        assert view.answers == {(1,)}
        reset_view_stats()
        assert view_stats()["commits_seen"] == 0

    def test_manager_stats_shape(self):
        db = q3_db()
        manager = ViewManager(db)
        manager.register_view(q3(), [x])
        db.add("P", (2, "z"))
        stats = manager.stats()
        assert stats["views"] == 1
        assert stats["commits_seen"] == 1
        assert stats["deltas_applied"] == 1
        assert stats["rows_touched"] >= 1


class TestAdomFallback:
    def test_negated_atom_formula_tracks_active_domain(self):
        # ¬R(x,y) with x,y free compiles to active-domain operators; the
        # delta engine must fall back to recompute when the domain moves.
        db = db_from({"R/2/1": [(1, 2)]})
        manager = ViewManager(db)
        formula = make_not(AtomF(atom("R", [x], [y])))
        view = manager.register_formula(formula, [x, y])
        assert view.incremental.uses_adom
        compiled = compile_formula(formula, (x, y))
        assert view.answers == compiled.rows(db)
        db.add("R", (3, 3))  # widens the active domain
        assert view.answers == compiled.rows(db)
        assert view.stats()["fallback_recomputes"] > 0
        db.discard("R", (3, 3))  # shrinks it again
        assert view.answers == compiled.rows(db)
        assert view.answers == {(1, 1), (2, 1), (2, 2)}
