"""Cross-method parity: every certain-answer strategy agrees.

Runs the full 7-method matrix — brute force, the interpreted
Algorithm 1, the tuple-at-a-time rewriting evaluator, the compiled
plan, the SQL backend, the columnar vectorized executor, and the
sharded parallel executor (both backends: tuple and
columnar-under-parallel) — on generated workloads and asserts
identical answer sets.  Databases are
kept small enough for the exponential brute-force oracle; the
parallel paths run with ``min_facts=0`` so real partitioning, forked
workers, and merging are exercised even at these sizes.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.terms import Variable
from repro.cqa.certain_answers import (
    OpenQuery,
    certain_answers,
    cross_validate_answers,
)
from repro.parallel import parallel_certain_answers, shutdown_pools
from repro.parallel.pool import fork_context
from repro.workloads.poll import (
    adversarial_poll_database,
    random_poll_database,
)
from repro.workloads.queries import poll_q1, poll_qa, poll_qb

p, t = Variable("p"), Variable("t")

needs_fork = pytest.mark.skipif(
    fork_context() is None, reason="platform has no fork start method"
)

OPEN_QUERIES = {
    "qa(p)": lambda: OpenQuery(poll_qa(), [p]),
    "qb(p)": lambda: OpenQuery(poll_qb(), [p]),
    "q1(t)": lambda: OpenQuery(poll_q1(), [t]),
}


@pytest.fixture(autouse=True, scope="module")
def _clean_pools():
    yield
    shutdown_pools()


def assert_parity(open_query, db, parallel_jobs=2):
    results = cross_validate_answers(open_query, db,
                                     parallel_jobs=parallel_jobs)
    if open_query.in_fo:
        assert set(results) == {"brute", "interpreted", "rewriting",
                                "compiled", "sql", "columnar",
                                "parallel", "parallel-columnar"}
    reference = results["brute"]
    for method, answers in results.items():
        assert answers == reference, (
            f"{method} disagrees with brute force: "
            f"{sorted(answers ^ reference, key=repr)}"
        )


@needs_fork
@pytest.mark.parametrize("name", sorted(OPEN_QUERIES))
@given(seed=st.integers(0, 10**6))
@settings(max_examples=10, deadline=None)
def test_random_poll_parity(name, seed):
    db = random_poll_database(
        n_people=6, n_towns=3, conflict_rate=0.5, rng=random.Random(seed)
    )
    assert_parity(OPEN_QUERIES[name](), db)


@needs_fork
@given(seed=st.integers(0, 10**6), certain=st.floats(0.0, 1.0))
@settings(max_examples=10, deadline=None)
def test_adversarial_poll_parity(seed, certain):
    db = adversarial_poll_database(
        n_people=5, n_towns=4, certain_fraction=certain,
        rng=random.Random(seed),
    )
    assert_parity(OpenQuery(poll_qa(), [p]), db)


@needs_fork
def test_columnar_matches_compiled_beyond_brute_sizes():
    # Same idea for the vectorized backend: serial columnar and
    # columnar-under-parallel against the serial compiled plan, at a
    # size where dictionary encoding and batch joins do real work.
    db = adversarial_poll_database(800, 12, rng=random.Random(5))
    oq = OpenQuery(poll_qa(), [p])
    serial = certain_answers(oq, db, "compiled")
    assert certain_answers(oq, db, "columnar") == serial
    for jobs in (2, 3):
        par = parallel_certain_answers(oq, db, jobs=jobs, min_facts=0,
                                       shard_factor=4, backend="columnar")
        assert par == serial


@given(seed=st.integers(0, 10**6))
@settings(max_examples=10, deadline=None)
def test_boolean_probe_parity(seed):
    # Boolean certainty under method="columnar" delegates to the row
    # executor's short-circuit probe path; the answer must match the
    # brute-force oracle and the compiled probe.
    from repro.cqa.engine import CertaintyEngine

    db = random_poll_database(
        n_people=5, n_towns=3, conflict_rate=0.6, rng=random.Random(seed)
    )
    engine = CertaintyEngine(poll_qa())
    expected = engine.certain(db, "brute")
    assert engine.certain(db, "columnar") == expected
    assert engine.certain(db, "compiled") == expected


@needs_fork
def test_parallel_matches_compiled_beyond_brute_sizes():
    # Larger than the brute-force oracle can take: compare the parallel
    # path against the serial compiled plan directly, with enough jobs
    # and shards that several are empty or tiny.
    db = adversarial_poll_database(800, 12, rng=random.Random(5))
    oq = OpenQuery(poll_qa(), [p])
    serial = certain_answers(oq, db, "compiled")
    for jobs in (2, 3):
        par = parallel_certain_answers(oq, db, jobs=jobs, min_facts=0,
                                       shard_factor=4)
        assert par == serial


@needs_fork
def test_two_free_variables_parity():
    db = random_poll_database(6, 3, conflict_rate=0.5,
                              rng=random.Random(99))
    assert_parity(OpenQuery(poll_qa(), [p, t]), db)


@needs_fork
@given(seed=st.integers(0, 10**6))
@settings(max_examples=5, deadline=None)
def test_store_backed_parity(seed, tmp_path_factory):
    # The same matrix on a WAL-backed store: method="sql" runs through
    # the delta-maintained sqlite mirror instead of a per-call load,
    # and every answer set must still match the brute-force oracle.
    from repro.storage import PersistentDatabase, storage_stats

    db = random_poll_database(
        n_people=6, n_towns=3, conflict_rate=0.5, rng=random.Random(seed)
    )
    directory = tmp_path_factory.mktemp("store")
    store = PersistentDatabase(directory / "db")
    for schema in db.schemas.values():
        store.add_relation(schema)
    with store.batch():
        for name in db.relations():
            store.add_all(name, db.facts(name))
    try:
        before = storage_stats()["pushdown"]
        routed_before = before["routed_sql"]
        native_before = before["native_sql"]
        assert_parity(OpenQuery(poll_qa(), [p]), store)
        after = storage_stats()["pushdown"]
        assert after["routed_sql"] > routed_before
        # The mirror ran the compiled plan natively — the legacy
        # formula-SQL load-and-run path never fired for the store.
        assert after["native_sql"] > native_before
    finally:
        store.close()


@needs_fork
def test_store_reopen_is_invisible_to_sql_method(tmp_path_factory):
    # Closing and reopening the store (mirror reattach, dictionary
    # replay, fresh statement cache) must not change any answer.
    from repro.storage import PersistentDatabase, storage_stats

    db = random_poll_database(6, 3, conflict_rate=0.5,
                              rng=random.Random(11))
    directory = tmp_path_factory.mktemp("store")
    store = PersistentDatabase(directory / "db")
    for schema in db.schemas.values():
        store.add_relation(schema)
    with store.batch():
        for name in db.relations():
            store.add_all(name, db.facts(name))
    oq = OpenQuery(poll_qa(), [p])
    expected = certain_answers(oq, store, "compiled")
    assert certain_answers(oq, store, "sql") == expected
    store.checkpoint()
    store.close()

    store = PersistentDatabase(directory / "db")
    try:
        rebuilds_before = storage_stats()["pushdown"]["mirror_rebuilds"]
        assert certain_answers(oq, store, "sql") == expected
        assert certain_answers(oq, store, "compiled") == expected
        # Reattach found a format-2 mirror at the right clock with a
        # replayable dictionary: no rebuild.
        assert (storage_stats()["pushdown"]["mirror_rebuilds"]
                == rebuilds_before)
    finally:
        store.close()
