"""Unit tests for the WAL segment format (repro.storage.wal).

Frame-level behavior: append/scan round trips, torn-tail detection at
every damage class scan_wal distinguishes, writer recovery (truncate
and append after the last intact record), header rebuild, and the
sync-mode / segment-naming helpers.
"""

from __future__ import annotations

import struct

import pytest

from repro.storage.wal import (
    HEADER_SIZE,
    MAGIC,
    WalError,
    WalWriter,
    list_segments,
    scan_wal,
    segment_base,
    segment_path,
    wal_sync_mode,
)

B1 = ("B", 1, {"R": ([("a", "b")], [])})
B2 = ("B", 2, {"R": ([], [("a", "b")]), "S": ([(1, 2)], [])})
S1 = ("S", 2, "T", 2, 1)


def write_segment(directory, records, base=0):
    writer, existing = WalWriter.open(directory, base)
    assert existing == []
    for record in records:
        writer.append(record)
    writer.close()
    return segment_path(directory, base)


class TestRoundTrip:
    def test_append_scan(self, tmp_path):
        path = write_segment(tmp_path, [B1, B2, S1])
        base, records, good, damage = scan_wal(path)
        assert (base, damage) == (0, None)
        assert records == [B1, B2, S1]
        assert good == path.stat().st_size

    def test_empty_segment(self, tmp_path):
        path = write_segment(tmp_path, [])
        base, records, good, damage = scan_wal(path)
        assert (base, records, damage) == (0, [], None)
        assert good == HEADER_SIZE

    def test_append_returns_bytes_on_disk(self, tmp_path):
        writer, _ = WalWriter.open(tmp_path, 0)
        n = writer.append(B1)
        writer.close()
        path = segment_path(tmp_path, 0)
        assert path.stat().st_size == HEADER_SIZE + n

    def test_reopen_appends_after_existing(self, tmp_path):
        write_segment(tmp_path, [B1])
        writer, records = WalWriter.open(tmp_path, 0)
        assert records == [B1]
        writer.append(B2)
        writer.close()
        _, records, _, damage = scan_wal(segment_path(tmp_path, 0))
        assert records == [B1, B2] and damage is None


class TestDamage:
    def test_torn_frame_header(self, tmp_path):
        path = write_segment(tmp_path, [B1, B2])
        # Leave the first record intact plus 3 bytes of the next frame.
        data = path.read_bytes()
        first_good = HEADER_SIZE + scan_one_size(path)
        path.write_bytes(data[:first_good + 3])
        base, records, good, damage = scan_wal(path)
        assert records == [B1]
        assert good == first_good
        assert damage == "torn frame header"

    def test_torn_payload(self, tmp_path):
        path = write_segment(tmp_path, [B1, B2])
        data = path.read_bytes()
        path.write_bytes(data[:-2])
        base, records, good, damage = scan_wal(path)
        assert records == [B1]
        assert damage == "torn payload"

    def test_crc_mismatch(self, tmp_path):
        path = write_segment(tmp_path, [B1, B2])
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip a payload byte of the last record
        path.write_bytes(bytes(data))
        _, records, _, damage = scan_wal(path)
        assert records == [B1]
        assert damage == "crc mismatch"

    def test_non_monotone_lsn(self, tmp_path):
        writer, _ = WalWriter.open(tmp_path, 0)
        writer.append(("B", 5, {}))
        writer.append(("B", 3, {}))
        writer.close()
        _, records, _, damage = scan_wal(segment_path(tmp_path, 0))
        assert records == [("B", 5, {})]
        assert damage is not None and "non-monotone" in damage

    def test_truncated_header_scans_empty(self, tmp_path):
        path = segment_path(tmp_path, 0)
        path.write_bytes(b"RPW")
        base, records, good, damage = scan_wal(path)
        assert (records, good) == ([], 0)
        assert damage == "truncated header"

    def test_bad_magic_raises(self, tmp_path):
        path = segment_path(tmp_path, 0)
        path.write_bytes(b"X" * HEADER_SIZE)
        with pytest.raises(WalError):
            scan_wal(path)

    def test_implausible_length(self, tmp_path):
        path = write_segment(tmp_path, [B1])
        with open(path, "ab") as fp:
            fp.write(struct.pack("<II", 2**31, 0))
        _, records, _, damage = scan_wal(path)
        assert records == [B1]
        assert "implausible length" in damage

    def test_open_truncates_torn_tail(self, tmp_path):
        path = write_segment(tmp_path, [B1, B2])
        data = path.read_bytes()
        path.write_bytes(data[:-2])
        writer, records = WalWriter.open(tmp_path, 0)
        assert records == [B1]
        writer.append(S1)
        writer.close()
        _, records, _, damage = scan_wal(path)
        assert records == [B1, S1] and damage is None

    def test_open_rebuilds_destroyed_header(self, tmp_path):
        path = segment_path(tmp_path, 0)
        path.write_bytes(b"RP")  # crash during segment creation
        writer, records = WalWriter.open(tmp_path, 0)
        assert records == []
        writer.append(B1)
        writer.close()
        base, records, _, damage = scan_wal(path)
        assert (base, records, damage) == (0, [B1], None)


def scan_one_size(path):
    """Bytes on disk of the first record of a segment."""
    data = path.read_bytes()
    length, _ = struct.unpack_from("<II", data, HEADER_SIZE)
    return struct.calcsize("<II") + length


class TestHelpers:
    def test_segment_naming(self, tmp_path):
        path = segment_path(tmp_path, 42)
        assert path.name == "wal-0000000000000042.log"
        assert segment_base(path) == 42

    def test_list_segments_sorted(self, tmp_path):
        for base in (7, 0, 100):
            write_segment(tmp_path, [], base=base)
        assert [segment_base(p) for p in list_segments(tmp_path)] == [0, 7, 100]

    def test_wal_sync_mode(self, monkeypatch):
        monkeypatch.delenv("REPRO_WAL_SYNC", raising=False)
        assert wal_sync_mode() == "always"
        assert wal_sync_mode("off") == "off"
        monkeypatch.setenv("REPRO_WAL_SYNC", "off")
        assert wal_sync_mode() == "off"

    def test_header_base_matches_filename(self, tmp_path):
        path = write_segment(tmp_path, [], base=9)
        magic, base = struct.unpack_from("<8sQ", path.read_bytes(), 0)
        assert magic == MAGIC and base == 9
