"""Tests for the interpreted Algorithm 1 (repro.cqa.is_certain)."""

import random

import pytest

from repro.core.atoms import atom
from repro.core.classify import classify
from repro.core.query import Query
from repro.core.terms import Constant, Variable
from repro.cqa.brute_force import is_certain_brute_force
from repro.cqa.is_certain import is_certain
from repro.cqa.rewriting import NotInFO
from repro.workloads.generators import (
    QueryParams,
    random_query,
    random_small_database,
)
from repro.workloads.queries import (
    poll_qa,
    poll_qb,
    q1,
    q3,
    q_example611,
    q_hall,
)

from conftest import db_from

x, y = Variable("x"), Variable("y")


class TestApplicability:
    def test_rejects_cyclic(self):
        db = db_from({"R/2/1": [], "S/2/1": []})
        with pytest.raises(NotInFO):
            is_certain(q1(), db)


class TestBaseCases:
    def test_all_key_query_is_satisfaction(self):
        q = Query([atom("R", [x, y])])
        assert is_certain(q, db_from({"R/2/2": [(1, 2)]}))
        assert not is_certain(q, db_from({"R/2/2": []}))

    def test_empty_relation_positive_atom(self):
        q = q3()
        assert not is_certain(q, db_from({"P/2/1": [], "N/2/1": []}))

    def test_missing_relation_positive_atom(self):
        q = q3()
        assert not is_certain(q, db_from({}))

    def test_ground_negated_atom_present(self):
        q = Query([atom("R", [x], [y])],
                  [atom("N", [Constant("c")], [Constant("d")])])
        db = db_from({"R/2/1": [(1, 2)], "N/2/1": [("c", "d")]})
        assert not is_certain(q, db)
        db = db_from({"R/2/1": [(1, 2)], "N/2/1": [("c", "e")]})
        assert is_certain(q, db)


class TestWorkedExamples:
    def test_q3_certain_instance(self):
        # Both P-blocks avoid the blocked value in some fact... the
        # rewriting requires a block where z never occurs.
        db = db_from({"P/2/1": [(1, "a"), (2, "b")], "N/2/1": [("c", "a")]})
        assert is_certain(q3(), db)

    def test_q3_uncertain_instance(self):
        # The only P-block can pick the blocked value 'a' in every fact.
        db = db_from({"P/2/1": [(1, "a")], "N/2/1": [("c", "a")]})
        assert not is_certain(q3(), db)

    def test_hall_instance(self):
        # S = {a, b}, one set {a, b}: cannot cover both -> certain.
        db = db_from({"S/1/1": [("a",), ("b",)],
                      "N1/2/1": [("c", "a"), ("c", "b")]})
        assert is_certain(q_hall(1), db)

    def test_hall_coverable(self):
        db = db_from({"S/1/1": [("a",)], "N1/2/1": [("c", "a")]})
        assert not is_certain(q_hall(1), db)


class TestAgainstBruteForce:
    @pytest.mark.parametrize("make", [q3, poll_qa, poll_qb, q_example611,
                                      lambda: q_hall(2)])
    def test_canonical_queries(self, make, rng):
        q = make()
        for _ in range(30):
            db = random_small_database(q, rng, domain_size=3,
                                       facts_per_relation=4)
            assert is_certain(q, db) == is_certain_brute_force(q, db), repr(db)

    def test_random_acyclic_queries(self):
        rng = random.Random(47)
        tested = 0
        while tested < 20:
            q = random_query(
                QueryParams(n_positive=2, n_negative=1, n_variables=3,
                            max_arity=2), rng)
            if not classify(q).in_fo:
                continue
            tested += 1
            for _ in range(8):
                db = random_small_database(q, rng, domain_size=2,
                                           facts_per_relation=3)
                assert is_certain(q, db) == is_certain_brute_force(q, db), \
                    f"{q} on {db!r}"
