"""Stateful property testing of the Database substrate.

A hypothesis rule-based state machine drives add/discard/copy against a
reference model (plain dict of sets) and checks blocks, consistency,
repair counts, lookups, and index freshness after every step.
"""

import hypothesis.strategies as st
from hypothesis.stateful import (RuleBasedStateMachine, invariant, rule)

from repro.core.atoms import RelationSchema
from repro.db.database import Database

RELATIONS = {
    "R": RelationSchema("R", 2, 1),
    "S": RelationSchema("S", 3, 2),
    "T": RelationSchema("T", 1, 1),
}

values = st.integers(min_value=0, max_value=3)


def row_for(name):
    arity = RELATIONS[name].arity
    return st.tuples(*[values] * arity)


class DatabaseMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.db = Database(RELATIONS.values())
        self.model = {name: set() for name in RELATIONS}

    @rule(name=st.sampled_from(sorted(RELATIONS)), data=st.data())
    def add_fact(self, name, data):
        row = data.draw(row_for(name))
        self.db.add(name, row)
        self.model[name].add(row)

    @rule(name=st.sampled_from(sorted(RELATIONS)), data=st.data())
    def discard_fact(self, name, data):
        row = data.draw(row_for(name))
        self.db.discard(name, row)
        self.model[name].discard(row)

    @rule(name=st.sampled_from(sorted(RELATIONS)))
    def clear(self, name):
        self.db.clear_relation(name)
        self.model[name] = set()

    @rule()
    def replace_with_copy(self):
        self.db = self.db.copy()

    @rule(name=st.sampled_from(sorted(RELATIONS)), data=st.data())
    def lookup_matches_scan(self, name, data):
        schema = RELATIONS[name]
        bindings = {
            i: data.draw(values)
            for i in range(schema.arity)
            if data.draw(st.booleans())
        }
        expected = frozenset(
            row for row in self.model[name]
            if all(row[i] == v for i, v in bindings.items())
        )
        assert self.db.lookup(name, bindings) == expected

    @invariant()
    def facts_match_model(self):
        for name, rows in self.model.items():
            assert self.db.facts(name) == frozenset(rows)

    @invariant()
    def blocks_partition_facts(self):
        for name in RELATIONS:
            blocks = self.db.blocks(name)
            union = set()
            for key, rows in blocks.items():
                assert rows, "empty block"
                for row in rows:
                    assert RELATIONS[name].key_of(row) == key
                union |= rows
            assert union == self.model[name]

    @invariant()
    def repair_count_is_block_product(self):
        expected = 1
        for name, schema in RELATIONS.items():
            sizes = {}
            for row in self.model[name]:
                key = schema.key_of(row)
                sizes[key] = sizes.get(key, 0) + 1
            for s in sizes.values():
                expected *= s
        assert self.db.repair_count() == expected

    @invariant()
    def consistency_matches_model(self):
        expected = True
        for name, schema in RELATIONS.items():
            keys = [schema.key_of(row) for row in self.model[name]]
            if len(keys) != len(set(keys)):
                expected = False
        assert self.db.is_consistent == expected


TestDatabaseMachine = DatabaseMachine.TestCase
TestDatabaseMachine.settings = __import__("hypothesis").settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
