"""Tests for the FO AST (repro.fo.formula)."""

from repro.core.atoms import atom
from repro.core.terms import Constant, PlaceholderConstant, Variable
from repro.fo.formula import (
    And,
    AtomF,
    Eq,
    Exists,
    FALSE,
    Forall,
    Not,
    Or,
    TRUE,
    constants_of,
    free_variables,
    implies,
    make_and,
    make_exists,
    make_forall,
    make_not,
    make_or,
    relations_of,
    schemas_of,
    substitute_terms,
)

x, y, z = Variable("x"), Variable("y"), Variable("z")
r_xy = AtomF(atom("R", [x], [y]))


class TestSmartConstructors:
    def test_and_flattens(self):
        f = make_and([make_and([r_xy, TRUE]), r_xy])
        assert isinstance(f, And)
        assert len(f.subs) == 2

    def test_and_absorbs_false(self):
        assert make_and([r_xy, FALSE]) == FALSE

    def test_and_empty_is_true(self):
        assert make_and([]) == TRUE

    def test_and_singleton_unwrapped(self):
        assert make_and([r_xy]) == r_xy

    def test_or_flattens(self):
        f = make_or([make_or([r_xy, FALSE]), r_xy])
        assert isinstance(f, Or)
        assert len(f.subs) == 2

    def test_or_absorbs_true(self):
        assert make_or([r_xy, TRUE]) == TRUE

    def test_or_empty_is_false(self):
        assert make_or([]) == FALSE

    def test_not_double_negation(self):
        assert make_not(make_not(r_xy)) == r_xy

    def test_not_constants(self):
        assert make_not(TRUE) == FALSE
        assert make_not(FALSE) == TRUE

    def test_exists_empty_vars(self):
        assert make_exists([], r_xy) == r_xy

    def test_exists_merges_nested(self):
        f = make_exists([x], make_exists([y], r_xy))
        assert isinstance(f, Exists)
        assert f.vars == (x, y)

    def test_forall_merges_nested(self):
        f = make_forall([x], make_forall([y], r_xy))
        assert isinstance(f, Forall)
        assert f.vars == (x, y)

    def test_exists_over_constant_formula(self):
        assert make_exists([x], TRUE) == TRUE

    def test_implies_encoding(self):
        f = implies(r_xy, TRUE)
        assert f == TRUE
        f = implies(r_xy, FALSE)
        assert f == Not(r_xy)

    def test_operator_sugar(self):
        assert (r_xy & TRUE) == r_xy
        assert (r_xy | TRUE) == TRUE
        assert (~TRUE) == FALSE


class TestTraversals:
    def test_free_variables_atom(self):
        assert free_variables(r_xy) == {x, y}

    def test_free_variables_quantified(self):
        assert free_variables(Exists((x,), r_xy)) == {y}
        assert free_variables(Forall((x, y), r_xy)) == frozenset()

    def test_free_variables_eq(self):
        assert free_variables(Eq(x, Constant(1))) == {x}

    def test_constants_of(self):
        f = make_and([AtomF(atom("R", [Constant("c")], [y])), Eq(x, Constant(3))])
        assert {c.value for c in constants_of(f)} == {"c", 3}

    def test_relations_of(self):
        f = make_and([r_xy, Not(AtomF(atom("S", [y])))])
        assert relations_of(f) == {"R", "S"}

    def test_schemas_of(self):
        f = make_and([r_xy, AtomF(atom("S", [y]))])
        schemas = schemas_of(f)
        assert schemas["R"].arity == 2
        assert schemas["S"].arity == 1


class TestSubstitution:
    def test_substitute_variable(self):
        f = substitute_terms(r_xy, {x: Constant(1)})
        assert free_variables(f) == {y}

    def test_substitute_placeholder(self):
        p = PlaceholderConstant(x)
        f = AtomF(atom("R", [p], [y]))
        g = substitute_terms(f, {p: x})
        assert free_variables(g) == {x, y}

    def test_substitute_inside_quantifier_body(self):
        p = PlaceholderConstant(z)
        f = Exists((x,), AtomF(atom("R", [x], [p])))
        g = substitute_terms(f, {p: z})
        assert free_variables(g) == {z}

    def test_substitute_eq(self):
        f = substitute_terms(Eq(x, y), {x: Constant(1), y: Constant(2)})
        assert f == Eq(Constant(1), Constant(2))


class TestEqualityHash:
    def test_structural_equality(self):
        assert make_and([r_xy, Eq(x, y)]) == make_and([r_xy, Eq(x, y)])

    def test_hashable(self):
        assert len({TRUE, FALSE, r_xy, r_xy}) == 3
