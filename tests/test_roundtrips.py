"""Hypothesis round-trip properties: value codec, database JSON,
query text."""

import hypothesis.strategies as st
from hypothesis import example, given, settings

from repro.core.atoms import RelationSchema
from repro.db.database import Database
from repro.db.io import database_from_dict, database_to_dict
from repro.fo.sql import decode_value, encode_value

# ----------------------------------------------------------------------
# values: strings, ints, bools, nested tuples
# ----------------------------------------------------------------------

#: Strings whose *content* mimics the codec's own wire format: tag
#: sigils ("i:5" as a string, not an int), percent escapes, separators.
#: The codec must keep them apart from the values they impersonate.
sigil_colliders = st.sampled_from([
    "i:5", "s:x", "b:1", "t:a,b", "t:a%2Cb", "%25", "%2C",
    "i:", "t:", ",", "s:s:nested", "b:0",
])
scalar = st.one_of(
    st.text(max_size=8),
    st.text(
        alphabet=st.characters(min_codepoint=0x20, max_codepoint=0x2FFF),
        max_size=8,
    ),
    sigil_colliders,
    st.integers(min_value=-10**6, max_value=10**6),
    st.booleans(),
)
values = st.recursive(
    scalar,
    lambda child: st.lists(child, max_size=3).map(tuple),
    max_leaves=6,
)


@given(values)
@example("")
@example("i:5")
@example("%25")
@example("t:a%2Cb")
@example(-1)
@example("naïve Łukasiewicz ∀x")
@example(("i:5", ("%2C", ""), -7))
@settings(max_examples=300, deadline=None)
def test_encode_decode_roundtrip(value):
    assert decode_value(encode_value(value)) == value


@given(values, values)
@example("i:5", 5)
@example("b:1", True)
@example(("a%2Cb",), ("a", "b"))
@example("", ())
@settings(max_examples=300, deadline=None)
def test_encode_injective(a, b):
    if a != b:
        assert encode_value(a) != encode_value(b)


# ----------------------------------------------------------------------
# database JSON
# ----------------------------------------------------------------------

rows2 = st.lists(st.tuples(scalar, scalar), max_size=5)


@given(rows2, st.integers(min_value=1, max_value=2))
@settings(max_examples=100, deadline=None)
def test_database_json_roundtrip(rows, key_size):
    db = Database([RelationSchema("R", 2, key_size)])
    for row in rows:
        db.add("R", row)
    assert database_from_dict(database_to_dict(db)) == db


# ----------------------------------------------------------------------
# query text
# ----------------------------------------------------------------------


@given(st.data())
@settings(max_examples=100, deadline=None)
def test_query_text_roundtrip(data):
    import random

    from repro.core.parser import parse_query, query_to_text
    from repro.workloads.generators import QueryParams, random_query

    seed = data.draw(st.integers(min_value=0, max_value=10**6))
    q = random_query(
        QueryParams(n_positive=2, n_negative=1,
                    require_weakly_guarded=False),
        random.Random(seed),
    )
    assert parse_query(query_to_text(q)) == q
