"""Tests for the UFA substrate and reduction (Lemma 5.3)."""

import pytest

from repro.cqa.brute_force import is_certain_brute_force
from repro.reductions.ufa import (
    DisjointSets,
    Forest,
    edge_constant,
    two_component_forest,
    ufa_to_database,
)
from repro.workloads.forests import random_two_component_forest, ufa_instance
from repro.workloads.queries import q2


class TestDisjointSets:
    def test_singletons_disconnected(self):
        d = DisjointSets()
        d.add(1)
        d.add(2)
        assert not d.connected(1, 2)

    def test_union_connects(self):
        d = DisjointSets()
        d.union(1, 2)
        d.union(2, 3)
        assert d.connected(1, 3)

    def test_union_returns_false_on_same_class(self):
        d = DisjointSets()
        assert d.union(1, 2)
        assert not d.union(2, 1)

    def test_component_count(self):
        d = DisjointSets()
        d.union(1, 2)
        d.add(3)
        assert d.component_count() == 2

    def test_transitive_chain(self):
        d = DisjointSets()
        for i in range(50):
            d.union(i, i + 1)
        assert d.connected(0, 50)


class TestForest:
    def test_cycle_rejected(self):
        f = Forest()
        f.add_edge(1, 2)
        f.add_edge(2, 3)
        with pytest.raises(ValueError):
            f.add_edge(3, 1)

    def test_connectivity(self):
        f = Forest()
        f.add_edge(1, 2)
        f.add_edge(3, 4)
        assert f.connected(1, 2)
        assert not f.connected(1, 3)

    def test_unknown_vertex_disconnected(self):
        f = Forest()
        f.add_edge(1, 2)
        assert not f.connected(1, 99)

    def test_two_component_builder(self):
        f = two_component_forest([(1, 2), (3, 4)])
        assert f.component_count() == 2
        with pytest.raises(ValueError):
            two_component_forest([(1, 2)])


class TestEdgeConstant:
    def test_order_insensitive(self):
        assert edge_constant("a", "b") == edge_constant("b", "a")

    def test_distinct_edges_distinct(self):
        assert edge_constant("a", "b") != edge_constant("a", "c")


class TestReduction:
    def test_distinct_endpoints_required(self):
        f = Forest()
        f.add_edge(1, 2)
        with pytest.raises(ValueError):
            ufa_to_database(f, 1, 1)

    def test_database_shape(self):
        f = Forest()
        f.add_edge("a", "b")
        db = ufa_to_database(f, "a", "b")
        e = edge_constant("a", "b")
        assert db.contains("R", ("a", e))
        assert db.contains("S", ("b", e))
        assert db.contains("T", (e, "a"))
        assert db.schemas["R"].is_all_key

    def test_equivalence(self, rng):
        query = q2()
        for t in range(16):
            forest, u, v = ufa_instance(rng.randint(2, 3), rng.randint(2, 3),
                                        connected=bool(t % 2), rng=rng)
            db = ufa_to_database(forest, u, v)
            assert is_certain_brute_force(query, db) == forest.connected(u, v)

    def test_workload_generator_shapes(self, rng):
        forest, nodes_a, nodes_b = random_two_component_forest(4, 3, rng)
        assert forest.component_count() == 2
        assert len(forest.edges) == 3 + 2
        assert forest.connected(nodes_a[0], nodes_a[-1])
        assert not forest.connected(nodes_a[0], nodes_b[0])
