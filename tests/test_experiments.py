"""Smoke tests for the experiment drivers (E1–E11) and the harness."""

import pytest

from repro.experiments import (
    ALL_EXPERIMENTS,
    e1_bpm,
    e2_hall,
    e3_q4,
    e4_ufa,
    e5_attack_graphs,
    e6_rewriting_q3,
    e7_poll,
    e8_classify,
    e9_reductions,
    e10_reify,
    e11_endtoend,
)
from repro.experiments.harness import Table, render_report, timed


class TestHarness:
    def test_row_arity_checked(self):
        t = Table("t", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_render_alignment(self):
        t = Table("title", ["col", "x"])
        t.add_row("value", 1)
        t.add_note("a note")
        out = t.render()
        assert "## title" in out
        assert "value" in out
        assert "note: a note" in out

    def test_render_formats_floats_and_bools(self):
        t = Table("t", ["a", "b", "c"])
        t.add_row(True, 0.00001, 0.5)
        out = t.render()
        assert "yes" in out
        assert "1.00e-05" in out
        assert "0.5000" in out

    def test_timed_returns_result(self):
        result, elapsed = timed(lambda a: a + 1, 41)
        assert result == 42
        assert elapsed >= 0

    def test_render_report_concatenates(self):
        t1 = Table("one", ["a"])
        t2 = Table("two", ["b"])
        out = render_report([t1, t2], heading="# H")
        assert out.index("# H") < out.index("## one") < out.index("## two")


class TestExperimentRegistry:
    def test_all_experiments_registered(self):
        # E1-E11 cover the paper's artifacts; E12 is the free-variables
        # extension, E13 the ablations, E14 the small-query census.
        assert len(ALL_EXPERIMENTS) == 14

    def test_titles_reference_paper_artifacts(self):
        text = " ".join(title for title, _ in ALL_EXPERIMENTS)
        for artifact in ("Fig. 1", "Fig. 2", "Fig. 3", "Fig. 4",
                         "Ex. 4.6", "Thm 4.3", "Prop. 7.2"):
            assert artifact in text


class TestDriversSmoke:
    """Each driver runs with tiny parameters and reports consistency."""

    def test_e1(self):
        tables = [e1_bpm.figure1_table(),
                  e1_bpm.scaling_table(sizes=(2, 3), brute_limit=3)]
        assert all(t.rows for t in tables)

    def test_e2(self):
        t = e2_hall.rewriting_growth_table(max_sets=2)
        assert len(t.rows) == 2
        t = e2_hall.agreement_table(trials=5, max_elements=2, max_sets=2)
        assert t.rows[0][-1] is True
        t = e2_hall.timing_table(n_elements=5, n_sets=(1, 2), sql_limit=2)
        assert len(t.rows) == 2

    def test_e3(self):
        assert e3_q4.figure3_table().rows[0][-2:] == (True, True)
        t = e3_q4.agreement_table(trials=20)
        assert t.rows[0][-1] is True
        assert e3_q4.scaling_table(sizes=(2, 4)).rows

    def test_e4(self):
        t = e4_ufa.figure4_table()
        assert all(row[-1] is True for row in t.rows)
        t = e4_ufa.agreement_table(trials=4)
        assert t.rows[0][-1] is True
        assert e4_ufa.scaling_table(sizes=(3, 10), brute_limit=3).rows

    def test_e5(self):
        t = e5_attack_graphs.example41_table()
        match_row = [r for r in t.rows if r[0] == "match"][0]
        assert match_row[1] is True

    def test_e6(self):
        t = e6_rewriting_q3.equivalence_table(trials=10)
        assert all(row[-1] is True for row in t.rows)

    def test_e7(self):
        t = e7_poll.classification_table()
        assert len(t.rows) == 4
        t = e7_poll.answering_table(sizes=((4, 2),), brute_limit=4)
        assert t.rows

    def test_e8(self):
        t = e8_classify.random_family_table(sizes=(2, 3), per_size=3)
        assert len(t.rows) == 2
        assert e8_classify.hall_family_table(sizes=(1, 2)).rows

    def test_e9(self):
        assert e9_reductions.lemma54_table(trials=5).rows[0][-1] is True
        assert all(r[-1] is True
                   for r in e9_reductions.lemma56_table(trials=4).rows)
        assert all(r[-1] is True
                   for r in e9_reductions.lemma57_table(trials=4).rows)

    def test_e10(self):
        t = e10_reify.gadget_table()
        assert t.rows
        assert all(row[-1] is True for row in t.rows)

    def test_e11(self):
        t = e11_endtoend.crossover_table(people_sizes=(4, 6), brute_limit=6)
        assert len(t.rows) == 2
        assert e11_endtoend.sql_amortization_table(people=8, queries=3).rows

    def test_e12(self):
        from repro.experiments import e12_certain_answers

        t = e12_certain_answers.agreement_table(trials=4)
        assert all(row[-1] is True for row in t.rows)
        assert e12_certain_answers.scaling_table(people_sizes=(6,)).rows
