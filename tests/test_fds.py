"""Unit tests for repro.core.fds (K(p) and F^{+,q})."""

from repro.core.atoms import atom
from repro.core.fds import FD, closure, fds_of_atoms, implies, oplus
from repro.core.query import Query
from repro.core.terms import Constant, Variable
from repro.workloads.queries import q2_example41, q3

x, y, z, u, w = (Variable(n) for n in "xyzuw")


class TestClosure:
    def test_empty_fds(self):
        assert closure([x], []) == {x}

    def test_single_fd(self):
        assert closure([x], [FD([x], [y])]) == {x, y}

    def test_chained(self):
        fds = [FD([x], [y]), FD([y], [z])]
        assert closure([x], fds) == {x, y, z}

    def test_not_triggered(self):
        assert closure([y], [FD([x], [z])]) == {y}

    def test_composite_lhs(self):
        fds = [FD([x, y], [z])]
        assert closure([x], fds) == {x}
        assert closure([x, y], fds) == {x, y, z}

    def test_empty_lhs_fd_always_fires(self):
        assert closure([], [FD([], [x])]) == {x}

    def test_closure_is_monotone(self):
        fds = [FD([x], [y]), FD([y], [z]), FD([z], [u])]
        small = closure([x], fds[:1])
        big = closure([x], fds)
        assert small <= big


class TestImplies:
    def test_trivial(self):
        assert implies([], FD([x], [x]))

    def test_transitivity(self):
        fds = [FD([x], [y]), FD([y], [z])]
        assert implies(fds, FD([x], [z]))

    def test_non_implication(self):
        assert not implies([FD([x], [y])], FD([y], [x]))


class TestKp:
    def test_one_fd_per_atom(self):
        atoms = [atom("R", [x], [y]), atom("S", [y], [z])]
        fds = fds_of_atoms(atoms)
        assert FD([x], [x, y]) in fds
        assert FD([y], [y, z]) in fds

    def test_constants_ignored(self):
        fds = fds_of_atoms([atom("N", [Constant("c")], [y])])
        assert fds == (FD([], [y]),)


class TestOplus:
    def test_example41(self):
        """Example 4.1: P+ = {x,y}, R+ = {x}, S+ = {y}."""
        q = q2_example41()
        assert oplus(q, q.atom_for("P")) == {x, y}
        assert oplus(q, q.atom_for("R")) == {x}
        assert oplus(q, q.atom_for("S")) == {y}

    def test_example42(self):
        """Example 4.2: P+ = {x}, N+ = {} for q3."""
        q = q3()
        assert oplus(q, q.atom_for("P")) == {x}
        assert oplus(q, q.atom_for("N")) == frozenset()

    def test_excludes_own_fd_for_positive(self):
        # q = {R(x̲, y)}: R+ must not use R's own FD x -> y.
        q = Query([atom("R", [x], [y])])
        assert oplus(q, q.atom_for("R")) == {x}

    def test_negative_atom_uses_all_positive_fds(self):
        q = Query([atom("R", [x], [y])], [atom("N", [x], [y])])
        assert oplus(q, q.atom_for("N")) == {x, y}
