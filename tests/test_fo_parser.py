"""Tests for the FO formula text parser."""

import pytest

from repro.core.terms import Constant, Variable
from repro.fo.eval import Evaluator
from repro.fo.formula import (
    AtomF,
    Eq,
    Exists,
    FALSE,
    Forall,
    Not,
    TRUE,
    free_variables,
)
from repro.fo.parser import FormulaParseError, parse_formula, parse_sentence

from conftest import db_from

x, y = Variable("x"), Variable("y")


class TestParsing:
    def test_atom(self):
        f = parse_formula("R(x, y)")
        assert isinstance(f, AtomF)
        assert f.atom.relation == "R"
        assert f.atom.terms == (x, y)

    def test_constants_in_atoms(self):
        f = parse_formula("R('c', 3)")
        assert f.atom.terms == (Constant("c"), Constant(3))

    def test_equality_and_disequality(self):
        assert parse_formula("x = y") == Eq(x, y)
        assert parse_formula("x != y") == Not(Eq(x, y))

    def test_boolean_constants(self):
        assert parse_formula("true") == TRUE
        assert parse_formula("false") == FALSE

    def test_negation_spellings(self):
        for text in ("not R(x)", "!R(x)", "~R(x)"):
            f = parse_formula(text)
            assert isinstance(f, Not)

    def test_quantifiers(self):
        f = parse_formula("exists x y. R(x, y)")
        assert isinstance(f, Exists)
        assert f.vars == (x, y)
        f = parse_formula("forall x. R(x, x)")
        assert isinstance(f, Forall)

    def test_precedence_and_binds_tighter_than_or(self):
        f = parse_formula("R(x) or S(x) and T(x)")
        from repro.fo.formula import And, Or

        assert isinstance(f, Or)
        assert isinstance(f.subs[1], And)

    def test_implication_desugars(self):
        f = parse_formula("R(x) -> S(x)")
        from repro.fo.formula import Or

        assert isinstance(f, Or)
        assert isinstance(f.subs[0], Not)

    def test_implication_right_associative(self):
        f = parse_formula("R(x) -> S(x) -> T(x)")
        g = parse_formula("R(x) -> (S(x) -> T(x))")
        assert f == g

    def test_parentheses(self):
        f = parse_formula("(R(x) or S(x)) and T(x)")
        from repro.fo.formula import And

        assert isinstance(f, And)

    def test_quantifier_scope_extends_right(self):
        f = parse_formula("exists x. R(x) and S(x)")
        assert free_variables(f) == frozenset()

    def test_ampersand_pipe_spellings(self):
        assert parse_formula("R(x) & S(x)") == parse_formula("R(x) and S(x)")
        assert parse_formula("R(x) | S(x)") == parse_formula("R(x) or S(x)")


class TestErrors:
    def test_missing_dot(self):
        with pytest.raises(FormulaParseError):
            parse_formula("exists x R(x)")

    def test_unbalanced_paren(self):
        with pytest.raises(FormulaParseError):
            parse_formula("(R(x) and S(x)")

    def test_empty_atom(self):
        with pytest.raises(FormulaParseError):
            parse_formula("R()")

    def test_trailing_garbage(self):
        with pytest.raises(FormulaParseError):
            parse_formula("R(x) R(y)")

    def test_sentence_rejects_free_vars(self):
        with pytest.raises(FormulaParseError):
            parse_sentence("R(x, y)")
        assert parse_sentence("exists x y. R(x, y)") is not None


class TestEvaluationOfParsedFormulas:
    def test_parsed_formula_evaluates(self):
        db = db_from({"R/2/2": [(1, 2)], "S/2/2": [(2, 1)]})
        f = parse_sentence("exists x y. R(x, y) and S(y, x)")
        assert Evaluator(f, db).evaluate()

    def test_parsed_guarded_forall(self):
        db = db_from({"R/2/2": [(1, 1), (2, 2)]})
        f = parse_sentence("forall x y. R(x, y) -> x = y")
        assert Evaluator(f, db).evaluate()
        db.add("R", (1, 2))
        assert not Evaluator(f, db).evaluate()

    def test_sql_and_python_agree_on_parsed(self):
        from repro.db.sqlite_backend import run_sentence_sql

        db = db_from({"R/2/2": [(1, 2), (3, 3)]})
        for text in (
            "exists x. R(x, x)",
            "forall x y. R(x, y) -> exists z. R(z, x)",
            "exists x y. R(x, y) and x != y",
        ):
            f = parse_sentence(text)
            assert Evaluator(f, db).evaluate() == run_sentence_sql(f, db), text

    def test_cli_eval(self, capsys, tmp_path):
        from repro.cli import main
        from repro.db.io import save_database

        db = db_from({"R/2/2": [(1, 2)]})
        path = tmp_path / "db.json"
        save_database(db, path)
        assert main(["eval", "exists x y. R(x, y)", "--db", str(path)]) == 0
        assert "True" in capsys.readouterr().out
