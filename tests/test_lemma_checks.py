"""Tests for the executable lemma checks and attack-graph extras."""

import random

import pytest

from repro.core.attack_graph import AttackGraph
from repro.core.lemma_checks import (
    check_all,
    check_all_key_zero_outdegree,
    check_lemma_4_7,
    check_lemma_4_8,
    check_lemma_4_9,
    check_lemma_6_10,
)
from repro.core.terms import Constant
from repro.workloads.generators import QueryParams, random_query
from repro.workloads.queries import all_named_queries, q3, q_hall


class TestLemmaChecksOnCanonicalQueries:
    @pytest.mark.parametrize("name,query", all_named_queries())
    def test_all_structural_lemmas_hold(self, name, query):
        assert check_all(query) == [], name

    def test_lemma_6_10_on_named_queries(self):
        for name, query in all_named_queries():
            for v in sorted(query.vars):
                assert check_lemma_6_10(query, v, Constant("k0")) == [], name


class TestLemmaChecksOnRandomQueries:
    def test_random_weakly_guarded(self):
        rng = random.Random(53)
        for _ in range(60):
            q = random_query(QueryParams(n_positive=2, n_negative=2,
                                         n_variables=4), rng)
            assert check_lemma_4_7(q) == []
            assert check_lemma_4_8(q) == []
            assert check_lemma_4_9(q) == []
            assert check_all_key_zero_outdegree(q) == []

    def test_random_unguarded_47_48_still_hold(self):
        # Lemmas 4.7/4.8 do not assume weak guardedness.
        rng = random.Random(59)
        for _ in range(40):
            q = random_query(QueryParams(n_positive=2, n_negative=2,
                                         require_weakly_guarded=False), rng)
            assert check_lemma_4_7(q) == []
            assert check_lemma_4_8(q) == []


class TestTopologicalOrder:
    def test_respects_edges(self):
        for name, query in all_named_queries():
            graph = AttackGraph(query)
            if not graph.is_acyclic:
                continue
            order = graph.topological_order()
            position = {a: i for i, a in enumerate(order)}
            for f, g in graph.edges:
                assert position[f] < position[g], name

    def test_covers_all_atoms(self):
        graph = AttackGraph(q_hall(3))
        assert set(graph.topological_order()) == set(q_hall(3).atoms)

    def test_cyclic_rejected(self):
        from repro.workloads.queries import q1

        with pytest.raises(ValueError):
            AttackGraph(q1()).topological_order()


class TestDot:
    def test_dot_structure(self):
        dot = AttackGraph(q3()).to_dot()
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert '"N" -> "P";' in dot

    def test_negated_atoms_boxed(self):
        dot = AttackGraph(q3()).to_dot()
        assert '"N" [shape=box' in dot
        assert '"P" [shape=ellipse' in dot


class TestInterpreterMemoization:
    def test_cache_populated_and_consistent(self):
        from repro.cqa.is_certain import CertaintyInterpreter
        from conftest import db_from

        db = db_from({"P/2/1": [(1, "a"), (1, "b"), (2, "a")],
                      "N/2/1": [("c", "a")]})
        interp = CertaintyInterpreter(q3(), db)
        first = interp.run(q3())
        assert interp._cache  # subproblems were memoized
        assert interp.run(q3()) == first
