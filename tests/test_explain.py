"""Tests for certainty explanations."""

import random

from repro.cqa.brute_force import is_certain_brute_force
from repro.cqa.explain import (
    CertaintyEvidence,
    UncertaintyExplanation,
    certainty_evidence,
    explain,
    explain_uncertainty,
)
from repro.db.satisfaction import satisfies
from repro.workloads.generators import random_small_database
from repro.workloads.queries import q1, q3

from conftest import db_from


class TestUncertaintyExplanation:
    def test_repair_actually_falsifies(self):
        db = db_from({"P/2/1": [(1, "a"), (1, "b")], "N/2/1": [("c", "a"),
                                                               ("c", "b")]})
        exp = explain_uncertainty(q3(), db)
        assert exp is not None
        assert not satisfies(exp.repair, q3())

    def test_none_when_certain(self):
        db = db_from({"P/2/1": [(1, "z")], "N/2/1": [("c", "a")]})
        assert explain_uncertainty(q3(), db) is None

    def test_block_choices_cover_inconsistent_blocks(self):
        db = db_from({"P/2/1": [(1, "a"), (1, "b"), (2, "a")],
                      "N/2/1": [("c", "a")]})
        exp = explain_uncertainty(q3(), db)
        assert exp is not None
        assert all(len(c.dropped) >= 1 for c in exp.choices)
        # Only block P(1) is inconsistent; its repair kept the blocked
        # value 'a'.
        assert [c.relation for c in exp.choices] == ["P"]
        assert exp.choices[0].kept == (1, "a")

    def test_render(self):
        db = db_from({"P/2/1": [(1, "a"), (1, "b")],
                      "N/2/1": [("c", "a"), ("c", "b")]})
        text = explain_uncertainty(q3(), db).render()
        assert "NOT certain" in text
        assert "kept" in text

    def test_consistent_falsifying_db(self):
        db = db_from({"P/2/1": [(1, "a")], "N/2/1": [("c", "a")]})
        exp = explain_uncertainty(q3(), db)
        assert exp is not None
        assert exp.choices == []
        assert "consistent" in exp.render()


class TestCertaintyEvidence:
    def test_witnesses_returned_when_certain(self, rng):
        db = db_from({"P/2/1": [(1, "z")], "N/2/1": [("c", "a")]})
        evidence = certainty_evidence(q3(), db, samples=10, rng=rng)
        assert evidence is not None
        assert len(evidence.witnesses) == 10

    def test_none_when_sampling_finds_falsifier(self):
        db = db_from({"P/2/1": [(1, "a")], "N/2/1": [("c", "a")]})
        rng = random.Random(1)
        assert certainty_evidence(q3(), db, samples=5, rng=rng) is None

    def test_render(self, rng):
        db = db_from({"P/2/1": [(1, "z")], "N/2/1": []})
        text = certainty_evidence(q3(), db, samples=3, rng=rng).render()
        assert "sampled" in text
        assert "x=" in text


class TestExplainDispatch:
    def test_matches_brute_force(self, rng):
        for make in (q1, q3):
            query = make()
            for _ in range(20):
                db = random_small_database(query, rng, domain_size=3,
                                           facts_per_relation=4)
                result = explain(query, db, rng=rng)
                certain = is_certain_brute_force(query, db)
                if certain:
                    assert isinstance(result, CertaintyEvidence)
                else:
                    assert isinstance(result, UncertaintyExplanation)
