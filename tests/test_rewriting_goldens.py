"""Golden snapshots of the constructed rewritings.

The construction is deterministic; these snapshots pin the exact
formulas so accidental changes to the rewriter surface as diffs here
(semantic equivalence is tested elsewhere — this guards *stability*).

The q_hall_2 golden is worth reading next to Figure 2 of the paper: it
is the same nested structure for l = 2.
"""

from repro.cqa.rewriting import consistent_rewriting
from repro.workloads.queries import poll_qa, poll_qb, q3, q_example611, q_hall

GOLDENS = {
    "q3": (
        q3,
        "((exists x _z0. P(x, _z0)) and (forall _z1. (not(N(c, _z1)) or "
        "(exists x. ((exists _z2. P(x, _z2)) and (forall _z2. "
        "(not(P(x, _z2)) or not(_z1 = _z2))))))))"
    ),
    "poll_qa": (
        poll_qa,
        "(exists p. ((exists _z0. Lives(p, _z0)) and (forall _z0. "
        "(not(Lives(p, _z0)) or (not(Likes(p, _z0)) and "
        "not(Born(p, _z0)))))))"
    ),
    "q_ex611": (
        q_example611,
        "((exists y. P(y)) and (forall _z0 _z1 _z2. "
        "(not(N(c, _z0, _z1, _z2)) or (exists y. (P(y) and "
        "(not(_z0 = a) or not(_z1 = y) or not(_z2 = y)))))))"
    ),
    "q_hall_2": (
        lambda: q_hall(2),
        "((exists x. S(x)) and (forall _z0. (not(N2(c, _z0)) or "
        "(exists x. (S(x) and not(_z0 = x))))) and (forall _z1. "
        "(not(N1(c, _z1)) or ((exists x. (S(x) and not(_z1 = x))) and "
        "(forall _z2. (not(N2(c, _z2)) or (exists x. (S(x) and "
        "not(_z1 = x) and not(_z2 = x)))))))))"
    ),
}


class TestGoldens:
    def test_rewritings_match_goldens(self):
        for name, (make, golden) in GOLDENS.items():
            assert repr(consistent_rewriting(make())) == golden, name

    def test_construction_deterministic(self):
        for name, (make, _) in GOLDENS.items():
            a = consistent_rewriting(make())
            b = consistent_rewriting(make())
            assert a == b, name
            assert repr(a) == repr(b), name

    def test_poll_qb_shape(self):
        """poll_qb's golden is long; pin its structural skeleton."""
        text = repr(consistent_rewriting(poll_qb()))
        assert text.count("forall") == 3  # Lives, Born, nested Lives
        assert text.count("exists t. (Likes(p, t)") >= 2
        assert "not(_z1 = t) and not(_z2 = t)" in text

    def test_goldens_readable_semantics(self):
        """poll_qa's golden literally says: some person has a Lives
        block in which every fact avoids both Likes and Born — keep the
        English reading in sync with the formula."""
        text = GOLDENS["poll_qa"][1]
        assert "exists p" in text
        assert "forall _z0" in text
        assert "not(Likes(p, _z0)) and not(Born(p, _z0))" in text
