"""Tests for the structural analysis report."""

from repro.core.analysis import analyze
from repro.workloads.queries import poll_qa, q1, q3, q_hall


class TestAnalyze:
    def test_q3_report_content(self):
        report = analyze(q3())
        assert report.safe
        assert report.weakly_guarded
        assert report.edges == [("N", "P")]
        assert report.cycle is None
        assert report.topological_order[0] == "N"
        assert report.rewriting_stats is not None
        assert report.rewriting_stats["nodes"] > 0

    def test_q1_report_has_cycle_no_rewriting(self):
        report = analyze(q1())
        assert report.cycle is not None
        assert report.topological_order is None
        assert report.rewriting_stats is None

    def test_atom_analyses_complete(self):
        report = analyze(poll_qa())
        names = [a.relation for a in report.atoms]
        assert names == ["Lives", "Born", "Likes"]
        lives = report.atoms[0]
        assert not lives.negated
        assert lives.attacked_vars == ("t",)
        assert lives.witnesses["t"] == ("t",)

    def test_oplus_matches_paper_example41(self):
        from repro.workloads.queries import q2_example41

        report = analyze(q2_example41())
        by_name = {a.relation: a for a in report.atoms}
        assert by_name["P"].oplus_vars == ("x", "y")
        assert by_name["R"].oplus_vars == ("x",)
        assert by_name["S"].oplus_vars == ("y",)

    def test_render_mentions_everything(self):
        text = analyze(q3()).render()
        for needle in ("query:", "verdict: in FO", "attack edges: N->P",
                       "rewriting:", "elimination order"):
            assert needle in text

    def test_render_cyclic_mentions_cycle(self):
        text = analyze(q1()).render()
        assert "cycle:" in text

    def test_skip_rewriting_flag(self):
        report = analyze(q_hall(3), include_rewriting=False)
        assert report.rewriting_stats is None


class TestAnalyzeCli:
    def test_cli_analyze(self, capsys):
        from repro.cli import main

        assert main(["analyze", "P(x | y), not N('c' | y)"]) == 0
        out = capsys.readouterr().out
        assert "verdict: in FO" in out
        assert "witness" in out
