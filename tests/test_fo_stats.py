"""Tests for formula metrics and pretty printing."""

from repro.core.atoms import atom
from repro.core.terms import Variable
from repro.fo.formula import (
    AtomF,
    Eq,
    FALSE,
    Not,
    TRUE,
    make_and,
    make_exists,
    make_forall,
    make_or,
)
from repro.fo.stats import pretty, stats

x, y, z = Variable("x"), Variable("y"), Variable("z")
r_xy = AtomF(atom("R", [x], [y]))


class TestStats:
    def test_atom(self):
        s = stats(r_xy)
        assert s.nodes == 1
        assert s.atoms == 1
        assert s.quantifiers == 0

    def test_constants(self):
        assert stats(TRUE).nodes == 1
        assert stats(FALSE).atoms == 0

    def test_conjunction(self):
        s = stats(make_and([r_xy, Eq(x, y)]))
        assert s.nodes == 3
        assert s.atoms == 2
        assert s.connectives == 1

    def test_quantifier_depth_counts_variables(self):
        f = make_exists([x, y], make_forall([z], r_xy))
        s = stats(f)
        assert s.quantifiers == 3
        assert s.quantifier_depth == 3

    def test_depth_takes_max_over_branches(self):
        f = make_and([make_exists([x], Eq(x, y)),
                      make_exists([x, z], Eq(x, z))])
        assert stats(f).quantifier_depth == 2

    def test_not_counts_as_connective(self):
        assert stats(Not(r_xy)).connectives == 1

    def test_size_alias(self):
        s = stats(r_xy)
        assert s.size == s.nodes


class TestPretty:
    def test_mentions_quantified_names(self):
        out = pretty(make_exists([x, y], r_xy))
        assert "exists x y" in out

    def test_indents_nested(self):
        out = pretty(make_forall([z], make_or([Not(r_xy), Eq(x, z)])))
        lines = out.splitlines()
        assert lines[0].startswith("forall")
        assert all(line.startswith("  ") for line in lines[1:])
