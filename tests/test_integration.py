"""Integration tests across the whole pipeline:

text query -> classify -> rewrite -> SQL -> sqlite -> decode,
database JSON <-> engine, typed transform under the engine, CLI chains.
"""

import json


from repro.core.parser import parse_query
from repro.core.terms import Variable
from repro.cqa.certain_answers import OpenQuery, certain_answers
from repro.cqa.engine import CertaintyEngine
from repro.db.io import load_database_file, save_database
from repro.db.typing import typed_database
from repro.workloads.crm import random_crm_database
from repro.workloads.generators import random_small_database
from repro.workloads.poll import random_poll_database
from repro.workloads.queries import poll_qa, q3

from conftest import db_from


class TestTextToSqlPipeline:
    def test_parse_classify_rewrite_execute(self):
        query = parse_query("Assigned(e | p), not Blocked('hq' | p)")
        engine = CertaintyEngine(query)
        assert engine.in_fo
        db = db_from({"Assigned/2/1": [("ann", "apollo"), ("ann", "zeus"),
                                       ("bea", "apollo")],
                      "Blocked/2/1": [("hq", "zeus")]})
        cv = engine.cross_validate(db)
        assert cv.consistent
        assert cv.answer  # bea's block never mentions a blocked project

        db.add("Blocked", ("hq", "apollo"))
        cv2 = engine.cross_validate(db)
        assert cv2.consistent
        assert not cv2.answer  # now every block can land on a blocked one

    def test_every_method_through_parsed_diseq_query(self, rng):
        query = parse_query("R(x | y, z), not N(y | z), (y, z) != (0, 0)")
        engine = CertaintyEngine(query)
        for _ in range(10):
            db = random_small_database(query, rng, domain_size=2,
                                       facts_per_relation=3)
            assert engine.cross_validate(db).consistent


class TestJsonThroughEngine:
    def test_roundtripped_database_same_answers(self, tmp_path, rng):
        db = random_poll_database(8, 3, conflict_rate=0.6, rng=rng)
        path = tmp_path / "poll.json"
        save_database(db, path)
        loaded = load_database_file(path)
        engine = CertaintyEngine(poll_qa())
        assert engine.certain(db, "sql") == engine.certain(loaded, "sql")
        assert engine.certain(db, "brute") == engine.certain(loaded, "brute")

    def test_hand_written_json(self, tmp_path):
        data = {
            "relations": {
                "P": {"arity": 2, "key": 1,
                      "facts": [[1, "a"], [1, "b"], [2, "z"]]},
                "N": {"arity": 2, "key": 1, "facts": [["c", "a"]]},
            }
        }
        path = tmp_path / "db.json"
        path.write_text(json.dumps(data))
        db = load_database_file(path)
        engine = CertaintyEngine(q3())
        assert engine.cross_validate(db).consistent


class TestTypedTransformUnderEngine:
    def test_all_methods_agree_after_typing(self, rng):
        query = poll_qa()
        engine = CertaintyEngine(query)
        for _ in range(8):
            db = random_poll_database(5, 3, conflict_rate=0.7, rng=rng)
            typed = typed_database(query, db)
            before = engine.certain(db, "sql")
            after_cv = engine.cross_validate(typed)
            assert after_cv.consistent
            assert after_cv.answer == before


class TestCertainAnswersOnCrm:
    def test_answers_stable_across_json_roundtrip(self, tmp_path, rng):
        db = random_crm_database(6, 3, conflict_rate=0.6, rng=rng)
        path = tmp_path / "crm.json"
        save_database(db, path)
        loaded = load_database_file(path)
        from repro.workloads.crm import crm_deliverable

        open_query = OpenQuery(crm_deliverable(), [Variable("i")])
        assert certain_answers(open_query, db, "sql") == \
            certain_answers(open_query, loaded, "sql")


class TestCliChain:
    def test_save_then_query_through_cli(self, tmp_path, capsys):
        from repro.cli import main

        db = db_from({"P/2/1": [(1, "a"), (1, "b"), (2, "z")],
                      "N/2/1": [("c", "a")]})
        path = tmp_path / "db.json"
        save_database(db, path)
        query = "P(x | y), not N('c' | y)"

        assert main(["certain", query, "--db", str(path),
                     "--method", "sql"]) == 0
        sql_out = capsys.readouterr().out
        assert main(["certain", query, "--db", str(path),
                     "--method", "brute"]) == 0
        brute_out = capsys.readouterr().out
        assert ("True" in sql_out) == ("True" in brute_out)

        assert main(["answers", query, "--free", "x",
                     "--db", str(path)]) == 0
        answers_out = capsys.readouterr().out
        assert "certain answers (x)" in answers_out


class TestDocstringCoverage:
    def test_every_module_documented(self):
        import importlib
        import pkgutil

        import repro

        undocumented = []
        for info in pkgutil.walk_packages(repro.__path__, "repro."):
            module = importlib.import_module(info.name)
            if not (module.__doc__ or "").strip():
                undocumented.append(info.name)
        assert undocumented == []

    def test_every_public_function_in_core_documented(self):
        import inspect

        from repro.core import analysis, attack_graph, classify, fds, query

        for module in (analysis, attack_graph, classify, fds, query):
            for name, obj in vars(module).items():
                if name.startswith("_"):
                    continue
                if inspect.isfunction(obj) and obj.__module__ == module.__name__:
                    assert (obj.__doc__ or "").strip(), \
                        f"{module.__name__}.{name} lacks a docstring"
