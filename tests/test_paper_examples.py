"""Every worked example of the paper, as executable assertions.

This file is the reproduction ledger: each test names the figure or
example it replays.
"""

from repro.core.attack_graph import AttackGraph
from repro.core.classify import Hardness, Verdict, classify
from repro.core.terms import Constant, Variable
from repro.cqa.brute_force import (
    find_falsifying_repair,
    is_certain_brute_force,
)
from repro.cqa.engine import CertaintyEngine
from repro.db.satisfaction import key_relevant_facts, satisfies
from repro.matching.hall import SCoveringInstance
from repro.reductions.bpm import bpm_to_database, matching_from_repair
from repro.reductions.scovering import query_for, scovering_to_database
from repro.workloads.bipartite import figure_1_graph
from repro.workloads.queries import (
    poll_q1,
    poll_q2,
    poll_qa,
    poll_qb,
    q1,
    q2_example41,
    q3,
    q4,
    q_example32_weakly_guarded_not_guarded,
    q_example611,
    q_hall,
)

from conftest import db_from

x, y = Variable("x"), Variable("y")


class TestFigure1Example11:
    """Figure 1 + Example 1.1: the girls/boys database."""

    def test_database_has_a_falsifying_repair(self):
        db = bpm_to_database(figure_1_graph())
        assert not is_certain_brute_force(q1(), db)

    def test_the_pairing_is_alice_george_maria_bob(self):
        db = bpm_to_database(figure_1_graph())
        repair = find_falsifying_repair(q1(), db)
        matching = matching_from_repair(repair.restrict(["R", "S"]))
        assert matching == {"Alice": "George", "Maria": "Bob"}

    def test_paper_repair_verbatim(self):
        """The repair named in Example 1.1: R(Alice,George),
        R(Maria,Bob), S(George,Alice), S(Bob,Maria) falsifies q1."""
        repair = db_from({
            "R/2/1": [("Alice", "George"), ("Maria", "Bob")],
            "S/2/1": [("George", "Alice"), ("Bob", "Maria")],
        })
        assert not satisfies(repair, q1())


class TestExample12And612:
    """Examples 1.2 / 6.12: S-COVERING and q_Hall."""

    def test_reduction_equivalence_for_paper_shape(self):
        inst = SCoveringInstance(
            ["a", "b", "c"], [["a", "b"], ["b", "c"], []])
        db = scovering_to_database(inst)
        certain = is_certain_brute_force(query_for(inst), db)
        assert certain == (not inst.solvable)

    def test_figure2_rewriting_answers_correctly(self):
        """The ell = 3 rewriting of Figure 2, via our construction."""
        engine = CertaintyEngine(q_hall(3))
        inst = SCoveringInstance(["a", "b"], [["a", "b"], ["a"], []])
        db = scovering_to_database(inst)
        assert engine.certain(db, "rewriting") == (not inst.solvable)

    def test_rewriting_length_exponential(self):
        from repro.cqa.rewriting import consistent_rewriting
        from repro.fo.stats import stats

        sizes = [stats(consistent_rewriting(q_hall(ell))).nodes
                 for ell in (1, 2, 3, 4)]
        assert sizes[3] > 4 * sizes[1]


class TestExample33:
    """Example 3.3: key-relevant facts."""

    def test_key_relevance(self):
        q = q1()
        r = db_from({"R/2/1": [("b", 1)], "S/2/1": [(1, "a"), (2, "a")]})
        relevant = key_relevant_facts(q, q.atom_for("S"), r)
        assert (1, "a") in relevant
        assert (2, "a") not in relevant


class TestExample41:
    """Example 4.1: the attack graph of q2."""

    def test_four_edges(self):
        g = AttackGraph(q2_example41())
        assert sorted((f.relation, t.relation) for f, t in g.edges) == [
            ("R", "P"), ("R", "S"), ("S", "P"), ("S", "R")]

    def test_example44_not_in_fo(self):
        """Example 4.4 concludes CERTAINTY(q2) is not in FO."""
        assert classify(q2_example41()).verdict is Verdict.NOT_IN_FO


class TestExample42And45:
    """Examples 4.2 / 4.5: q3 and its rewriting."""

    def test_one_edge(self):
        g = AttackGraph(q3())
        assert sorted((f.relation, t.relation) for f, t in g.edges) == [
            ("N", "P")]

    def test_in_fo(self):
        assert classify(q3()).in_fo

    def test_rewriting_semantics_block_avoiding_blocked_value(self):
        """Example 4.5 explains the rewriting: for every N-fact N(c,a)
        there must be a P-block in which a does not occur."""
        engine = CertaintyEngine(q3())
        db = db_from({"P/2/1": [(1, "a"), (1, "z"), (2, "b")],
                      "N/2/1": [("c", "b")]})
        # Block 1 never mentions b, so it survives any repair choice.
        assert engine.certain(db, "rewriting")
        db2 = db_from({"P/2/1": [(1, "a"), (1, "b"), (2, "b")],
                       "N/2/1": [("c", "b")]})
        # Every block mentions b: the repair picking b everywhere fails.
        assert not engine.certain(db2, "rewriting")
        assert not engine.certain(db2, "brute")


class TestExample46:
    """Example 4.6: the town-poll queries."""

    def test_cyclic_pair(self):
        assert classify(poll_q1()).verdict is Verdict.NOT_IN_FO
        assert classify(poll_q2()).verdict is Verdict.NOT_IN_FO

    def test_acyclic_pair_with_named_attacks(self):
        ga = AttackGraph(poll_qa())
        assert [(f.relation, t.relation) for f, t in ga.edges] == [
            ("Lives", "Likes")]
        gb = AttackGraph(poll_qb())
        assert sorted((f.relation, t.relation) for f, t in gb.edges) == [
            ("Born", "Likes"), ("Lives", "Likes")]


class TestSection51Hardness:
    """The canonical hard queries of Section 5.1."""

    def test_q1_nl_hard(self):
        c = classify(q1())
        assert c.hardness is Hardness.NL_HARD

    def test_q2_l_hard(self):
        from repro.workloads.queries import q2

        c = classify(q2())
        assert c.hardness is Hardness.L_HARD


class TestExample611:
    """Example 6.11: the rewriting with constants and repeated vars."""

    def test_in_fo(self):
        assert classify(q_example611()).in_fo

    def test_semantics(self):
        engine = CertaintyEngine(q_example611())
        # N-fact (c, a, 5, 5) matches the pattern: P-block must be able
        # to avoid nothing (q' has no shared vars except y via diseq).
        db = db_from({"P/1/1": [(5,)], "N/4/1": [("c", "a", 5, 5)]})
        assert not engine.certain(db, "brute")
        assert not engine.certain(db, "rewriting")
        db2 = db_from({"P/1/1": [(5,), (6,)], "N/4/1": [("c", "a", 5, 5)]})
        assert engine.certain(db2, "rewriting")
        # Non-matching N-fact (wrong constant) is harmless.
        db3 = db_from({"P/1/1": [(5,)], "N/4/1": [("c", "zzz", 5, 5)]})
        assert engine.certain(db3, "rewriting")


class TestExample71:
    """Example 7.1: q4 beyond weak guardedness."""

    def test_not_weakly_guarded(self):
        assert not q4().has_weakly_guarded_negation

    def test_cyclic_yet_in_fo(self):
        c = classify(q4())
        assert not c.acyclic
        assert c.verdict is Verdict.UNDECIDED  # attack-graph test silent

    def test_figure3_counting(self):
        """m = 3, n = 2: 6 > 5 so every repair satisfies q4."""
        db = db_from({
            "X/1/1": [(f"a{i}",) for i in (1, 2, 3)],
            "Y/1/1": [(f"b{j}",) for j in (1, 2)],
            "R/2/1": [("a1", "b1"), ("a2", "b2")],
            "S/2/1": [("b1", "a3")],
        })
        assert is_certain_brute_force(q4(), db)

    def test_neither_x_nor_y_reifiable_on_figure3(self):
        # Complete bipartite R and S content: every single grounding
        # q[x->a_i] / q[y->b_j] can be falsified by some repair, while
        # q4 itself holds in every repair (3*2 > 3+2).
        db = db_from({
            "X/1/1": [(f"a{i}",) for i in (1, 2, 3)],
            "Y/1/1": [(f"b{j}",) for j in (1, 2)],
            "R/2/1": [(f"a{i}", f"b{j}") for i in (1, 2, 3) for j in (1, 2)],
            "S/2/1": [(f"b{j}", f"a{i}") for i in (1, 2, 3) for j in (1, 2)],
        })
        assert is_certain_brute_force(q4(), db)
        for i in (1, 2, 3):
            grounded = q4().substitute({x: Constant(f"a{i}")})
            assert not is_certain_brute_force(grounded, db)
        for j in (1, 2):
            grounded = q4().substitute({y: Constant(f"b{j}")})
            assert not is_certain_brute_force(grounded, db)


class TestExample32:
    """Example 3.2: guardedness boundary cases."""

    def test_first_query_not_weakly_guarded(self):
        assert not q4().has_weakly_guarded_negation

    def test_second_query_weakly_guarded_not_guarded(self):
        q = q_example32_weakly_guarded_not_guarded()
        assert q.has_weakly_guarded_negation
        assert not q.has_guarded_negation
