"""Tests for the sharded parallel certain-answer executor.

Covers the partitioner's invariants (blocks never split, broadcast
relations copied whole, process-independent routing), the serial
fallback conditions, parity of the parallel path with the serial
compiled path (including empty shards and single-block databases),
pool reuse and invalidation on database mutation, the aggregated
stats hook, and fork safety of the parent's plan cache.
"""

from __future__ import annotations

import random

import pytest

from repro.core.terms import Variable
from repro.cqa.certain_answers import OpenQuery, certain_answers
from repro.cqa.engine import CertaintyEngine
from repro.fo.compile import plan_cache
from repro.parallel import (
    parallel_certain_answers,
    parallel_stats,
    plan_has_adom,
    reset_parallel_stats,
    shard_database,
    shard_of,
    shard_spec,
    shutdown_pools,
)
from repro.parallel.executor import resolve_jobs
from repro.parallel.pool import fork_context
from repro.workloads.poll import (
    adversarial_poll_database,
    empty_poll_database,
    random_poll_database,
)
from repro.workloads.queries import poll_q1, poll_qa

from conftest import db_from

p, t = Variable("p"), Variable("t")

needs_fork = pytest.mark.skipif(
    fork_context() is None, reason="platform has no fork start method"
)


@pytest.fixture(autouse=True)
def _clean_pools():
    yield
    shutdown_pools()


def qa_open():
    return OpenQuery(poll_qa(), [p])


class TestShardOf:
    def test_deterministic_and_in_range(self):
        for value in ("ann", 7, ("x", 1), None):
            s = shard_of(value, 8)
            assert 0 <= s < 8
            assert s == shard_of(value, 8)

    def test_independent_of_str_hash_salt(self):
        # CRC of repr, not hash(): the same value must route identically
        # in the parent and in every forked worker regardless of
        # PYTHONHASHSEED.
        assert shard_of("mons", 16) == 0


class TestShardSpec:
    def test_all_relations_sharded_for_qa(self):
        spec = shard_spec(qa_open())
        assert spec.var == p
        assert spec.sharded == {"Likes": 0, "Born": 0, "Lives": 0}
        assert spec.broadcast == frozenset()

    def test_broadcast_when_var_not_in_key(self):
        # q1 = Mayor(t|p), not Lives(p|t) with free p: p sits in Lives's
        # key but only in Mayor's non-key columns.
        spec = shard_spec(OpenQuery(poll_q1(), [p]))
        assert spec.var == p
        assert spec.sharded == {"Lives": 0}
        assert spec.broadcast == {"Mayor"}

    def test_prefers_heavier_routing_mass(self):
        db = empty_poll_database()
        db.add_all("Mayor", [(f"t{i}", "ann") for i in range(50)])
        db.add("Lives", ("ann", "t0"))
        spec = shard_spec(OpenQuery(poll_q1(), [p, t]), db)
        assert spec.var == t  # Mayor's 50 facts shard on t, not Lives's 1
        assert spec.sharded == {"Mayor": 0}

    def test_none_without_free_variables(self):
        assert shard_spec(OpenQuery(poll_q1(), [])) is None


class TestShardDatabase:
    def test_blocks_never_split_and_nothing_lost(self, rng):
        db = random_poll_database(40, 5, rng=rng)
        spec = shard_spec(qa_open(), db)
        shards = shard_database(db, spec, 4)
        for rel in ("Likes", "Born", "Lives"):
            scattered = [row for shard in shards for row in shard.facts(rel)]
            assert sorted(scattered) == sorted(db.facts(rel))
            # every key-equal block lands whole in exactly one shard
            for shard in shards:
                for row in shard.facts(rel):
                    block = [r for r in db.facts(rel) if r[0] == row[0]]
                    assert sorted(
                        r for r in shard.facts(rel) if r[0] == row[0]
                    ) == sorted(block)

    def test_broadcast_copied_whole(self, rng):
        db = random_poll_database(20, 4, rng=rng)
        spec = shard_spec(OpenQuery(poll_q1(), [p]), db)
        shards = shard_database(db, spec, 3)
        for shard in shards:
            assert sorted(shard.facts("Mayor")) == sorted(db.facts("Mayor"))

    def test_empty_shards_allowed(self):
        db = empty_poll_database()
        db.add("Lives", ("ann", "mons"))
        spec = shard_spec(qa_open(), db)
        shards = shard_database(db, spec, 8)
        occupied = [s for s in shards if s.size()]
        assert len(occupied) == 1  # single block -> single shard


@needs_fork
class TestParity:
    def _check(self, open_query, db, jobs=2):
        serial = certain_answers(open_query, db, "compiled")
        par = parallel_certain_answers(
            open_query, db, jobs=jobs, min_facts=0, shard_factor=2
        )
        assert par == serial
        # deterministic presentation: identical sorted renderings
        assert sorted(map(repr, par)) == sorted(map(repr, serial))

    def test_qa_random(self, rng):
        self._check(qa_open(), random_poll_database(60, 5, rng=rng))

    def test_q1_with_broadcast_postfilter(self, rng):
        db = random_poll_database(60, 5, rng=rng)
        self._check(OpenQuery(poll_q1(), [p]), db)
        self._check(OpenQuery(poll_q1(), [t]), db)

    def test_adversarial_workload(self):
        db = adversarial_poll_database(300, 10, rng=random.Random(11))
        self._check(qa_open(), db, jobs=2)

    def test_empty_database(self):
        assert parallel_certain_answers(
            qa_open(), empty_poll_database(), jobs=2, min_facts=0
        ) == frozenset()

    def test_single_block_database(self):
        db = empty_poll_database()
        db.add_all("Lives", [("ann", "mons"), ("ann", "paris")])
        db.add("Likes", ("ann", "rome"))
        self._check(qa_open(), db)

    def test_pool_reuse_and_clock_invalidation(self, rng):
        db = random_poll_database(30, 4, rng=rng)
        oq = qa_open()
        first = parallel_certain_answers(oq, db, jobs=2, min_facts=0)
        reset_parallel_stats()
        again = parallel_certain_answers(oq, db, jobs=2, min_facts=0)
        assert again == first
        assert parallel_stats()["partition_ms"] == 0.0  # warm pool, no repartition
        db.add_all("Lives", [("zoe", "mons"), ("zoe", "rome")])
        db.add("Likes", ("zoe", "rome"))
        changed = parallel_certain_answers(oq, db, jobs=2, min_facts=0)
        assert changed == certain_answers(oq, db, "compiled")
        assert ("zoe",) not in changed  # zoe likes a block town in one repair


class TestFallbacks:
    def _reason_of(self, open_query, db, **kw):
        reset_parallel_stats()
        result = parallel_certain_answers(open_query, db, **kw)
        stats = parallel_stats()
        assert stats["serial_fallbacks"] == 1
        assert result == certain_answers(open_query, db, "compiled")
        (reason,) = stats["fallback_reasons"]
        return reason

    def test_boolean(self, rng):
        db = random_poll_database(8, 3, rng=rng)
        oq = OpenQuery(poll_qa(), [])
        assert self._reason_of(oq, db, jobs=2, min_facts=0) == "boolean"

    def test_jobs_1(self, rng):
        db = random_poll_database(8, 3, rng=rng)
        assert self._reason_of(qa_open(), db, jobs=1, min_facts=0) == "jobs=1"

    def test_below_min_facts(self, rng):
        db = random_poll_database(8, 3, rng=rng)
        reason = self._reason_of(qa_open(), db, jobs=2, min_facts=10**9)
        assert reason == "below-min-facts"

    def test_no_shard_variable(self):
        # p occurs only in Mayor's non-key column: nothing to route by.
        from repro.core.parser import parse_query

        db = db_from({"Mayor/2/1": [("mons", "ann"), ("mons", "bea")]})
        oq = OpenQuery(parse_query("Mayor(t | p)"), [p])
        assert self._reason_of(oq, db, jobs=2, min_facts=0) == "no-shard-variable"


class TestResolveJobs:
    def test_env_cap(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_WORKERS", "2")
        assert resolve_jobs(8) == 2
        assert resolve_jobs(1) == 1

    def test_default_is_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_MAX_WORKERS", raising=False)
        import os
        assert resolve_jobs(None) == max(1, os.cpu_count() or 1)


@needs_fork
class TestStatsAndForkSafety:
    def test_engine_stats_hook(self, rng):
        db = random_poll_database(30, 4, rng=rng)
        reset_parallel_stats()
        parallel_certain_answers(qa_open(), db, jobs=2, min_facts=0)
        stats = CertaintyEngine(qa_open().query).metrics().parallel
        assert stats["runs"] == 1
        assert stats["parallel_runs"] == 1
        assert stats["workers"] == 2
        assert stats["shards"] >= 2
        assert stats["merge_ms"] >= 0.0
        assert stats["worker_exec_ms"] > 0.0

    def test_parent_plan_cache_isolated_from_workers(self, rng):
        # Workers execute pre-compiled plans in their own processes;
        # the parent's cache counters must not move during the sharded
        # fan-out itself (PlanCache fork-safety contract).
        db = random_poll_database(30, 4, rng=rng)
        oq = qa_open()
        parallel_certain_answers(oq, db, jobs=2, min_facts=0)  # warm pool
        before = dict(plan_cache.stats())
        parallel_certain_answers(oq, db, jobs=2, min_facts=0)
        after = plan_cache.stats()
        assert after["misses"] == before["misses"]
        assert after["hits"] == before["hits"] + 1  # one parent-side lookup
