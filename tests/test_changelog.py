"""Tests for change capture: deltas, changelogs, batches, subscribers,
and the bulk-deletion fast path."""

import pytest

from repro.core.atoms import RelationSchema
from repro.db import BatchError, Changelog, Delta

from conftest import db_from


class TestDelta:
    def test_insert_then_delete_cancels(self):
        d = Delta("R")
        d.record_insert((1, 2))
        d.record_delete((1, 2))
        assert d.is_empty
        assert len(d) == 0

    def test_delete_then_insert_cancels(self):
        d = Delta("R")
        d.record_delete((1, 2))
        d.record_insert((1, 2))
        assert d.is_empty

    def test_distinct_rows_accumulate(self):
        d = Delta("R")
        d.record_insert((1, 2))
        d.record_delete((3, 4))
        assert d.inserted == {(1, 2)}
        assert d.deleted == {(3, 4)}
        assert len(d) == 2

    def test_touched_keys_is_block_granular(self):
        schema = RelationSchema("R", 2, 1)
        d = Delta("R", inserted=[(1, "a"), (1, "b")], deleted=[(2, "z")])
        assert d.touched_keys(schema) == {(1,), (2,)}

    def test_touched_keys_rejects_mismatched_schema(self):
        d = Delta("R")
        with pytest.raises(ValueError):
            d.touched_keys(RelationSchema("S", 2, 1))


class TestChangelog:
    def test_empty_deltas_are_dropped(self):
        log = Changelog(7, {"R": Delta("R"), "S": Delta("S", [(1,)])})
        assert log.relations == {"S"}
        assert not log.is_empty
        assert log.version == 7

    def test_delta_lookup_for_untouched_relation(self):
        log = Changelog(1, {"R": Delta("R", [(1, 2)])})
        assert log.delta("R").inserted == {(1, 2)}
        assert log.delta("S").is_empty

    def test_rows_touched(self):
        log = Changelog(1, {
            "R": Delta("R", [(1, 2)], [(3, 4)]),
            "S": Delta("S", [(5,)]),
        })
        assert log.rows_touched() == 3

    def test_touched_blocks(self):
        schemas = {"R": RelationSchema("R", 2, 1),
                   "S": RelationSchema("S", 1, 1)}
        log = Changelog(1, {
            "R": Delta("R", [(1, "a"), (1, "b")], [(2, "z")]),
            "S": Delta("S", [(9,)]),
        })
        assert list(log.touched_blocks(schemas)) == [
            ("R", (1,)), ("R", (2,)), ("S", (9,)),
        ]


class TestClockAndListeners:
    def test_clock_bumps_only_on_genuine_mutations(self):
        db = db_from({"R/2/1": [(1, "a")]})
        start = db.clock
        db.add("R", (1, "a"))          # duplicate: no-op
        db.discard("R", (9, "q"))      # absent: no-op
        assert db.clock == start
        db.add("R", (1, "b"))
        db.discard("R", (1, "a"))
        assert db.clock == start + 2

    def test_subscriber_sees_one_log_per_mutation(self):
        db = db_from({"R/2/1": []})
        logs = []
        db.subscribe(logs.append)
        db.add("R", (1, "a"))
        db.discard("R", (1, "a"))
        assert [log.relations for log in logs] == [{"R"}, {"R"}]
        assert logs[0].delta("R").inserted == {(1, "a")}
        assert logs[1].delta("R").deleted == {(1, "a")}

    def test_noop_mutations_do_not_notify(self):
        db = db_from({"R/2/1": [(1, "a")]})
        logs = []
        db.subscribe(logs.append)
        db.add("R", (1, "a"))
        db.discard("R", (2, "b"))
        db.discard_all("R", [(2, "b"), (3, "c")])
        assert logs == []

    def test_unsubscribe(self):
        db = db_from({"R/2/1": []})
        logs = []
        db.subscribe(logs.append)
        db.unsubscribe(logs.append)
        db.add("R", (1, "a"))
        assert logs == []

    def test_duplicate_subscribe_delivers_once(self):
        db = db_from({"R/2/1": []})
        logs = []
        db.subscribe(logs.append)
        db.subscribe(logs.append)
        db.add("R", (1, "a"))
        assert len(logs) == 1


class TestBatches:
    def test_batch_folds_net_delta(self):
        db = db_from({"R/2/1": [(1, "a")]})
        logs = []
        db.subscribe(logs.append)
        db.begin_batch()
        db.add("R", (2, "b"))
        db.add("R", (3, "c"))
        db.discard("R", (1, "a"))
        assert logs == []  # nothing published until commit
        log = db.commit()
        assert logs == [log]
        assert log.delta("R").inserted == {(2, "b"), (3, "c")}
        assert log.delta("R").deleted == {(1, "a")}
        assert log.version == db.clock

    def test_add_then_discard_in_batch_cancels(self):
        db = db_from({"R/2/1": []})
        logs = []
        db.subscribe(logs.append)
        with db.batch():
            db.add("R", (1, "a"))
            db.discard("R", (1, "a"))
        assert logs == []  # empty changelogs are not delivered

    def test_reads_stay_consistent_inside_batch(self):
        db = db_from({"R/2/1": [(1, "a")]})
        db.begin_batch()
        db.add("R", (2, "b"))
        assert db.contains("R", (2, "b"))
        assert db.in_batch
        db.commit()
        assert not db.in_batch

    def test_nested_begin_raises(self):
        db = db_from({"R/2/1": []})
        db.begin_batch()
        with pytest.raises(BatchError):
            db.begin_batch()
        db.commit()

    def test_commit_without_begin_raises(self):
        db = db_from({"R/2/1": []})
        with pytest.raises(BatchError):
            db.commit()

    def test_batch_contextmanager_commits_on_error(self):
        db = db_from({"R/2/1": []})
        logs = []
        db.subscribe(logs.append)
        with pytest.raises(RuntimeError, match="boom"):
            with db.batch():
                db.add("R", (1, "a"))
                raise RuntimeError("boom")
        assert not db.in_batch
        assert len(logs) == 1
        assert logs[0].delta("R").inserted == {(1, "a")}

    def test_bulk_mutations_emit_one_changelog_each(self):
        db = db_from({"R/2/1": [(1, "a"), (2, "b")]})
        logs = []
        db.subscribe(logs.append)
        db.add_all("R", [(3, "c"), (4, "d"), (1, "a")])  # one dup
        db.discard_all("R", [(1, "a"), (2, "b"), (9, "x")])  # one absent
        db.clear_relation("R")
        assert len(logs) == 3
        assert logs[0].delta("R").inserted == {(3, "c"), (4, "d")}
        assert logs[1].delta("R").deleted == {(1, "a"), (2, "b")}
        assert logs[2].delta("R").deleted == {(3, "c"), (4, "d")}


class TestDiscardAll:
    def test_removes_present_ignores_absent(self):
        db = db_from({"R/2/1": [(1, "a"), (1, "b"), (2, "c")]})
        db.discard_all("R", [(1, "a"), (9, "z")])
        assert db.facts("R") == {(1, "b"), (2, "c")}

    def test_unknown_relation_is_noop(self):
        db = db_from({"R/2/1": [(1, "a")]})
        db.discard_all("Nope", [(1, "a")])
        assert db.facts("R") == {(1, "a")}

    def test_single_version_bump(self):
        db = db_from({"R/2/1": [(1, "a"), (2, "b"), (3, "c")]})
        start = db.clock
        db.discard_all("R", [(1, "a"), (2, "b")])
        assert db.clock == start + 1

    def test_all_absent_rows_do_not_bump(self):
        db = db_from({"R/2/1": [(1, "a")]})
        start = db.clock
        before = db.index("R", (0,))
        db.discard_all("R", [(7, "x"), (8, "y")])
        assert db.clock == start
        assert db.index("R", (0,)) is before  # index survives the no-op

    def test_rows_accepts_any_sequence(self):
        db = db_from({"R/2/1": [(1, "a"), (2, "b")]})
        db.discard_all("R", [[1, "a"], [2, "b"]])
        assert db.facts("R") == frozenset()
