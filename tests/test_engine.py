"""Tests for the CertaintyEngine façade."""

import pytest

from repro.cqa.engine import CertaintyEngine, CrossValidation, certain
from repro.cqa.rewriting import NotInFO
from repro.workloads.generators import random_small_database
from repro.workloads.queries import poll_qa, q1, q3

from conftest import db_from


class TestDispatch:
    def test_auto_uses_rewriting_for_fo(self):
        db = db_from({"P/2/1": [(1, "a")], "N/2/1": []})
        engine = CertaintyEngine(q3())
        assert engine.in_fo
        assert engine.certain(db, "auto") == engine.certain(db, "rewriting")

    def test_auto_falls_back_to_brute(self):
        db = db_from({"R/2/1": [(1, 2)], "S/2/1": []})
        engine = CertaintyEngine(q1())
        assert not engine.in_fo
        assert engine.certain(db, "auto")

    def test_unknown_method_rejected(self):
        engine = CertaintyEngine(q3())
        with pytest.raises(ValueError):
            engine.certain(db_from({}), "magic")

    def test_rewriting_method_raises_for_cyclic(self):
        engine = CertaintyEngine(q1())
        with pytest.raises(NotInFO):
            engine.certain(db_from({"R/2/1": [], "S/2/1": []}), "rewriting")

    def test_rewriting_cached(self):
        engine = CertaintyEngine(q3())
        assert engine.rewriting is engine.rewriting

    def test_one_shot_helper(self):
        db = db_from({"P/2/1": [(1, "a")], "N/2/1": []})
        assert certain(q3(), db) == certain(q3(), db, "brute")


class TestCrossValidation:
    def test_all_methods_present_for_fo_query(self, rng):
        engine = CertaintyEngine(q3())
        db = random_small_database(q3(), rng, domain_size=3)
        cv = engine.cross_validate(db)
        assert set(cv.results) == {
            "brute", "interpreted", "rewriting", "compiled", "sql"
        }
        assert cv.consistent
        assert cv.answer in (True, False)

    def test_only_brute_for_non_fo_query(self, rng):
        engine = CertaintyEngine(q1())
        db = random_small_database(q1(), rng, domain_size=3)
        cv = engine.cross_validate(db)
        assert set(cv.results) == {"brute"}

    def test_inconsistent_results_raise_on_answer(self):
        cv = CrossValidation({"a": True, "b": False})
        assert not cv.consistent
        with pytest.raises(AssertionError):
            _ = cv.answer

    def test_cross_validation_many_instances(self, rng):
        for make in (q3, poll_qa):
            engine = CertaintyEngine(make())
            for _ in range(15):
                db = random_small_database(make(), rng, domain_size=3)
                assert engine.cross_validate(db).consistent
