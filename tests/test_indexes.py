"""Tests for the lazy column indexes on Database."""


from repro.db.database import Database
from repro.core.atoms import RelationSchema

from conftest import db_from


class TestIndex:
    def test_index_groups_rows(self):
        db = db_from({"R/2/1": [(1, "a"), (1, "b"), (2, "a")]})
        idx = db.index("R", (0,))
        assert idx[(1,)] == {(1, "a"), (1, "b")}
        assert idx[(2,)] == {(2, "a")}

    def test_multi_position_index(self):
        db = db_from({"R/3/1": [(1, "a", True), (1, "a", False),
                                (1, "b", True)]})
        idx = db.index("R", (0, 1))
        assert idx[(1, "a")] == {(1, "a", True), (1, "a", False)}

    def test_index_cached(self):
        db = db_from({"R/2/1": [(1, "a")]})
        assert db.index("R", (0,)) is db.index("R", (0,))

    def test_index_invalidated_on_add(self):
        db = db_from({"R/2/1": [(1, "a")]})
        before = db.index("R", (0,))
        db.add("R", (1, "b"))
        after = db.index("R", (0,))
        assert after is not before
        assert after[(1,)] == {(1, "a"), (1, "b")}

    def test_index_invalidated_on_discard(self):
        db = db_from({"R/2/1": [(1, "a"), (1, "b")]})
        db.index("R", (0,))
        db.discard("R", (1, "a"))
        assert db.index("R", (0,))[(1,)] == {(1, "b")}

    def test_duplicate_add_does_not_invalidate(self):
        db = db_from({"R/2/1": [(1, "a")]})
        before = db.index("R", (0,))
        db.add("R", (1, "a"))  # no-op
        assert db.index("R", (0,)) is before

    def test_index_invalidated_on_discard_all(self):
        db = db_from({"R/2/1": [(1, "a"), (1, "b"), (2, "a")]})
        before = db.index("R", (0,))
        db.discard_all("R", [(1, "a"), (2, "a"), (9, "z")])
        after = db.index("R", (0,))
        assert after is not before
        assert after == {(1,): frozenset({(1, "b")})}

    def test_lookup_not_stale_after_discard(self):
        # Regression: a lookup served from a pre-mutation index must not
        # resurrect discarded rows.
        db = db_from({"R/2/1": [(1, "a"), (1, "b")]})
        assert db.lookup("R", {0: 1}) == {(1, "a"), (1, "b")}
        db.discard("R", (1, "a"))
        assert db.lookup("R", {0: 1}) == {(1, "b")}
        db.discard_all("R", [(1, "b")])
        assert db.lookup("R", {0: 1}) == frozenset()

    def test_clear_relation_invalidates(self):
        db = db_from({"R/2/1": [(1, "a")]})
        db.index("R", (0,))
        db.clear_relation("R")
        assert db.index("R", (0,)) == {}
        assert db.relations() == ("R",)

    def test_lookup_not_stale_after_clear_relation(self):
        db = db_from({"R/2/1": [(1, "a"), (2, "b")]})
        assert db.lookup("R", {0: 2}) == {(2, "b")}
        db.clear_relation("R")
        assert db.lookup("R", {0: 2}) == frozenset()
        db.add("R", (2, "c"))
        assert db.lookup("R", {0: 2}) == {(2, "c")}

    def test_empty_relation_index(self):
        db = Database([RelationSchema("R", 2, 1)])
        assert db.index("R", (0,)) == {}


class TestLookup:
    def test_lookup_with_bindings(self):
        db = db_from({"R/3/1": [(1, "a", 9), (1, "b", 9), (2, "a", 7)]})
        assert db.lookup("R", {0: 1, 1: "a"}) == {(1, "a", 9)}
        assert db.lookup("R", {2: 9}) == {(1, "a", 9), (1, "b", 9)}

    def test_lookup_no_bindings_returns_all(self):
        db = db_from({"R/2/1": [(1, "a"), (2, "b")]})
        assert db.lookup("R", {}) == db.facts("R")

    def test_lookup_miss(self):
        db = db_from({"R/2/1": [(1, "a")]})
        assert db.lookup("R", {0: 99}) == frozenset()

    def test_lookup_agrees_with_scan(self, rng):
        db = Database([RelationSchema("R", 3, 1)])
        for _ in range(40):
            db.add("R", (rng.randint(0, 3), rng.randint(0, 3),
                         rng.randint(0, 3)))
        for _ in range(30):
            bindings = {
                i: rng.randint(0, 3)
                for i in range(3) if rng.random() < 0.5
            }
            expected = frozenset(
                row for row in db.facts("R")
                if all(row[i] == v for i, v in bindings.items())
            )
            assert db.lookup("R", bindings) == expected

    def test_lookup_after_interleaved_mutations(self, rng):
        db = Database([RelationSchema("R", 2, 1)])
        rows = set()
        for step in range(60):
            if rng.random() < 0.7 or not rows:
                row = (rng.randint(0, 4), rng.randint(0, 4))
                db.add("R", row)
                rows.add(row)
            else:
                row = rng.choice(sorted(rows))
                db.discard("R", row)
                rows.discard(row)
            value = rng.randint(0, 4)
            expected = frozenset(r for r in rows if r[0] == value)
            assert db.lookup("R", {0: value}) == expected
