"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.db.io import save_database
from repro.workloads.poll import paper_flavoured_poll_database

from conftest import db_from

QA = "Lives(p | t), not Born(p | t), not Likes(p, t)"
Q1 = "R(x | y), not S(y | x)"
Q3 = "P(x | y), not N('c' | y)"


@pytest.fixture
def poll_file(tmp_path):
    path = tmp_path / "poll.json"
    save_database(paper_flavoured_poll_database(), path)
    return str(path)


class TestClassify:
    def test_cyclic(self, capsys):
        assert main(["classify", Q1]) == 0
        out = capsys.readouterr().out
        assert "not in FO" in out
        assert "NL-hard" in out

    def test_acyclic(self, capsys):
        assert main(["classify", Q3]) == 0
        out = capsys.readouterr().out
        assert "in FO" in out
        assert "N->P" in out

    def test_parse_error_exits(self):
        with pytest.raises(SystemExit):
            main(["classify", "R(x | y"])


class TestRewrite:
    def test_prints_formula(self, capsys):
        assert main(["rewrite", Q3]) == 0
        out = capsys.readouterr().out
        assert "rewriting size" in out

    def test_pretty_and_sql(self, capsys):
        assert main(["rewrite", Q3, "--pretty", "--sql"]) == 0
        out = capsys.readouterr().out
        assert "forall" in out
        assert "WITH adom" in out

    def test_cyclic_fails_gracefully(self, capsys):
        assert main(["rewrite", Q1]) == 1
        assert "no consistent first-order rewriting" in capsys.readouterr().err


class TestCertain:
    def test_default_method(self, capsys, poll_file):
        assert main(["certain", QA, "--db", poll_file]) == 0
        out = capsys.readouterr().out
        assert "CERTAINTY = " in out

    @pytest.mark.parametrize("method", ["brute", "interpreted",
                                        "rewriting", "sql"])
    def test_all_methods_agree(self, capsys, poll_file, method):
        assert main(["certain", QA, "--db", poll_file,
                     "--method", method]) == 0
        out = capsys.readouterr().out
        assert "CERTAINTY = True" in out


class TestAnswers:
    def test_free_variable_answers(self, capsys, poll_file):
        assert main(["answers", QA, "--free", "p", "--db", poll_file]) == 0
        out = capsys.readouterr().out
        assert "certain answers (p)" in out
        assert "'cal'" in out

    def test_show_sql(self, capsys, poll_file):
        assert main(["answers", QA, "--free", "p", "--db", poll_file,
                     "--show-sql"]) == 0
        assert "SELECT DISTINCT" in capsys.readouterr().out


class TestJobsFlag:
    def test_jobs_implies_parallel(self, capsys, poll_file):
        assert main(["answers", QA, "--free", "p", "--db", poll_file,
                     "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "certain answers (p)" in out
        assert "'cal'" in out

    def test_explicit_parallel_method(self, capsys, poll_file):
        assert main(["answers", QA, "--free", "p", "--db", poll_file,
                     "--method", "parallel", "--jobs", "2"]) == 0
        assert "'cal'" in capsys.readouterr().out

    def test_certain_jobs_boolean_fallback(self, capsys, poll_file):
        # Boolean certainty does not shard; --jobs still works and the
        # engine silently runs the serial compiled plan.
        assert main(["certain", QA, "--db", poll_file, "--jobs", "2",
                     "--stats"]) == 0
        out = capsys.readouterr().out
        assert "CERTAINTY = True" in out
        assert "(method: parallel" in out
        payload = _stats_payload(out)
        assert payload["parallel"]["fallback_reasons"].get("boolean", 0) >= 1

    @pytest.mark.parametrize("method", ["brute", "compiled", "sql"])
    def test_jobs_rejected_for_serial_methods(self, poll_file, method):
        with pytest.raises(SystemExit, match="--jobs only applies"):
            main(["answers", QA, "--free", "p", "--db", poll_file,
                  "--method", method, "--jobs", "2"])

    def test_certain_jobs_rejected_for_serial_methods(self, poll_file):
        with pytest.raises(SystemExit, match="--jobs only applies"):
            main(["certain", QA, "--db", poll_file,
                  "--method", "interpreted", "--jobs", "4"])

    def test_nonpositive_jobs_rejected(self, poll_file):
        with pytest.raises(SystemExit, match="positive"):
            main(["answers", QA, "--free", "p", "--db", poll_file,
                  "--jobs", "0"])


def _stats_payload(out: str) -> dict:
    """The JSON object --stats appends after the human-readable lines."""
    return json.loads(out[out.index("{"):])


VIEW_STAT_KEYS = {"views_registered", "commits_seen", "deltas_applied",
                  "rows_touched", "fallback_recomputes"}


class TestStatsFlag:
    def test_certain_stats_json_shape(self, capsys, poll_file):
        assert main(["certain", QA, "--db", poll_file,
                     "--method", "compiled", "--stats"]) == 0
        payload = _stats_payload(capsys.readouterr().out)
        assert set(payload) == {"schema_version", "plan_cache", "views",
                                "parallel", "columnar", "storage"}
        assert {"hits", "misses", "size"} <= set(payload["plan_cache"])
        assert set(payload["views"]) == VIEW_STAT_KEYS
        assert all(isinstance(v, int) for v in payload["views"].values())
        assert {"runs", "serial_fallbacks", "shards",
                "workers"} <= set(payload["parallel"])
        assert {"runs", "boolean_probe_delegations", "decode_fallbacks",
                "auto_routed"} <= set(payload["columnar"])

    def test_answers_stats_json_shape(self, capsys, poll_file):
        assert main(["answers", QA, "--free", "p", "--db", poll_file,
                     "--method", "compiled", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "certain answers (p)" in out
        payload = _stats_payload(out)
        assert set(payload) == {"schema_version", "plan_cache", "views",
                                "parallel", "columnar", "storage"}

    def test_without_flag_no_json(self, capsys, poll_file):
        assert main(["certain", QA, "--db", poll_file]) == 0
        assert "{" not in capsys.readouterr().out


class TestWatch:
    @pytest.fixture
    def q3_file(self, tmp_path):
        db = db_from({"P/2/1": [(1, "a")],
                      "N/2/1": [("c", "a"), ("c", "b")]})
        path = tmp_path / "q3.json"
        save_database(db, path)
        return str(path)

    def test_open_view_diffs(self, capsys, poll_file, tmp_path):
        stream = tmp_path / "ops.txt"
        stream.write_text(
            "# dan moves in, then confesses to liking mons\n"
            "begin\n"
            "+ Lives dan mons\n"
            "+ Born dan rome\n"
            "commit\n"
            "+ Likes dan mons\n"
        )
        assert main(["watch", QA, "--db", poll_file, "--free", "p",
                     "--stream", str(stream)]) == 0
        out = capsys.readouterr().out
        assert "watching" in out
        plus = out.index("+('dan',)")
        minus = out.index("-('dan',)")
        assert plus < minus  # certain after the batch, retracted after Likes
        assert "(2 update batches)" in out

    def test_boolean_certainty_flip_on_retraction(self, capsys, q3_file,
                                                  tmp_path):
        stream = tmp_path / "ops.txt"
        stream.write_text("- N 'c' 'a'\n+ N 'c' 'a'\n")
        assert main(["watch", Q3, "--db", q3_file,
                     "--stream", str(stream)]) == 0
        out = capsys.readouterr().out
        assert "watching CERTAINTY = False" in out
        assert "CERTAINTY -> True" in out
        assert "CERTAINTY -> False" in out
        assert "final: CERTAINTY = False" in out

    def test_stats_flag(self, capsys, q3_file, tmp_path):
        stream = tmp_path / "ops.txt"
        stream.write_text("- N 'c' 'a'\n")
        assert main(["watch", Q3, "--db", q3_file, "--stream", str(stream),
                     "--stats"]) == 0
        payload = _stats_payload(capsys.readouterr().out)
        assert set(payload) == {"schema_version", "plan_cache", "views",
                                "parallel", "columnar", "storage"}
        assert payload["views"]["commits_seen"] >= 1

    def test_bad_op_exits_nonzero(self, capsys, q3_file, tmp_path):
        stream = tmp_path / "ops.txt"
        stream.write_text("? N c a\n")
        assert main(["watch", Q3, "--db", q3_file,
                     "--stream", str(stream)]) == 1
        assert "stream line 1" in capsys.readouterr().err

    def test_unknown_relation_exits_nonzero(self, capsys, q3_file, tmp_path):
        stream = tmp_path / "ops.txt"
        stream.write_text("+ N 'c' 'z'\n+ Nope 1\n")
        assert main(["watch", Q3, "--db", q3_file,
                     "--stream", str(stream)]) == 1
        assert "stream line 2" in capsys.readouterr().err

    def test_cyclic_query_fails_gracefully(self, capsys, q3_file, tmp_path):
        stream = tmp_path / "ops.txt"
        stream.write_text("")
        assert main(["watch", Q1, "--db", q3_file,
                     "--stream", str(stream)]) == 1
        assert "consistent FO rewriting" in capsys.readouterr().err


class TestGraph:
    def test_dot_output(self, capsys):
        assert main(["graph", Q3]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert '"N" -> "P"' in out
        assert "shape=box" in out  # negated atom rendered as box


class TestDbCommands:
    def test_init_open_checkpoint_verify(self, capsys, poll_file, tmp_path):
        store = str(tmp_path / "store")
        assert main(["db", "init", store, "--from", poll_file]) == 0
        out = capsys.readouterr().out
        assert "seeded" in out and "initialized store" in out

        assert main(["db", "open", store]) == 0
        out = capsys.readouterr().out
        assert "clock:" in out and "recovery:" in out

        assert main(["db", "checkpoint", store]) == 0
        assert "checkpoint: snapshot-" in capsys.readouterr().out

        assert main(["db", "verify", store, "--integrity-check"]) == 0
        out = capsys.readouterr().out
        assert "verdict: ok" in out and "integrity:" in out

    def test_stats_text_and_json(self, capsys, poll_file, tmp_path,
                                 monkeypatch):
        monkeypatch.setenv("REPRO_SQL_MIN_FACTS", "0")
        store = str(tmp_path / "store")
        assert main(["db", "init", store, "--from", poll_file]) == 0
        capsys.readouterr()
        # Run a query through the store so the statement cache warms up.
        assert main(["certain", QA, "--db-path", store,
                     "--method", "sql"]) == 0
        capsys.readouterr()

        assert main(["db", "stats", store]) == 0
        out = capsys.readouterr().out
        assert "in sync" in out
        assert "statement cache:" in out
        assert "pushdown:" in out

        assert main(["db", "stats", store, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["mirror"]["clock"] == report["store"]["clock"]
        assert report["mirror"]["format"] == "2"
        tables = report["mirror"]["tables"]
        assert sum(info["rows"] for info in tables.values()) > 0
        # Tables with non-key columns carry the suffix index.
        assert any(info["indexes"] >= 1 for info in tables.values())
        assert report["pushdown"]["native_sql"] >= 1

    def test_init_refuses_existing_store(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        assert main(["db", "init", store]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit, match="already a store"):
            main(["db", "init", store])

    def test_open_refuses_non_store(self, tmp_path):
        with pytest.raises(SystemExit, match="not a repro store"):
            main(["db", "open", str(tmp_path / "nowhere")])

    def test_verify_json_and_corruption_exit(self, capsys, tmp_path):
        import pathlib

        store = tmp_path / "store"
        assert main(["db", "init", str(store)]) == 0
        capsys.readouterr()
        assert main(["db", "verify", str(store), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True

        # Corrupt the newest snapshot: verify must exit non-zero.
        from repro.core.atoms import RelationSchema
        from repro.storage import open_database

        db = open_database(store)

        db.add_relation(RelationSchema("R", 2, 1))
        db.add("R", ("a", "1"))
        db.checkpoint()
        db.add("R", ("b", "2"))
        db.close()
        snap = next(iter(pathlib.Path(store).glob("snapshot-*.snap")))
        snap.write_bytes(snap.read_bytes()[:-3])
        assert main(["db", "verify", str(store)]) == 1
        assert "CORRUPT" in capsys.readouterr().out

    def test_certain_on_db_path(self, capsys, poll_file, tmp_path):
        store = str(tmp_path / "store")
        assert main(["db", "init", store, "--from", poll_file]) == 0
        capsys.readouterr()
        assert main(["certain", QA, "--db", poll_file]) == 0
        expected = capsys.readouterr().out.splitlines()[0]
        assert main(["certain", QA, "--db-path", store]) == 0
        assert capsys.readouterr().out.splitlines()[0] == expected

    def test_answers_on_db_path_matches_json(self, capsys, poll_file,
                                             tmp_path):
        store = str(tmp_path / "store")
        assert main(["db", "init", store, "--from", poll_file]) == 0
        capsys.readouterr()
        assert main(["answers", QA, "--free", "p", "--db", poll_file]) == 0
        expected = capsys.readouterr().out
        assert main(["answers", QA, "--free", "p", "--db-path", store]) == 0
        assert capsys.readouterr().out == expected

    def test_db_and_db_path_mutually_exclusive(self, poll_file, tmp_path):
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main(["certain", QA, "--db", poll_file,
                  "--db-path", str(tmp_path / "store")])

    def test_one_of_db_or_db_path_required(self):
        with pytest.raises(SystemExit, match="one of --db or --db-path"):
            main(["certain", QA])

    def test_watch_commits_are_durable(self, capsys, poll_file, tmp_path,
                                       monkeypatch):
        store = str(tmp_path / "store")
        assert main(["db", "init", store, "--from", poll_file]) == 0
        capsys.readouterr()
        stream = tmp_path / "ops.txt"
        stream.write_text("begin\n+ Lives 'zoe' 'ghent'\ncommit\n")
        assert main(["watch", QA, "--db-path", store, "--free", "p",
                     "--stream", str(stream)]) == 0
        capsys.readouterr()
        assert main(["db", "open", store]) == 0
        out = capsys.readouterr().out
        assert "wal:" in out  # reopened cleanly after the stream
        from repro.storage import open_database

        db = open_database(store)
        assert ("zoe", "ghent") in db.facts("Lives")
        db.close()
