"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.db.io import save_database
from repro.workloads.poll import paper_flavoured_poll_database

QA = "Lives(p | t), not Born(p | t), not Likes(p, t)"
Q1 = "R(x | y), not S(y | x)"
Q3 = "P(x | y), not N('c' | y)"


@pytest.fixture
def poll_file(tmp_path):
    path = tmp_path / "poll.json"
    save_database(paper_flavoured_poll_database(), path)
    return str(path)


class TestClassify:
    def test_cyclic(self, capsys):
        assert main(["classify", Q1]) == 0
        out = capsys.readouterr().out
        assert "not in FO" in out
        assert "NL-hard" in out

    def test_acyclic(self, capsys):
        assert main(["classify", Q3]) == 0
        out = capsys.readouterr().out
        assert "in FO" in out
        assert "N->P" in out

    def test_parse_error_exits(self):
        with pytest.raises(SystemExit):
            main(["classify", "R(x | y"])


class TestRewrite:
    def test_prints_formula(self, capsys):
        assert main(["rewrite", Q3]) == 0
        out = capsys.readouterr().out
        assert "rewriting size" in out

    def test_pretty_and_sql(self, capsys):
        assert main(["rewrite", Q3, "--pretty", "--sql"]) == 0
        out = capsys.readouterr().out
        assert "forall" in out
        assert "WITH adom" in out

    def test_cyclic_fails_gracefully(self, capsys):
        assert main(["rewrite", Q1]) == 1
        assert "no consistent first-order rewriting" in capsys.readouterr().err


class TestCertain:
    def test_default_method(self, capsys, poll_file):
        assert main(["certain", QA, "--db", poll_file]) == 0
        out = capsys.readouterr().out
        assert "CERTAINTY = " in out

    @pytest.mark.parametrize("method", ["brute", "interpreted",
                                        "rewriting", "sql"])
    def test_all_methods_agree(self, capsys, poll_file, method):
        assert main(["certain", QA, "--db", poll_file,
                     "--method", method]) == 0
        out = capsys.readouterr().out
        assert "CERTAINTY = True" in out


class TestAnswers:
    def test_free_variable_answers(self, capsys, poll_file):
        assert main(["answers", QA, "--free", "p", "--db", poll_file]) == 0
        out = capsys.readouterr().out
        assert "certain answers (p)" in out
        assert "'cal'" in out

    def test_show_sql(self, capsys, poll_file):
        assert main(["answers", QA, "--free", "p", "--db", poll_file,
                     "--show-sql"]) == 0
        assert "SELECT DISTINCT" in capsys.readouterr().out


class TestGraph:
    def test_dot_output(self, capsys):
        assert main(["graph", Q3]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert '"N" -> "P"' in out
        assert "shape=box" in out  # negated atom rendered as box
