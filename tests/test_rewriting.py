"""Tests for the consistent FO rewriting construction (Lemma 6.1)."""

import random

import pytest

from repro.core.atoms import atom
from repro.core.classify import classify
from repro.core.query import Query
from repro.core.terms import Constant, Variable
from repro.cqa.brute_force import is_certain_brute_force
from repro.cqa.rewriting import (
    NotInFO,
    Rewriter,
    consistent_rewriting,
    has_consistent_rewriting,
    pick_eliminable_atom,
)
from repro.fo.eval import Evaluator
from repro.fo.formula import free_variables
from repro.fo.stats import stats
from repro.workloads.generators import (
    QueryParams,
    random_query,
    random_small_database,
)
from repro.workloads.queries import (
    poll_qa,
    poll_qb,
    q1,
    q3,
    q4,
    q_example611,
    q_hall,
)

x, y = Variable("x"), Variable("y")


class TestApplicability:
    def test_cyclic_query_rejected(self):
        with pytest.raises(NotInFO):
            consistent_rewriting(q1())

    def test_non_weakly_guarded_rejected(self):
        with pytest.raises(NotInFO):
            consistent_rewriting(q4())

    def test_has_consistent_rewriting(self):
        assert has_consistent_rewriting(q3())
        assert not has_consistent_rewriting(q1())

    def test_internal_variable_names_rejected(self):
        q = Query([atom("R", [Variable("_z1")], [y])])
        with pytest.raises(ValueError):
            Rewriter(q)


class TestPickEliminableAtom:
    def test_picks_unattacked(self):
        q = q3()
        assert pick_eliminable_atom(q).relation == "N"

    def test_never_picks_all_key(self):
        q = poll_qa()  # Likes is all-key
        assert pick_eliminable_atom(q).relation != "Likes"

    def test_raises_on_cyclic(self):
        from repro.cqa.rewriting import RewritingError

        with pytest.raises(RewritingError):
            pick_eliminable_atom(q1())


class TestStructure:
    def test_rewriting_is_a_sentence(self):
        for q in (q3(), q_hall(2), q_example611(), poll_qa(), poll_qb()):
            f = consistent_rewriting(q)
            assert free_variables(f) == frozenset(), repr(q)

    def test_no_placeholders_leak(self):
        from repro.core.terms import PlaceholderConstant
        from repro.fo.formula import constants_of

        for q in (q3(), q_hall(3), q_example611(), poll_qb()):
            f = consistent_rewriting(q)
            leaked = [c for c in constants_of(f)
                      if isinstance(c, PlaceholderConstant)]
            assert not leaked, repr(q)

    def test_unsimplified_also_valid(self, rng):
        q = q3()
        f = consistent_rewriting(q, simplify=False)
        for _ in range(10):
            db = random_small_database(q, rng, domain_size=3)
            assert Evaluator(f, db).evaluate() == is_certain_brute_force(q, db)

    def test_hall_rewriting_grows_exponentially(self):
        sizes = [stats(consistent_rewriting(q_hall(ell))).nodes
                 for ell in range(1, 5)]
        # Strictly growing and at least doubling each step.
        for a, b in zip(sizes, sizes[1:]):
            assert b > 2 * a

    def test_deterministic(self):
        assert consistent_rewriting(q3()) == consistent_rewriting(q3())


class TestCorrectnessAgainstBruteForce:
    CASES = [
        ("q3", q3),
        ("q_hall_0", lambda: q_hall(0)),
        ("q_hall_1", lambda: q_hall(1)),
        ("q_hall_2", lambda: q_hall(2)),
        ("q_ex611", q_example611),
        ("poll_qa", poll_qa),
        ("poll_qb", poll_qb),
    ]

    @pytest.mark.parametrize("name,make", CASES)
    def test_rewriting_equals_brute_force(self, name, make, rng):
        q = make()
        f = consistent_rewriting(q)
        for _ in range(25):
            db = random_small_database(q, rng, domain_size=3,
                                       facts_per_relation=4)
            assert Evaluator(f, db).evaluate() == is_certain_brute_force(q, db), \
                f"{name} disagrees on {db!r}"

    def test_positive_only_queries(self, rng):
        """Acyclic queries without negation (the [19] fragment)."""
        z = Variable("z")
        q = Query([atom("R", [x], [y]), atom("S", [y], [z])])
        assert classify(q).in_fo
        f = consistent_rewriting(q)
        for _ in range(25):
            db = random_small_database(q, rng, domain_size=3)
            assert Evaluator(f, db).evaluate() == is_certain_brute_force(q, db)

    def test_query_with_constant_in_value_position(self, rng):
        q = Query([atom("R", [x], [Constant("k"), y])])
        f = consistent_rewriting(q)
        for _ in range(25):
            db = random_small_database(q, rng, domain_size=3)
            assert Evaluator(f, db).evaluate() == is_certain_brute_force(q, db)

    def test_query_with_repeated_value_variable(self, rng):
        q = Query([atom("R", [x], [y, y])])
        f = consistent_rewriting(q)
        for _ in range(25):
            db = random_small_database(q, rng, domain_size=3)
            assert Evaluator(f, db).evaluate() == is_certain_brute_force(q, db)

    def test_ground_negated_atom(self, rng):
        q = Query(
            [atom("R", [x], [y])],
            [atom("N", [Constant("c")], [Constant("d")])],
        )
        f = consistent_rewriting(q)
        for _ in range(25):
            db = random_small_database(q, rng, domain_size=3)
            assert Evaluator(f, db).evaluate() == is_certain_brute_force(q, db)

    def test_all_key_negated_atom(self, rng):
        q = Query([atom("R", [x], [y])], [atom("N", [x, y])])
        f = consistent_rewriting(q)
        for _ in range(25):
            db = random_small_database(q, rng, domain_size=3)
            assert Evaluator(f, db).evaluate() == is_certain_brute_force(q, db)

    def test_random_acyclic_queries(self):
        """The strongest executable statement of Theorem 4.3(2)."""
        rng = random.Random(43)
        tested = 0
        while tested < 25:
            q = random_query(
                QueryParams(n_positive=2, n_negative=1, n_variables=3,
                            max_arity=2), rng)
            if not classify(q).in_fo:
                continue
            tested += 1
            f = consistent_rewriting(q)
            for _ in range(8):
                db = random_small_database(q, rng, domain_size=2,
                                           facts_per_relation=3)
                assert Evaluator(f, db).evaluate() == \
                    is_certain_brute_force(q, db), f"{q} on {db!r}"
