"""Tests for randomized/bounded FO equivalence checking."""

import random

import pytest

from repro.core.terms import Variable
from repro.fo.equivalence import (
    equivalent_on_all_small_dbs,
    equivalent_on_random_dbs,
    find_distinguisher,
)
from repro.fo.parser import parse_formula, parse_sentence

x, y = Variable("x"), Variable("y")


class TestRandomized:
    def test_syntactic_variants_equivalent(self):
        f = parse_sentence("exists x y. R(x, y) and not S(y, x)")
        g = parse_sentence("not forall x y. (not R(x, y)) or S(y, x)")
        assert equivalent_on_random_dbs(f, g, trials=100,
                                        rng=random.Random(1))

    def test_inequivalent_distinguished(self):
        f = parse_sentence("exists x y. R(x, y)")
        g = parse_sentence("exists x. R(x, x)")
        d = find_distinguisher(f, g, trials=300, rng=random.Random(2))
        assert d is not None
        assert d.first_value != d.second_value

    def test_distinguisher_is_reproducible(self):
        f = parse_sentence("exists x y. R(x, y)")
        g = parse_sentence("exists x. R(x, x)")
        d = find_distinguisher(f, g, trials=300, rng=random.Random(3))
        from repro.fo.eval import Evaluator

        assert Evaluator(f, d.db).evaluate() == d.first_value
        assert Evaluator(g, d.db).evaluate() == d.second_value

    def test_constant_sensitive_difference_found(self):
        f = parse_sentence("exists x. R(x, 'c')")
        g = parse_sentence("exists x y. R(x, y)")
        assert not equivalent_on_random_dbs(f, g, trials=300,
                                            rng=random.Random(4))

    def test_free_variables_rejected(self):
        with pytest.raises(ValueError):
            equivalent_on_random_dbs(parse_formula("R(x, y)"),
                                     parse_formula("R(y, x)"))

    def test_arity_clash_rejected(self):
        f = parse_sentence("exists x. R(x, x)")
        g = parse_sentence("exists x. R(x, x, x)")
        with pytest.raises(ValueError):
            equivalent_on_random_dbs(f, g)


class TestExhaustive:
    def test_de_morgan_exhaustively(self):
        f = parse_sentence("forall x. R(x) -> S(x)")
        g = parse_sentence("not exists x. R(x) and not S(x)")
        assert equivalent_on_all_small_dbs(f, g) is None

    def test_exhaustive_finds_corner_case(self):
        # Agree on most random dbs, differ when R is empty:
        # f says "R empty or some diagonal", g says "some diagonal".
        f = parse_sentence(
            "(not exists x y. R(x, y)) or exists x. R(x, x)")
        g = parse_sentence("exists x. R(x, x)")
        d = equivalent_on_all_small_dbs(f, g)
        assert d is not None
        # The first distinguisher in enumeration order is the empty
        # database: f holds vacuously, g fails.
        assert d.first_value and not d.second_value

    def test_space_bound_enforced(self):
        f = parse_sentence("exists x y. Big(x, y, x, y, x)")
        with pytest.raises(ValueError):
            equivalent_on_all_small_dbs(f, f)


class TestAgainstRewritings:
    def test_q3_rewriting_vs_paper_formula(self):
        from repro.cqa.rewriting import consistent_rewriting
        from repro.experiments.e6_rewriting_q3 import paper_rewriting_q3
        from repro.workloads.queries import q3

        ours = consistent_rewriting(q3())
        paper = paper_rewriting_q3()
        assert equivalent_on_random_dbs(ours, paper, trials=120,
                                        rng=random.Random(5))

    def test_rewriting_not_equivalent_to_plain_query(self):
        """The rewriting differs from naive satisfaction (that is the
        whole point): find a database where they disagree."""
        from repro.cqa.rewriting import consistent_rewriting
        from repro.fo.formula import AtomF, make_and, make_exists, make_not
        from repro.workloads.queries import q3

        q = q3()
        naive = make_exists(
            [x, y],
            make_and([AtomF(q.positives[0]), make_not(AtomF(q.negatives[0]))]),
        )
        rewriting = consistent_rewriting(q)
        d = find_distinguisher(rewriting, naive, trials=400,
                               rng=random.Random(6))
        assert d is not None
        # Either direction can occur: satisfiable-but-not-certain, or —
        # because repairs DROP facts and the query has a negated atom —
        # certain while the full database falsifies the query.
        from repro.cqa.brute_force import is_certain_brute_force

        assert is_certain_brute_force(q, d.db) == d.first_value
