"""Tests for the CRM workload and the possibility module."""


from repro.core.classify import Hardness, Verdict, classify
from repro.cqa.brute_force import is_certain_brute_force
from repro.cqa.engine import CertaintyEngine
from repro.cqa.possibility import (
    find_satisfying_repair,
    is_possible,
    is_possible_sampled,
)
from repro.db.satisfaction import satisfies
from repro.workloads.crm import (
    crm_blocked,
    crm_deliverable,
    crm_pilot_mismatch,
    empty_crm_database,
    random_crm_database,
)
from repro.workloads.generators import random_small_database
from repro.workloads.queries import q1, q3

from conftest import db_from


class TestCrmClassification:
    def test_deliverable_in_fo(self):
        c = classify(crm_deliverable())
        assert c.verdict is Verdict.IN_FO

    def test_blocked_in_fo(self):
        c = classify(crm_blocked())
        assert c.verdict is Verdict.IN_FO

    def test_pilot_mismatch_nl_hard(self):
        c = classify(crm_pilot_mismatch())
        assert c.verdict is Verdict.NOT_IN_FO
        assert c.hardness is Hardness.NL_HARD


class TestCrmWorkload:
    def test_schema_shapes(self):
        db = empty_crm_database()
        assert db.schemas["Blocklist"].is_all_key
        assert db.schemas["Email"].key_size == 1

    def test_random_db_inconsistent_at_high_conflict(self, rng):
        db = random_crm_database(10, 4, conflict_rate=1.0, rng=rng)
        assert not db.is_consistent

    def test_strategies_agree_on_crm_queries(self, rng):
        for make in (crm_deliverable, crm_blocked):
            engine = CertaintyEngine(make())
            for _ in range(10):
                db = random_crm_database(4, 3, conflict_rate=0.6, rng=rng)
                assert engine.cross_validate(db).consistent

    def test_pilot_mismatch_answerable_by_brute(self, rng):
        db = random_crm_database(4, 3, conflict_rate=0.6, rng=rng)
        assert is_certain_brute_force(crm_pilot_mismatch(), db) in (True, False)


class TestPossibility:
    def test_negation_free_shortcut_matches_enumeration(self, rng):
        query = crm_blocked()
        for _ in range(15):
            db = random_crm_database(4, 3, conflict_rate=0.6, rng=rng)
            fast = is_possible(query, db)
            slow = find_satisfying_repair(query, db) is not None
            assert fast == slow

    def test_with_negation_uses_enumeration(self, rng):
        query = q3()
        for _ in range(20):
            db = random_small_database(query, rng, domain_size=3)
            expected = find_satisfying_repair(query, db) is not None
            assert is_possible(query, db) == expected

    def test_satisfying_repair_satisfies(self, rng):
        query = q1()
        found_one = False
        for _ in range(15):
            db = random_small_database(query, rng, domain_size=3)
            repair = find_satisfying_repair(query, db)
            if repair is not None:
                found_one = True
                assert satisfies(repair, query)
        assert found_one

    def test_certain_implies_possible(self, rng):
        query = q3()
        for _ in range(15):
            db = random_small_database(query, rng, domain_size=3)
            if db.facts("P") and is_certain_brute_force(query, db):
                assert is_possible(query, db)

    def test_possible_on_empty_db(self):
        db = db_from({"P/2/1": [], "N/2/1": []})
        assert not is_possible(q3(), db)

    def test_sampled_true_is_definitive(self, rng):
        db = db_from({"P/2/1": [(1, "z")], "N/2/1": []})
        assert is_possible_sampled(q3(), db, samples=5, rng=rng)

    def test_negated_only_difference_case(self):
        """The negation shortcut would be unsound: db satisfies q but
        here every repair keeps the blocking fact."""
        db = db_from({"P/2/1": [(1, "a")], "N/2/1": [("c", "a")]})
        assert satisfies(db, q3()) is False  # blocked directly
        assert not is_possible(q3(), db)
