"""The plan-IR → SQL compiler: per-node parity with the executor.

Every supported node type, compiled through :func:`compile_plan` and
run natively inside the store's integer-encoded mirror, must return
exactly the rows of :func:`execute_plan` on the same database — the
executor is the semantics, the SQL is an implementation.  Distinct-row
parity holds because mirror tables carry a full-tuple primary key and
the compiler adds DISTINCT exactly at lossy projections.
"""

from __future__ import annotations

import types

import pytest

from repro.core.atoms import RelationSchema
from repro.core.parser import parse_query
from repro.core.terms import Variable
from repro.fo.plan import (
    AdomEq,
    AdomGuard,
    AdomProduct,
    AntiJoin,
    Difference,
    Join,
    Literal,
    Plan,
    Project,
    Scan,
    Select,
    SemiJoin,
    Union,
    execute_plan,
)
from repro.storage import (
    PersistentDatabase,
    compile_plan,
    native_sql_answers,
    sql_mirror,
    supports_plan,
)

w = Variable("w")
x, y, z = Variable("x"), Variable("y"), Variable("z")


def atom_of(text):
    """The single atom of a one-atom query text."""
    return parse_query(text).atoms[0]


def fake_compiled(plan, constants=(), free=None):
    return types.SimpleNamespace(
        plan=plan, constants=tuple(constants),
        free=tuple(plan.cols if free is None else free))


@pytest.fixture()
def store(tmp_path):
    db = PersistentDatabase(tmp_path / "store")
    db.add_relation(RelationSchema("R", 2, 1))
    db.add_relation(RelationSchema("S", 2, 1))
    db.add_relation(RelationSchema("T", 3, 1))
    with db.batch():
        db.add_all("R", [("a", "1"), ("b", "2"), ("c", "1"), ("d", "d")])
        db.add_all("S", [("a", "1"), ("b", "9"), ("1", "a")])
        db.add_all("T", [("a", "1", "p"), ("b", "2", "q"), ("e", "e", "e")])
    yield db
    db.close()


def assert_parity(plan, db, constants=()):
    compiled = fake_compiled(plan, constants)
    native = native_sql_answers(compiled, db)
    assert native is not None, "plan unexpectedly unsupported"
    assert native == frozenset(execute_plan(plan, db, constants))


scan_r = lambda: Scan(atom_of("R(x | y)"))
scan_s_xy = lambda: Scan(atom_of("S(x | y)"))
scan_s_yz = lambda: Scan(atom_of("S(y | z)"))


PLANS = {
    "scan": lambda: scan_r(),
    "scan-const-key": lambda: Scan(atom_of("R('a' | y)")),
    "scan-const-value": lambda: Scan(atom_of("R(x | '1')")),
    "scan-repeated-var": lambda: Scan(atom_of("R(x | x)")),
    "scan-all-const": lambda: Scan(atom_of("R('a' | '1')")),
    "scan-unseen-const": lambda: Scan(atom_of("R('nowhere' | y)")),
    "literal": lambda: Literal((x, y), {("a", "1"), ("q", "q")}),
    "literal-true": lambda: Literal((), {()}),
    "literal-false": lambda: Literal((), set()),
    "select-const-eq": lambda: Select(
        scan_r(), [(("col", 0), ("const", "b"), True)]),
    "select-const-diseq": lambda: Select(
        scan_r(), [(("col", 1), ("const", "1"), False)]),
    "select-col-eq": lambda: Select(
        scan_r(), [(("col", 0), ("col", 1), True)]),
    "project-lossy": lambda: Project(scan_r(), (y,)),
    "project-reorder": lambda: Project(scan_r(), (y, x)),
    "project-nullary": lambda: Project(scan_r(), ()),
    "join-shared": lambda: Join(scan_r(), scan_s_yz()),
    "join-cross": lambda: Join(
        Project(scan_r(), (x,)), Project(Scan(atom_of("S(y | z)")), (z,))),
    "semijoin": lambda: SemiJoin(scan_r(), scan_s_yz()),
    "antijoin": lambda: AntiJoin(scan_r(), scan_s_yz()),
    "union": lambda: Union([scan_r(), scan_s_xy()]),
    "difference": lambda: Difference(scan_r(), scan_s_xy()),
    "adom-product": lambda: AdomProduct((x,)),
    "adom-eq": lambda: AdomEq(x, y),
    "adom-guard-join": lambda: Join(scan_r(), AdomGuard()),
    "nested": lambda: Project(
        Select(Join(scan_r(), scan_s_yz()),
               [(("col", 0), ("const", "b"), False)]),
        (x, z)),
}


class TestNodeParity:
    @pytest.mark.parametrize("name", sorted(PLANS))
    def test_native_matches_executor(self, name, store):
        assert_parity(PLANS[name](), store)

    def test_adom_with_constants(self, store):
        # A query constant outside the database still joins the adom.
        assert_parity(AdomProduct((x,)), store, constants=("ghost",))

    def test_scan_of_missing_relation_is_empty(self, store):
        plan = Scan(atom_of("Unknown(x | y)"))
        assert_parity(plan, store)
        assert native_sql_answers(fake_compiled(plan), store) == frozenset()

    def test_scan_arity_mismatch_is_empty(self, store):
        # T has arity 3; a two-term atom matches nothing (executor
        # semantics: schema mismatch yields the empty relation).
        plan = Scan(atom_of("T(x | y)"))
        assert_parity(plan, store)
        assert native_sql_answers(fake_compiled(plan), store) == frozenset()


class TestCompileShape:
    SCHEMAS = {"R": RelationSchema("R", 2, 1)}

    def test_single_statement_with_bound_params(self):
        compiled = compile_plan(Scan(atom_of("R('a' | y)")), self.SCHEMAS)
        assert ";" not in compiled.sql
        assert "'a'" not in compiled.sql  # constants bind, never inline
        assert compiled.sql.count("?") == len(compiled.params) == 1
        assert compiled.params == ("a",)

    def test_probe_form_is_exists(self):
        compiled = compile_plan(Scan(atom_of("R(x | y)")), self.SCHEMAS,
                                probe=True)
        assert compiled.sql.lstrip().startswith("WITH ")
        assert "SELECT EXISTS" in compiled.sql
        assert compiled.width == 0

    def test_nullary_plan_compiles_to_probe(self):
        compiled = compile_plan(Project(Scan(atom_of("R(x | y)")), ()),
                                self.SCHEMAS)
        assert "SELECT EXISTS" in compiled.sql
        assert compiled.width == 0

    def test_lossy_projection_is_distinct(self):
        compiled = compile_plan(Project(Scan(atom_of("R(x | y)")), (y,)),
                                self.SCHEMAS)
        assert "DISTINCT" in compiled.sql
        lossless = compile_plan(Project(Scan(atom_of("R(x | y)")), (y, x)),
                                self.SCHEMAS)
        final_cte = lossless.sql.split("AS (")[-1]
        assert "DISTINCT" not in final_cte  # permutations stay bags

    def test_supports_plan_battery_and_rejects_unknown(self):
        for make in PLANS.values():
            assert supports_plan(make())

        class OpaquePlan(Plan):
            __slots__ = ()

            def __init__(self):
                super().__init__((x,))

        assert not supports_plan(OpaquePlan())
        assert not supports_plan(Join(Scan(atom_of("R(x | y)")),
                                      OpaquePlan()))


class TestStatementCache:
    def test_same_plan_object_hits_cache(self, store):
        mirror = sql_mirror(store)
        plan = scan_r()
        compiled = fake_compiled(plan)
        native_sql_answers(compiled, store)
        before = mirror.stats()["stmt_cache"]
        native_sql_answers(compiled, store)
        after = mirror.stats()["stmt_cache"]
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]

    def test_new_relation_bumps_epoch(self, store):
        # Adding a relation changes len(db.schemas): cached statements
        # for the old epoch must not serve the new schema set.
        mirror = sql_mirror(store)
        plan = scan_r()
        compiled = fake_compiled(plan)
        native_sql_answers(compiled, store)
        store.add_relation(RelationSchema("U", 2, 1))
        misses = mirror.stats()["stmt_cache"]["misses"]
        native_sql_answers(compiled, store)
        assert mirror.stats()["stmt_cache"]["misses"] == misses + 1
