"""Unit and property tests for the attack graph (Section 4.1)."""

import random

import pytest

from repro.core.attack_graph import (
    AttackGraph,
    attack_witness,
    attacked_from,
    attacked_variables,
    attacks_atom,
    attacks_variable,
    cooccurrence_graph,
)
from repro.core.terms import Constant, Variable
from repro.workloads.generators import QueryParams, random_query
from repro.workloads.queries import (
    poll_q1,
    poll_q2,
    poll_qa,
    poll_qb,
    q0,
    q1,
    q2,
    q2_example41,
    q3,
    q_hall,
)

x, y, z = Variable("x"), Variable("y"), Variable("z")


def edge_names(graph: AttackGraph):
    return sorted((f.relation, g.relation) for f, g in graph.edges)


class TestPaperExamples:
    def test_example41_edges(self):
        """Example 4.1: exactly R->S, S->R, R->P, S->P."""
        g = AttackGraph(q2_example41())
        assert edge_names(g) == [("R", "P"), ("R", "S"), ("S", "P"), ("S", "R")]

    def test_example42_edges(self):
        """Example 4.2: exactly N->P."""
        g = AttackGraph(q3())
        assert edge_names(g) == [("N", "P")]

    def test_example42_witness(self):
        """Example 4.2: (y, x) is a witness for N|y ~> x."""
        q = q3()
        w = attack_witness(q, q.atom_for("N"), x)
        assert w == (y, x)

    def test_example42_p_does_not_attack_n(self):
        q = q3()
        assert not attacks_atom(q, q.atom_for("P"), q.atom_for("N"))

    def test_q0_two_cycle(self):
        g = AttackGraph(q0())
        assert edge_names(g) == [("R", "S"), ("S", "R")]

    def test_q1_two_cycle(self):
        g = AttackGraph(q1())
        assert edge_names(g) == [("R", "S"), ("S", "R")]

    def test_q2_cycle_between_negated_atoms(self):
        g = AttackGraph(q2())
        names = edge_names(g)
        assert ("S", "T") in names and ("T", "S") in names

    def test_poll_qa_single_attack(self):
        """Example 4.6: one attack, Lives -> Likes."""
        assert edge_names(AttackGraph(poll_qa())) == [("Lives", "Likes")]

    def test_poll_qb_two_attacks_into_likes(self):
        """Example 4.6: Born -> Likes and Lives -> Likes."""
        assert edge_names(AttackGraph(poll_qb())) == [
            ("Born", "Likes"), ("Lives", "Likes")]

    def test_poll_q1_cyclic(self):
        assert not AttackGraph(poll_q1()).is_acyclic

    def test_poll_q2_cyclic(self):
        assert not AttackGraph(poll_q2()).is_acyclic

    def test_q_hall_acyclic_all_sizes(self):
        for ell in range(0, 5):
            assert AttackGraph(q_hall(ell)).is_acyclic


class TestVariableAttacks:
    def test_attack_includes_own_variables(self):
        # N|y ~> y in q3 (length-zero witness).
        q = q3()
        assert attacks_variable(q, q.atom_for("N"), y)

    def test_no_attack_into_oplus(self):
        q = q3()
        assert not attacks_variable(q, q.atom_for("P"), x)

    def test_attacked_from_subset_of_attacked(self):
        q = q2_example41()
        for a in q.atoms:
            union = frozenset()
            for v in a.vars:
                union |= attacked_from(q, a, v)
            assert union == attacked_variables(q, a)

    def test_attacked_from_requires_membership(self):
        q = q3()
        with pytest.raises(ValueError):
            attacked_from(q, q.atom_for("N"), x)

    def test_witness_none_when_no_attack(self):
        q = q3()
        assert attack_witness(q, q.atom_for("P"), x) is None

    def test_witness_validity(self):
        """Any returned witness satisfies the three defining conditions."""
        from repro.core.fds import oplus

        for q in (q1(), q2(), q2_example41(), poll_qa()):
            adj = cooccurrence_graph(q)
            for a in q.atoms:
                forbidden = oplus(q, a)
                for target in attacked_variables(q, a):
                    w = attack_witness(q, a, target)
                    assert w is not None
                    assert w[0] in a.vars and w[-1] == target
                    assert all(v not in forbidden for v in w)
                    for i in range(len(w) - 1):
                        assert w[i + 1] in adj[w[i]]


class TestGraphStructure:
    def test_all_key_atoms_have_zero_outdegree(self):
        for q in (q2_example41(), q2(), poll_qa(), poll_qb()):
            g = AttackGraph(q)
            for a in q.atoms:
                if a.is_all_key:
                    assert g.successors(a) == ()

    def test_no_self_loops(self):
        for q in (q0(), q1(), q2(), q3(), q_hall(3)):
            for f, g in AttackGraph(q).edges:
                assert f != g

    def test_find_cycle_consistency(self):
        for q in (q0(), q1(), q2(), q3(), poll_qa(), poll_q2()):
            g = AttackGraph(q)
            cycle = g.find_cycle()
            assert (cycle is None) == g.is_acyclic
            if cycle is not None:
                edges = set(g.edges)
                for i, a in enumerate(cycle):
                    assert (a, cycle[(i + 1) % len(cycle)]) in edges

    def test_two_cycle_detection(self):
        assert AttackGraph(q1()).find_two_cycle() is not None
        assert AttackGraph(q3()).find_two_cycle() is None

    def test_unattacked_atoms(self):
        g = AttackGraph(q3())
        assert [a.relation for a in g.unattacked_atoms()] == ["N"]

    def test_unattacked_variables(self):
        # In q3, N attacks x and y; nothing else attacks.
        g = AttackGraph(q3())
        assert g.unattacked_variables() == frozenset()

    def test_predecessors_successors(self):
        q = q3()
        g = AttackGraph(q)
        n, p = q.atom_for("N"), q.atom_for("P")
        assert g.successors(n) == (p,)
        assert g.predecessors(p) == (n,)
        assert g.has_edge(n, p)
        assert not g.has_edge(p, n)


class TestLemma49Property:
    """Lemma 4.9: for weakly-guarded q, F~>G~>H implies F~>H or G~>F.
    Consequence: cyclic implies a 2-cycle exists."""

    def test_transitivity_like_property_on_random_queries(self):
        rng = random.Random(11)
        for _ in range(40):
            q = random_query(QueryParams(n_positive=2, n_negative=2,
                                         n_variables=4), rng)
            g = AttackGraph(q)
            edges = set(g.edges)
            for f, gg in edges:
                for gg2, h in edges:
                    if gg2 == gg and f != h:
                        assert (f, h) in edges or (gg, f) in edges, (
                            f"Lemma 4.9 violated on {q}"
                        )

    def test_cyclic_implies_two_cycle_on_random_queries(self):
        rng = random.Random(13)
        found_cyclic = 0
        for _ in range(120):
            q = random_query(QueryParams(n_positive=2, n_negative=2,
                                         n_variables=3), rng)
            g = AttackGraph(q)
            if not g.is_acyclic:
                found_cyclic += 1
                assert g.find_two_cycle() is not None
        assert found_cyclic > 0, "generator never produced a cyclic query"


class TestConstantsInAtoms:
    def test_constant_only_key_never_attacked(self):
        q = q3()
        g = AttackGraph(q)
        assert g.predecessors(q.atom_for("N")) == ()

    def test_lemma_610_attack_preservation(self):
        """Substituting a constant can only remove attacks."""
        rng = random.Random(17)
        for _ in range(30):
            q = random_query(QueryParams(n_positive=2, n_negative=1,
                                         n_variables=3), rng)
            if not q.vars:
                continue
            v = sorted(q.vars)[0]
            sub = q.substitute({v: Constant("c99")})
            edges_before = {
                (f.relation, g_.relation) for f, g_ in AttackGraph(q).edges
            }
            edges_after = {
                (f.relation, g_.relation) for f, g_ in AttackGraph(sub).edges
            }
            assert edges_after <= edges_before

    def test_lemma_610_weak_guardedness_preserved(self):
        rng = random.Random(19)
        for _ in range(30):
            q = random_query(QueryParams(n_positive=2, n_negative=2,
                                         n_variables=4), rng)
            if not q.vars:
                continue
            v = sorted(q.vars)[0]
            assert q.substitute({v: Constant("c99")}).has_weakly_guarded_negation
