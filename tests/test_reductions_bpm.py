"""Tests for the BPM reduction (Lemma 5.2)."""

from repro.cqa.brute_force import find_falsifying_repair, is_certain_brute_force
from repro.matching.hopcroft_karp import BipartiteGraph, has_perfect_matching, is_matching
from repro.reductions.bpm import (
    bpm_to_database,
    matching_from_repair,
    repair_from_matching,
)
from repro.workloads.bipartite import (
    bipartite_with_perfect_matching,
    figure_1_graph,
    random_bipartite,
)
from repro.workloads.queries import q1


class TestReduction:
    def test_database_shape(self):
        g = BipartiteGraph(edges=[("g", "b")])
        db = bpm_to_database(g)
        assert db.contains("R", ("g", "b"))
        assert db.contains("S", ("b", "g"))
        assert db.size() == 2

    def test_equivalence_on_left_covered_graphs(self, rng):
        """PM exists iff some repair falsifies q1, when no left vertex
        is isolated (the reduction's implicit premise)."""
        query = q1()
        checked = 0
        for _ in range(40):
            g = random_bipartite(rng.randint(1, 4), 0.7, rng)
            if any(not g.neighbours(u) for u in g.left):
                continue
            checked += 1
            db = bpm_to_database(g)
            certain = is_certain_brute_force(query, db)
            assert certain == (not has_perfect_matching(g))
        assert checked >= 10

    def test_figure1(self):
        db = bpm_to_database(figure_1_graph())
        assert not is_certain_brute_force(q1(), db)


class TestWitnessExtraction:
    def test_matching_from_repair_is_valid(self, rng):
        query = q1()
        for _ in range(10):
            g = bipartite_with_perfect_matching(rng.randint(2, 4), 0.3, rng)
            db = bpm_to_database(g)
            repair = find_falsifying_repair(query, db)
            assert repair is not None
            m = matching_from_repair(repair.restrict(["R", "S"]))
            assert is_matching(g, m)
            assert set(m) == g.left

    def test_repair_from_matching_falsifies(self, rng):
        from repro.db.satisfaction import satisfies

        for _ in range(10):
            g = bipartite_with_perfect_matching(rng.randint(2, 4), 0.3, rng)
            m = maximum = __import__(
                "repro.matching.hopcroft_karp",
                fromlist=["maximum_matching"]).maximum_matching(g)
            repair = repair_from_matching(g, m)
            assert repair is not None
            assert not satisfies(repair, q1())

    def test_repair_from_partial_matching_rejected(self):
        g = BipartiteGraph(edges=[(1, "a"), (2, "b")])
        assert repair_from_matching(g, {1: "a"}) is None
