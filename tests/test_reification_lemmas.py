"""Randomized validation of the reification machinery: Lemma 6.8 (the
swap property) and Corollary 6.9 (unattacked variables are reifiable)."""

import random

import pytest

from repro.core.lemma_checks import check_corollary_6_9, check_lemma_6_8
from repro.db.repairs import sample_repair
from repro.workloads.generators import (
    QueryParams,
    random_query,
    random_small_database,
)
from repro.workloads.queries import poll_qa, poll_qb, q3, q_example611, q_hall


CANONICAL = [
    ("q3", q3),
    ("q_hall_2", lambda: q_hall(2)),
    ("q_ex611", q_example611),
    ("poll_qa", poll_qa),
    ("poll_qb", poll_qb),
]


class TestLemma68:
    @pytest.mark.parametrize("name,make", CANONICAL)
    def test_swap_property_on_canonical_queries(self, name, make, rng):
        query = make()
        for _ in range(15):
            db = random_small_database(query, rng, domain_size=3,
                                       facts_per_relation=4)
            repair = sample_repair(db.restrict(set(query.relations)), rng)
            assert check_lemma_6_8(query, repair) == [], name

    def test_swap_property_on_random_queries(self):
        rng = random.Random(67)
        for _ in range(25):
            query = random_query(
                QueryParams(n_positive=2, n_negative=1, n_variables=3,
                            max_arity=2), rng)
            db = random_small_database(query, rng, domain_size=3,
                                       facts_per_relation=3)
            repair = sample_repair(db.restrict(set(query.relations)), rng)
            assert check_lemma_6_8(query, repair) == [], repr(query)

    def test_inconsistent_database_rejected(self):
        from conftest import db_from

        db = db_from({"P/2/1": [(1, "a"), (1, "b")], "N/2/1": []})
        with pytest.raises(ValueError):
            check_lemma_6_8(q3(), db)


class TestCorollary69:
    @pytest.mark.parametrize("name,make", CANONICAL)
    def test_reifiability_on_canonical_queries(self, name, make, rng):
        query = make()
        for _ in range(10):
            db = random_small_database(query, rng, domain_size=3,
                                       facts_per_relation=3)
            assert check_corollary_6_9(query, db) == [], name

    def test_reifiability_on_random_acyclic_queries(self):
        rng = random.Random(71)
        checked = 0
        while checked < 15:
            query = random_query(
                QueryParams(n_positive=2, n_negative=1, n_variables=3,
                            max_arity=2), rng)
            db = random_small_database(query, rng, domain_size=2,
                                       facts_per_relation=3)
            result = check_corollary_6_9(query, db)
            assert result == [], (repr(query), db)
            checked += 1
