#!/usr/bin/env python3
"""Certain answers for non-Boolean queries: the paper's free-variables
extension ("free variables can be treated as constants", Section 1).

Which people certainly live in a town that is neither their birthplace
nor a town they like — no matter how the key violations are repaired?

Run:  python examples/certain_answers_demo.py
"""

import random

from repro.core.terms import Variable
from repro.cqa.certain_answers import (
    OpenQuery,
    certain_answers,
    certain_answers_sql_query,
    cross_validate_answers,
)
from repro.workloads.poll import paper_flavoured_poll_database, random_poll_database
from repro.workloads.queries import poll_qa


def small_walkthrough() -> None:
    print("=== certain answers on the hand-written poll database ===")
    query = poll_qa()
    open_query = OpenQuery(query, [Variable("p")])
    db = paper_flavoured_poll_database()
    print(f"query: p <- {query}")
    print(f"database: {db.size()} facts, {db.repair_count()} repairs")

    results = cross_validate_answers(open_query, db)
    assert len(set(results.values())) == 1, "strategies disagree!"
    answers = sorted(results["sql"], key=repr)
    print(f"certain answers (agreed by {', '.join(results)}):")
    for (person,) in answers:
        print(f"  {person}")


def one_sql_query() -> None:
    print("\n=== the whole answer set from ONE SQL query ===")
    query = poll_qa()
    open_query = OpenQuery(query, [Variable("p"), Variable("t")])
    db = random_poll_database(60, 12, conflict_rate=0.5,
                              rng=random.Random(21))
    sql = certain_answers_sql_query(open_query, db)
    print(f"compiled SELECT: {len(sql)} chars, "
          f"{sql.count('EXISTS')} EXISTS subqueries")
    answers = certain_answers(open_query, db, "sql")
    print(f"database: {db.size()} facts, "
          f"~{db.restrict(set(query.relations)).repair_count():.3g} repairs")
    print(f"certain (person, town) pairs: {len(answers)}")
    for row in sorted(answers, key=repr)[:5]:
        print("  ", row)
    if len(answers) > 5:
        print(f"   ... and {len(answers) - 5} more")


if __name__ == "__main__":
    small_walkthrough()
    one_sql_query()
