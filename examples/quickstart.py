#!/usr/bin/env python3
"""Quickstart: classify a query, build its consistent FO rewriting, and
answer CERTAINTY on an inconsistent database four different ways.

Run:  python examples/quickstart.py
"""

from repro import (
    CertaintyEngine,
    Database,
    Query,
    RelationSchema,
    Variable,
    atom,
    classify,
)
from repro.fo.sql import compile_to_sql
from repro.fo.stats import pretty


def main() -> None:
    # The paper's q3 (Examples 4.2 / 4.5): does some employee have a
    # project that is not on the blocked list?
    x, y = Variable("x"), Variable("y")
    from repro import Constant
    query = Query(
        positives=[atom("Assigned", [x], [y])],
        negatives=[atom("Blocked", [Constant("hq")], [y])],
    )
    print("query:", query)

    # 1. Classify: Theorem 4.3's effective dichotomy.
    result = classify(query)
    print("verdict:", result.verdict.value)
    print("reason: ", result.reason)

    # 2. Build the consistent first-order rewriting (Algorithm 1).
    engine = CertaintyEngine(query)
    print("\nconsistent FO rewriting:")
    print(pretty(engine.rewriting))

    # 3. An inconsistent database: employee keys repeat (key violations).
    db = Database([
        RelationSchema("Assigned", 2, 1),
        RelationSchema("Blocked", 2, 1),
    ])
    db.add_all("Assigned", [
        ("ann", "apollo"), ("ann", "zeus"),       # conflicting records
        ("bea", "apollo"),
        ("cal", "hermes"), ("cal", "apollo"),
    ])
    db.add_all("Blocked", [("hq", "zeus"), ("hq", "hermes")])
    print(f"\ndatabase: {db.size()} facts, {db.repair_count()} repairs")

    # 4. Answer with every strategy; they must agree.
    for method in ("brute", "interpreted", "rewriting", "sql"):
        print(f"  certain via {method:11s}: {engine.certain(db, method)}")

    # 5. The single SQL query a DBA could run directly.
    print("\ncompiled SQL (truncated):")
    sql = compile_to_sql(engine.rewriting, db.schemas)
    print(sql[:400] + (" ..." if len(sql) > 400 else ""))


if __name__ == "__main__":
    main()
