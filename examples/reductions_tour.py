#!/usr/bin/env python3
"""A tour of the paper's hardness reductions, executed end to end.

Each reduction maps a classical problem into CERTAINTY(q) for a query
with a cyclic attack graph; we run the reductions on concrete instances
and verify the answers line up.

Run:  python examples/reductions_tour.py
"""

import random

from repro import classify, is_certain_brute_force
from repro.reductions import (
    build_gadget,
    reduce_lemma_5_6,
    reduce_lemma_5_7,
    ufa_to_database,
)
from repro.reductions.ufa import Forest
from repro.workloads.generators import random_small_database
from repro.workloads.queries import poll_q1, poll_q2, q1, q2
from repro.core.terms import Constant, Variable


def lemma_5_3_ufa() -> None:
    print("=== Lemma 5.3: forest accessibility -> CERTAINTY(q2) ===")
    forest = Forest()
    for edge in [("u", "a"), ("a", "b")]:
        forest.add_edge(*edge)
    for edge in [("v", "c"), ("c", "d")]:
        forest.add_edge(*edge)
    for u, v in (("u", "b"), ("u", "v")):
        db = ufa_to_database(forest, u, v)
        certain = is_certain_brute_force(q2(), db)
        print(f"  connected({u}, {v}) = {forest.connected(u, v)}   "
              f"CERTAINTY(q2) on reduced db = {certain}   "
              f"[{db.size()} facts]")


def lemma_5_6_gadget() -> None:
    print("\n=== Lemma 5.6: q1 embedded into poll q1 (Mayor <-> Lives) ===")
    target = poll_q1()
    print(f"  target: {target}  ({classify(target).reason})")
    f, g = target.atom_for("Mayor"), target.atom_for("Lives")
    rng = random.Random(0)
    for _ in range(3):
        db = random_small_database(q1(), rng, domain_size=3,
                                   facts_per_relation=4)
        _, out = reduce_lemma_5_6(target, f, g, db)
        src = is_certain_brute_force(q1(), db)
        dst = is_certain_brute_force(target, out)
        print(f"  source CERTAINTY(q1) = {src}   target = {dst}   "
              f"preserved = {src == dst}")


def lemma_5_7_gadget() -> None:
    print("\n=== Lemma 5.7: q2 embedded into poll q2 (Lives <-> Mayor) ===")
    target = poll_q2()
    f, g = target.atom_for("Lives"), target.atom_for("Mayor")
    rng = random.Random(1)
    for _ in range(3):
        db = random_small_database(q2(), rng, domain_size=3,
                                   facts_per_relation=4)
        _, out = reduce_lemma_5_7(target, f, g, db)
        src = is_certain_brute_force(q2(), db)
        dst = is_certain_brute_force(target, out)
        print(f"  source CERTAINTY(q2) = {src}   target = {dst}   "
              f"preserved = {src == dst}")


def proposition_7_2() -> None:
    print("\n=== Proposition 7.2: attacked variables are not reifiable ===")
    query = q1()
    gadget = build_gadget(query, query.atom_for("R"), Variable("y"))
    print(f"  gadget database: {gadget.db.size()} facts, "
          f"{gadget.db.repair_count()} repairs")
    print(f"  CERTAINTY(q1) = {is_certain_brute_force(query, gadget.db)} "
          f"(every repair satisfies q1)")
    for c in (gadget.constant_a, gadget.constant_b):
        grounded = query.substitute({Variable('y'): Constant(c)})
        print(f"  CERTAINTY(q1[y -> {c!r}]) = "
              f"{is_certain_brute_force(grounded, gadget.db)} "
              f"(some repair falsifies the grounding)")


if __name__ == "__main__":
    lemma_5_3_ufa()
    lemma_5_6_gadget()
    lemma_5_7_gadget()
    proposition_7_2()
