#!/usr/bin/env python3
"""Example 4.6: the town-poll schema — meaningful queries with and
without consistent first-order rewritings.

Schema: Likes(p t) [all-key], Born(p, t), Lives(p, t), Mayor(t, p).

Run:  python examples/town_poll.py
"""

import random

from repro import AttackGraph, CertaintyEngine, classify
from repro.cqa import NotInFO
from repro.workloads import (
    paper_flavoured_poll_database,
    random_poll_database,
)
from repro.workloads.queries import poll_q1, poll_q2, poll_qa, poll_qb


def show_classification() -> None:
    print("=== classification (Theorem 4.3) ===")
    for name, query, meaning in [
        ("q1", poll_q1(), "a town whose mayor does not live there"),
        ("q2", poll_q2(), "someone likes a town they neither live in nor rule"),
        ("qa", poll_qa(), "someone lives in a town they don't like, not their birthplace"),
        ("qb", poll_qb(), "someone likes a town that is neither birth nor home town"),
    ]:
        result = classify(query)
        edges = sorted(f"{f.relation}->{g.relation}"
                       for f, g in AttackGraph(query).edges)
        print(f"{name}: {meaning}")
        print(f"    attack edges: {edges or 'none'}")
        print(f"    verdict: {result.verdict.value}   ({result.reason})")


def answer_acyclic() -> None:
    print("\n=== answering the acyclic queries ===")
    db = paper_flavoured_poll_database()
    print(f"hand-written poll database: {db.size()} facts, "
          f"{db.repair_count()} repairs, consistent={db.is_consistent}")
    for name, query in (("qa", poll_qa()), ("qb", poll_qb())):
        engine = CertaintyEngine(query)
        answers = {m: engine.certain(db, m)
                   for m in ("brute", "interpreted", "rewriting", "sql")}
        assert len(set(answers.values())) == 1
        print(f"  CERTAINTY({name}) = {answers['sql']}   "
              f"(agreed by {', '.join(answers)})")

    big = random_poll_database(200, 30, conflict_rate=0.5,
                               rng=random.Random(1))
    print(f"\nscaled poll database: {big.size()} facts, "
          f"~{big.repair_count():.3g} repairs")
    for name, query in (("qa", poll_qa()), ("qb", poll_qb())):
        engine = CertaintyEngine(query)
        print(f"  CERTAINTY({name}) via single SQL query: "
              f"{engine.certain(big, 'sql')}")


def refuse_cyclic() -> None:
    print("\n=== the cyclic queries have no rewriting ===")
    engine = CertaintyEngine(poll_q1())
    try:
        _ = engine.rewriting
    except NotInFO as exc:
        print(f"q1: NotInFO raised as expected:\n    {exc}")
    db = paper_flavoured_poll_database()
    print(f"q1 still answerable by brute force: "
          f"{engine.certain(db, 'brute')}")


if __name__ == "__main__":
    show_classification()
    answer_acyclic()
    refuse_cyclic()
