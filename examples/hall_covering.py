#!/usr/bin/env python3
"""Examples 1.2 and 6.12: S-COVERING, Hall's theorem, and the q_Hall
rewriting of Figure 2.

Run:  python examples/hall_covering.py
"""

from repro import CertaintyEngine, is_certain_brute_force
from repro.fo.stats import pretty, stats
from repro.matching import SCoveringInstance, hall_violator
from repro.reductions import covering_from_repair, scovering_to_database
from repro.reductions.scovering import query_for
from repro.cqa.brute_force import find_falsifying_repair


def solvable_instance() -> None:
    print("=== a solvable S-COVERING instance ===")
    inst = SCoveringInstance(
        ["red", "green", "blue"],
        [["red", "green"], ["green", "blue"], ["red"]],
    )
    print("S =", inst.elements)
    print("T =", [sorted(t) for t in inst.subsets])
    print("covering:", inst.solve())

    db = scovering_to_database(inst)
    query = query_for(inst)
    certain = is_certain_brute_force(query, db)
    print("CERTAINTY(q_Hall):", certain, "(false = a covering repair exists)")
    repair = find_falsifying_repair(query, db)
    print("covering from falsifying repair:", covering_from_repair(inst, repair))


def unsolvable_instance() -> None:
    print("\n=== an unsolvable instance, with its Hall violator ===")
    inst = SCoveringInstance(
        ["a", "b", "c"],
        [["a", "b", "c"], []],  # two sets cannot cover three elements
    )
    print("S =", inst.elements, " T =", [sorted(t) for t in inst.subsets])
    print("solvable:", inst.solvable)
    violator = hall_violator(inst.to_bipartite())
    print("Hall violator (|N(A)| < |A|):", sorted(violator))

    db = scovering_to_database(inst)
    query = query_for(inst)
    engine = CertaintyEngine(query)
    answers = {m: engine.certain(db, m)
               for m in ("brute", "interpreted", "rewriting", "sql")}
    print("CERTAINTY(q_Hall):", answers, "(true = no covering exists)")


def figure_2() -> None:
    print("\n=== Figure 2: the rewriting of q_Hall for l = 3 ===")
    from repro.workloads.queries import q_hall
    engine = CertaintyEngine(q_hall(3))
    s = stats(engine.rewriting)
    print(f"size: {s.nodes} AST nodes, {s.atoms} atoms, "
          f"{s.quantifiers} quantifiers (exponential in l, cf. Ex 6.12)")
    print(pretty(engine.rewriting))


if __name__ == "__main__":
    solvable_instance()
    unsolvable_instance()
    figure_2()
