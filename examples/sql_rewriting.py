#!/usr/bin/env python3
"""The practicality claim end-to-end: compile a consistent first-order
rewriting to ONE SQL query and run it on sqlite over the inconsistent
database — no repairs ever materialized.

Run:  python examples/sql_rewriting.py
"""

import random
import time

from repro import CertaintyEngine
from repro.db.sqlite_backend import load_database
from repro.fo.sql import compile_to_sql
from repro.workloads import random_poll_database
from repro.workloads.queries import poll_qa


def main() -> None:
    query = poll_qa()
    engine = CertaintyEngine(query)
    print("query:", query)
    print("in FO:", engine.in_fo)

    sql = compile_to_sql(engine.rewriting)
    print(f"\ncompiled SQL ({len(sql)} chars):")
    print(sql)

    print("\nrunning on growing inconsistent databases:")
    print(f"{'people':>7} {'facts':>6} {'repairs':>24} {'certain':>8} {'t_sql':>10}")
    rng = random.Random(3)
    for people in (10, 50, 200, 1000):
        db = random_poll_database(people, max(3, people // 5),
                                  conflict_rate=0.5, rng=rng)
        conn = load_database(db)
        full_sql = compile_to_sql(engine.rewriting, db.schemas)
        t0 = time.perf_counter()
        certain = bool(conn.execute(full_sql).fetchone()[0])
        elapsed = time.perf_counter() - t0
        repairs = db.restrict(set(query.relations)).repair_count()
        print(f"{people:>7} {db.size():>6} {repairs:>24.6g} "
              f"{str(certain):>8} {elapsed:>10.5f}")
        conn.close()
    print("\nrepair count grows exponentially; the SQL query does not care.")


if __name__ == "__main__":
    main()
