#!/usr/bin/env python3
"""Customer-data integration: certainty, possibility, counting, and
explanations on one realistic inconsistent schema.

Two CRM systems were merged and primary keys now conflict.  Which facts
hold no matter how the conflicts are resolved?

Run:  python examples/crm_cleanup.py
"""

import random

from repro import CertaintyEngine, classify
from repro.core.terms import Variable
from repro.cqa.certain_answers import OpenQuery, certain_answers
from repro.cqa.counting import count_satisfying_repairs
from repro.cqa.explain import explain
from repro.cqa.possibility import is_possible
from repro.workloads.crm import (
    crm_blocked,
    crm_deliverable,
    crm_pilot_mismatch,
    random_crm_database,
)


def main() -> None:
    rng = random.Random(12)
    db = random_crm_database(6, 3, conflict_rate=0.7, blocklist_rate=0.4,
                             rng=rng)
    print(f"merged CRM database: {db.size()} facts, "
          f"{db.repair_count()} repairs, consistent={db.is_consistent}")

    print("\n=== classification of the maintenance queries ===")
    for name, query in [
        ("deliverable", crm_deliverable()),
        ("blocked", crm_blocked()),
        ("pilot-mismatch", crm_pilot_mismatch()),
    ]:
        result = classify(query)
        print(f"  {name:15s} {result.verdict.value:10s} ({result.reason})")

    print("\n=== certainty / possibility / counting ===")
    for name, query in [("deliverable", crm_deliverable()),
                        ("blocked", crm_blocked())]:
        engine = CertaintyEngine(query)
        certain = engine.certain(db, "sql")
        possible = is_possible(query, db)
        count = count_satisfying_repairs(query, db)
        print(f"  {name:12s} certain={certain}  possible={possible}  "
              f"satisfying repairs: {count.satisfying}/{count.total}")

    print("\n=== which customers certainly have deliverable consent? ===")
    open_query = OpenQuery(crm_deliverable(), [Variable("i")])
    answers = certain_answers(open_query, db, "sql")
    print("  " + (", ".join(sorted(a for (a,) in answers)) or "(none)"))

    print("\n=== why is 'blocked' not certain (or certain)? ===")
    print(explain(crm_blocked(), db, rng=rng).render())


if __name__ == "__main__":
    main()
