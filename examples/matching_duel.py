#!/usr/bin/env python3
"""Example 1.1 / Figure 1: CERTAINTY(q1) is bipartite matching in
disguise.

Girls choose one boy they know (repairs of R), boys choose one girl
they know (repairs of S); q1 = {R(x,y), ~S(y,x)} is certain iff no
mutual pairing covers every girl.

Run:  python examples/matching_duel.py
"""

import random
import time

from repro import is_certain_brute_force
from repro.matching import falsifying_repair_q1, is_certain_q1
from repro.reductions import bpm_to_database, matching_from_repair
from repro.workloads import bipartite_with_perfect_matching, figure_1_graph
from repro.workloads.queries import q1


def figure_1() -> None:
    print("=== Figure 1: Alice, Maria, Bob, George, John ===")
    db = bpm_to_database(figure_1_graph())
    query = q1()
    certain = is_certain_brute_force(query, db)
    print("CERTAINTY(q1):", certain, "(paper: false — a pairing exists)")
    repair = falsifying_repair_q1(db)
    matching = matching_from_repair(repair.restrict(["R", "S"]))
    print("pairing found:", ", ".join(f"{g}-{b}" for g, b in sorted(matching.items())))


def race(sizes=(4, 6, 8, 10)) -> None:
    print("\n=== matching (polynomial) vs repair enumeration (exponential) ===")
    rng = random.Random(0)
    query = q1()
    print(f"{'m':>4}  {'certain':>8}  {'t_matching':>12}  {'t_brute':>12}")
    for m in sizes:
        db = bpm_to_database(bipartite_with_perfect_matching(m, 0.3, rng))
        t0 = time.perf_counter()
        fast = is_certain_q1(db)
        t_fast = time.perf_counter() - t0
        if m <= 6:
            t0 = time.perf_counter()
            brute = is_certain_brute_force(query, db)
            t_brute = f"{time.perf_counter() - t0:12.4f}"
            assert brute == fast
        else:
            t_brute = "     skipped"
        print(f"{m:>4}  {str(fast):>8}  {t_fast:12.6f}  {t_brute}")
    print("(CERTAINTY(q1) is NL-hard — no consistent FO rewriting exists, "
          "but matching solves it in polynomial time)")


if __name__ == "__main__":
    figure_1()
    race()
