"""The vectorized batch executor over the relational plan IR.

:class:`VectorExecutor` evaluates exactly the plan trees that
:mod:`repro.fo.compile` lowers and :class:`repro.fo.plan.Executor`
runs — same node types, same semantics, pinned by the PV001–PV013
verifier contract — but batch-at-a-time over
:class:`~repro.columnar.relation.ColumnarRelation` int columns instead
of row-at-a-time over Python tuples:

* **Scans** filter and project dictionary-encoded columns cached on the
  database's :class:`~repro.columnar.dictionary.ColumnarStore`
  (version-tagged, so mutations invalidate them like the database's own
  hash indexes);
* **Joins** fuse the shared key columns into one int per row
  (:func:`~repro.columnar.relation.fuse`), build the hash table over
  those ints once per batch, and emit selection vectors that are
  gathered into output columns — no tuple construction anywhere on the
  match path;
* **Semi/anti-joins, difference, union, select, project** are selection
  -vector filters and fused-key set operations.

Two deliberate delegations to the row executor (the oracle):

* **Boolean plans** keep the probe-mode short-circuit: materializing
  every batch to answer "is it non-empty?" would undo the PR 4 win, so
  :meth:`VectorExecutor.nonempty` hands the sentence to the row
  executor's sideways-information-passing probe path.
* **Adom\\* nodes** (``AdomProduct``/``AdomGuard``/``AdomEq``) decode to
  tuples: they enumerate the active domain, which no column encodes.
  Each such fallback ticks the ``decode_fallbacks`` profile counter and
  is what performance rule QP109 warns about statically.

``method="columnar"`` reaches this executor through
:func:`columnar_rows`; ``method="auto"`` routes here when
:func:`prefer_columnar` — database size gate plus the PR 6 cost model —
says the batch win outweighs the encoding cost.
"""

from __future__ import annotations

import os
from array import array
from itertools import chain, compress, count, repeat
from operator import (
    and_ as op_and,
    eq as op_eq,
    ne as op_ne,
    not_ as op_not,
    or_ as op_or,
)
from time import perf_counter
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..db.database import Database
from ..fo.plan import (
    AdomEq,
    AdomGuard,
    AdomProduct,
    AntiJoin,
    Difference,
    Executor,
    Join,
    Literal,
    Plan,
    Project,
    Scan,
    Select,
    SemiJoin,
    Union,
)
from .dictionary import ColumnarStore, columnar_store
from .relation import ColumnarRelation, fuse, gather, pick

__all__ = [
    "VectorExecutor",
    "columnar_rows",
    "columnar_holds",
    "prefer_columnar",
    "prime_plan_values",
    "columnar_stats",
    "reset_columnar_stats",
    "COLUMNAR_MIN_FACTS",
    "COLUMNAR_COST_THRESHOLD",
]

Row = Tuple

#: ``method="auto"`` never routes to the columnar backend below this
#: many facts — encoding whole relations costs more than small tuple
#: runs save.  Env override: ``REPRO_COLUMNAR_MIN_FACTS``.
COLUMNAR_MIN_FACTS = 4000

#: ...and only above this estimated plan cost (the PR 6 System-R model):
#: cheap plans finish before the batch machinery warms up.  Env
#: override: ``REPRO_COLUMNAR_COST``.
COLUMNAR_COST_THRESHOLD = 50_000.0

_STATS: Dict[str, int] = {}


def reset_columnar_stats() -> None:
    _STATS.clear()
    _STATS.update(
        runs=0,
        boolean_probe_delegations=0,
        decode_fallbacks=0,
        auto_routed=0,
        scan_cache_hits=0,
    )


reset_columnar_stats()


def columnar_stats() -> Dict[str, int]:
    """Process-wide columnar-backend counters.

    ``runs`` (executions through the backend),
    ``boolean_probe_delegations`` (sentences handed to the row
    executor's short-circuit probe), ``decode_fallbacks`` (Adom* nodes
    evaluated row-at-a-time and re-encoded), ``auto_routed``
    (``method="auto"`` decisions for columnar), ``scan_cache_hits``
    (store-level scan results reused).  Feeds the ``columnar`` section
    of ``engine.metrics()``.
    """
    return dict(_STATS)


def _min_facts() -> int:
    raw = os.environ.get("REPRO_COLUMNAR_MIN_FACTS", "").strip()
    return int(raw) if raw.isdigit() else COLUMNAR_MIN_FACTS


def _cost_threshold() -> float:
    raw = os.environ.get("REPRO_COLUMNAR_COST", "").strip()
    try:
        return float(raw) if raw else COLUMNAR_COST_THRESHOLD
    except ValueError:
        return COLUMNAR_COST_THRESHOLD


# ----------------------------------------------------------------------
# batch execution
# ----------------------------------------------------------------------


def _dedup(columns: Sequence[array], n: int,
           base: int) -> Tuple[Sequence[array], int, Sequence[int]]:
    """Distinct rows of a column batch, via fused int keys.

    Keeps the first occurrence of every row (stable); returns the input
    unchanged when already distinct.  The first-occurrence map is one
    reversed dict comprehension (later writes win, so reversed order
    keeps the *first* occurrence) — a C-level pass that doubles as the
    distinctness test.  Also returns the surviving rows' fused keys so
    the caller can pre-seed the output batch's key cache (set operators
    downstream then skip re-fusing the very columns this just hashed).
    """
    keys = fuse(columns, range(len(columns)), n, base)
    last = n - 1
    first = {k: last - i for i, k in enumerate(reversed(keys))}
    if len(first) == n:
        return columns, n, keys
    sel = sorted(first.values())
    return ([gather(col, sel) for col in columns], len(sel),
            pick(keys, sel))


def _distinct_batch(cols, columns: Sequence[array], n: int,
                    base: int) -> ColumnarRelation:
    """A deduplicated batch whose full-width fused keys are pre-cached."""
    deduped, m, keys = _dedup(columns, n, base)
    batch = ColumnarRelation(cols, tuple(deduped), m)
    batch._fused[(tuple(range(len(deduped))), base)] = keys
    return batch


def _filter_common_child(union: Union) -> Optional[Plan]:
    """The shared input plan if every union part row-filters it.

    Accepts Select / SemiJoin / AntiJoin / Difference parts whose
    (left) input is the *same node object* (the compiler emits shared
    DAGs, and the executor memoizes by identity) and whose columns pass
    through unchanged; returns ``None`` for any other shape.
    """
    common: Optional[Plan] = None
    for part in union.parts:
        tp = type(part)
        if tp is Select:
            child = part.child
        elif tp in (SemiJoin, AntiJoin, Difference):
            child = part.left
        else:
            return None
        if part.cols != child.cols:
            return None
        if common is None:
            common = child
        elif child is not common:
            return None
    return common


def _member_sel(keys: Sequence[int], members: Set[int],
                keep: bool) -> List[int]:
    """Row indices whose key is (not) in ``members``.

    ``compress(count(), mask)`` with a C-level membership mask — the
    semi/anti-join and difference inner loop, kept out of the Python
    interpreter.
    """
    mask = map(members.__contains__, keys)
    if not keep:
        mask = map(op_not, mask)
    return list(compress(count(), mask))


class VectorExecutor:
    """Batch-at-a-time plan execution against one database.

    The drop-in vectorized sibling of :class:`repro.fo.plan.Executor`:
    same memoization discipline (per-node by identity, structurally for
    scans), same ``profile`` protocol — plus the columnar-only
    ``batches`` and ``decode_fallbacks`` counters.  Results are
    :class:`ColumnarRelation` batches holding dictionary codes; decode
    the root with the store's dictionary (or use :func:`columnar_rows`).
    """

    def __init__(self, db: Database, constants: Sequence = (),
                 profile=None, store: Optional[ColumnarStore] = None):
        self.db = db
        self.store = store if store is not None else columnar_store(db)
        self._constants: Tuple = tuple(constants)
        self._memo: Dict[object, ColumnarRelation] = {}
        self._profile = profile
        self._oracle: Optional[Executor] = None

    def run(self, plan: Plan) -> ColumnarRelation:
        if type(plan) is Scan:
            key: object = ("scan", plan.atom.relation,
                           tuple(sorted(plan.consts.items())),
                           plan.eq_checks, plan.proj)
        else:
            key = id(plan)
        cached = self._memo.get(key)
        if cached is None:
            profile = self._profile
            if profile is None:
                cached = self._dispatch(plan)
            else:
                t0 = perf_counter()
                cached = self._dispatch(plan)
                profile.record(plan, perf_counter() - t0, cached.length)
                profile.count(plan, "batches")
            self._memo[key] = cached
        elif self._profile is not None:
            self._profile.count(plan, "memo_hits")
        return cached

    def rows(self, plan: Plan) -> Set[Row]:
        """Execute and decode back to value tuples."""
        return self.run(plan).to_rows(self.store.dictionary)

    def nonempty(self, plan: Plan) -> bool:
        """Short-circuit non-emptiness — delegated to the row executor.

        Boolean plans live or die on the probe-mode short-circuit
        (first witness / first violation); materializing full batches
        to test emptiness would regress exactly the way pre-probe
        plans did.  The row executor *is* the probe implementation, so
        sentences take that path unchanged; the delegation is counted
        in :func:`columnar_stats`.
        """
        _STATS["boolean_probe_delegations"] += 1
        return self._row_oracle().nonempty(plan)

    # ------------------------------------------------------------------

    def _row_oracle(self) -> Executor:
        if self._oracle is None:
            self._oracle = Executor(self.db, None, self._constants,
                                    self._profile)
        return self._oracle

    def _dispatch(self, plan: Plan) -> ColumnarRelation:
        method = self._HANDLERS.get(type(plan))
        if method is None:
            raise TypeError(f"no columnar executor for plan node {plan!r}")
        return method(self, plan)

    def _base(self) -> int:
        """The fused-key radix: every assigned code is below it."""
        return max(1, len(self.store.dictionary))

    def _run_scan(self, plan: Scan) -> ColumnarRelation:
        schema = self.db.schemas.get(plan.atom.relation)
        if schema is None or schema.arity != plan.atom.schema.arity:
            return ColumnarRelation.empty(plan.cols)
        return self._scan_batch(plan, plan.atom.relation, schema.arity,
                                plan.consts, plan.eq_checks, plan.proj,
                                plan.cols)

    def _scan_batch(self, node: Plan, relation: str, arity: int,
                    consts: Dict[int, object],
                    eq_checks: Tuple[Tuple[int, int], ...],
                    proj: Tuple[int, ...],
                    out_cols: Tuple) -> ColumnarRelation:
        """One filtered/projected/deduplicated relation pass, cached.

        Shared by plain scans and by projections folded into them; the
        store entry survives across executions until the relation's
        version moves, and hands the *same batch object* back so fused
        join keys computed in earlier runs stay warm.
        """
        db = self.db
        store = self.store
        profile = self._profile
        key = (relation, tuple(sorted(consts.items())), eq_checks, proj)
        hit = store.scan_cache_get(db, key)
        if hit is not None:
            _STATS["scan_cache_hits"] += 1
            if profile is not None:
                profile.count(node, "index_hits")
            if hit.cols == out_cols:
                return hit
            return ColumnarRelation(out_cols, hit.columns, hit.length,
                                    fused=hit._fused)
        columns, n = store.encoded(db, relation)
        if profile is not None:
            profile.count(node, "rows_scanned", n)
        sel: Optional[List[int]] = None
        encode = store.dictionary.encode
        for pos, value in consts.items():
            code = encode(value)
            col = columns[pos]
            if sel is None:
                sel = [i for i, c in enumerate(col) if c == code]
            else:
                sel = [i for i in sel if col[i] == code]
        for a, b in eq_checks:
            ca, cb = columns[a], columns[b]
            if sel is None:
                sel = [i for i, (va, vb) in enumerate(zip(ca, cb))
                       if va == vb]
            else:
                sel = [i for i in sel if ca[i] == cb[i]]
        if sel is None:
            taken = [columns[p] for p in proj]
            m = n
        else:
            taken = [gather(columns[p], sel) for p in proj]
            m = len(sel)
        # A projection covering every position is a permutation of
        # already-distinct rows; anything narrower must re-deduplicate.
        if len(proj) != arity and m:
            result = _distinct_batch(out_cols, taken, m, self._base())
        else:
            result = ColumnarRelation(out_cols, tuple(taken), m)
        store.scan_cache_put(db, key, result)
        return result

    def _run_literal(self, plan: Literal) -> ColumnarRelation:
        return ColumnarRelation.from_rows(plan.cols, plan.rows,
                                          self.store.dictionary)

    def _run_fallback(self, plan: Plan) -> ColumnarRelation:
        """Adom* nodes: run the row executor, re-encode the result.

        The active domain is a property of the whole database, not of
        any encoded column, so these nodes have no batch form; the
        decode round-trip is counted (``decode_fallbacks``) and warned
        about statically by QP109.
        """
        rows = self._row_oracle().run(plan)
        _STATS["decode_fallbacks"] += 1
        if self._profile is not None:
            self._profile.count(plan, "decode_fallbacks")
        return ColumnarRelation.from_rows(plan.cols, rows,
                                          self.store.dictionary)

    def _run_select(self, plan: Select) -> ColumnarRelation:
        child = self.run(plan.child)
        if child.length == 0:
            return ColumnarRelation.empty(plan.cols)
        encode = self.store.dictionary.encode
        n = child.length
        sel: Optional[List[int]] = None
        for lhs, rhs, equal in plan.conds:
            lkind, lpay = lhs
            rkind, rpay = rhs
            if lkind == "col" and rkind == "col":
                a = child.column(lpay)  # type: ignore[arg-type]
                b = child.column(rpay)  # type: ignore[arg-type]
                if sel is None:
                    mask = map(op_eq if equal else op_ne, a, b)
                    sel = list(compress(count(), mask))
                else:
                    sel = [i for i in sel if (a[i] == b[i]) is equal]
            elif lkind == "col" or rkind == "col":
                col = child.column(lpay) if lkind == "col" \
                    else child.column(rpay)  # type: ignore[arg-type]
                code = encode(rpay if lkind == "col" else lpay)
                if sel is None:
                    test = code.__eq__ if equal else code.__ne__
                    sel = list(compress(count(), map(test, col)))
                elif equal:
                    sel = [i for i in sel if col[i] == code]
                else:
                    sel = [i for i in sel if col[i] != code]
            else:  # constant vs constant: a tautology or a contradiction
                if (lpay == rpay) is not equal:
                    return ColumnarRelation.empty(plan.cols)
        if sel is None or len(sel) == n:
            return child
        return child.select(sel)

    def _filter_mask(self, part: Plan,
                     child: ColumnarRelation) -> List[bool]:
        """The boolean row mask a filter node keeps over ``child``.

        ``part`` must be one of the shapes :func:`_filter_common_child`
        accepted: a Select / SemiJoin / AntiJoin / Difference whose
        (left) input *is* the plan behind ``child``.  Masks compose the
        disjunctive union fold — every map here is a C-level pass.
        """
        tp = type(part)
        n = child.length
        if tp is Select:
            mask: Optional[List[bool]] = None
            encode = self.store.dictionary.encode
            for lhs, rhs, equal in part.conds:
                lkind, lpay = lhs
                rkind, rpay = rhs
                if lkind == "col" and rkind == "col":
                    cond = list(map(op_eq if equal else op_ne,
                                    child.column(lpay),
                                    child.column(rpay)))
                elif lkind == "col" or rkind == "col":
                    col = child.column(lpay) if lkind == "col" \
                        else child.column(rpay)
                    code = encode(rpay if lkind == "col" else lpay)
                    test = code.__eq__ if equal else code.__ne__
                    cond = list(map(test, col))
                else:
                    if (lpay == rpay) is not equal:
                        return [False] * n
                    continue  # tautology constrains nothing
                mask = cond if mask is None else list(map(op_and, mask,
                                                          cond))
            return mask if mask is not None else [True] * n
        if tp is Difference:
            right = self.run(part.right)
            # Base must be read *after* running the right side: that run
            # may encode fresh values, and fusing with a base smaller
            # than the dictionary makes distinct key tuples collide.
            base = self._base()
            positions: Sequence[int] = range(child.width)
            rset = set(right.fused(positions, base))
            return list(map(op_not, map(rset.__contains__,
                                        child.fused(positions, base))))
        # SemiJoin / AntiJoin
        right = self.run(part.right)
        base = self._base()
        rcols = set(part.right.cols)
        shared = [c for c in part.left.cols if c in rcols]
        lpos = [part.left.cols.index(c) for c in shared]
        rpos = [part.right.cols.index(c) for c in shared]
        rset = set(right.fused(rpos, base))
        kept = map(rset.__contains__, child.fused(lpos, base))
        if tp is AntiJoin:
            return list(map(op_not, kept))
        return list(kept)

    def _union_filter_batch(self, plan: Union) -> Optional[ColumnarRelation]:
        """The disjunctive-filter fold of a union, or ``None``.

        When every part of the union is a row filter — Select,
        SemiJoin, AntiJoin or Difference — over the *same shared child
        node*, the union equals the child filtered by the OR of the
        parts' masks: each part keeps a subset of one distinct row set,
        so no concatenation and no re-deduplication is needed.  This is
        the shape every ``forall``-guard rewriting lowers to (several
        guards over one candidate join), where the naive path would
        materialize the join output once per guard.
        """
        common = _filter_common_child(plan)
        if common is None or plan.cols != common.cols:
            return None
        child = self.run(common)
        if child.length == 0:
            return child
        combined: Optional[List[bool]] = None
        for part in plan.parts:
            mask = self._filter_mask(part, child)
            combined = mask if combined is None else list(map(op_or,
                                                              combined,
                                                              mask))
        assert combined is not None
        sel = list(compress(count(), combined))
        if len(sel) == child.length:
            return child
        return child.select(sel)

    def _run_project(self, plan: Project) -> ColumnarRelation:
        inner = plan.child
        if type(inner) is Scan:
            # Fold the projection into the scan: same store cache entry
            # shape, so narrowing projections over unchanged relations
            # (the Project[key](Scan ...) spine of every rewriting) are
            # one dictionary lookup on repeat executions.
            schema = self.db.schemas.get(inner.atom.relation)
            if schema is None or schema.arity != inner.atom.schema.arity:
                return ColumnarRelation.empty(plan.cols)
            proj = tuple(inner.proj[pos] for pos in plan.positions)
            return self._scan_batch(plan, inner.atom.relation, schema.arity,
                                    inner.consts, inner.eq_checks, proj,
                                    plan.cols)
        if type(inner) is Join:
            # A projection that keeps only one side's columns turns the
            # join into a semi-join — pi(L join R) = pi(L semijoin R)
            # when every kept column comes from L — so the (possibly
            # quadratic) match output is never materialized, just a
            # selection vector over the surviving side.
            for side, other in ((inner.left, inner.right),
                                (inner.right, inner.left)):
                if all(v in side.cols for v in plan.cols):
                    child = self._semi_between(side, other, True)
                    positions = tuple(side.cols.index(v) for v in plan.cols)
                    taken = [child.column(p) for p in positions]
                    if len(positions) == len(side.cols) or child.length == 0:
                        return ColumnarRelation(plan.cols, tuple(taken),
                                                child.length)
                    return _distinct_batch(plan.cols, taken, child.length,
                                           self._base())
        if type(inner) is Union:
            folded = self._union_filter_batch(inner)
            if folded is not None:
                taken = [folded.column(p) for p in plan.positions]
                if len(plan.positions) == folded.width \
                        or folded.length == 0:
                    return ColumnarRelation(plan.cols, tuple(taken),
                                            folded.length)
                return _distinct_batch(plan.cols, taken, folded.length,
                                       self._base())
            # Projection distributes over union: concatenate the parts'
            # projected columns and deduplicate once, instead of
            # deduplicating the full-width union first and the narrowed
            # projection again.
            parts = [self.run(part) for part in inner.parts]
            nonempty = [b for b in parts if b.length]
            if not nonempty:
                return ColumnarRelation.empty(plan.cols)
            merged: List[array] = []
            for pos in plan.positions:
                col = array("q")
                for batch in nonempty:
                    col.extend(batch.column(pos))
                merged.append(col)
            total = sum(b.length for b in nonempty)
            return _distinct_batch(plan.cols, merged, total, self._base())
        child = self.run(inner)
        taken = [child.column(p) for p in plan.positions]
        if len(plan.positions) == child.width or child.length == 0:
            # Pure reorder of distinct rows (or nothing to deduplicate).
            return ColumnarRelation(plan.cols, tuple(taken), child.length)
        return _distinct_batch(plan.cols, taken, child.length, self._base())

    def _run_join(self, plan: Join) -> ColumnarRelation:
        left = self.run(plan.left)
        right = self.run(plan.right)
        if left.length == 0 or right.length == 0:
            return ColumnarRelation.empty(plan.cols)
        shared = plan.shared
        lpos = [plan.left.cols.index(c) for c in shared]
        rpos = [plan.right.cols.index(c) for c in shared]
        base = self._base()
        lkeys = left.fused(lpos, base)
        # Build over the right (matching the row executor's build side
        # for plan parity); the index is cached on the batch, so build
        # sides living in the scan cache keep it across executions.
        # With distinct build keys — every key join in the rewritings —
        # the probe is three C-level comprehensions; the dict-of-lists
        # walk only runs for genuinely duplicated build keys.
        table, unique = right.join_index(rpos, base)
        lidx: Optional[List[int]]
        ridx: Sequence[int]
        if unique:
            jidx = list(map(table.get, lkeys, repeat(-1)))
            matched = list(compress(count(), map((-1).__ne__, jidx)))
            if len(matched) == left.length:
                lidx = None  # every left row matched, in order
                ridx = jidx
            else:
                lidx = matched
                ridx = pick(jidx, matched)
        else:
            # Duplicated build keys: flatten the matching row groups.
            # ``chain``/``repeat`` keep the per-match fan-out in C.
            groups = list(map(table.get, lkeys, repeat(())))
            lidx = list(chain.from_iterable(
                map(repeat, count(), map(len, groups))))
            ridx = list(chain.from_iterable(groups))
        # lidx None means the left side survives untouched: reuse its
        # columns instead of gathering an identity selection.
        out_columns = tuple(
            (left.column(pos) if lidx is None else
             gather(left.column(pos), lidx)) if side == 0
            else gather(right.column(pos), ridx)
            for side, pos in plan.emit
        )
        length = left.length if lidx is None else len(lidx)
        # No dedup: the output carries every column of both sides, so a
        # row determines the (left row, right row) pair that emitted it,
        # and distinct inputs give distinct outputs.
        result = ColumnarRelation(plan.cols, out_columns, length)
        # Fused keys over columns all gathered from one side (e.g. a
        # downstream semi-join on the preserved side's key) derive from
        # that side's cached key vector instead of a fresh fuse pass.
        result._origins = tuple(
            (left, lidx, pos) if side == 0 else (right, ridx, pos)
            for side, pos in plan.emit
        )
        return result

    def _semi_filter(self, plan, keep_matching: bool) -> ColumnarRelation:
        return self._semi_between(plan.left, plan.right, keep_matching)

    def _semi_between(self, left_plan: Plan, right_plan: Plan,
                      keep_matching: bool) -> ColumnarRelation:
        left = self.run(left_plan)
        if left.length == 0:
            return left
        right = self.run(right_plan)
        rcols = set(right_plan.cols)
        shared = [c for c in left_plan.cols if c in rcols]
        lpos = [left_plan.cols.index(c) for c in shared]
        rpos = [right_plan.cols.index(c) for c in shared]
        base = self._base()
        rset = set(right.fused(rpos, base))
        lkeys = left.fused(lpos, base)
        sel = _member_sel(lkeys, rset, keep_matching)
        if len(sel) == left.length:
            return left
        return left.select(sel)

    def _run_semi_join(self, plan: SemiJoin) -> ColumnarRelation:
        return self._semi_filter(plan, True)

    def _run_anti_join(self, plan: AntiJoin) -> ColumnarRelation:
        return self._semi_filter(plan, False)

    def _run_difference(self, plan: Difference) -> ColumnarRelation:
        left = self.run(plan.left)
        if left.length == 0:
            return left
        right = self.run(plan.right)
        if right.length == 0:
            return left
        base = self._base()
        positions = range(left.width)
        rset = set(right.fused(positions, base))
        lkeys = left.fused(positions, base)
        sel = _member_sel(lkeys, rset, False)
        if len(sel) == left.length:
            return left
        return left.select(sel)

    def _run_union(self, plan: Union) -> ColumnarRelation:
        folded = self._union_filter_batch(plan)
        if folded is not None:
            return folded
        parts = [self.run(part) for part in plan.parts]
        nonempty = [b for b in parts if b.length]
        if not nonempty:
            return ColumnarRelation.empty(plan.cols)
        if len(nonempty) == 1:
            return nonempty[0]
        width = len(plan.cols)
        merged: List[array] = []
        for j in range(width):
            col = array("q")
            for batch in nonempty:
                col.extend(batch.column(j))
            merged.append(col)
        total = sum(b.length for b in nonempty)
        return _distinct_batch(plan.cols, merged, total, self._base())

    _HANDLERS = {
        Scan: _run_scan,
        Literal: _run_literal,
        AdomProduct: _run_fallback,
        AdomGuard: _run_fallback,
        AdomEq: _run_fallback,
        Select: _run_select,
        Project: _run_project,
        Join: _run_join,
        SemiJoin: _run_semi_join,
        AntiJoin: _run_anti_join,
        Union: _run_union,
        Difference: _run_difference,
    }


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------


def columnar_rows(compiled, db: Database,
                  profile=None) -> FrozenSet[Row]:
    """All answer rows of a compiled open query, batch-executed.

    The columnar counterpart of ``CompiledQuery.rows``: one
    :class:`VectorExecutor` pass over the plan, decoded once at the
    root.  Byte-identical to the tuple executor's answer set (the
    parity suites and the benchmark digests assert it).
    """
    _STATS["runs"] += 1
    store = columnar_store(db)
    executor = VectorExecutor(db, compiled.constants, profile=profile,
                              store=store)
    batch = executor.run(compiled.plan)
    return frozenset(batch.to_rows(store.dictionary))


def columnar_holds(compiled, db: Database, profile=None) -> bool:
    """Boolean certainty under the columnar method.

    Sentences keep the row executor's probe-mode short-circuit (see
    :meth:`VectorExecutor.nonempty` for why); the delegation is counted
    in :func:`columnar_stats`.
    """
    _STATS["runs"] += 1
    _STATS["boolean_probe_delegations"] += 1
    return compiled.holds(db, profile=profile)


def prime_plan_values(store: ColumnarStore, plan: Plan,
                      constants: Sequence = ()) -> None:
    """Encode every value a plan can mention into the dictionary.

    Scan constants, literal rows, select constants and the compiled
    constants tuple — the values that batch execution would otherwise
    encode lazily.  The parallel path calls this (plus
    :meth:`ColumnarStore.prime`) *before* forking workers, so workers
    never assign codes of their own and the append-only agreement
    argument of :mod:`repro.columnar.dictionary` applies.
    """
    from ..fo.plan import plan_nodes

    encode = store.dictionary.encode
    for value in constants:
        encode(value)
    for node in plan_nodes(plan):
        if type(node) is Scan:
            for value in node.consts.values():
                encode(value)
        elif type(node) is Literal:
            for row in node.rows:
                for value in row:
                    encode(value)
        elif type(node) is Select:
            for lhs, rhs, _ in node.conds:
                if lhs[0] == "const":
                    encode(lhs[1])
                if rhs[0] == "const":
                    encode(rhs[1])


# ----------------------------------------------------------------------
# cost-model routing
# ----------------------------------------------------------------------

_ROUTE_CACHE_LIMIT = 64
_route_cache: Dict[Tuple, bool] = {}


def prefer_columnar(compiled, db: Database, config=None) -> bool:
    """Should ``method="auto"`` take the columnar backend for this run?

    Three gates, cheapest first: the query must be open (sentences are
    probe-delegated anyway), the database must carry at least
    ``REPRO_COLUMNAR_MIN_FACTS`` facts, and the PR 6 cost model's
    estimate for the plan must reach ``REPRO_COLUMNAR_COST`` — below
    that, tuple execution finishes before column encoding pays off.
    Plans touching Adom* stay on the tuple executor (their batch form
    is a decode fallback; QP109 reports this statically).  Decisions
    are cached per (database, clock, plan).  ``config`` (a
    :class:`repro.obs.RunConfig`) overrides the env-derived size
    threshold — how :class:`repro.obs.ExecutionOptions` reaches this
    gate.
    """
    if not compiled.free:
        return False
    threshold = (config.resolved_columnar_min_facts()
                 if config is not None else _min_facts())
    if db.size() < threshold:
        return False
    key = (id(db), db.clock, id(compiled.plan))
    hit = _route_cache.get(key)
    if hit is None:
        from ..analysis.cost import CostModel, table_stats
        from ..analysis.verifier import plan_uses_adom

        if plan_uses_adom(compiled.plan):
            hit = False
        else:
            report = CostModel(table_stats(db)).estimate(compiled.plan)
            hit = report.total_cost >= _cost_threshold()
        if len(_route_cache) >= _ROUTE_CACHE_LIMIT:
            _route_cache.clear()
        _route_cache[key] = hit
    if hit:
        _STATS["auto_routed"] += 1
    return hit
