"""Global per-database value dictionaries and the columnar store.

Dictionary encoding is what lets the vectorized executor work on
``array('q')`` int columns instead of tuples of Python objects: every
domain value that ever appears in a fact (or a query constant) gets a
small non-negative integer code, and all batch operators — hash joins,
selections, deduplication — compare and hash those codes.

Two different lifetimes coexist here, and keeping them apart is the
whole invalidation story (the bug class this module exists to close):

* The :class:`ValueDictionary` is **append-only and never invalidated**.
  A code, once assigned, means the same value forever — deleting the
  value from the database merely leaves its code unused.  Append-only
  is what makes codes safe to ship across process boundaries: a forked
  worker that inherited the dictionary at length ``L`` agrees with the
  parent on every code below ``L`` no matter how much either side has
  appended since (see :mod:`repro.parallel.pool`).
* The **encoded relation columns and scan results are version-tagged
  caches**.  Each entry records the :meth:`Database.relation_version`
  (for per-relation data) or the changelog :attr:`Database.clock` (for
  whole-database data) it was built against, exactly like the
  database's own lazy hash indexes; any mutation — including
  ``discard_all`` and incremental update streams, which bump the clock
  without growing the domain — retires the stale columns on the next
  access.  ``tests/test_columnar.py`` pins this with an update-stream
  regression test.

The store itself is attached lazily to the :class:`Database` instance
(``db._columnar_store``); ``Database.copy()`` builds a fresh object, so
copies never alias a stale store.
"""

from __future__ import annotations

import threading
from array import array
from typing import Dict, Iterable, List, Optional, Tuple

from ..db.database import Database

__all__ = ["ValueDictionary", "ColumnarStore", "columnar_store"]

_STORE_ATTR = "_columnar_store"

#: Encoded relation columns: one ``array('q')`` per position.
Columns = Tuple[array, ...]


class ValueDictionary:
    """An append-only bijection between domain values and int codes.

    Codes are assigned densely from zero in first-seen order; the
    reverse direction is a plain list lookup.  Values must be hashable
    (they are database fact components, which already live in sets).
    """

    __slots__ = ("_codes", "_values", "_lock")

    def __init__(self) -> None:
        self._codes: Dict[object, int] = {}
        self._values: List[object] = []
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._values)

    def encode(self, value: object) -> int:
        """The code of ``value``, assigning a fresh one on first sight."""
        code = self._codes.get(value)
        if code is None:
            # Double-checked under the lock: concurrent server threads
            # (repro serve runs reads in a pool) must never hand the
            # same fresh code to two different values.  The hit path
            # above stays lock-free — dict reads are GIL-atomic and
            # the mapping is append-only.
            with self._lock:
                code = self._codes.get(value)
                if code is None:
                    code = len(self._values)
                    self._codes[value] = code
                    self._values.append(value)
        return code

    def encode_many(self, values: Iterable[object]) -> None:
        """Assign codes to every value (bulk priming before a fork)."""
        for value in values:
            self.encode(value)

    def code_of(self, value: object) -> Optional[int]:
        """The existing code of ``value``, or ``None`` if never seen."""
        return self._codes.get(value)

    def decode(self, code: int) -> object:
        """The value behind one code (raises ``IndexError`` if unknown)."""
        return self._values[code]

    @property
    def values(self) -> List[object]:
        """The code -> value table (treat as read-only; index = code)."""
        return self._values


class ColumnarStore:
    """Per-database cache of dictionary-encoded relation columns.

    Holds the database's global :class:`ValueDictionary` plus two
    version-tagged caches:

    * ``encoded``: relation name -> full relation as per-position int
      columns, tagged with the relation version it was built from;
    * ``scan``: one entry per distinct scan shape (constants, repeated
      -variable checks, projection), tagged the same way, so repeated
      executions of a plan skip the filter/dedup work entirely.

    The store never holds a reference to its database — every method
    takes the ``db`` it serves, which keeps ``Database.copy()`` and
    garbage collection trivial.
    """

    __slots__ = ("dictionary", "_encoded", "_scans")

    def __init__(self, dictionary: Optional[ValueDictionary] = None) -> None:
        self.dictionary = dictionary if dictionary is not None else ValueDictionary()
        # relation -> (relation version, columns, n_rows)
        self._encoded: Dict[str, Tuple[int, Columns, int]] = {}
        # scan key -> (relation version, batch); caching the batch object
        # (not bare columns) keeps its fused-key cache warm across runs
        self._scans: Dict[Tuple, Tuple[int, object]] = {}

    def encoded(self, db: Database, relation: str) -> Tuple[Columns, int]:
        """The whole relation as int columns (version-cached).

        Any mutation of the relation bumps its version and retires the
        cached columns on the next call; the dictionary itself is
        append-only and survives.
        """
        version = db.relation_version(relation)
        cached = self._encoded.get(relation)
        if cached is not None and cached[0] == version:
            return cached[1], cached[2]
        schema = db.schemas.get(relation)
        arity = schema.arity if schema is not None else 0
        rows = list(db.facts(relation))
        encode = self.dictionary.encode
        columns: Columns = tuple(
            array("q", [encode(row[j]) for row in rows])
            for j in range(arity)
        )
        self._encoded[relation] = (version, columns, len(rows))
        # Scan results derive from these columns; drop their stale entries.
        stale = [k for k, v in self._scans.items()
                 if k[0] == relation and v[0] != version]
        for key in stale:
            del self._scans[key]
        return columns, len(rows)

    def scan_cache_get(self, db: Database, key: Tuple):
        """A cached scan batch, or ``None`` when absent/stale.

        ``key[0]`` must be the relation name; entries are valid only at
        the relation version they were computed against.
        """
        cached = self._scans.get(key)
        if cached is None or cached[0] != db.relation_version(key[0]):
            return None
        return cached[1]

    def scan_cache_put(self, db: Database, key: Tuple, batch) -> None:
        self._scans[key] = (db.relation_version(key[0]), batch)

    def prime(self, db: Database) -> int:
        """Encode every relation of ``db`` into the dictionary.

        Returns the dictionary length afterwards — the code horizon a
        forked worker can safely report back to this process (see the
        append-only argument in the module docstring).
        """
        for relation in db.relations():
            self.encoded(db, relation)
        return len(self.dictionary)


def columnar_store(db: Database,
                   dictionary: Optional[ValueDictionary] = None) -> ColumnarStore:
    """The database's columnar store, created on first use.

    ``dictionary`` lets callers share one global dictionary across
    several databases (the parallel path attaches the parent's
    dictionary to every shard before forking); it only applies when the
    store is created here — an existing store keeps its dictionary.
    """
    store = getattr(db, _STORE_ATTR, None)
    if store is None:
        store = ColumnarStore(dictionary)
        setattr(db, _STORE_ATTR, store)
    return store
