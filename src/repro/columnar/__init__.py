"""Columnar vectorized execution backend for the plan IR.

Dictionary-encoded ``array('q')`` columns (:mod:`repro.columnar.dictionary`,
:mod:`repro.columnar.relation`) and a batch-at-a-time
:class:`~repro.columnar.executor.VectorExecutor` over the same plan
trees the tuple :class:`~repro.fo.plan.Executor` runs — reachable as
``method="columnar"`` and, above the cost-model threshold, from
``method="auto"``.  The tuple executor remains the oracle: the parity
suites cross-validate every columnar path against it.
"""

from .dictionary import ColumnarStore, ValueDictionary, columnar_store
from .executor import (
    VectorExecutor,
    columnar_holds,
    columnar_rows,
    columnar_stats,
    prefer_columnar,
    prime_plan_values,
    reset_columnar_stats,
)
from .relation import ColumnarRelation, fuse, gather

__all__ = [
    "ColumnarRelation",
    "ColumnarStore",
    "ValueDictionary",
    "VectorExecutor",
    "columnar_holds",
    "columnar_rows",
    "columnar_stats",
    "columnar_store",
    "fuse",
    "gather",
    "prefer_columnar",
    "prime_plan_values",
    "reset_columnar_stats",
]
