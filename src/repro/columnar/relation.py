"""The columnar batch representation: distinct rows as int columns.

A :class:`ColumnarRelation` is the vectorized counterpart of the tuple
executor's ``Set[Row]``: the same relation of variable assignments,
stored as one ``array('q')`` of dictionary codes per column.  The
executor maintains a **distinct-rows invariant** — every batch it
produces holds each row at most once — so set semantics are preserved
without the per-row hashing that dominates the tuple path.

Columns are exposed through :meth:`memoryviews` for zero-copy access;
:func:`fuse` packs several key columns into one int per row (codes are
dense and non-negative, so ``k0 * base + k1`` with ``base`` at least
the dictionary length is injective), which is what lets batch hash
joins and deduplication build int-keyed hash tables instead of tuple
keys.
"""

from __future__ import annotations

from array import array
from itertools import islice
from operator import add, itemgetter
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from ..core.terms import Variable
from .dictionary import ValueDictionary

__all__ = ["ColumnarRelation", "fuse", "gather", "pick"]

Row = Tuple
Cols = Tuple[Variable, ...]


def gather(column: Sequence[int], selection: Sequence[int]) -> array:
    """The selected elements of one column, as a fresh int column.

    ``itemgetter(*selection)`` resolves the whole selection in one C
    call — measurably faster than mapping ``__getitem__`` — at the
    price of one transient tuple.
    """
    if len(selection) > 1:
        return array("q", itemgetter(*selection)(column))
    return array("q", map(column.__getitem__, selection))


def pick(values: Sequence, selection: Sequence[int]) -> List:
    """The selected elements as a plain list.

    The list-valued sibling of :func:`gather` for fused key vectors,
    whose entries can exceed 64 bits on wide batches and so must never
    pass through an ``array('q')``.
    """
    if len(selection) > 1:
        return list(itemgetter(*selection)(values))
    return [values[i] for i in selection]


def fuse(columns: Sequence[Sequence[int]], positions: Sequence[int],
         n: int, base: int) -> Sequence[int]:
    """One int key per row over the given column positions.

    Injective whenever every code is in ``[0, base)`` — callers pass
    the current dictionary length, which bounds every assigned code.
    With no positions every row keys to 0 (the nullary key); with one
    position the column itself is the key sequence (no copy).
    """
    if not positions:
        return [0] * n
    if len(positions) == 1:
        return columns[positions[0]]
    keys: Sequence[int] = columns[positions[0]]
    for p in positions[1:]:
        # k * base + c, elementwise, without a Python-level loop body.
        keys = list(map(add, map(base.__mul__, keys), columns[p]))
    return keys


class ColumnarRelation:
    """Distinct rows over ``cols``, one int column per variable.

    A batch is either **materialized** (it owns one ``array('q')`` per
    column) or a **deferred selection** over another batch: it records
    the source and a selection vector, and gathers a column only when
    some operator actually reads it.  Filters (select, semi/anti-join,
    difference) produce deferred batches, so a three-column filter
    result whose parent only projects two columns never pays the third
    gather — and its fused join keys come straight from the source's
    cached key vector with a single gather instead of a fresh
    multi-column fuse.  Chained selections compose their vectors, so
    laziness never gathers more than the eager executor did.
    """

    __slots__ = ("cols", "length", "_columns", "_fused", "_source", "_sel",
                 "_origins")

    def __init__(self, cols: Cols,
                 columns: Optional[Iterable[array]], length: int,
                 fused: Optional[dict] = None,
                 source: Optional["ColumnarRelation"] = None,
                 sel: Optional[Sequence[int]] = None):
        self.cols = cols
        self._columns: Optional[Tuple[array, ...]] = (
            None if columns is None else tuple(columns))
        self.length = length
        # Shared with re-labelled views of the same columns (the scan
        # cache hands out one data batch under several column tuples).
        self._fused: dict = {} if fused is None else fused
        self._source = source
        self._sel = sel
        # Per-column provenance ``(source batch, row index vector or
        # None for identity, source position)`` — the join operator
        # records where each output column was gathered from, so fused
        # keys over columns that all came from one side derive from
        # that side's cached key vector (see :meth:`fused`).
        self._origins: Optional[Tuple] = None

    @property
    def columns(self) -> Tuple[array, ...]:
        """Every column, materializing a deferred selection on demand."""
        columns = self._columns
        if columns is None:
            columns = tuple(self.column(j) for j in range(len(self.cols)))
            self._columns = columns
            self._source = self._sel = None
        return columns

    def column(self, j: int) -> array:
        """One column — the lazy accessor operators should prefer.

        On a deferred batch this gathers (and caches) just column
        ``j``; the other columns stay unmaterialized.
        """
        columns = self._columns
        if columns is not None:
            return columns[j]
        key = ("col", j)
        col = self._fused.get(key)
        if col is None:
            assert self._source is not None and self._sel is not None
            col = gather(self._source.column(j), self._sel)
            self._fused[key] = col
        return col

    def fused(self, positions: Sequence[int], base: int) -> Sequence[int]:
        """Fused int keys over ``positions``, cached per batch.

        Memoized batches are probed by several parent operators (both
        join sides, semi/anti filters, difference); the key vector for
        a given ``(positions, base)`` is computed once.  The cache is
        keyed on ``base`` too because the dictionary may grow between
        executions (new codes never invalidate old keys, but fused
        values must come from one radix to be comparable).  Deferred
        batches pick their keys out of the source's cached vector —
        fused keys can exceed 64 bits for wide batches, so that gather
        stays a plain list, never an ``array('q')``.
        """
        pos = tuple(positions)
        key = (pos, base)
        keys = self._fused.get(key)
        if keys is None:
            origins = self._origins
            if origins is not None and len(pos) > 1:
                infos = [origins[p] for p in pos]
                src, idx = infos[0][0], infos[0][1]
                if all(o[0] is src and o[1] is idx for o in infos[1:]):
                    source_keys = src.fused(
                        tuple(o[2] for o in infos), base)
                    keys = (source_keys if idx is None
                            else pick(source_keys, idx))
            if keys is None:
                if self._columns is not None:
                    keys = fuse(self._columns, pos, self.length, base)
                elif len(pos) == 1:
                    keys = self.column(pos[0])
                else:
                    assert (self._source is not None
                            and self._sel is not None)
                    keys = pick(self._source.fused(pos, base), self._sel)
            self._fused[key] = keys
        return keys

    def join_index(self, positions: Sequence[int],
                   base: int) -> Tuple[dict, bool]:
        """A hash index over the fused keys, cached per batch.

        Returns ``(table, unique)``: with ``unique`` the keys are
        distinct and ``table`` maps key -> row index; otherwise it maps
        key -> list of row indices.  Cached alongside the fused keys,
        so a build side that lives in the scan cache keeps its index
        across executions.
        """
        key = ("idx", tuple(positions), base)
        index = self._fused.get(key)
        if index is None:
            keys = self.fused(positions, base)
            table: dict = dict(zip(keys, range(self.length)))
            if len(table) == self.length:
                index = (table, True)
            else:
                multi: dict = {}
                setdefault = multi.setdefault
                for j, k in enumerate(keys):
                    setdefault(k, []).append(j)
                index = (multi, False)
            self._fused[key] = index
        return index

    @classmethod
    def empty(cls, cols: Cols) -> "ColumnarRelation":
        return cls(cols, tuple(array("q") for _ in cols), 0)

    @classmethod
    def from_rows(cls, cols: Cols, rows: Iterable[Row],
                  dictionary: ValueDictionary) -> "ColumnarRelation":
        """Encode a set of (already distinct) value rows."""
        rows = list(rows)
        encode = dictionary.encode
        columns = tuple(
            array("q", [encode(row[j]) for row in rows])
            for j in range(len(cols))
        )
        return cls(cols, columns, len(rows))

    @classmethod
    def from_code_rows(cls, cols: Cols,
                       rows: Iterable[Sequence[int]],
                       batch_size: int = 4096) -> "ColumnarRelation":
        """Ingest (already distinct) rows of dictionary *codes* in bulk.

        The zero-shuttle half of the SQL pushdown: a sqlite cursor over
        an integer-encoded mirror yields code tuples, which land
        directly in ``array('q')`` columns — answers never materialize
        as Python value tuples on the way out of the database.
        """
        columns = tuple(array("q") for _ in cols)
        length = 0
        it = iter(rows)
        while True:
            batch = list(islice(it, batch_size))
            if not batch:
                break
            length += len(batch)
            for col, codes in zip(columns, zip(*batch)):
                col.extend(codes)
        return cls(cols, columns, length)

    @property
    def width(self) -> int:
        return len(self.cols)

    def memoryviews(self) -> Tuple[memoryview, ...]:
        """Zero-copy views of the columns (the IPC/export surface)."""
        return tuple(memoryview(col) for col in self.columns)

    def to_rows(self, dictionary: ValueDictionary) -> Set[Row]:
        """Decode back to the tuple executor's representation."""
        if self.length == 0:
            return set()
        if not self.cols:
            return {()}
        values = dictionary.values
        if self.length > 1:
            decoded = [itemgetter(*col)(values) for col in self.columns]
        else:
            decoded = [[values[col[0]]] for col in self.columns]
        return set(zip(*decoded))

    def select(self, selection: Sequence[int]) -> "ColumnarRelation":
        """The batch restricted to the rows of one selection vector.

        Deferred: no column is gathered until something reads it.
        Selecting from an already-deferred batch composes the two
        selection vectors instead of stacking lazy layers.
        """
        if self._columns is None:
            source, sel = self._source, self._sel
            assert source is not None and sel is not None
            composed = pick(sel, selection)
            return ColumnarRelation(self.cols, None, len(composed),
                                    source=source, sel=composed)
        return ColumnarRelation(self.cols, None, len(selection),
                                source=self, sel=selection)

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:
        names = ", ".join(v.name for v in self.cols)
        return f"ColumnarRelation[{names}] ({self.length} rows)"
