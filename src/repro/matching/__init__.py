"""Matching substrate: Hopcroft–Karp, Hall's theorem, S-COVERING,
and the polynomial CERTAINTY(q1) solver of Example 1.1."""

from .bpm_certainty import certainty_graph, falsifying_repair_q1, is_certain_q1
from .hall import (
    SCoveringInstance,
    hall_violator,
    satisfies_hall_condition,
)
from .hopcroft_karp import (
    BipartiteGraph,
    has_perfect_matching,
    is_matching,
    maximum_matching,
    saturates_left,
)

__all__ = [
    "BipartiteGraph",
    "SCoveringInstance",
    "certainty_graph",
    "falsifying_repair_q1",
    "hall_violator",
    "has_perfect_matching",
    "is_certain_q1",
    "is_matching",
    "maximum_matching",
    "satisfies_hall_condition",
    "saturates_left",
]
