"""Maximum bipartite matching (Hopcroft–Karp), implemented from scratch.

The paper reduces BIPARTITE PERFECT MATCHING to the complement of
CERTAINTY(q1) (Lemma 5.2); this module is the polynomial-time substrate
used both to *solve* those instances and to validate the reduction.

Runs in O(E * sqrt(V)).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, Mapping, Optional, Set, Tuple

Vertex = Hashable


class BipartiteGraph:
    """A bipartite graph with explicit left and right vertex sets."""

    def __init__(
        self,
        left: Iterable[Vertex] = (),
        right: Iterable[Vertex] = (),
        edges: Iterable[Tuple[Vertex, Vertex]] = (),
    ):
        self.left: Set[Vertex] = set(left)
        self.right: Set[Vertex] = set(right)
        self.adj: Dict[Vertex, Set[Vertex]] = {}
        for u, v in edges:
            self.add_edge(u, v)

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Add edge {u, v} with u on the left and v on the right."""
        self.left.add(u)
        self.right.add(v)
        self.adj.setdefault(u, set()).add(v)

    def neighbours(self, u: Vertex) -> Set[Vertex]:
        """Right neighbours of a left vertex."""
        return self.adj.get(u, set())

    @property
    def edge_count(self) -> int:
        return sum(len(vs) for vs in self.adj.values())

    def __repr__(self) -> str:
        return (
            f"BipartiteGraph(|L|={len(self.left)}, |R|={len(self.right)}, "
            f"|E|={self.edge_count})"
        )


def maximum_matching(graph: BipartiteGraph) -> Dict[Vertex, Vertex]:
    """A maximum matching as a left-vertex -> right-vertex map."""
    INF = float("inf")
    match_left: Dict[Vertex, Optional[Vertex]] = {u: None for u in graph.left}
    match_right: Dict[Vertex, Optional[Vertex]] = {v: None for v in graph.right}
    dist: Dict[Vertex, float] = {}
    lefts = sorted(graph.left, key=repr)

    def bfs() -> bool:
        queue = deque()
        for u in lefts:
            if match_left[u] is None:
                dist[u] = 0
                queue.append(u)
            else:
                dist[u] = INF
        found_free = False
        while queue:
            u = queue.popleft()
            for v in graph.neighbours(u):
                w = match_right[v]
                if w is None:
                    found_free = True
                elif dist[w] == INF:
                    dist[w] = dist[u] + 1
                    queue.append(w)
        return found_free

    def dfs(u: Vertex) -> bool:
        for v in graph.neighbours(u):
            w = match_right[v]
            if w is None or (dist.get(w) == dist[u] + 1 and dfs(w)):
                match_left[u] = v
                match_right[v] = u
                return True
        dist[u] = INF
        return False

    while bfs():
        for u in lefts:
            if match_left[u] is None:
                dfs(u)
    return {u: v for u, v in match_left.items() if v is not None}


def has_perfect_matching(graph: BipartiteGraph) -> bool:
    """Perfect: saturates both sides (requires |L| = |R|)."""
    if len(graph.left) != len(graph.right):
        return False
    return len(maximum_matching(graph)) == len(graph.left)


def saturates_left(graph: BipartiteGraph) -> bool:
    """Does some matching saturate every left vertex?"""
    return len(maximum_matching(graph)) == len(graph.left)


def is_matching(graph: BipartiteGraph, matching: Mapping[Vertex, Vertex]) -> bool:
    """Validate a candidate matching against the graph."""
    used_right: Set[Vertex] = set()
    for u, v in matching.items():
        if v not in graph.neighbours(u):
            return False
        if v in used_right:
            return False
        used_right.add(v)
    return True
