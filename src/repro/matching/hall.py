"""Hall's Marriage Theorem and the S-COVERING problem (Example 1.2).

S-COVERING: given a set S and a list T_1, ..., T_l of subsets of S, can
we pick at most one element from each T_i such that every element of S
is picked exactly once?  Equivalently: is there an injective function
f : S -> {1..l} with a ∈ T_{f(a)} for every a ∈ S?

This is left-saturating bipartite matching with S on the left, and
Hall's theorem [14] characterizes solvability: every subset A ⊆ S must
have |N(A)| ≥ |A| where N(A) = {i : A ∩ T_i ≠ ∅}.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Hashable, Optional, Sequence, Set, Tuple

from .hopcroft_karp import BipartiteGraph, maximum_matching


def hall_violator(graph: BipartiteGraph) -> Optional[FrozenSet]:
    """A subset A of left vertices with |N(A)| < |A|, or None.

    When the maximum matching leaves a left vertex u unmatched, the set
    of left vertices reachable from u by alternating paths is a Hall
    violator (standard König-style argument); otherwise Hall's condition
    holds and None is returned.
    """
    matching = maximum_matching(graph)
    unmatched = [u for u in graph.left if u not in matching]
    if not unmatched:
        return None
    match_right: Dict[Hashable, Hashable] = {v: u for u, v in matching.items()}
    start = unmatched[0]
    reachable_left: Set[Hashable] = {start}
    reachable_right: Set[Hashable] = set()
    queue = deque([start])
    while queue:
        u = queue.popleft()
        for v in graph.neighbours(u):
            if v in reachable_right:
                continue
            reachable_right.add(v)
            w = match_right.get(v)
            if w is not None and w not in reachable_left:
                reachable_left.add(w)
                queue.append(w)
    violator = frozenset(reachable_left)
    assert len(reachable_right) < len(violator), "internal: not a violator"
    return violator


def satisfies_hall_condition(graph: BipartiteGraph) -> bool:
    """Does every left subset A satisfy |N(A)| >= |A|?"""
    return hall_violator(graph) is None


class SCoveringInstance:
    """An S-COVERING instance: a ground set and a list of subsets."""

    def __init__(self, elements: Sequence, subsets: Sequence[Sequence]):
        self.elements: Tuple = tuple(elements)
        self.subsets: Tuple[FrozenSet, ...] = tuple(frozenset(t) for t in subsets)
        extra = set().union(*self.subsets) - set(self.elements) if self.subsets else set()
        if extra:
            raise ValueError(f"subsets mention elements outside S: {sorted(map(repr, extra))}")

    def to_bipartite(self) -> BipartiteGraph:
        """Elements on the left, subset indices (1-based) on the right."""
        g = BipartiteGraph(left=self.elements,
                           right=range(1, len(self.subsets) + 1))
        for i, t in enumerate(self.subsets, start=1):
            for a in t:
                g.add_edge(a, i)
        return g

    def solve(self) -> Optional[Dict[Hashable, int]]:
        """An injective assignment f : S -> subset indices, or None."""
        matching = maximum_matching(self.to_bipartite())
        if len(matching) < len(self.elements):
            return None
        return dict(matching)

    @property
    def solvable(self) -> bool:
        """Is the covering possible (Hall's condition)?"""
        return self.solve() is not None

    def solve_brute_force(self) -> Optional[Dict[Hashable, int]]:
        """Exponential reference solver (backtracking), for validation."""
        elements = list(self.elements)
        used: Set[int] = set()
        assignment: Dict[Hashable, int] = {}

        def backtrack(i: int) -> bool:
            if i == len(elements):
                return True
            a = elements[i]
            for j, t in enumerate(self.subsets, start=1):
                if j not in used and a in t:
                    used.add(j)
                    assignment[a] = j
                    if backtrack(i + 1):
                        return True
                    used.discard(j)
                    del assignment[a]
            return False

        return dict(assignment) if backtrack(0) else None
