"""A polynomial-time solver for CERTAINTY(q1) via bipartite matching.

q1 = {R(x̲, y), ¬S(y̲, x)} (Example 1.1).  A repair falsifies q1 exactly
when it satisfies ∀x∀y (R(x̲, y) → S(y̲, x)): every girl's chosen boy
must have chosen her back.  Such a repair exists iff the bipartite graph

    E = { (g, b) : R(g, b) ∈ db and S(b, g) ∈ db }

has a matching saturating every R-key (each boy's S-block picks one girl,
so a boy can serve at most one girl).  Hence

    CERTAINTY(q1)(db)  ⟺  E has no matching saturating the R-keys.

CERTAINTY(q1) is NL-hard (Lemma 5.2) and therefore not in FO, but it is
comfortably in P — this solver is the polynomial baseline that the E1
benchmark races against brute-force repair enumeration.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..core.query import Query
from ..db.database import Database
from .hopcroft_karp import BipartiteGraph, maximum_matching


def _check_shape(query: Query) -> Tuple[str, str]:
    """Accept any renaming of q1: one positive simple-key binary atom
    R(x̲, y) and one negated simple-key binary atom S(y̲, x) with swapped
    variables.  Returns the (R, S) relation names."""
    if len(query.positives) != 1 or len(query.negatives) != 1 or query.diseqs:
        raise ValueError("not a q1-shaped query")
    r, s = query.positives[0], query.negatives[0]
    ok = (
        r.schema.arity == 2 and r.schema.key_size == 1
        and s.schema.arity == 2 and s.schema.key_size == 1
        and r.terms == (s.terms[1], s.terms[0])
        and r.terms[0] != r.terms[1]
        and all(hasattr(t, "name") for t in r.terms)
    )
    if not ok:
        raise ValueError("not a q1-shaped query")
    return r.relation, s.relation


def certainty_graph(db: Database, r_name: str = "R", s_name: str = "S") -> BipartiteGraph:
    """The graph E above: R-keys on the left, S-keys on the right."""
    graph = BipartiteGraph()
    for g, in {row[:1] for row in db.facts(r_name)}:
        graph.left.add(g)
    s_facts = db.facts(s_name)
    for g, b in db.facts(r_name):
        if (b, g) in s_facts:
            graph.add_edge(g, b)
    return graph


def is_certain_q1(db: Database, query: Optional[Query] = None) -> bool:
    """CERTAINTY(q1) in polynomial time via Hopcroft–Karp."""
    if query is not None:
        r_name, s_name = _check_shape(query)
    else:
        r_name, s_name = "R", "S"
    graph = certainty_graph(db, r_name, s_name)
    matching = maximum_matching(graph)
    return len(matching) < len(graph.left)


def falsifying_repair_q1(
    db: Database, query: Optional[Query] = None
) -> Optional[Database]:
    """A repair falsifying q1 built from a saturating matching, or None.

    The repair picks R(g, m(g)) for every girl g and S(b, m⁻¹(b)) for
    matched boys; unmatched S-blocks pick an arbitrary fact (they cannot
    re-satisfy q1).
    """
    if query is not None:
        r_name, s_name = _check_shape(query)
    else:
        r_name, s_name = "R", "S"
    graph = certainty_graph(db, r_name, s_name)
    matching = maximum_matching(graph)
    if len(matching) < len(graph.left):
        return None
    matched_girl: Dict = {b: g for g, b in matching.items()}
    repair = Database(db.schemas.values())
    for g, b in matching.items():
        repair.add(r_name, (g, b))
        repair.add(s_name, (b, g))
    for key, rows in db.blocks(s_name).items():
        if key[0] not in matched_girl:
            repair.add(s_name, sorted(rows, key=repr)[0])
    for name in db.relations():
        if name in (r_name, s_name):
            continue
        for key, rows in db.blocks(name).items():
            repair.add(name, sorted(rows, key=repr)[0])
    return repair
