"""Proposition 7.2: attacked variables are not reifiable.

Given q ∈ sjfBCQ¬ and an atom F with F ⇝ x, the proposition constructs
a two-repair database **db** such that every repair satisfies q, yet no
single constant c makes q_[x↦c] certain.  The construction uses the
valuation

    Θ_c(w) = c if F|v_F ⇝ w, else ⊥,

with db = Θ_a(q⁺) ∪ Θ_b(q⁺) ∪ {Θ_a(F), Θ_b(F)} for distinct fresh
constants a, b.  Θ_a(F) and Θ_b(F) are key-equal but distinct, so the
database has exactly two repairs r_a and r_b.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Tuple

from ..core.atoms import Atom
from ..core.attack_graph import attacked_from
from ..core.query import Query
from ..core.terms import Variable, is_variable
from ..db.database import Database

BOT = ("bot",)


@dataclass(frozen=True)
class NonReifiabilityGadget:
    """The constructed instance and its two repairs."""

    query: Query
    variable: Variable
    db: Database
    repair_a: Database
    repair_b: Database
    constant_a: Hashable
    constant_b: Hashable


def _theta(query: Query, reach, c: Hashable) -> Dict[Variable, Hashable]:
    return {w: (c if w in reach else BOT) for w in query.vars}


def _ground(atom_obj: Atom, theta: Dict[Variable, Hashable]) -> Tuple:
    return tuple(
        theta[t] if is_variable(t) else t.value for t in atom_obj.terms
    )


def build_gadget(
    query: Query,
    f: Atom,
    x: Variable,
    constant_a: Hashable = "a",
    constant_b: Hashable = "b",
) -> NonReifiabilityGadget:
    """The Proposition 7.2 database for an attack F ⇝ x."""
    if constant_a == constant_b:
        raise ValueError("the two constants must be distinct")
    v_f = None
    for v in sorted(f.vars):
        if x in attacked_from(query, f, v):
            v_f = v
            break
    if v_f is None:
        raise ValueError(f"{f!r} does not attack {x}")
    reach = attacked_from(query, f, v_f)

    theta_a = _theta(query, reach, constant_a)
    theta_b = _theta(query, reach, constant_b)
    db = Database()
    for atom_obj in query.atoms:
        db.add_relation(atom_obj.schema)
    for p in query.positives:
        db.add(p.relation, _ground(p, theta_a))
        db.add(p.relation, _ground(p, theta_b))
    fact_a = _ground(f, theta_a)
    fact_b = _ground(f, theta_b)
    db.add(f.relation, fact_a)
    db.add(f.relation, fact_b)

    repair_a = db.copy()
    repair_a.discard(f.relation, fact_b)
    repair_b = db.copy()
    repair_b.discard(f.relation, fact_a)
    return NonReifiabilityGadget(
        query, x, db, repair_a, repair_b, constant_a, constant_b
    )
