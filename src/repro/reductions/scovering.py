"""Example 1.2: S-COVERING ≤fo co-CERTAINTY(q_Hall).

The reduction builds a database with S(a̲) for every element a and
N_i(c̲, a) whenever a ∈ T_i.  The repairs of the N_i relations are all
ways of picking (at most) one element per subset; a repair falsifying
q_Hall picks every element of S, i.e. solves S-COVERING.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from ..core.atoms import RelationSchema
from ..core.query import Query
from ..db.database import Database
from ..matching.hall import SCoveringInstance
from ..workloads.queries import q_hall


def scovering_to_database(
    instance: SCoveringInstance, constant: str = "c"
) -> Database:
    """The FO reduction of Example 1.2."""
    db = Database([RelationSchema("S", 1, 1)])
    for i in range(1, len(instance.subsets) + 1):
        db.add_relation(RelationSchema(f"N{i}", 2, 1))
    for a in instance.elements:
        db.add("S", (a,))
    for i, t in enumerate(instance.subsets, start=1):
        for a in sorted(t, key=repr):
            db.add(f"N{i}", (constant, a))
    return db


def query_for(instance: SCoveringInstance, constant: str = "c") -> Query:
    """The matching q_Hall query (one negated atom per subset)."""
    return q_hall(len(instance.subsets), constant)


def covering_from_repair(
    instance: SCoveringInstance, repair: Database
) -> Optional[Dict[Hashable, int]]:
    """Extract a covering from a q_Hall-falsifying repair, if the repair
    indeed covers every element (None otherwise).

    Each N_i block picks exactly one element, so mapping each covered
    element to a subset that picked it is automatically injective.
    """
    assignment: Dict[Hashable, int] = {}
    for i in range(1, len(instance.subsets) + 1):
        for _, a in repair.facts(f"N{i}"):
            if a not in assignment:
                assignment[a] = i
    assignment = {a: i for a, i in assignment.items() if a in set(instance.elements)}
    if set(assignment) != set(instance.elements):
        return None
    return assignment
