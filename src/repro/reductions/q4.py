"""Example 7.1: a combinatorial FO solver for q4.

q4 = {X(x̲), Y(y̲), ¬R(x̲, y), ¬S(y̲, x)} has non-weakly-guarded negation
and a cyclic attack graph, yet CERTAINTY(q4) is in FO — by counting, not
by reification (no primary key of q4 is reifiable).

With m X-facts and n Y-facts, a repair falsifying q4 must cover all
m·n pairs (x, y) with at most m chosen R-facts and n chosen S-facts:

* m = 0 or n = 0: q4 is false in every repair — not certain;
* m·n > m + n: no repair can cover all pairs — certain;
* m = 1 (symmetric n = 1): the single x's R-pick covers one y; every
  other y must have S(y, x) in the database;
* m = n = 2: only the two "cross" configurations work
  {R(a1,b_{j1}), R(a2,b_{j2}), S(b_{j1},a2), S(b_{j2},a1)}, j1 ≠ j2.
"""

from __future__ import annotations

from typing import Hashable, List

from ..db.database import Database


def _covers_single_left(db: Database, a: Hashable, right: List[Hashable],
                        r_name: str, s_name: str) -> bool:
    """m = 1 case: can a falsifying repair exist for single left value a?

    Every y must be covered; S(y, a) covers y when present; the R-block
    of a can cover at most one remaining y.
    """
    uncovered = [b for b in right if not db.contains(s_name, (b, a))]
    if not uncovered:
        return True
    if len(uncovered) == 1:
        return db.contains(r_name, (a, uncovered[0]))
    return False


def is_certain_q4(
    db: Database,
    x_name: str = "X",
    y_name: str = "Y",
    r_name: str = "R",
    s_name: str = "S",
) -> bool:
    """CERTAINTY(q4) by the counting argument of Example 7.1."""
    xs = sorted((row[0] for row in db.facts(x_name)), key=repr)
    ys = sorted((row[0] for row in db.facts(y_name)), key=repr)
    m, n = len(xs), len(ys)
    if m == 0 or n == 0:
        return False
    if m * n > m + n:
        return True
    # Degenerate cases: a falsifying repair may exist.
    if m == 1:
        return not _covers_single_left(db, xs[0], ys, r_name, s_name)
    if n == 1:
        # Mirror roles: S(y̲, x) plays R(x̲, y) and vice versa.
        return not _covers_single_left(db, ys[0], xs, s_name, r_name)
    # m = n = 2: check both cross configurations.
    a1, a2 = xs
    for b1, b2 in ((ys[0], ys[1]), (ys[1], ys[0])):
        if (
            db.contains(r_name, (a1, b1))
            and db.contains(r_name, (a2, b2))
            and db.contains(s_name, (b1, a2))
            and db.contains(s_name, (b2, a1))
        ):
            return False
    return True
