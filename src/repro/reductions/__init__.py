"""Executable versions of the paper's first-order reductions."""

from .bpm import bpm_to_database, matching_from_repair, repair_from_matching
from .diseq import eliminate_all_diseqs, eliminate_diseq
from .drop_negated import check_applicable, reduce_database
from .gadgets import (
    BOT,
    TwoCycleGadget,
    pair,
    reduce_lemma_5_6,
    reduce_lemma_5_7,
)
from .q4 import is_certain_q4
from .reify_gadget import NonReifiabilityGadget, build_gadget
from .scovering import covering_from_repair, query_for, scovering_to_database
from .ufa import (
    DisjointSets,
    Forest,
    TAIL_CONSTANT,
    edge_constant,
    two_component_forest,
    ufa_to_database,
)

__all__ = [
    "BOT",
    "DisjointSets",
    "Forest",
    "NonReifiabilityGadget",
    "TAIL_CONSTANT",
    "TwoCycleGadget",
    "bpm_to_database",
    "build_gadget",
    "check_applicable",
    "covering_from_repair",
    "edge_constant",
    "eliminate_all_diseqs",
    "eliminate_diseq",
    "is_certain_q4",
    "matching_from_repair",
    "pair",
    "query_for",
    "reduce_database",
    "reduce_lemma_5_6",
    "reduce_lemma_5_7",
    "repair_from_matching",
    "scovering_to_database",
    "two_component_forest",
    "ufa_to_database",
]
