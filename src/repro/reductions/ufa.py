"""Lemma 5.3: UNDIRECTED FOREST ACCESSIBILITY ≤fo CERTAINTY(q2).

UFA: given an acyclic undirected graph with exactly two connected
components and two nodes u, v, is there a path between u and v?  The
problem is L-complete; the reduction (Figure 4) maps it to
CERTAINTY(q2) with q2 = {R(x̲, y), ¬S(x̲, y), ¬T(y̲, x)}.

This module provides the forest substrate (an undirected forest with a
union-find connectivity oracle) and the database construction of the
reduction, with edge constants encoded as order-insensitive tuples
``("edge", min, max)``.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Set, Tuple

from ..core.atoms import RelationSchema
from ..db.database import Database


class DisjointSets:
    """Union-find with path compression and union by size."""

    def __init__(self):
        self._parent: Dict[Hashable, Hashable] = {}
        self._size: Dict[Hashable, int] = {}

    def add(self, x: Hashable) -> None:
        if x not in self._parent:
            self._parent[x] = x
            self._size[x] = 1

    def find(self, x: Hashable) -> Hashable:
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[x] != root:
            self._parent[x], x = root, self._parent[x]
        return root

    def union(self, x: Hashable, y: Hashable) -> bool:
        """Merge the classes of x and y; False if already together."""
        self.add(x)
        self.add(y)
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return False
        if self._size[rx] < self._size[ry]:
            rx, ry = ry, rx
        self._parent[ry] = rx
        self._size[rx] += self._size[ry]
        return True

    def connected(self, x: Hashable, y: Hashable) -> bool:
        self.add(x)
        self.add(y)
        return self.find(x) == self.find(y)

    def component_count(self) -> int:
        return sum(1 for x in self._parent if self._parent[x] == x)


class Forest:
    """An undirected acyclic graph (edge insertion enforces acyclicity)."""

    def __init__(self, vertices: Iterable[Hashable] = ()):
        self.vertices: Set[Hashable] = set(vertices)
        self.edges: List[Tuple[Hashable, Hashable]] = []
        self._dsu = DisjointSets()
        for v in self.vertices:
            self._dsu.add(v)

    def add_vertex(self, v: Hashable) -> None:
        self.vertices.add(v)
        self._dsu.add(v)

    def add_edge(self, a: Hashable, b: Hashable) -> None:
        """Add edge {a, b}; raises if it would close a cycle."""
        self.add_vertex(a)
        self.add_vertex(b)
        if not self._dsu.union(a, b):
            raise ValueError(f"edge ({a!r}, {b!r}) would create a cycle")
        self.edges.append((a, b))

    def connected(self, a: Hashable, b: Hashable) -> bool:
        """The UFA question, answered by the union-find substrate."""
        if a not in self.vertices or b not in self.vertices:
            return False
        return self._dsu.connected(a, b)

    def component_count(self) -> int:
        return self._dsu.component_count()


def edge_constant(a: Hashable, b: Hashable) -> Tuple:
    """The constant for undirected edge {a, b} (order-insensitive)."""
    lo, hi = sorted((a, b), key=repr)
    return ("edge", lo, hi)


TAIL_CONSTANT = ("ufa-tail",)


def ufa_to_database(forest: Forest, u: Hashable, v: Hashable) -> Database:
    """The reduction of Lemma 5.3 (Figure 4).

    For every edge {a, b}: facts R(a, e), R(b, e), S(a, e), S(b, e),
    T(e, a), T(e, b) where e is the edge constant.  Additionally
    R(u, t), R(v, t), S(u, t), S(v, t) for a fresh value t.

    Then u and v are connected in the forest iff every repair of the
    result satisfies q2 = {R(x̲ y̲), ¬S(x̲, y), ¬T(y̲, x)}.

    The endpoints must be distinct (a UFA instance with u = v is
    trivially connected and outside the reduction's scope).
    """
    if u == v:
        raise ValueError("the reduction requires distinct endpoints u != v")
    db = Database([
        RelationSchema("R", 2, 2),  # all-key: every R-fact survives in every repair
        RelationSchema("S", 2, 1),
        RelationSchema("T", 2, 1),
    ])
    for a, b in forest.edges:
        e = edge_constant(a, b)
        for node in (a, b):
            db.add("R", (node, e))
            db.add("S", (node, e))
            db.add("T", (e, node))
    for node in (u, v):
        db.add("R", (node, TAIL_CONSTANT))
        db.add("S", (node, TAIL_CONSTANT))
    return db


def two_component_forest(edges: Iterable[Tuple[Hashable, Hashable]]) -> Forest:
    """Build a forest and check it has exactly two components (the UFA
    normal form used by the reduction's L-completeness argument)."""
    forest = Forest()
    for a, b in edges:
        forest.add_edge(a, b)
    if forest.component_count() != 2:
        raise ValueError(
            f"expected exactly two components, got {forest.component_count()}"
        )
    return forest
