"""Lemma 5.2: BIPARTITE PERFECT MATCHING ≤fo co-CERTAINTY(q1).

Given a bipartite graph G = (A, B, E) with |A| = |B| = m, build the
database with facts R(a̲, b) and S(b̲, a) for every edge {a, b}.  Then G
has a perfect matching iff some repair falsifies q1 = {R(x̲,y), ¬S(y̲,x)}.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from ..core.atoms import RelationSchema
from ..db.database import Database
from ..matching.hopcroft_karp import BipartiteGraph


def bpm_to_database(graph: BipartiteGraph) -> Database:
    """The FO reduction of Lemma 5.2: one R-fact and one S-fact per edge."""
    db = Database([RelationSchema("R", 2, 1), RelationSchema("S", 2, 1)])
    for a in sorted(graph.left, key=repr):
        for b in sorted(graph.neighbours(a), key=repr):
            db.add("R", (a, b))
            db.add("S", (b, a))
    return db


def matching_from_repair(repair: Database) -> Dict[Hashable, Hashable]:
    """Extract the matching encoded by a q1-falsifying repair.

    In such a repair every chosen R(a, b) has its S(b, a) chosen too, so
    the R-facts form a matching (proof of Lemma 5.2).
    """
    matching: Dict[Hashable, Hashable] = {}
    used = set()
    for a, b in sorted(repair.facts("R"), key=repr):
        if a in matching or b in used:
            raise ValueError("repair does not encode a matching")
        matching[a] = b
        used.add(b)
    return matching


def repair_from_matching(
    graph: BipartiteGraph, matching: Dict[Hashable, Hashable]
) -> Optional[Database]:
    """The repair built from a perfect matching (forward direction of
    Lemma 5.2): R(a, M(a)) for every a, S(b, M⁻¹(b)) for every b."""
    if set(matching) != graph.left or set(matching.values()) != graph.right:
        return None
    db = Database([RelationSchema("R", 2, 1), RelationSchema("S", 2, 1)])
    for a, b in matching.items():
        db.add("R", (a, b))
        db.add("S", (b, a))
    return db
