"""The Θᵃᵦ reduction gadgets of Lemmas 5.6 and 5.7.

Both lemmas reduce a canonical hard problem to CERTAINTY(q) when q has
an attack two-cycle F ⇄ G.  The reductions share one construction: the
valuation Θᵃᵦ over vars(q), built from single-source attack
reachability,

    Θᵃᵦ(w) = a        if G|v_G ⇝ w and F|v_F ̸⇝ w
             b        if F|v_F ⇝ w and G|v_G ̸⇝ w
             ⟨a, b⟩   if F|v_F ⇝ w and G|v_G ⇝ w
             ⊥        otherwise,

where F|v_F ⇝ u ∈ key(G) and G|v_G ⇝ u' ∈ key(F) witness the two-cycle.

* Lemma 5.6 (F ∈ q⁺, G ∈ q⁻): from CERTAINTY(q1), q1 = {R(x̲,y), ¬S(y̲,x)}.
  R(a̲,b) contributes Θᵃᵦ(q⁺); S(b̲,a) contributes Θᵃᵦ(G).
* Lemma 5.7 (F, G ∈ q⁻): from CERTAINTY(q2), q2 = {T(x̲,y), ¬R(x̲,y), ¬S(y̲,x)}.
  T(a̲,b) contributes Θᵃᵦ(q⁺); R(a̲,b) contributes Θᵃᵦ(F); S(b̲,a)
  contributes Θᵃᵦ(G).

Pairs are encoded as ``("pair", a, b)`` and ⊥ as ``("bot",)``.
"""

from __future__ import annotations

from typing import Dict, Hashable, Tuple

from ..core.atoms import Atom
from ..core.attack_graph import attacked_from
from ..core.query import Query
from ..core.terms import Variable, is_variable
from ..db.database import Database

BOT = ("bot",)


def pair(a: Hashable, b: Hashable) -> Tuple:
    """The ⟨a, b⟩ value of the Θᵃᵦ construction."""
    return ("pair", a, b)


def _find_cycle_witness(
    query: Query, f: Atom, g: Atom
) -> Tuple[Variable, Variable]:
    """(v_F, v_G) with F|v_F ⇝ key(G) and G|v_G ⇝ key(F)."""
    v_f = v_g = None
    for v in sorted(f.vars):
        if attacked_from(query, f, v) & g.key_vars:
            v_f = v
            break
    for v in sorted(g.vars):
        if attacked_from(query, g, v) & f.key_vars:
            v_g = v
            break
    if v_f is None or v_g is None:
        raise ValueError("the given atoms do not form an attack two-cycle")
    return v_f, v_g


class TwoCycleGadget:
    """The shared Θᵃᵦ machinery for one two-cycle F ⇄ G of one query."""

    def __init__(self, query: Query, f: Atom, g: Atom):
        if f not in query.atoms or g not in query.atoms:
            raise ValueError("F and G must be atoms of the query")
        self.query = query
        self.f = f
        self.g = g
        v_f, v_g = _find_cycle_witness(query, f, g)
        self.v_f = v_f
        self.v_g = v_g
        self.reach_f = attacked_from(query, f, v_f)
        self.reach_g = attacked_from(query, g, v_g)

    def theta(self, a: Hashable, b: Hashable) -> Dict[Variable, Hashable]:
        """The valuation Θᵃᵦ as a variable -> raw-value map."""
        out: Dict[Variable, Hashable] = {}
        for w in self.query.vars:
            in_f = w in self.reach_f
            in_g = w in self.reach_g
            if in_g and not in_f:
                out[w] = a
            elif in_f and not in_g:
                out[w] = b
            elif in_f and in_g:
                out[w] = pair(a, b)
            else:
                out[w] = BOT
        return out

    def ground(self, atom_obj: Atom, a: Hashable, b: Hashable) -> Tuple:
        """The fact Θᵃᵦ(atom) as a raw row."""
        theta = self.theta(a, b)
        return tuple(
            theta[t] if is_variable(t) else t.value for t in atom_obj.terms
        )


def _empty_target_db(query: Query) -> Database:
    db = Database()
    for atom_obj in query.atoms:
        db.add_relation(atom_obj.schema)
    return db


def reduce_lemma_5_6(
    query: Query, f: Atom, g: Atom, db: Database
) -> Tuple[TwoCycleGadget, Database]:
    """Lemma 5.6's f(db): a q1-instance mapped to a q-instance.

    Requires F ∈ q⁺ and G ∈ q⁻ with F ⇄ G; *db* holds relations R
    (positive role) and S (negated role) of q1.
    """
    if not query.is_positive(f) or not query.is_negative(g):
        raise ValueError("Lemma 5.6 needs F ∈ q⁺ and G ∈ q⁻")
    gadget = TwoCycleGadget(query, f, g)
    out = _empty_target_db(query)
    for a, b in db.facts("R"):
        for p in query.positives:
            out.add(p.relation, gadget.ground(p, a, b))
    for b, a in db.facts("S"):
        out.add(g.relation, gadget.ground(g, a, b))
    return gadget, out


def reduce_lemma_5_7(
    query: Query, f: Atom, g: Atom, db: Database
) -> Tuple[TwoCycleGadget, Database]:
    """Lemma 5.7's f(db): a q2-instance mapped to a q-instance.

    Requires F, G ∈ q⁻ with F ⇄ G; *db* holds this library's q2
    relations: R(x̲ y̲) (positive role — the paper's proof names it T),
    S(x̲, y) (first negated role, fed into F), and T(y̲, x) (second
    negated role, fed into G).
    """
    if not query.is_negative(f) or not query.is_negative(g):
        raise ValueError("Lemma 5.7 needs F, G ∈ q⁻")
    gadget = TwoCycleGadget(query, f, g)
    out = _empty_target_db(query)
    for a, b in db.facts("R"):
        for p in query.positives:
            out.add(p.relation, gadget.ground(p, a, b))
    for a, b in db.facts("S"):
        out.add(f.relation, gadget.ground(f, a, b))
    for b, a in db.facts("T"):
        out.add(g.relation, gadget.ground(g, a, b))
    return gadget, out
