"""Lemma 5.4: CERTAINTY(q') ≤fo CERTAINTY(q) for q' ⊆ q with q⁺ ⊆ q'.

Dropping negated atoms preserves hardness: given an input database for
q', delete all facts of the relations whose negated atoms were added to
obtain q.  Empty relations make added negated atoms vacuously true.
"""

from __future__ import annotations

from ..core.query import Query
from ..db.database import Database


def check_applicable(sub_query: Query, query: Query) -> None:
    """Validate the lemma's hypothesis: q⁺ ⊆ q' ⊆ q."""
    if set(sub_query.positives) != set(query.positives):
        raise ValueError("q' must contain exactly the positive atoms of q")
    if not set(sub_query.negatives) <= set(query.negatives):
        raise ValueError("q' must be a subset of q")


def reduce_database(sub_query: Query, query: Query, db: Database) -> Database:
    """The db₀ of the lemma's proof: drop facts of the added relations."""
    check_applicable(sub_query, query)
    added = {n.relation for n in query.negatives} - {
        n.relation for n in sub_query.negatives
    }
    out = db.copy()
    for a in query.negatives:
        out.add_relation(a.schema)
    for name in added:
        out.clear_relation(name)
    return out
