"""Lemma 6.6: eliminating a disequality via a fresh all-key relation.

CERTAINTY(q ∪ C) with v⃗ ≠ c⃗ ∈ C reduces to CERTAINTY(q ∪ {¬E(v⃗)} ∪ C')
where E is a fresh all-key relation: add the single fact E(c⃗) to the
database.  All-key relations are never inconsistent, so the fact
survives in every repair and ¬E(v⃗) enforces exactly v⃗ ≠ c⃗.
"""

from __future__ import annotations

import itertools
from typing import Tuple

from ..core.atoms import Atom, RelationSchema
from ..core.query import Diseq, Query, QueryError
from ..core.terms import is_variable
from ..db.database import Database

_fresh_names = itertools.count()


def eliminate_diseq(
    query: Query, diseq: Diseq, db: Database
) -> Tuple[Query, Database]:
    """One application of Lemma 6.6: returns (q ∪ {¬E(v⃗)} ∪ C', g(db)).

    Requires the disequality to have the Definition 6.3 shape: distinct
    variables on the left, constants on the right.
    """
    if diseq not in query.diseqs:
        raise QueryError("disequality does not belong to the query")
    variables = []
    constants = []
    for lhs, rhs in diseq.pairs:
        if not is_variable(lhs) or is_variable(rhs):
            raise QueryError(
                "Lemma 6.6 needs v ≠ c pairs (variable vs constant); "
                f"got {lhs!r} ≠ {rhs!r}"
            )
        variables.append(lhs)
        constants.append(rhs)
    if len(set(variables)) != len(variables):
        raise QueryError("Lemma 6.6 needs pairwise distinct variables")

    name = f"E{next(_fresh_names)}"
    while name in {a.relation for a in query.atoms} | set(db.schemas):
        name = f"E{next(_fresh_names)}"
    schema = RelationSchema(name, len(variables), len(variables))

    new_query = Query(
        query.positives,
        query.negatives + (Atom(schema, tuple(variables)),),
        tuple(d for d in query.diseqs if d != diseq),
        check_safety=False,
    )
    new_db = db.copy()
    new_db.add_relation(schema)
    new_db.add(name, tuple(c.value for c in constants))
    return new_query, new_db


def eliminate_all_diseqs(query: Query, db: Database) -> Tuple[Query, Database]:
    """Apply Lemma 6.6 until the query has no disequalities left."""
    while query.diseqs:
        query, db = eliminate_diseq(query, query.diseqs[0], db)
    return query, db
