"""The plan-IR verifier: machine-checked invariants for compiled plans.

Every execution tier — the serial compiled executor, the probe-mode
boolean evaluator, the sharded parallel path, and the incremental
delta engine — consumes the same untyped operator trees from
:mod:`repro.fo.plan`.  The verifier walks such a tree once and checks
the structural contract those consumers silently rely on:

``PV001``   node columns are distinct variables
``PV002``   non-Project columns are sorted by variable name
``PV003``   Scan internals (projection/constants/equality checks)
            index into the atom, and projected columns carry the
            variable they claim to carry (column provenance)
``PV004``   Literal rows have the node's width
``PV005``   Select conditions reference live columns of the child
``PV006``   Project targets exist in the child and positions agree
``PV007``   Join output is the sorted column union and every emitted
            column resolves on the side it is taken from
``PV008``   Semi/anti-join output equals the left input's columns
``PV009``   Union inputs agree on columns
``PV010``   Difference inputs are union-compatible (also what makes
            the probe path's per-row binding of the right side safe)
``PV011``   Adom* shapes (AdomGuard nullary, AdomEq binary distinct)
``PV012``   every operator type is known to the executor (both the
            materializing and the lazy/probe dispatch tables)
``PV013``   the root produces exactly the declared answer columns

Violations raise a coded :class:`PlanInvariantError`.  Compilation
verifies automatically when ``REPRO_VERIFY_PLANS=1`` (see
:func:`repro.fo.compile.verify_plans_enabled`; tests and CI switch it
on), and ``repro plan --check`` / ``repro analyze`` run it on demand.
:func:`verification_report` is the non-raising form used in reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional, Sequence, Tuple

from ..core.terms import Variable, is_variable
from ..fo.plan import (
    AdomEq,
    AdomGuard,
    AdomProduct,
    AntiJoin,
    Difference,
    Executor,
    Join,
    Literal,
    Plan,
    PlanError,
    Project,
    Scan,
    Select,
    SemiJoin,
    Union,
)

__all__ = [
    "PlanInvariantError",
    "VerificationReport",
    "plan_uses_adom",
    "verification_report",
    "verify_compiled",
    "verify_plan",
]

#: Node types whose execution touches the active domain.  The parallel
#: executor refuses to shard such plans and the incremental delta
#: engine maintains them through the recompute-from-dirty-subtree
#: escape hatch, so the verifier marks them in its report.
ADOM_NODES: Tuple[type, ...] = (AdomProduct, AdomGuard, AdomEq)


class PlanInvariantError(PlanError):
    """A compiled plan violates a structural invariant.

    ``code`` is the stable ``PVxxx`` identifier of the violated
    invariant and ``node`` the offending operator; ``str()`` renders
    ``PVxxx: message (at <operator>)``.
    """

    def __init__(self, code: str, message: str, node: Optional[Plan] = None):
        self.code = code
        self.node = node
        where = ""
        if node is not None:
            # label() itself can blow up on a corrupt node (e.g. a
            # Select whose condition indexes out of range) — fall back
            # to the bare type name rather than masking the finding.
            try:
                where = f" (at {node.label()})"
            except Exception:
                where = f" (at {type(node).__name__})"
        super().__init__(f"{code}: {message}{where}")


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of one verifier run (the non-raising API).

    ``ok`` is False exactly when ``error`` carries the first
    :class:`PlanInvariantError`; ``nodes`` counts operators walked,
    ``uses_adom`` marks plans touching the active domain, and
    ``probe_safe`` says whether the boolean short-circuit evaluator
    may run the plan (always true for plans that verify — the checks
    that make probing safe are part of the invariant set).
    """

    ok: bool
    nodes: int
    uses_adom: bool
    probe_safe: bool
    error: Optional[PlanInvariantError] = None

    @property
    def code(self) -> Optional[str]:
        """The violated invariant's code, or None when ok."""
        return None if self.error is None else self.error.code

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (see docs/diagnostics.schema.json)."""
        out: Dict[str, Any] = {
            "ok": self.ok,
            "nodes": self.nodes,
            "uses_adom": self.uses_adom,
            "probe_safe": self.probe_safe,
        }
        if self.error is not None:
            out["error"] = {"code": self.error.code, "message": str(self.error)}
        return out


def plan_uses_adom(plan: Plan) -> bool:
    """Does any operator of the tree touch the active domain?

    Generic over ``children()``, so new operator types are covered
    automatically (unlike a hand-maintained isinstance cascade).
    """
    if isinstance(plan, ADOM_NODES):
        return True
    return any(plan_uses_adom(child) for child in plan.children())


def _fail(code: str, message: str, node: Plan) -> Iterator[PlanInvariantError]:
    yield PlanInvariantError(code, message, node)


def _check_cols(node: Plan) -> Iterator[PlanInvariantError]:
    cols = node.cols
    if not all(is_variable(c) for c in cols):
        yield PlanInvariantError(
            "PV001", f"columns must be variables, got {cols!r}", node
        )
        return
    if len(set(cols)) != len(cols):
        yield PlanInvariantError(
            "PV001", f"duplicate output columns {tuple(c.name for c in cols)}",
            node,
        )
    if not isinstance(node, Project) and tuple(sorted(cols)) != cols:
        # Only Project may reorder (the root projects onto the caller's
        # answer-column order); every other operator emits sorted
        # columns, and the lowering's seed threading depends on it.
        yield PlanInvariantError(
            "PV002",
            f"columns {tuple(c.name for c in cols)} are not sorted by name",
            node,
        )


def _check_scan(node: Scan) -> Iterator[PlanInvariantError]:
    arity = node.atom.schema.arity
    if len(node.atom.terms) != arity:
        yield PlanInvariantError(
            "PV003", f"atom has {len(node.atom.terms)} terms for arity {arity}",
            node,
        )
        return
    if node.cols != tuple(sorted(node.atom.vars)):
        yield PlanInvariantError(
            "PV003", "columns are not the atom's sorted distinct variables",
            node,
        )
    if len(node.proj) != len(node.cols):
        yield PlanInvariantError(
            "PV003",
            f"projection width {len(node.proj)} != column count {len(node.cols)}",
            node,
        )
        return
    for col, pos in zip(node.cols, node.proj):
        if not 0 <= pos < arity:
            yield PlanInvariantError(
                "PV003", f"projection position {pos} outside arity {arity}", node
            )
        elif node.atom.terms[pos] != col:
            # Column provenance: the projected position must hold the
            # variable the output column is named after.
            yield PlanInvariantError(
                "PV003",
                f"column {col.name!r} projected from position {pos}, which "
                f"holds {node.atom.terms[pos]!r}",
                node,
            )
    for pos, value in node.consts.items():
        if not 0 <= pos < arity:
            yield PlanInvariantError(
                "PV003", f"constant position {pos} outside arity {arity}", node
            )
        elif is_variable(node.atom.terms[pos]):
            yield PlanInvariantError(
                "PV003",
                f"constant {value!r} pinned at variable position {pos}", node,
            )
    for i, j in node.eq_checks:
        if not (0 <= i < arity and 0 <= j < arity):
            yield PlanInvariantError(
                "PV003", f"equality check ({i}, {j}) outside arity {arity}", node
            )


def _check_literal(node: Literal) -> Iterator[PlanInvariantError]:
    width = len(node.cols)
    for row in node.rows:
        if len(row) != width:
            yield PlanInvariantError(
                "PV004", f"row {row!r} has width {len(row)}, expected {width}",
                node,
            )


def _check_select(node: Select) -> Iterator[PlanInvariantError]:
    if node.cols != node.child.cols:
        yield PlanInvariantError(
            "PV005", "Select must preserve its child's columns", node
        )
    width = len(node.child.cols)
    for cond in node.conds:
        if len(cond) != 3:
            yield PlanInvariantError(
                "PV005", f"malformed condition {cond!r}", node
            )
            continue
        lhs, rhs, _equal = cond
        for operand in (lhs, rhs):
            kind, payload = operand
            if kind == "col":
                if not (isinstance(payload, int) and 0 <= payload < width):
                    yield PlanInvariantError(
                        "PV005",
                        f"condition references column index {payload!r} of a "
                        f"{width}-column child",
                        node,
                    )
            elif kind != "const":
                yield PlanInvariantError(
                    "PV005", f"unknown operand kind {kind!r}", node
                )


def _check_project(node: Project) -> Iterator[PlanInvariantError]:
    child_cols = node.child.cols
    missing = [c for c in node.cols if c not in child_cols]
    if missing:
        yield PlanInvariantError(
            "PV006",
            f"projects onto columns absent from the child: "
            f"{[c.name for c in missing]}",
            node,
        )
        return
    if len(node.positions) != len(node.cols):
        yield PlanInvariantError(
            "PV006",
            f"positions width {len(node.positions)} != column count "
            f"{len(node.cols)}",
            node,
        )
        return
    for col, pos in zip(node.cols, node.positions):
        if not 0 <= pos < len(child_cols) or child_cols[pos] != col:
            yield PlanInvariantError(
                "PV006",
                f"column {col.name!r} taken from child position {pos}, which "
                f"holds "
                f"{child_cols[pos].name if 0 <= pos < len(child_cols) else '<out of range>'!r}",
                node,
            )


def _check_join(node: Join) -> Iterator[PlanInvariantError]:
    expected = tuple(sorted(set(node.left.cols) | set(node.right.cols)))
    if node.cols != expected:
        yield PlanInvariantError(
            "PV007", "output columns are not the sorted input-column union",
            node,
        )
    if len(node.emit) != len(node.cols):
        yield PlanInvariantError(
            "PV007",
            f"emit width {len(node.emit)} != column count {len(node.cols)}",
            node,
        )
        return
    sides = (node.left.cols, node.right.cols)
    for col, (side, pos) in zip(node.cols, node.emit):
        if side not in (0, 1):
            yield PlanInvariantError(
                "PV007", f"emit side {side!r} is neither left nor right", node
            )
            continue
        source = sides[side]
        if not 0 <= pos < len(source) or source[pos] != col:
            yield PlanInvariantError(
                "PV007",
                f"column {col.name!r} emitted from side {side} position "
                f"{pos}, which does not hold it",
                node,
            )


def _check_semi(node: Plan) -> Iterator[PlanInvariantError]:
    left = node.children()[0]
    if node.cols != left.cols:
        yield PlanInvariantError(
            "PV008",
            f"{type(node).__name__} must emit exactly its left input's "
            f"columns",
            node,
        )


def _check_union(node: Union) -> Iterator[PlanInvariantError]:
    if not node.parts:
        yield PlanInvariantError("PV009", "Union has no inputs", node)
        return
    for part in node.parts:
        if part.cols != node.cols:
            yield PlanInvariantError(
                "PV009",
                f"input columns {tuple(c.name for c in part.cols)} disagree "
                f"with output {tuple(c.name for c in node.cols)}",
                node,
            )


def _check_difference(node: Difference) -> Iterator[PlanInvariantError]:
    if node.left.cols != node.right.cols or node.cols != node.left.cols:
        # Union compatibility is also what makes probe mode safe here:
        # the probe path binds a full left row onto the right side by
        # column name, so the right schema must be identical.
        yield PlanInvariantError(
            "PV010", "Difference inputs must be union-compatible", node
        )


def _check_adom(node: Plan) -> Iterator[PlanInvariantError]:
    if isinstance(node, AdomGuard) and node.cols != ():
        yield PlanInvariantError("PV011", "AdomGuard must be nullary", node)
    if isinstance(node, AdomEq) and len(node.cols) != 2:
        yield PlanInvariantError(
            "PV011", "AdomEq must range over exactly two distinct variables",
            node,
        )


def _check_node(node: Plan) -> Iterator[PlanInvariantError]:
    yield from _check_cols(node)
    if type(node) not in Executor._HANDLERS:
        yield PlanInvariantError(
            "PV012",
            f"operator type {type(node).__name__} is unknown to the executor",
            node,
        )
    elif type(node) not in Executor._LAZY_HANDLERS:
        yield PlanInvariantError(
            "PV012",
            f"operator type {type(node).__name__} has no probe-mode handler",
            node,
        )
    if isinstance(node, Scan):
        yield from _check_scan(node)
    elif isinstance(node, Literal):
        yield from _check_literal(node)
    elif isinstance(node, Select):
        yield from _check_select(node)
    elif isinstance(node, Project):
        yield from _check_project(node)
    elif isinstance(node, Join):
        yield from _check_join(node)
    elif isinstance(node, (SemiJoin, AntiJoin)):
        yield from _check_semi(node)
    elif isinstance(node, Union):
        yield from _check_union(node)
    elif isinstance(node, Difference):
        yield from _check_difference(node)
    elif isinstance(node, ADOM_NODES):
        yield from _check_adom(node)


def _walk(plan: Plan, seen: Dict[int, bool]) -> Iterator[Plan]:
    """Every distinct node of a plan DAG, pre-order, each once."""
    if id(plan) in seen:
        return
    seen[id(plan)] = True
    yield plan
    for child in plan.children():
        yield from _walk(child, seen)


def verify_plan(
    plan: Plan,
    expected_cols: Optional[Sequence[Variable]] = None,
) -> int:
    """Check every invariant on every node; raise on the first failure.

    ``expected_cols`` pins the root's output schema (the compiled
    query's answer columns, in order); omit it to verify a bare
    subtree.  Returns the number of operators checked.
    """
    if expected_cols is not None and plan.cols != tuple(expected_cols):
        raise PlanInvariantError(
            "PV013",
            f"root emits {tuple(c.name for c in plan.cols)}, expected "
            f"{tuple(c.name for c in expected_cols)}",
            plan,
        )
    count = 0
    for node in _walk(plan, {}):
        count += 1
        for error in _check_node(node):
            raise error
    return count


def verify_compiled(compiled: Any) -> int:
    """Verify a :class:`repro.fo.compile.CompiledQuery` end to end."""
    return verify_plan(compiled.plan, expected_cols=compiled.free)


def verification_report(
    plan: Plan,
    expected_cols: Optional[Sequence[Variable]] = None,
) -> VerificationReport:
    """Run the verifier and fold the outcome into a report.

    ``probe_safe`` means the boolean short-circuit evaluator may run
    the plan: the plan verifies and its root is nullary.
    """
    nodes = sum(1 for _ in _walk(plan, {}))
    uses_adom = plan_uses_adom(plan)
    try:
        verify_plan(plan, expected_cols)
    except PlanInvariantError as exc:
        return VerificationReport(False, nodes, uses_adom, False, exc)
    return VerificationReport(True, nodes, uses_adom, plan.cols == ())
