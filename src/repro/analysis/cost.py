"""A static cost estimator over the plan IR.

The model is deliberately coarse — it ranks plans and flags
pathologies, it does not predict wall clock.  Inputs are per-relation
cardinalities (taken from a :class:`repro.db.database.Database` when
one is supplied, textbook defaults otherwise) pushed bottom-up
through the operator tree with classic System-R-style selectivities:

* ``Scan``          relation cardinality, divided by the per-position
                    distinct count for every pinned constant;
* ``Join``          ``|L|·|R| / max(|L|, |R|)`` on shared columns —
                    the containment-of-value-sets estimate — and the
                    full ``|L|·|R|`` product for cartesian joins;
* ``Semi/AntiJoin`` half the left input survives;
* ``Select``        equality 0.1, disequality 0.9 per condition;
* ``Adom*``         powers of the active-domain size (the expensive
                    total fallback the QP rules warn about).

Cost of a node is its children's cost plus the rows it inspects; the
root's inclusive cost orders join alternatives in
:func:`join_order_ratio`, which replays the generator leaves of a join
tree in the best order the same model can find (exhaustively up to 6
leaves, greedily above) and reports how far the compiled order is from
it.  QP106 fires on that ratio.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..db.database import Database
from ..fo.plan import (
    AdomEq,
    AdomGuard,
    AdomProduct,
    AntiJoin,
    Difference,
    Join,
    Literal,
    Plan,
    Project,
    Scan,
    Select,
    SemiJoin,
    Union,
)

__all__ = [
    "CostModel",
    "CostReport",
    "NodeEstimate",
    "TableStats",
    "join_order_ratio",
    "table_stats",
]

#: Cardinality assumed for a relation with no statistics (analysis
#: without a database).
DEFAULT_ROWS = 1000
#: Active-domain size assumed without a database.
DEFAULT_ADOM = 1000
#: Selectivity of one equality condition.
EQ_SELECTIVITY = 0.1
#: Selectivity of one disequality condition.
NEQ_SELECTIVITY = 0.9
#: Fraction of left rows surviving a semi/anti-join.
SEMI_SELECTIVITY = 0.5


@dataclass(frozen=True)
class TableStats:
    """Relation cardinalities and distinct counts for one database."""

    rows: Dict[str, int]
    distinct: Dict[Tuple[str, int], int]
    adom_size: int

    def relation_rows(self, name: str) -> int:
        return self.rows.get(name, DEFAULT_ROWS)

    def position_distinct(self, name: str, position: int) -> int:
        got = self.distinct.get((name, position))
        if got is not None:
            return max(1, got)
        return max(1, self.relation_rows(name) // 10)


def table_stats(db: Optional[Database]) -> TableStats:
    """Statistics for ``db`` (defaults when ``db`` is None)."""
    if db is None:
        return TableStats({}, {}, DEFAULT_ADOM)
    rows: Dict[str, int] = {}
    distinct: Dict[Tuple[str, int], int] = {}
    for name in db.relations():
        facts = db.facts(name)
        rows[name] = len(facts)
        arity = db.schemas[name].arity
        for position in range(arity):
            distinct[(name, position)] = len({r[position] for r in facts})
    return TableStats(rows, distinct, max(1, len(db.active_domain())))


@dataclass(frozen=True)
class NodeEstimate:
    """Estimated output cardinality and inclusive cost of one node."""

    rows: float
    cost: float


@dataclass
class CostReport:
    """Per-node estimates for one plan, plus rendering helpers."""

    plan: Plan
    estimates: Dict[int, NodeEstimate] = field(default_factory=dict)
    cartesian_nodes: List[Join] = field(default_factory=list)
    join_order_ratio: float = 1.0

    @property
    def root(self) -> NodeEstimate:
        return self.estimates[id(self.plan)]

    @property
    def total_cost(self) -> float:
        return self.root.cost

    @property
    def estimated_rows(self) -> float:
        return self.root.rows

    def for_node(self, node: Plan) -> NodeEstimate:
        return self.estimates[id(node)]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable tree (see docs/diagnostics.schema.json)."""

        def walk(node: Plan) -> Dict[str, Any]:
            estimate = self.estimates[id(node)]
            out: Dict[str, Any] = {
                "op": node.label(),
                "cols": [v.name for v in node.cols],
                "est_rows": round(estimate.rows, 3),
                "est_cost": round(estimate.cost, 3),
            }
            children = [walk(child) for child in node.children()]
            if children:
                out["children"] = children
            return out

        return {
            "total_cost": round(self.total_cost, 3),
            "estimated_rows": round(self.estimated_rows, 3),
            "cartesian_products": len(self.cartesian_nodes),
            "join_order_ratio": round(self.join_order_ratio, 3),
            "tree": walk(self.plan),
        }

    def render(self) -> str:
        """Readable indented rendering, mirroring ``explain()``."""
        lines: List[str] = [
            f"estimated cost: {self.total_cost:,.0f}   "
            f"estimated rows: {self.estimated_rows:,.0f}   "
            f"join-order ratio: {self.join_order_ratio:.2f}"
        ]

        def walk(node: Plan, depth: int) -> None:
            estimate = self.estimates[id(node)]
            lines.append(
                "  " * depth
                + f"{node.label()}  ~{estimate.rows:,.0f} rows "
                  f"(cost {estimate.cost:,.0f})"
            )
            for child in node.children():
                walk(child, depth + 1)

        walk(self.plan, 1)
        return "\n".join(lines)


class CostModel:
    """Bottom-up cardinality/cost estimation for plan trees."""

    def __init__(self, stats: Optional[TableStats] = None):
        self.stats = stats if stats is not None else table_stats(None)

    # ------------------------------------------------------------------

    def estimate(self, plan: Plan) -> CostReport:
        """Estimate every node of ``plan`` (DAG nodes estimated once)."""
        report = CostReport(plan)
        self._node(plan, report)
        report.join_order_ratio = join_order_ratio(plan, self)
        return report

    def _node(self, node: Plan, report: CostReport) -> NodeEstimate:
        cached = report.estimates.get(id(node))
        if cached is not None:
            return cached
        children = [self._node(child, report) for child in node.children()]
        estimate = self._estimate_one(node, children, report)
        report.estimates[id(node)] = estimate
        return estimate

    # ------------------------------------------------------------------

    def scan_rows(self, node: Scan) -> float:
        """Estimated output cardinality of one scan."""
        rows = float(self.stats.relation_rows(node.atom.relation))
        for position in node.consts:
            rows /= self.stats.position_distinct(node.atom.relation, position)
        rows *= EQ_SELECTIVITY ** len(node.eq_checks)
        return max(rows, 0.0)

    def _estimate_one(
        self, node: Plan, children: Sequence[NodeEstimate],
        report: CostReport,
    ) -> NodeEstimate:
        child_cost = sum(c.cost for c in children)
        if isinstance(node, Scan):
            base = float(self.stats.relation_rows(node.atom.relation))
            rows = self.scan_rows(node)
            return NodeEstimate(rows, base)
        if isinstance(node, Literal):
            return NodeEstimate(float(len(node.rows)), float(len(node.rows)))
        if isinstance(node, AdomProduct):
            rows = float(self.stats.adom_size) ** len(node.cols)
            return NodeEstimate(rows, rows)
        if isinstance(node, AdomGuard):
            return NodeEstimate(1.0, 1.0)
        if isinstance(node, AdomEq):
            rows = float(self.stats.adom_size)
            return NodeEstimate(rows, rows)
        if isinstance(node, Select):
            rows = children[0].rows
            for _lhs, _rhs, equal in node.conds:
                rows *= EQ_SELECTIVITY if equal else NEQ_SELECTIVITY
            return NodeEstimate(rows, child_cost + children[0].rows)
        if isinstance(node, Project):
            # Deduplication can only shrink; without column-level
            # statistics the child cardinality is the estimate.
            return NodeEstimate(children[0].rows, child_cost + children[0].rows)
        if isinstance(node, Join):
            left, right = children
            rows, cost = self.join_estimate(
                left.rows, right.rows, bool(node.shared)
            )
            if not node.shared and left.rows > 1 and right.rows > 1:
                report.cartesian_nodes.append(node)
            return NodeEstimate(rows, child_cost + cost)
        if isinstance(node, (SemiJoin, AntiJoin)):
            left, right = children
            rows = left.rows * SEMI_SELECTIVITY
            return NodeEstimate(rows, child_cost + left.rows + right.rows)
        if isinstance(node, Union):
            rows = sum(c.rows for c in children)
            return NodeEstimate(rows, child_cost + rows)
        if isinstance(node, Difference):
            left, right = children
            return NodeEstimate(
                left.rows, child_cost + left.rows + right.rows
            )
        # Unknown operator: neutral passthrough, so estimation stays
        # total even while the verifier separately reports PV012.
        rows = children[0].rows if children else 1.0
        return NodeEstimate(rows, child_cost + rows)

    def join_estimate(
        self, left_rows: float, right_rows: float, shared: bool
    ) -> Tuple[float, float]:
        """(output rows, processing cost) of one hash join."""
        if not shared:
            product = left_rows * right_rows
            return product, left_rows + right_rows + product
        rows = (left_rows * right_rows) / max(left_rows, right_rows, 1.0)
        return rows, left_rows + right_rows + rows


# ----------------------------------------------------------------------
# join-order ranking
# ----------------------------------------------------------------------


def _join_leaves(node: Plan) -> List[Plan]:
    """The generator leaves of a contiguous Join subtree."""
    if isinstance(node, Join):
        return _join_leaves(node.left) + _join_leaves(node.right)
    return [node]


def _order_cost(
    leaves: Sequence[Tuple[frozenset, float]], order: Sequence[int]
) -> float:
    """Cost of left-deep joining ``leaves`` in ``order`` (model above)."""
    cols, rows = leaves[order[0]]
    cost = 0.0
    for index in order[1:]:
        next_cols, next_rows = leaves[index]
        shared = bool(cols & next_cols)
        if shared:
            out = (rows * next_rows) / max(rows, next_rows, 1.0)
        else:
            out = rows * next_rows
        cost += rows + next_rows + out
        rows, cols = out, cols | next_cols
    return cost


def join_order_ratio(plan: Plan, model: CostModel,
                     max_exhaustive: int = 6) -> float:
    """How far the worst join tree in ``plan`` is from the model's best.

    For every maximal Join subtree with at least three generator
    leaves, the compiled (in-order) left-deep cost is compared with the
    cheapest left-deep order — exhaustive up to ``max_exhaustive``
    leaves, greedy (cheapest-next) above.  Returns the maximum
    ``compiled / best`` ratio over those subtrees (1.0 when none).
    """
    worst = 1.0
    seen: Dict[int, bool] = {}

    def leaf_stats(leaves: Sequence[Plan]) -> List[Tuple[frozenset, float]]:
        report = CostReport(plan)
        out = []
        for leaf in leaves:
            estimate = model._node(leaf, report)
            out.append((frozenset(leaf.cols), estimate.rows))
        return out

    def visit(node: Plan) -> None:
        nonlocal worst
        if id(node) in seen:
            return
        seen[id(node)] = True
        if isinstance(node, Join):
            leaves = _join_leaves(node)
            if len(leaves) >= 3:
                stats = leaf_stats(leaves)
                indexes = list(range(len(stats)))
                compiled = _order_cost(stats, indexes)
                if len(stats) <= max_exhaustive:
                    best = min(
                        _order_cost(stats, order)
                        for order in itertools.permutations(indexes)
                    )
                else:
                    best = _greedy_cost(stats)
                if best > 0:
                    worst = max(worst, compiled / best)
            for leaf in leaves:
                visit(leaf)
            return
        for child in node.children():
            visit(child)

    visit(plan)
    return worst


def _greedy_cost(leaves: Sequence[Tuple[frozenset, float]]) -> float:
    """Greedy cheapest-next left-deep order (fallback above 6 leaves)."""
    remaining = list(range(len(leaves)))
    start = min(remaining, key=lambda i: leaves[i][1])
    remaining.remove(start)
    order = [start]
    cols = set(leaves[start][0])
    while remaining:
        connected = [i for i in remaining if cols & leaves[i][0]]
        pool = connected or remaining
        best = min(pool, key=lambda i: leaves[i][1])
        remaining.remove(best)
        order.append(best)
        cols |= leaves[best][0]
    return _order_cost(leaves, order)
