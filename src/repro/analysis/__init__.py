"""Static analysis of compiled plans: verification, cost, QP-rules.

The :mod:`repro.lint` package checks *queries* before anything runs;
this package checks the artifacts the engine derives from them:

* :mod:`repro.analysis.verifier` — a plan-IR verifier walking every
  :mod:`repro.fo.plan` operator tree and checking the schema, arity and
  column-provenance invariants the four execution tiers rely on
  (coded :class:`PlanInvariantError`\\ s, ``PV001``–``PV013``).  Run
  automatically after every compilation under ``REPRO_VERIFY_PLANS=1``
  (on in tests and CI) and on demand via ``repro plan --check``.
* :mod:`repro.analysis.cost` — a static cost estimator over the plan
  IR: per-operator cardinality model from relation cardinalities,
  join-order ranking, and rewriting-size statistics from
  :mod:`repro.fo.stats`.
* :mod:`repro.analysis.rules` — the QP100-series performance rule
  registry, reusing the linter's Diagnostic/RuleInfo machinery:
  static warnings for guaranteed parallel serial fallbacks, Adom*
  view recomputes, cartesian products, bad join orders, brute-force
  routing of non-FO queries, and plan-cache-unfriendly constants.
* :mod:`repro.analysis.report` — ``analyze_text``/``analyze_query``
  building the unified :class:`AnalysisReport` behind the
  ``repro analyze`` CLI (text/JSON/GitHub-annotation renderings,
  pinned by ``docs/diagnostics.schema.json``).

See ``docs/ANALYSIS.md`` for the invariant and cost-model catalogue
and ``docs/LINTING.md`` for the QP rule catalogue.
"""

from .cost import CostModel, CostReport, NodeEstimate, TableStats, table_stats
from .report import AnalysisReport, analyze_query, analyze_text
from .rules import QP_RULES, AnalysisContext, qp_rule, run_qp_rules
from .verifier import (
    PlanInvariantError,
    VerificationReport,
    plan_uses_adom,
    verification_report,
    verify_compiled,
    verify_plan,
)

__all__ = [
    "AnalysisContext",
    "AnalysisReport",
    "CostModel",
    "CostReport",
    "NodeEstimate",
    "PlanInvariantError",
    "QP_RULES",
    "TableStats",
    "VerificationReport",
    "analyze_query",
    "analyze_text",
    "plan_uses_adom",
    "qp_rule",
    "run_qp_rules",
    "table_stats",
    "verification_report",
    "verify_compiled",
    "verify_plan",
]
