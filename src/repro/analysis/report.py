"""The unified analysis report behind ``repro analyze``.

:func:`analyze_text` runs the full static pipeline over query source
text — lint (QL rules), structural classification (Theorem 4.3),
compilation of the consistent rewriting when one exists, plan-IR
verification, static cost estimation, and the QP performance rules —
and returns one :class:`AnalysisReport` that renders as compiler-style
text, as JSON pinned by ``docs/diagnostics.schema.json``, or as GitHub
workflow annotations (``--format github``).

QL and QP findings share the linter's Diagnostic type, so the merged
report dedupes identical ``(code, span, message)`` findings and sorts
everything into one stable order (span start, severity, code).  Every
stage is threaded through :mod:`repro.obs` spans under ``analyze``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.analysis import QueryAnalysis, analyze
from ..core.query import Query, QueryError
from ..core.spans import SourceText
from ..core.terms import Variable
from ..db.database import Database
from ..lint import Diagnostic, Severity, dedupe_diagnostics, lint_text
from ..obs.trace import NULL_TRACER
from .cost import CostModel, CostReport, table_stats
from .rules import AnalysisContext, run_qp_rules
from .verifier import VerificationReport, verification_report

__all__ = ["AnalysisReport", "analyze_query", "analyze_text"]

_GITHUB_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "notice",
    Severity.HINT: "notice",
}


def _gh_escape(text: str) -> str:
    """Escape a message for the GitHub workflow-command syntax."""
    return (text.replace("%", "%25")
                .replace("\r", "%0D")
                .replace("\n", "%0A"))


@dataclass
class AnalysisReport:
    """Everything ``repro analyze`` knows about one query."""

    text: str
    diagnostics: List[Diagnostic] = field(default_factory=list)
    source: Optional[SourceText] = None
    query: Optional[Query] = None
    free: Tuple[Variable, ...] = ()
    structural: Optional[QueryAnalysis] = None
    verification: Optional[VerificationReport] = None
    cost: Optional[CostReport] = None

    # ------------------------------------------------------------------
    # verdicts
    # ------------------------------------------------------------------

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def ok(self) -> bool:
        """True when nothing blocks evaluation: no error diagnostics
        (a failed plan verification surfaces as QP100, an error)."""
        return not self.errors

    @property
    def verdict(self) -> Optional[str]:
        if self.structural is None:
            return None
        return self.structural.classification.verdict.value

    def summary(self) -> Dict[str, int]:
        return {
            severity.value: sum(
                1 for d in self.diagnostics if d.severity is severity
            )
            for severity in Severity
        }

    # ------------------------------------------------------------------
    # renderings
    # ------------------------------------------------------------------

    def render_text(self) -> str:
        """Structural report, then verifier/cost verdicts, then the
        merged QL+QP diagnostics."""
        parts: List[str] = []
        if self.structural is not None:
            parts.append(self.structural.render())
        else:
            parts.append(f"query: {self.text}")
        lines: List[str] = []
        if self.verification is not None:
            v = self.verification
            verdict = "ok" if v.ok else f"FAILED ({v.code})"
            extras = []
            if v.uses_adom:
                extras.append("uses active domain")
            if v.probe_safe:
                extras.append("probe-safe")
            suffix = f"   ({', '.join(extras)})" if extras else ""
            lines.append(f"plan verifier: {verdict}   "
                         f"{v.nodes} operators checked{suffix}")
        if self.cost is not None:
            lines.append(self.cost.render())
        if lines:
            parts.append("\n".join(lines))
        if self.diagnostics:
            blocks = [d.render(self.source) for d in self.diagnostics]
            counts = ", ".join(
                f"{n} {name}(s)" for name, n in self.summary().items() if n
            )
            parts.append("\n\n".join(blocks) + f"\n\n{counts}")
        else:
            parts.append("diagnostics: none")
        return "\n\n".join(parts)

    def render_github(self) -> str:
        """One GitHub workflow-command annotation per diagnostic."""
        lines: List[str] = []
        for d in self.diagnostics:
            level = _GITHUB_LEVELS[d.severity]
            props = [f"title={_gh_escape(d.code)}"]
            if d.span is not None and self.source is not None:
                line, column = self.source.position(d.span.start)
                props += [f"line={line}", f"col={column}"]
            lines.append(
                f"::{level} {','.join(props)}::{_gh_escape(d.message)}"
            )
        if not lines:
            lines.append(f"::notice title=analyze::"
                         f"{_gh_escape(self.text)}: no diagnostics")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """JSON document pinned by ``docs/diagnostics.schema.json``."""
        payload: Dict[str, Any] = {
            "ok": self.ok,
            "query": self.text,
            "free": [v.name for v in self.free],
            "verdict": self.verdict,
            "summary": self.summary(),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "verifier": (self.verification.to_dict()
                         if self.verification is not None else None),
            "cost": self.cost.to_dict() if self.cost is not None else None,
        }
        return payload

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)


# ----------------------------------------------------------------------
# pipeline
# ----------------------------------------------------------------------


def _compile_stage(
    query: Query, free: Tuple[Variable, ...]
) -> Optional[object]:
    """The compiled plan the engine would actually run, or None.

    Open queries compile the guarded open rewriting (the parallel and
    compiled tiers' input); Boolean queries compile the consistent
    rewriting.  ``NotInFO`` cannot fire here — the caller only
    compiles after an ``in FO`` classification — but is tolerated for
    robustness (an undecided corner simply skips the plan stages).
    """
    from ..cqa.certain_answers import OpenQuery, _guarded_open_rewriting
    from ..cqa.rewriting import NotInFO, consistent_rewriting
    from ..fo.compile import compile_formula

    try:
        if free:
            open_query = OpenQuery(query, free)
            formula = _guarded_open_rewriting(open_query)
            return compile_formula(formula, free)
        return compile_formula(consistent_rewriting(query))
    except NotInFO:
        return None


def analyze_query(
    query: Query,
    free: Tuple[Variable, ...] = (),
    db: Optional[Database] = None,
    tracer=None,
    text: Optional[str] = None,
) -> AnalysisReport:
    """Analyze an already-built query (no source spans)."""
    return _analyze(
        text if text is not None else str(query),
        query=query, free=free, db=db, tracer=tracer, source=None,
        lint_diagnostics=None,
    )


def analyze_text(
    text: str,
    free: Tuple[Variable, ...] = (),
    db: Optional[Database] = None,
    tracer=None,
) -> AnalysisReport:
    """Run the full static pipeline over query source text."""
    t = tracer if tracer is not None else NULL_TRACER
    with t.span("analyze.lint"):
        lint = lint_text(text)
    return _analyze(
        text, query=lint.query, free=free, db=db, tracer=tracer,
        source=lint.source, lint_diagnostics=list(lint.diagnostics),
    )


def _analyze(
    text: str,
    query: Optional[Query],
    free: Tuple[Variable, ...],
    db: Optional[Database],
    tracer,
    source: Optional[SourceText],
    lint_diagnostics: Optional[List[Diagnostic]],
) -> AnalysisReport:
    t = tracer if tracer is not None else NULL_TRACER
    if lint_diagnostics is None:
        from ..lint import lint_query

        with t.span("analyze.lint"):
            lint_diagnostics = (list(lint_query(query).diagnostics)
                                if query is not None else [])
    report = AnalysisReport(
        text, source=source, query=query, free=free,
    )
    from ..lint import LintContext

    ctx = AnalysisContext(
        lint_ctx=(LintContext.from_query(query)
                  if query is not None else None),
        query=query, free=free, db=db,
    )
    if query is not None:
        missing = [v for v in free if v not in query.vars]
        if missing:
            names = ", ".join(v.name for v in missing)
            raise QueryError(f"free variables not in the query: [{names}]")
        with t.span("analyze.classify"):
            report.structural = analyze(query)
        ctx.classification = report.structural.classification
        if ctx.classification.in_fo:
            with t.span("analyze.compile"):
                ctx.compiled = _compile_stage(query, free)
        if ctx.compiled is not None:
            with t.span("analyze.verify") as span:
                ctx.verification = verification_report(
                    ctx.compiled.plan, expected_cols=ctx.compiled.free
                )
                span.count("nodes", ctx.verification.nodes)
            report.verification = ctx.verification
            with t.span("analyze.cost"):
                ctx.cost = CostModel(table_stats(db)).estimate(
                    ctx.compiled.plan
                )
            report.cost = ctx.cost
    with t.span("analyze.rules") as span:
        qp = run_qp_rules(ctx)
        span.count("findings", len(qp))
    report.diagnostics = dedupe_diagnostics(lint_diagnostics + qp)
    return report
