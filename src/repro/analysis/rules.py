"""The performance rules, QP100–QP112.

Where the QL-rules of :mod:`repro.lint.rules` check *admissibility*
(will the paper's machinery accept this query at all), the QP-rules
predict *execution behaviour*: which of the engine's four tiers a
query will actually reach, and what it will cost to get there.  Every
rule is decidable from the query text, its classification and its
compiled plan — nothing here runs the query.

========  ========  =====================================================
code      severity  meaning
========  ========  =====================================================
QP100     error     compiled plan fails the IR verifier (engine bug)
QP101     info      Boolean query: parallel execution falls back serial
QP102     warning   no answer variable at a key position: cannot shard
QP103     warning   plan touches Adom*: parallel refuses the plan
QP104     info      plan touches Adom*: incremental views recompute
QP105     warning   cartesian product in the compiled plan
QP106     warning   join order ≥ X times the estimated best order
QP107     warning   not in FO: certainty runs the brute-force path
QP108     hint      constants in the query defeat plan-cache reuse
QP109     warning   plan touches Adom*: columnar decodes to tuples
QP110     warning   plan has no native SQL translation: pushdown refused
QP111     warning   WAL grew past the checkpoint threshold uncompacted
QP112     hint      constants/DDL defeat the SQL statement cache
========  ========  =====================================================

Rules are registered with the :func:`qp_rule` decorator into
:data:`QP_RULES`, the machine-readable catalogue behind
``docs/LINTING.md``; the Diagnostic/Severity machinery is the
linter's own, so QP findings merge, dedupe and sort uniformly with
QL findings in an :class:`~repro.analysis.report.AnalysisReport`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
)

from ..core.classify import Classification
from ..core.query import Query
from ..core.terms import Constant, Variable
from ..db.database import Database
from ..lint.context import LintContext
from ..lint.diagnostics import Diagnostic, RuleInfo, Severity
from .cost import CostReport
from .verifier import VerificationReport, plan_uses_adom

__all__ = [
    "QP_RULES",
    "AnalysisContext",
    "JOIN_ORDER_THRESHOLD",
    "qp_rule",
    "run_qp_rules",
]

#: QP106 fires when a join subtree costs at least this many times the
#: model's best order for the same generators.
JOIN_ORDER_THRESHOLD = 4.0

PAPER = "Koutris and Wijsen, PODS 2018"
TRICHOTOMY = (
    "Koutris and Wijsen, A Trichotomy in the Data Complexity of "
    "Certain Query Answering for Conjunctive Queries"
)


@dataclass
class AnalysisContext:
    """Everything the QP checkers may inspect about one analysis run.

    Later stages are optional: ``classification`` is None when the
    query did not build, ``compiled``/``verification``/``cost`` are
    None when the query is not in FO (nothing compiles), ``db`` is
    None for a database-free analysis (the cost model then uses
    textbook defaults).
    """

    lint_ctx: Optional[LintContext] = None
    query: Optional[Query] = None
    free: Tuple[Variable, ...] = ()
    classification: Optional[Classification] = None
    compiled: Optional[object] = None  # fo.compile.CompiledQuery
    verification: Optional[VerificationReport] = None
    cost: Optional[CostReport] = None
    db: Optional[Database] = None

    @property
    def in_fo(self) -> bool:
        return (self.classification is not None
                and self.classification.in_fo)

    @property
    def plan(self):
        return self.compiled.plan if self.compiled is not None else None


Checker = Callable[[RuleInfo, AnalysisContext], Iterable[Diagnostic]]

QP_RULES: Dict[str, RuleInfo] = {}
_CHECKERS: List[Tuple[RuleInfo, Checker]] = []


def qp_rule(
    code: str,
    name: str,
    severity: Severity,
    summary: str,
    citation: str = "",
) -> Callable[[Checker], Checker]:
    """Register a performance rule under a stable diagnostic code."""
    info = RuleInfo(code, name, severity, summary, citation)
    if code in QP_RULES:
        raise ValueError(f"duplicate rule code {code}")
    QP_RULES[code] = info

    def decorate(checker: Checker) -> Checker:
        _CHECKERS.append((info, checker))
        return checker

    return decorate


def run_qp_rules(ctx: AnalysisContext) -> List[Diagnostic]:
    """Run every registered QP checker over the context."""
    diagnostics: List[Diagnostic] = []
    for info, checker in _CHECKERS:
        diagnostics.extend(checker(info, ctx))
    return diagnostics


# ----------------------------------------------------------------------
# plan integrity
# ----------------------------------------------------------------------


@qp_rule(
    "QP100",
    "plan-verification-failed",
    Severity.ERROR,
    "the compiled plan violates a plan-IR invariant (engine bug)",
    "docs/ANALYSIS.md: plan-IR invariants PV001-PV013",
)
def check_verification(
    info: RuleInfo, ctx: AnalysisContext
) -> Iterator[Diagnostic]:
    if ctx.verification is None or ctx.verification.ok:
        return
    error = ctx.verification.error
    yield info.diagnostic(
        f"compiled plan rejected by the verifier: {error}",
        fix="this is an engine bug, not a query problem; please report "
            "the query text and the PV code",
    )


# ----------------------------------------------------------------------
# parallel serial fallbacks (statically guaranteed)
# ----------------------------------------------------------------------


@qp_rule(
    "QP101",
    "parallel-boolean-fallback",
    Severity.INFO,
    "Boolean query: parallel execution always falls back to serial",
    "docs/PERFORMANCE.md: certainty does not decompose over shards "
    "for Boolean queries",
)
def check_boolean_fallback(
    info: RuleInfo, ctx: AnalysisContext
) -> Iterator[Diagnostic]:
    if not ctx.in_fo or ctx.free:
        return
    yield info.diagnostic(
        "Boolean query: method=parallel will fall back to the serial "
        "compiled plan (fallback reason \"boolean\")",
        fix="name answer variables with --free to enable sharding, or "
            "use --method compiled directly",
    )


@qp_rule(
    "QP102",
    "no-shard-variable",
    Severity.WARNING,
    "no answer variable at a key position: the database cannot be "
    "sharded",
    "repro.parallel.partition: blocks are routed by a key position "
    "carrying an answer variable",
)
def check_no_shard_variable(
    info: RuleInfo, ctx: AnalysisContext
) -> Iterator[Diagnostic]:
    from ..cqa.certain_answers import OpenQuery
    from ..parallel.partition import shard_spec

    if not ctx.in_fo or not ctx.free or ctx.query is None:
        return
    try:
        open_query = OpenQuery(ctx.query, ctx.free)
    except Exception:
        return
    if shard_spec(open_query, ctx.db) is not None:
        return
    names = ", ".join(v.name for v in ctx.free)
    yield info.diagnostic(
        f"no answer variable ({names}) occurs at a key position of any "
        f"atom: method=parallel will fall back to serial "
        f"(fallback reason \"no-shard-variable\")",
        fix="route work by an answer variable that appears in some "
            "atom's primary key",
    )


@qp_rule(
    "QP103",
    "parallel-adom-fallback",
    Severity.WARNING,
    "compiled plan touches the active domain: parallel execution "
    "refuses it",
    "repro.parallel.executor: shards see a smaller active domain, so "
    "Adom* plans are not shard-local",
)
def check_adom_parallel(
    info: RuleInfo, ctx: AnalysisContext
) -> Iterator[Diagnostic]:
    if ctx.plan is None or not ctx.free:
        return
    if not plan_uses_adom(ctx.plan):
        return
    yield info.diagnostic(
        "compiled plan contains Adom* operators: method=parallel will "
        "fall back to serial (fallback reason \"plan-touches-adom\")",
        fix="guard every negated atom's variables by positive atoms so "
            "the compiler never reaches for the active domain",
    )


@qp_rule(
    "QP104",
    "view-adom-recompute",
    Severity.INFO,
    "compiled plan touches the active domain: incremental views "
    "recompute instead of applying deltas",
    "repro.incremental.views: Adom* subtrees are marked dirty on any "
    "domain change and recomputed from scratch",
)
def check_adom_views(
    info: RuleInfo, ctx: AnalysisContext
) -> Iterator[Diagnostic]:
    if ctx.plan is None:
        return
    if not plan_uses_adom(ctx.plan):
        return
    yield info.diagnostic(
        "compiled plan contains Adom* operators: incremental views on "
        "this query take the recompute-from-dirty-subtree escape hatch "
        "whenever the active domain changes",
    )


# ----------------------------------------------------------------------
# cost-model findings
# ----------------------------------------------------------------------


@qp_rule(
    "QP105",
    "cartesian-product",
    Severity.WARNING,
    "the compiled plan contains a cartesian product",
    "System R: a join with no shared columns multiplies cardinalities",
)
def check_cartesian(
    info: RuleInfo, ctx: AnalysisContext
) -> Iterator[Diagnostic]:
    if ctx.cost is None:
        return
    for node in ctx.cost.cartesian_nodes:
        estimate = ctx.cost.for_node(node)
        left = ", ".join(v.name for v in node.left.cols) or "()"
        right = ", ".join(v.name for v in node.right.cols) or "()"
        yield info.diagnostic(
            f"join of ({left}) with ({right}) shares no columns: "
            f"estimated {estimate.rows:,.0f} output rows",
            fix="connect the subqueries through a shared variable, or "
                "accept the product if both sides are small",
        )


@qp_rule(
    "QP106",
    "join-order",
    Severity.WARNING,
    "a join subtree is far more expensive than the estimated best "
    "order of the same generators",
    "Selinger et al. 1979: join order dominates plan cost",
)
def check_join_order(
    info: RuleInfo, ctx: AnalysisContext
) -> Iterator[Diagnostic]:
    if ctx.cost is None:
        return
    ratio = ctx.cost.join_order_ratio
    if ratio < JOIN_ORDER_THRESHOLD:
        return
    yield info.diagnostic(
        f"compiled join order costs an estimated {ratio:,.1f}x the best "
        f"order of the same generators (threshold "
        f"{JOIN_ORDER_THRESHOLD:g}x)",
        fix="reorder the query's atoms: the compiler joins generators "
            "in syntactic order",
    )


# ----------------------------------------------------------------------
# routing and caching
# ----------------------------------------------------------------------


@qp_rule(
    "QP107",
    "brute-force-path",
    Severity.WARNING,
    "no FO rewriting exists: certainty enumerates repairs",
    TRICHOTOMY,
)
def check_brute_force(
    info: RuleInfo, ctx: AnalysisContext
) -> Iterator[Diagnostic]:
    if ctx.classification is None or ctx.in_fo:
        return
    from ..core.classify import Verdict

    verdict = ctx.classification.verdict
    if verdict is Verdict.NOT_IN_FO:
        head = "query has no consistent FO rewriting"
    else:
        head = "classification is undecided, no FO rewriting is known"
    hardness = ctx.classification.hardness.value
    grade = f", {hardness}" if hardness != "none" else ""
    detail = ""
    if ctx.db is not None:
        repairs = ctx.db.repair_count()
        detail = f" ({ctx.db.size()} facts, {repairs:,} repairs here)"
    yield info.diagnostic(
        f"{head} ({ctx.classification.reason}{grade}): method=auto "
        f"routes to the brute-force repair enumeration, exponential in "
        f"the number of inconsistent blocks{detail}",
        fix="break the attack-graph cycle (see repro graph), or accept "
            "brute-force cost on small databases",
    )


@qp_rule(
    "QP108",
    "plan-cache-constants",
    Severity.HINT,
    "constants in the query are inlined into the rewriting, so each "
    "distinct constant compiles a distinct cached plan",
    "repro.fo.compile.PlanCache is keyed on the rewriting formula",
)
def check_plan_cache(
    info: RuleInfo, ctx: AnalysisContext
) -> Iterator[Diagnostic]:
    if ctx.query is None or not ctx.in_fo:
        return
    constants = sorted(
        {
            repr(term.value)
            for atom in ctx.query.atoms
            for term in atom.terms
            if isinstance(term, Constant)
        }
    )
    if not constants:
        return
    yield info.diagnostic(
        f"query mentions constant(s) {', '.join(constants)}: the plan "
        f"cache is keyed on the rewriting formula, so every distinct "
        f"constant value compiles and caches a separate plan",
        fix="for parameter sweeps over many constants, prefer a free "
            "variable plus a post-filter to reuse one compiled plan",
    )


@qp_rule(
    "QP109",
    "columnar-decode-fallback",
    Severity.WARNING,
    "compiled plan touches the active domain: the columnar backend "
    "decodes those nodes to tuples",
    "repro.columnar.executor: Adom* nodes enumerate the active domain, "
    "which no encoded column carries, so the vectorized executor runs "
    "them row-at-a-time and re-encodes the result",
)
def check_columnar_decode(
    info: RuleInfo, ctx: AnalysisContext
) -> Iterator[Diagnostic]:
    if ctx.plan is None:
        return
    if not plan_uses_adom(ctx.plan):
        return
    yield info.diagnostic(
        "compiled plan contains Adom* operators: method=columnar "
        "evaluates them through the row executor and re-encodes the "
        "result (decode_fallbacks in the profile), and method=auto "
        "never routes such plans to the columnar backend",
        fix="guard every negated atom's variables by positive atoms so "
            "the compiler never reaches for the active domain",
    )


# ----------------------------------------------------------------------
# durable-store findings (only fire with a persistent --db-path)
# ----------------------------------------------------------------------


@qp_rule(
    "QP110",
    "sql-pushdown-unsupported-plan",
    Severity.WARNING,
    "mirror-backed store would route this query to SQL pushdown, but "
    "the plan contains operators with no native SQL translation",
    "repro.storage.sqlgen: supports_plan admits only the twelve known "
    "plan-IR node types; Adom* plans push down natively since the "
    "maintained repro_adom table, so only genuinely unknown operator "
    "shapes force the in-memory path",
)
def check_sql_pushdown_unsupported(
    info: RuleInfo, ctx: AnalysisContext
) -> Iterator[Diagnostic]:
    from ..storage.pushdown import mirror_capable, sql_min_facts
    from ..storage.sqlgen import supports_plan

    if ctx.plan is None or ctx.db is None or not mirror_capable(ctx.db):
        return
    if supports_plan(ctx.plan):
        return
    if ctx.db.size() < sql_min_facts():
        return
    yield info.diagnostic(
        f"store holds {ctx.db.size():,} facts (>= REPRO_SQL_MIN_FACTS "
        f"= {sql_min_facts():,}) but the compiled plan contains "
        f"operators the native SQL compiler cannot translate: "
        f"method=auto falls back to the in-memory executors instead of "
        f"the sqlite mirror (fallback_unsupported in the storage "
        f"metrics)",
        fix="recompile through the stock plan lowering (custom plan "
            "nodes have no SQL translation), or run method=compiled/"
            "columnar explicitly",
    )


@qp_rule(
    "QP111",
    "wal-compaction-overdue",
    Severity.WARNING,
    "the store's WAL grew past the checkpoint threshold without a "
    "compacting checkpoint",
    "repro.storage.store: recovery replays the whole WAL tail, so "
    "replay time grows linearly until a checkpoint prunes it",
)
def check_wal_compaction(
    info: RuleInfo, ctx: AnalysisContext
) -> Iterator[Diagnostic]:
    from ..storage.pushdown import mirror_capable
    from ..storage.store import checkpoint_threshold_bytes

    if ctx.db is None or not mirror_capable(ctx.db):
        return
    status = ctx.db.storage_status()  # type: ignore[attr-defined]
    threshold = checkpoint_threshold_bytes()
    wal_bytes = int(status["wal_bytes"])
    if wal_bytes < threshold:
        return
    yield info.diagnostic(
        f"WAL holds {wal_bytes:,} bytes across "
        f"{status['wal_segments']} segment(s), past the "
        f"REPRO_WAL_CHECKPOINT_BYTES threshold ({threshold:,}): every "
        f"recovery replays this tail in full",
        fix="run `repro db checkpoint <path>` to compact, or set "
            "REPRO_WAL_AUTOCHECKPOINT_BYTES to checkpoint automatically "
            "on commit",
    )


@qp_rule(
    "QP112",
    "sql-statement-cache-hostile",
    Severity.HINT,
    "the query's shape defeats the SQL pushdown's prepared-statement "
    "cache (constants baked into the plan, or per-call DDL)",
    "repro.storage.pushdown: the statement cache is keyed on the "
    "compiled plan object, which embeds the query's constants — the "
    "SQL-tier sibling of QP108's plan-cache rule",
)
def check_sql_stmt_cache(
    info: RuleInfo, ctx: AnalysisContext
) -> Iterator[Diagnostic]:
    if ctx.query is None or not ctx.in_fo:
        return
    constants = sorted(
        {
            repr(term.value)
            for atom in ctx.query.atoms
            for term in atom.terms
            if isinstance(term, Constant)
        }
    )
    if constants:
        yield info.diagnostic(
            f"query mentions constant(s) {', '.join(constants)}: they "
            f"are baked into the compiled plan, so each distinct value "
            f"compiles (and caches) a separate SQL statement — only "
            f"runtime parameters bind per call",
            fix="for parameter sweeps over many constants, prefer a "
                "free variable plus a post-filter so one cached "
                "statement serves every value",
        )
    if ctx.db is not None:
        missing = sorted(
            atom.relation for atom in ctx.query.atoms
            if atom.relation not in ctx.db.schemas
        )
        if missing:
            yield info.diagnostic(
                f"relation(s) {', '.join(missing)} are absent from the "
                f"database: every SQL-tier call creates the empty "
                f"table(s) before querying (per-call DDL on the legacy "
                f"path; a statement-cache epoch bump on the mirror)",
                fix="declare the relation once with add_relation so "
                    "the schema is stable before querying",
            )
