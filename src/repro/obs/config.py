"""``RunConfig``: one dataclass for the engine's runtime knobs.

The knobs used to live in scattered ``os.environ`` reads —
``REPRO_MAX_WORKERS`` in :mod:`repro.parallel.pool`,
``REPRO_PARALLEL_MIN_FACTS`` in :mod:`repro.parallel.executor`,
``BENCH_PARALLEL_SMOKE`` in the benchmark scripts — plus the new
``REPRO_TRACE_FILE``.  :class:`RunConfig` consolidates them: construct
one explicitly for programmatic control, or :meth:`RunConfig.from_env`
to read the environment with explicit keyword overrides winning over
env values.  ``certain_answers(..., config=)``, the engine methods,
and the CLI all accept one; omitted fields fall back to the same
defaults the env-var reads always had, so existing callers see no
behaviour change.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Any, Mapping, Optional

__all__ = ["RunConfig", "DEFAULT_MIN_FACTS", "DEFAULT_SQL_MIN_FACTS",
           "DEFAULT_SQL_STMT_CACHE", "DEFAULT_COLUMNAR_MIN_FACTS"]

#: Below this many facts the parallel path falls back to serial
#: (fork + IPC overhead dwarfs the work).
DEFAULT_MIN_FACTS = 2000

#: Below this many facts the per-query overhead of sqlite (statement
#: lookup, bulk decode) beats the in-memory executors.
DEFAULT_SQL_MIN_FACTS = 4096

#: Compiled-statement LRU entries per sqlite mirror (0 disables).
DEFAULT_SQL_STMT_CACHE = 64

#: Below this many facts ``auto`` never routes to the columnar backend
#: (encoding whole relations costs more than small tuple runs save).
DEFAULT_COLUMNAR_MIN_FACTS = 4000


def _positive_int(raw: Optional[str]) -> Optional[int]:
    raw = (raw or "").strip()
    if raw.isdigit() and int(raw) > 0:
        return int(raw)
    return None


def _nonnegative_int(raw: Optional[str]) -> Optional[int]:
    raw = (raw or "").strip()
    if raw.isdigit():
        return int(raw)
    return None


@dataclass(frozen=True)
class RunConfig:
    """Consolidated runtime configuration for one engine call (or many).

    ``jobs``
        Worker count for ``method="parallel"`` (None: CPU count).
    ``max_workers``
        Hard cap on workers (env: ``REPRO_MAX_WORKERS``).
    ``parallel_min_facts``
        Database size below which the parallel path runs serially
        (env: ``REPRO_PARALLEL_MIN_FACTS``; None: 2000).
    ``shard_factor``
        Shards per worker for the parallel path (None: executor
        default of 16).
    ``trace``
        Collect spans and per-operator profiles for this run.
    ``trace_file``
        Append span JSONL here after the run (env:
        ``REPRO_TRACE_FILE``; setting it implies ``trace``).
    ``parallel_smoke``
        Benchmark smoke mode: tiny sizes, jobs=2 grid (env:
        ``BENCH_PARALLEL_SMOKE``).
    ``sql_min_facts``
        Database size below which ``auto`` skips the sqlite-mirror
        pushdown (env: ``REPRO_SQL_MIN_FACTS``; None: 4096).
    ``sql_stmt_cache``
        Compiled-statement LRU entries per sqlite mirror, 0 disables
        (env: ``REPRO_SQL_STMT_CACHE``; None: 64).
    ``columnar_min_facts``
        Database size below which ``auto`` skips the columnar backend
        (env: ``REPRO_COLUMNAR_MIN_FACTS``; None: 4000).
    """

    jobs: Optional[int] = None
    max_workers: Optional[int] = None
    parallel_min_facts: Optional[int] = None
    shard_factor: Optional[int] = None
    trace: bool = False
    trace_file: Optional[str] = None
    parallel_smoke: bool = False
    sql_min_facts: Optional[int] = None
    sql_stmt_cache: Optional[int] = None
    columnar_min_facts: Optional[int] = None

    @classmethod
    def from_env(cls, env: Optional[Mapping[str, str]] = None,
                 **overrides: Any) -> "RunConfig":
        """Environment-derived defaults, explicit overrides winning.

        ``overrides`` accepts any :class:`RunConfig` field; a ``None``
        override means "keep the env-derived value".
        """
        if env is None:
            env = os.environ
        config = cls(
            max_workers=_positive_int(env.get("REPRO_MAX_WORKERS")),
            parallel_min_facts=_nonnegative_int(
                env.get("REPRO_PARALLEL_MIN_FACTS")
            ),
            trace_file=(env.get("REPRO_TRACE_FILE") or "").strip() or None,
            parallel_smoke=bool((env.get("BENCH_PARALLEL_SMOKE") or "").strip()),
            sql_min_facts=_nonnegative_int(env.get("REPRO_SQL_MIN_FACTS")),
            sql_stmt_cache=_nonnegative_int(env.get("REPRO_SQL_STMT_CACHE")),
            columnar_min_facts=_nonnegative_int(
                env.get("REPRO_COLUMNAR_MIN_FACTS")
            ),
        )
        effective = {k: v for k, v in overrides.items() if v is not None}
        return replace(config, **effective) if effective else config

    @property
    def tracing(self) -> bool:
        """Is tracing requested (explicitly or via a trace file)?"""
        return self.trace or self.trace_file is not None

    def make_tracer(self) -> Optional[Any]:
        """A fresh :class:`~repro.obs.trace.Tracer` when tracing is on."""
        if not self.tracing:
            return None
        from .trace import Tracer

        return Tracer()

    def resolved_jobs(self, jobs: Optional[int] = None) -> int:
        """The effective worker count: explicit > config > CPU count,
        clamped by ``max_workers``."""
        n = jobs if jobs is not None else self.jobs
        if n is None:
            n = os.cpu_count() or 1
        if self.max_workers is not None:
            n = min(n, self.max_workers)
        return max(1, n)

    def resolved_min_facts(self, min_facts: Optional[int] = None) -> int:
        """The effective parallel size threshold."""
        if min_facts is not None:
            return min_facts
        if self.parallel_min_facts is not None:
            return self.parallel_min_facts
        return DEFAULT_MIN_FACTS

    def resolved_sql_min_facts(self) -> int:
        """The effective SQL-pushdown size threshold."""
        if self.sql_min_facts is not None:
            return self.sql_min_facts
        return DEFAULT_SQL_MIN_FACTS

    def resolved_sql_stmt_cache(self) -> int:
        """The effective statement-cache capacity (0 disables)."""
        if self.sql_stmt_cache is not None:
            return self.sql_stmt_cache
        return DEFAULT_SQL_STMT_CACHE

    def resolved_columnar_min_facts(self) -> int:
        """The effective columnar size threshold."""
        if self.columnar_min_facts is not None:
            return self.columnar_min_facts
        return DEFAULT_COLUMNAR_MIN_FACTS
