"""``ExecutionOptions``: one frozen request object for every engine call.

The engine grew one keyword at a time — ``method=``, ``jobs=``,
``tracer=``, ``config=`` — plus env-var gates (``REPRO_SQL_MIN_FACTS``,
``REPRO_COLUMNAR_MIN_FACTS``, ...) scattered across the SQL and
columnar routers.  :class:`ExecutionOptions` consolidates the whole
call surface into a single frozen dataclass built on
:class:`repro.obs.config.RunConfig` (explicit fields beat env
fallbacks), with a strict JSON round-trip (:meth:`to_dict` /
:meth:`from_dict`) so the same object *is* the wire form of a
``repro serve`` request body (``docs/serve.schema.json``).

Accepted by :meth:`repro.cqa.engine.CertaintyEngine.certain`,
:meth:`~repro.cqa.engine.CertaintyEngine.certain_answers`, and the
module-level :func:`repro.cqa.certain_answers.certain_answers` as the
``options`` parameter, which also takes a bare method string
(``"compiled"``) as blessed shorthand.  The legacy ``method=`` /
``jobs=`` / ``config=`` keywords remain as shims that fold into an
``ExecutionOptions`` and raise :class:`DeprecationWarning` — escalated
to errors for repro-internal callers by the ``filterwarnings`` entry in
``pyproject.toml``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields, replace
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from .config import RunConfig

__all__ = [
    "ExecutionOptions",
    "KNOWN_METHODS",
    "OptionsError",
    "close_tracer",
    "merge_legacy_options",
    "open_tracer",
]

#: Every accepted ``method`` value: ``auto`` plus the engine's
#: strategies (:data:`repro.cqa.engine.METHODS`).
KNOWN_METHODS: Tuple[str, ...] = (
    "auto", "brute", "interpreted", "rewriting", "compiled", "sql",
    "parallel", "columnar",
)

#: Fields that require a positive int when set.
_POSITIVE_FIELDS = ("jobs", "max_workers", "shard_factor")

#: Fields that require a non-negative int when set (0 is meaningful:
#: "no threshold" / "cache disabled").
_NONNEGATIVE_FIELDS = (
    "parallel_min_facts", "sql_min_facts", "sql_stmt_cache",
    "columnar_min_facts",
)

#: RunConfig fields an ExecutionOptions shares (same names, same
#: semantics); used to lift a legacy ``config=RunConfig`` and to build
#: :meth:`ExecutionOptions.run_config`.
_SHARED_CONFIG_FIELDS = (
    "jobs", "max_workers", "parallel_min_facts", "shard_factor",
    "trace", "trace_file", "sql_min_facts", "sql_stmt_cache",
    "columnar_min_facts",
)


class OptionsError(ValueError):
    """An invalid :class:`ExecutionOptions` field or wire payload."""


@dataclass(frozen=True)
class ExecutionOptions:
    """How one ``certain`` / ``certain_answers`` call should execute.

    ``method``
        Strategy name, or ``"auto"`` for complexity-based routing
        (compiled when the query is in FO, upgraded to ``sql`` /
        ``columnar`` when their routers say the backend pays off,
        ``brute`` otherwise).  ``auto`` plus ``jobs`` selects
        ``parallel``, mirroring the CLI's ``--jobs`` semantics.
    ``jobs``
        Worker count for the parallel path (None: CPU count, capped
        by ``max_workers``).
    ``trace`` / ``trace_file``
        Collect spans and per-operator profiles; ``trace_file``
        additionally appends span JSONL after the call (and implies
        ``trace``).  When the caller passes no explicit ``tracer=``,
        the engine creates and flushes one from these fields.
    ``max_workers`` / ``parallel_min_facts`` / ``shard_factor``
        Parallel-executor knobs (env fallbacks: ``REPRO_MAX_WORKERS``,
        ``REPRO_PARALLEL_MIN_FACTS``).
    ``sql_min_facts`` / ``sql_stmt_cache``
        SQL-pushdown gates (env fallbacks: ``REPRO_SQL_MIN_FACTS``,
        ``REPRO_SQL_STMT_CACHE``).
    ``columnar_min_facts``
        Size gate of the vectorized router (env fallback:
        ``REPRO_COLUMNAR_MIN_FACTS``).

    Set fields always beat environment values; unset (``None``) fields
    fall back to the env-derived defaults via :meth:`run_config`.
    """

    method: str = "auto"
    jobs: Optional[int] = None
    trace: bool = False
    trace_file: Optional[str] = None
    max_workers: Optional[int] = None
    parallel_min_facts: Optional[int] = None
    shard_factor: Optional[int] = None
    sql_min_facts: Optional[int] = None
    sql_stmt_cache: Optional[int] = None
    columnar_min_facts: Optional[int] = None

    def __post_init__(self) -> None:
        if not isinstance(self.method, str) or self.method not in KNOWN_METHODS:
            raise OptionsError(
                f"unknown method {self.method!r}; expected one of "
                f"{KNOWN_METHODS}"
            )
        for name in _POSITIVE_FIELDS:
            value = getattr(self, name)
            if value is not None and (
                not isinstance(value, int) or isinstance(value, bool)
                or value < 1
            ):
                raise OptionsError(f"{name} must be a positive integer")
        for name in _NONNEGATIVE_FIELDS:
            value = getattr(self, name)
            if value is not None and (
                not isinstance(value, int) or isinstance(value, bool)
                or value < 0
            ):
                raise OptionsError(f"{name} must be a non-negative integer")
        if not isinstance(self.trace, bool):
            raise OptionsError("trace must be a boolean")
        if self.trace_file is not None and not isinstance(self.trace_file, str):
            raise OptionsError("trace_file must be a string")
        if self.jobs is not None and self.method not in ("auto", "parallel"):
            raise OptionsError(
                f"jobs= only applies to method='parallel', not "
                f"{self.method!r}"
            )

    # -- construction -------------------------------------------------

    @classmethod
    def coerce(
        cls,
        value: Union[None, str, Mapping[str, Any], "ExecutionOptions"],
    ) -> "ExecutionOptions":
        """The options object for any accepted ``options=`` argument.

        ``None`` means all defaults, a string is method shorthand
        (``certain(db, "compiled")``), a mapping is the strict wire
        form (:meth:`from_dict`), and an :class:`ExecutionOptions`
        passes through unchanged.
        """
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls(method=value)
        if isinstance(value, Mapping):
            return cls.from_dict(value)
        raise OptionsError(
            f"options must be a method string, a mapping, or "
            f"ExecutionOptions, not {type(value).__name__}"
        )

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExecutionOptions":
        """Strict wire-form decoding: unknown keys are rejected.

        This is the shape of the ``options`` member of a
        ``repro serve`` request body (``docs/serve.schema.json``), so
        typos fail loudly instead of silently running with defaults.
        """
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise OptionsError(
                f"unknown option field(s) {unknown}; expected a subset "
                f"of {sorted(known)}"
            )
        return cls(**dict(payload))

    @classmethod
    def from_env(
        cls,
        env: Optional[Mapping[str, str]] = None,
        **overrides: Any,
    ) -> "ExecutionOptions":
        """Env-derived defaults with explicit overrides winning.

        Reads the same variables as :meth:`RunConfig.from_env`; a
        ``None`` override keeps the env-derived value (the established
        overrides-beat-env pattern).
        """
        base = RunConfig.from_env(env)
        merged: Dict[str, Any] = {
            name: getattr(base, name) for name in _SHARED_CONFIG_FIELDS
        }
        for key, value in overrides.items():
            if value is not None:
                merged[key] = value
        return cls(**merged)

    # -- wire form ----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """The compact JSON form: defaults omitted, ``method`` always
        present.  ``from_dict(to_dict(o)) == o`` for every ``o``."""
        out: Dict[str, Any] = {"method": self.method}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name != "method" and value != f.default:
                out[f.name] = value
        return out

    def replace(self, **changes: Any) -> "ExecutionOptions":
        """A copy with the given fields replaced (re-validated)."""
        return replace(self, **changes)

    # -- resolution ---------------------------------------------------

    @property
    def resolved_method(self) -> str:
        """``method`` with the ``auto`` + ``jobs`` shorthand applied.

        Data-dependent ``auto`` routing (SQL pushdown, columnar cost
        model) still happens inside the engine; this only settles the
        part that is knowable without a database.
        """
        if self.method == "auto" and self.jobs is not None:
            return "parallel"
        return self.method

    @property
    def tracing(self) -> bool:
        """Is tracing requested (explicitly or via a trace file)?"""
        return self.trace or self.trace_file is not None

    def run_config(self) -> RunConfig:
        """The :class:`RunConfig` this call runs under: set fields win,
        unset fields fall back to the environment."""
        return RunConfig.from_env(
            jobs=self.jobs,
            max_workers=self.max_workers,
            parallel_min_facts=self.parallel_min_facts,
            shard_factor=self.shard_factor,
            trace=self.trace or None,
            trace_file=self.trace_file,
            sql_min_facts=self.sql_min_facts,
            sql_stmt_cache=self.sql_stmt_cache,
            columnar_min_facts=self.columnar_min_facts,
        )

    def make_tracer(self) -> Optional[Any]:
        """A fresh :class:`~repro.obs.trace.Tracer` when tracing is on."""
        if not self.tracing:
            return None
        from .trace import Tracer

        return Tracer()


def open_tracer(
    opts: ExecutionOptions, tracer: Optional[Any]
) -> Tuple[Optional[Any], bool]:
    """The tracer an engine call should run under.

    An explicit ``tracer=`` always wins (the caller owns it); otherwise
    the options' ``trace`` / ``trace_file`` fields create one the
    engine owns — flushed by :func:`close_tracer` on the way out.
    Returns ``(tracer_or_None, engine_owns_it)``.
    """
    if tracer is not None:
        return tracer, False
    made = opts.make_tracer()
    return made, made is not None


def close_tracer(
    opts: ExecutionOptions, tracer: Optional[Any], own: bool
) -> None:
    """Flush an engine-owned tracer's span JSONL when configured."""
    if own and tracer is not None and opts.trace_file:
        tracer.write_jsonl(opts.trace_file)


_UNSET: Any = object()


def merge_legacy_options(
    options: Union[None, str, Mapping[str, Any], ExecutionOptions],
    *,
    where: str,
    method: Any = _UNSET,
    jobs: Any = _UNSET,
    config: Any = _UNSET,
    stacklevel: int = 3,
) -> ExecutionOptions:
    """Fold the deprecated ``method=`` / ``jobs=`` / ``config=``
    keywords into an :class:`ExecutionOptions`.

    Passing any of them (non-``None``) warns with
    :class:`DeprecationWarning` attributed to the *caller* of ``where``
    — which the ``filterwarnings`` entry in ``pyproject.toml``
    escalates to an error for repro-internal callers, so the library
    itself can never regress onto its own deprecated surface.  Explicit
    fields of ``options`` win over the legacy keywords; a legacy
    ``config=RunConfig`` contributes only fields ``options`` leaves
    unset.
    """
    opts = ExecutionOptions.coerce(options)
    legacy = []
    if method is not _UNSET and method is not None:
        legacy.append("method=")
    if jobs is not _UNSET and jobs is not None:
        legacy.append("jobs=")
    if config is not _UNSET and config is not None:
        legacy.append("config=")
    if not legacy:
        return opts
    warnings.warn(
        f"{where}: the {'/'.join(legacy)} keyword(s) are deprecated; "
        f"pass ExecutionOptions (or a method string) as `options` "
        f"instead — see docs/SERVE.md for the migration table",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
    updates: Dict[str, Any] = {}
    if method is not _UNSET and method is not None and opts.method == "auto":
        updates["method"] = method
    if jobs is not _UNSET and jobs is not None and opts.jobs is None:
        updates["jobs"] = jobs
    if updates:
        opts = replace(opts, **updates)
    if config is not _UNSET and config is not None:
        lifted: Dict[str, Any] = {}
        for name in _SHARED_CONFIG_FIELDS:
            value = getattr(config, name, None)
            if name == "trace":
                if value and not opts.trace:
                    lifted["trace"] = True
            elif name == "jobs":
                # The historical contract lifted config.jobs only for
                # the parallel path; keep that so a serial method plus
                # a jobs-bearing RunConfig stays legal.
                if (value is not None and opts.jobs is None
                        and opts.method in ("auto", "parallel")):
                    lifted["jobs"] = value
            elif value is not None and getattr(opts, name) is None:
                lifted[name] = value
        if lifted:
            opts = replace(opts, **lifted)
    return opts
