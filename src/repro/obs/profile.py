"""Per-operator plan profiling and ``EXPLAIN ANALYZE`` rendering.

A :class:`PlanProfile` is the sink the executor writes into when (and
only when) a run is traced: for every plan node it accumulates
inclusive wall time, output cardinality, memoization hits, index
lookups, and short-circuit probe counts.  The executor's hot path is
gated on ``profile is None`` — a disabled run executes byte-for-byte
the same set algebra it always did (guarded by the overhead test on
the ``bench_plan`` smoke grid).

Rendering pairs the profile with its plan tree:

* :func:`render_profile` — the indented ``repro plan --analyze`` /
  ``repro certain --trace`` text form, one line per operator annotated
  with time (inclusive and self), rows in/out, and memo/index/probe
  counters;
* :func:`profile_tree` — the same information as a nested dict;
* :func:`trace_payload` — the full ``--json`` document (operators plus
  flattened spans), the shape ``docs/trace.schema.json`` pins down.

Self time is inclusive time minus the direct children's inclusive
time, clamped at zero; because the executor memoizes per node, a
shared (DAG) subplan charges its one real execution to the first
parent and a ``memo_hits`` tick to the others.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Union

from ..fo.plan import Plan, Scan

__all__ = [
    "OperatorStats",
    "PlanProfile",
    "render_profile",
    "profile_tree",
    "trace_payload",
]

#: Counter names carried per operator, in rendering order.  The last
#: two are written only by the columnar backend: ``batches`` counts
#: materializing batch executions, ``decode_fallbacks`` counts Adom*
#: nodes that had to round-trip through the row executor (QP109).
COUNTER_NAMES = ("memo_hits", "index_hits", "rows_scanned",
                 "probe_calls", "probe_memo_hits", "batches",
                 "decode_fallbacks")


class OperatorStats:
    """Accumulated execution facts for one plan node."""

    __slots__ = ("calls", "seconds", "rows_out", "memo_hits", "index_hits",
                 "rows_scanned", "probe_calls", "probe_memo_hits",
                 "batches", "decode_fallbacks")

    def __init__(self) -> None:
        self.calls = 0
        self.seconds = 0.0
        self.rows_out = 0
        self.memo_hits = 0
        self.index_hits = 0
        self.rows_scanned = 0
        self.probe_calls = 0
        self.probe_memo_hits = 0
        self.batches = 0
        self.decode_fallbacks = 0

    def as_dict(self) -> Dict[str, Union[int, float]]:
        return {
            "calls": self.calls,
            "seconds": self.seconds,
            "rows_out": self.rows_out,
            "memo_hits": self.memo_hits,
            "index_hits": self.index_hits,
            "rows_scanned": self.rows_scanned,
            "probe_calls": self.probe_calls,
            "probe_memo_hits": self.probe_memo_hits,
            "batches": self.batches,
            "decode_fallbacks": self.decode_fallbacks,
        }


class PlanProfile:
    """Per-node stats sink for one (or several) plan executions.

    Keyed by node identity; safe to reuse across repeated executions of
    the same plan object, in which case counters accumulate.
    """

    __slots__ = ("_stats",)

    def __init__(self) -> None:
        self._stats: Dict[int, OperatorStats] = {}

    def stats_for(self, plan: Plan) -> OperatorStats:
        """The (created-on-demand) stats record of one plan node."""
        stats = self._stats.get(id(plan))
        if stats is None:
            stats = OperatorStats()
            self._stats[id(plan)] = stats
        return stats

    def record(self, plan: Plan, seconds: float, rows_out: int) -> None:
        """Log one materializing execution of ``plan`` (inclusive time)."""
        stats = self.stats_for(plan)
        stats.calls += 1
        stats.seconds += seconds
        stats.rows_out = rows_out

    def count(self, plan: Plan, name: str, n: int = 1) -> None:
        """Add ``n`` to one of the node's named counters."""
        stats = self.stats_for(plan)
        setattr(stats, name, getattr(stats, name) + n)

    def total_seconds(self, plan: Plan) -> float:
        """Inclusive time recorded at the plan's root."""
        return self.stats_for(plan).seconds

    def __len__(self) -> int:
        return len(self._stats)


def _self_seconds(plan: Plan, profile: PlanProfile) -> float:
    stats = profile.stats_for(plan)
    child_seconds = sum(
        profile.stats_for(child).seconds for child in plan.children()
    )
    return max(0.0, stats.seconds - child_seconds)


def _rows_in(plan: Plan, profile: PlanProfile) -> int:
    if isinstance(plan, Scan):
        stats = profile.stats_for(plan)
        return stats.rows_scanned if stats.rows_scanned else stats.rows_out
    return sum(profile.stats_for(child).rows_out for child in plan.children())


def render_profile(plan: Plan, profile: PlanProfile) -> str:
    """The ``EXPLAIN ANALYZE`` text form: one line per operator."""
    lines: List[str] = []

    def walk(node: Plan, depth: int) -> None:
        stats = profile.stats_for(node)
        cols = ", ".join(v.name for v in node.cols)
        parts = [
            f"time={stats.seconds * 1e3:.3f}ms",
            f"self={_self_seconds(node, profile) * 1e3:.3f}ms",
            f"rows={_rows_in(node, profile)}->{stats.rows_out}",
        ]
        for name in COUNTER_NAMES:
            value = getattr(stats, name)
            if value:
                parts.append(f"{name}={value}")
        if stats.calls != 1:
            parts.append(f"calls={stats.calls}")
        lines.append(
            "  " * depth
            + f"{node.label()}  -> [{cols}]  ({' '.join(parts)})"
        )
        for child in node.children():
            walk(child, depth + 1)

    walk(plan, 0)
    return "\n".join(lines)


def profile_tree(plan: Plan, profile: PlanProfile) -> Dict[str, Any]:
    """The nested-dict form of one profiled operator tree."""
    stats = profile.stats_for(plan)
    return {
        "op": type(plan).__name__,
        "label": plan.label(),
        "cols": [v.name for v in plan.cols],
        "time_ms": round(stats.seconds * 1e3, 6),
        "self_ms": round(_self_seconds(plan, profile) * 1e3, 6),
        "calls": stats.calls,
        "rows_in": _rows_in(plan, profile),
        "rows_out": stats.rows_out,
        "memo_hits": stats.memo_hits,
        "index_hits": stats.index_hits,
        "rows_scanned": stats.rows_scanned,
        "probe_calls": stats.probe_calls,
        "probe_memo_hits": stats.probe_memo_hits,
        "batches": stats.batches,
        "decode_fallbacks": stats.decode_fallbacks,
        "children": [profile_tree(child, profile) for child in plan.children()],
    }


def trace_payload(
    query: str,
    method: str,
    tracer: Any,
    free: Optional[List[str]] = None,
    answer: Optional[bool] = None,
    answers: Optional[int] = None,
    total_ms: Optional[float] = None,
) -> Dict[str, Any]:
    """The machine-readable ``--trace --json`` document.

    Collects every plan profile the tracer accumulated (the common case
    is exactly one — the compiled execution) plus the flattened span
    records.  The shape is pinned by ``docs/trace.schema.json`` and
    validated in the ``trace-smoke`` CI job.
    """
    operators = [
        dict(profile_tree(plan, profile), **{
            k: v for k, v in tags.items() if k in ("method", "phase")
        })
        for plan, profile, tags in tracer.profiles
    ]
    if total_ms is None:
        total_ms = sum(
            record["duration_ms"]
            for record in tracer.to_records()
            if record["depth"] == 0
        )
    return {
        "schema_version": 1,
        "query": query,
        "method": method,
        "free": list(free or []),
        "answer": answer,
        "answers": answers,
        "total_ms": round(total_ms, 6),
        "operators": operators,
        "spans": tracer.to_records(),
    }
