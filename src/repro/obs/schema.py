"""A dependency-free validator for the JSON-Schema subset we pin.

The container bakes in no ``jsonschema`` package, and the trace
document shape (``docs/trace.schema.json``) only needs a small, stable
slice of the spec.  Supported keywords:

``type`` (string or list of strings), ``properties``, ``required``,
``additionalProperties`` (boolean or schema), ``items``, ``enum``,
``minimum``, ``anyOf``, and ``$ref`` into the root schema's ``$defs``.

Booleans are *not* integers here (matching JSON Schema, not Python),
and ``number`` accepts both ints and floats.  :func:`validate` returns
a list of human-readable error strings (empty = valid);
:func:`check` raises :class:`SchemaError` instead.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

__all__ = ["SchemaError", "validate", "check"]


class SchemaError(ValueError):
    """Raised by :func:`check` when an instance violates its schema."""


_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def _resolve_ref(ref: str, root: Dict[str, Any]) -> Dict[str, Any]:
    if not ref.startswith("#/"):
        raise SchemaError(f"unsupported $ref target {ref!r}")
    node: Any = root
    for part in ref[2:].split("/"):
        if not isinstance(node, dict) or part not in node:
            raise SchemaError(f"dangling $ref {ref!r}")
        node = node[part]
    if not isinstance(node, dict):
        raise SchemaError(f"$ref {ref!r} does not point at a schema")
    return node


def _type_ok(value: Any, expected: Any) -> bool:
    names = expected if isinstance(expected, list) else [expected]
    for name in names:
        checker = _TYPE_CHECKS.get(name)
        if checker is None:
            raise SchemaError(f"unsupported type keyword {name!r}")
        if checker(value):
            return True
    return False


def validate(instance: Any, schema: Dict[str, Any],
             root: Optional[Dict[str, Any]] = None,
             path: str = "$") -> List[str]:
    """Validate ``instance`` against ``schema``; return error strings."""
    if root is None:
        root = schema
    if "$ref" in schema:
        schema = _resolve_ref(schema["$ref"], root)
    errors: List[str] = []

    if "type" in schema and not _type_ok(instance, schema["type"]):
        errors.append(
            f"{path}: expected type {schema['type']}, "
            f"got {type(instance).__name__}"
        )
        return errors  # deeper keywords are meaningless on a type miss

    if "enum" in schema and instance not in schema["enum"]:
        errors.append(f"{path}: {instance!r} not in enum {schema['enum']}")

    if "anyOf" in schema:
        branches = schema["anyOf"]
        all_branch_errors = []
        for branch in branches:
            branch_errors = validate(instance, branch, root, path)
            if not branch_errors:
                break
            all_branch_errors.extend(branch_errors)
        else:
            errors.append(
                f"{path}: no anyOf branch matched "
                f"({'; '.join(all_branch_errors)})"
            )

    if "minimum" in schema and isinstance(instance, (int, float)) \
            and not isinstance(instance, bool):
        if instance < schema["minimum"]:
            errors.append(
                f"{path}: {instance} below minimum {schema['minimum']}"
            )

    if isinstance(instance, dict):
        properties = schema.get("properties", {})
        for name in schema.get("required", []):
            if name not in instance:
                errors.append(f"{path}: missing required property {name!r}")
        for name, value in instance.items():
            if name in properties:
                errors.extend(
                    validate(value, properties[name], root, f"{path}.{name}")
                )
            else:
                additional = schema.get("additionalProperties", True)
                if additional is False:
                    errors.append(f"{path}: unexpected property {name!r}")
                elif isinstance(additional, dict):
                    errors.extend(
                        validate(value, additional, root, f"{path}.{name}")
                    )

    if isinstance(instance, list) and "items" in schema:
        for i, item in enumerate(instance):
            errors.extend(
                validate(item, schema["items"], root, f"{path}[{i}]")
            )

    return errors


def check(instance: Any, schema: Dict[str, Any]) -> None:
    """Raise :class:`SchemaError` listing every violation, if any."""
    errors = validate(instance, schema)
    if errors:
        raise SchemaError("; ".join(errors))
