"""Structured tracing: nestable spans with monotonic timings.

A :class:`Span` is one timed region of work — a certainty call, a plan
execution, one shard group, one view maintenance pass — carrying free-
form ``tags`` (set at creation) and integer ``counters`` (accumulated
while the span is open).  A :class:`Tracer` maintains the span stack,
owns the finished span forest, and serializes it as JSONL (one record
per span, parent links by id) for offline attribution.

The default throughout the engine is :data:`NULL_TRACER`, a
:class:`NullTracer` whose every method is a no-op returning shared
singletons — callers thread ``tracer or NULL_TRACER`` and pay one
attribute check plus at most one no-op call per *coarse* region.  The
per-operator hot path is gated separately (see
:class:`repro.obs.profile.PlanProfile` and the ``profile is None``
branches in :class:`repro.fo.plan.Executor`), so disabled tracing adds
no measurable cost to plan execution.

Clocks are ``time.perf_counter`` (monotonic); JSONL records carry
``start_ms`` relative to the tracer's epoch, never wall-clock time.
"""

from __future__ import annotations

import json
import time
from typing import IO, Any, Dict, Iterator, List, Optional, Tuple, Union

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "read_jsonl",
    "render_spans",
]


class Span:
    """One timed region: name, tags, counters, and child spans."""

    __slots__ = ("span_id", "name", "tags", "counters", "start", "end",
                 "children")

    def __init__(self, span_id: int, name: str,
                 tags: Dict[str, Any]) -> None:
        self.span_id = span_id
        self.name = name
        self.tags = tags
        self.counters: Dict[str, int] = {}
        self.start: float = 0.0
        self.end: float = 0.0
        self.children: List["Span"] = []

    @property
    def duration_ms(self) -> float:
        """Span duration in milliseconds (0 until the span closes)."""
        return max(0.0, (self.end - self.start) * 1e3)

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the span's ``name`` counter."""
        self.counters[name] = self.counters.get(name, 0) + n

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {self.duration_ms:.3f}ms)"


class _SpanHandle:
    """Context manager opening a span on enter, closing it on exit."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._open(self._span)
        return self._span

    def __exit__(self, *exc_info: object) -> None:
        self._tracer._close(self._span)


class Tracer:
    """Collects a forest of nested spans plus attached plan profiles.

    Spans nest through the ``with tracer.span(...)`` protocol; the
    tracer tracks the open-span stack, so :meth:`count` and
    :meth:`event` attribute to the innermost open span.  Finished
    plan-execution profiles (:class:`repro.obs.profile.PlanProfile`)
    are attached via :meth:`add_profile` so renderers can pair each
    profile with its plan tree after the run.
    """

    enabled = True

    def __init__(self) -> None:
        self.roots: List[Span] = []
        self.profiles: List[Tuple[Any, Any, Dict[str, Any]]] = []
        self._stack: List[Span] = []
        self._next_id = 0
        self._epoch = time.perf_counter()

    # ------------------------------------------------------------------
    # span lifecycle
    # ------------------------------------------------------------------

    def span(self, name: str, **tags: Any) -> _SpanHandle:
        """A context manager timing one nested region."""
        return _SpanHandle(self, self._make(name, tags))

    def event(self, name: str, **tags: Any) -> Span:
        """A zero-duration span (a point annotation, e.g. a fallback)."""
        span = self._make(name, tags)
        span.start = span.end = time.perf_counter()
        self._attach(span)
        return span

    def record(self, name: str, seconds: float, **tags: Any) -> Span:
        """A completed span with an externally measured duration.

        Used where the work happened elsewhere — e.g. per-worker shard
        execution timed inside a forked process and reported back.
        """
        span = self._make(name, tags)
        span.end = time.perf_counter()
        span.start = span.end - max(0.0, seconds)
        self._attach(span)
        return span

    def count(self, name: str, n: int = 1) -> None:
        """Add to the innermost open span's counter (no-op when none)."""
        if self._stack:
            self._stack[-1].count(name, n)

    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def add_profile(self, plan: Any, profile: Any, **tags: Any) -> None:
        """Attach a finished per-operator profile for later rendering."""
        self.profiles.append((plan, profile, tags))

    # ------------------------------------------------------------------

    def _make(self, name: str, tags: Dict[str, Any]) -> Span:
        span = Span(self._next_id, name, tags)
        self._next_id += 1
        return span

    def _attach(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)

    def _open(self, span: Span) -> None:
        self._attach(span)
        self._stack.append(span)
        span.start = time.perf_counter()

    def _close(self, span: Span) -> None:
        span.end = time.perf_counter()
        # Tolerate mismatched exits (an inner span leaked by an
        # exception path): pop everything above the closing span.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    def iter_spans(self) -> Iterator[Tuple[Span, Optional[Span], int]]:
        """Depth-first ``(span, parent, depth)`` over the forest."""

        def walk(span: Span, parent: Optional[Span],
                 depth: int) -> Iterator[Tuple[Span, Optional[Span], int]]:
            yield span, parent, depth
            for child in span.children:
                yield from walk(child, span, depth + 1)

        for root in self.roots:
            yield from walk(root, None, 0)

    def to_records(self) -> List[Dict[str, Any]]:
        """Flat JSON-serializable records, one per span."""
        records = []
        for span, parent, depth in self.iter_spans():
            records.append({
                "id": span.span_id,
                "parent": parent.span_id if parent is not None else None,
                "depth": depth,
                "name": span.name,
                "start_ms": round((span.start - self._epoch) * 1e3, 6),
                "duration_ms": round(span.duration_ms, 6),
                "tags": {k: _jsonable(v) for k, v in span.tags.items()},
                "counters": dict(span.counters),
            })
        return records

    def write_jsonl(self, target: Union[str, IO[str]]) -> int:
        """Append one JSON record per span to a path or file object.

        Returns the number of records written.  Appending (not
        truncating) lets long benchmark runs accumulate traces from
        many engine calls into one attribution log.
        """
        records = self.to_records()
        if hasattr(target, "write"):
            fp = target  # type: ignore[assignment]
            for record in records:
                fp.write(json.dumps(record, sort_keys=True) + "\n")  # type: ignore[union-attr]
        else:
            with open(target, "a") as fp2:
                for record in records:
                    fp2.write(json.dumps(record, sort_keys=True) + "\n")
        return len(records)


class _NullSpan:
    """The shared do-nothing span: counts and tags vanish."""

    __slots__ = ()
    name = "null"
    tags: Dict[str, Any] = {}
    counters: Dict[str, int] = {}
    duration_ms = 0.0

    def count(self, name: str, n: int = 1) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The zero-overhead default: every method is a no-op.

    ``enabled`` is ``False``, which is what execution layers branch on
    to skip building :class:`~repro.obs.profile.PlanProfile` objects —
    the only per-operator cost tracing could add.
    """

    enabled = False
    roots: List[Span] = []
    profiles: List[Tuple[Any, Any, Dict[str, Any]]] = []

    __slots__ = ()

    def span(self, name: str, **tags: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **tags: Any) -> _NullSpan:
        return _NULL_SPAN

    def record(self, name: str, seconds: float, **tags: Any) -> _NullSpan:
        return _NULL_SPAN

    def count(self, name: str, n: int = 1) -> None:
        pass

    def current(self) -> None:
        return None

    def add_profile(self, plan: Any, profile: Any, **tags: Any) -> None:
        pass

    def iter_spans(self) -> Iterator[Tuple[Span, Optional[Span], int]]:
        return iter(())

    def to_records(self) -> List[Dict[str, Any]]:
        return []

    def write_jsonl(self, target: Union[str, IO[str]]) -> int:
        return 0


#: The process-wide no-op tracer threaded as the default everywhere.
NULL_TRACER = NullTracer()


def read_jsonl(source: Union[str, IO[str]]) -> List[Dict[str, Any]]:
    """Parse a span JSONL file back into its records (round-trip of
    :meth:`Tracer.write_jsonl`)."""
    if hasattr(source, "read"):
        lines = source.read().splitlines()  # type: ignore[union-attr]
    else:
        with open(source) as fp:
            lines = fp.read().splitlines()
    return [json.loads(line) for line in lines if line.strip()]


def render_spans(tracer: Union[Tracer, NullTracer]) -> str:
    """An indented, human-readable rendering of the span forest."""
    lines = []
    for span, _parent, depth in tracer.iter_spans():
        parts = [f"{span.name}  {span.duration_ms:.3f}ms"]
        if span.tags:
            parts.append(" ".join(
                f"{k}={_jsonable(v)}" for k, v in sorted(span.tags.items())
            ))
        if span.counters:
            parts.append(" ".join(
                f"{k}={v}" for k, v in sorted(span.counters.items())
            ))
        lines.append("  " * depth + "  ".join(parts))
    return "\n".join(lines)


def _jsonable(value: Any) -> Any:
    """Coerce a tag value to a JSON-serializable primitive."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)
