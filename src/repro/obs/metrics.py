"""Unified engine metrics: one schema over every subsystem's counters.

Before this module the engine exposed three *static* stats endpoints —
``CertaintyEngine.plan_cache_stats()`` / ``parallel_stats()`` /
``view_stats()`` — process-global, inconsistently shaped, and
undocumented.  They survive as deprecated shims; the replacement is

>>> engine = CertaintyEngine(query)          # doctest: +SKIP
>>> engine.metrics()                         # doctest: +SKIP
EngineMetrics(plan_cache={...}, parallel={...}, views={...})

:class:`EngineMetrics` is the typed snapshot (``schema_version`` 1);
:class:`MetricsRegistry` is the extension point — subsystems register
a named source callable, and :func:`collect_metrics` snapshots them
all.  The parallel source includes the **merged worker-side counters**
(``worker_plan_cache``, ``worker_rows``) that forked workers report
back per call, fixing the old behaviour where ``repro certain --jobs
--stats`` silently dropped everything that happened inside workers.

See ``docs/OBSERVABILITY.md`` for the full schema and the migration
table from the old static endpoints.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict

__all__ = [
    "EngineMetrics",
    "MetricsRegistry",
    "collect_metrics",
    "default_registry",
]

#: Version of the metrics document shape (bump on breaking changes).
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class EngineMetrics:
    """One consistent snapshot of every engine subsystem's counters.

    ``plan_cache``
        LRU compilation cache: hits, misses, evictions, size, maxsize.
    ``parallel``
        Sharded executor: runs, parallel_runs, serial_fallbacks (with
        per-reason breakdown), shard/worker counts, partition/merge/
        exec wall time, and the merged worker-side counters
        (``worker_plan_cache``, ``worker_rows``).
    ``views``
        Incremental maintenance: views registered, commits seen,
        deltas applied, rows touched, fallback (dirty-subtree)
        recomputes.
    ``extra``
        Any additionally registered sources, keyed by source name.
    """

    plan_cache: Dict[str, int]
    parallel: Dict[str, Any]
    views: Dict[str, int]
    extra: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION

    def to_dict(self) -> Dict[str, Any]:
        """The JSON-ready document (the ``--stats`` payload)."""
        out: Dict[str, Any] = {
            "schema_version": self.schema_version,
            "plan_cache": dict(self.plan_cache),
            "parallel": dict(self.parallel),
            "views": dict(self.views),
        }
        for name, counters in self.extra.items():
            out[name] = dict(counters)
        return out

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


class MetricsRegistry:
    """Named counter sources, snapshotted together.

    A *source* is a zero-argument callable returning a flat(ish) dict
    of counters.  The three core sources (``plan_cache``, ``parallel``,
    ``views``) are pre-registered on :data:`default_registry`;
    subsystems added later (or tests) can register their own and have
    them appear under :attr:`EngineMetrics.extra` automatically.
    """

    CORE = ("plan_cache", "parallel", "views")

    def __init__(self) -> None:
        self._sources: Dict[str, Callable[[], Dict[str, Any]]] = {}

    def register(self, name: str,
                 source: Callable[[], Dict[str, Any]]) -> None:
        """Add (or replace) a named counter source."""
        self._sources[name] = source

    def unregister(self, name: str) -> None:
        self._sources.pop(name, None)

    def sources(self) -> Dict[str, Callable[[], Dict[str, Any]]]:
        return dict(self._sources)

    def collect(self) -> EngineMetrics:
        """Snapshot every source into one :class:`EngineMetrics`."""
        snapshots = {name: dict(fn()) for name, fn in self._sources.items()}
        extra = {k: v for k, v in snapshots.items() if k not in self.CORE}
        return EngineMetrics(
            plan_cache=snapshots.get("plan_cache", {}),
            parallel=snapshots.get("parallel", {}),
            views=snapshots.get("views", {}),
            extra=extra,
        )


def _plan_cache_source() -> Dict[str, Any]:
    from ..fo.compile import plan_cache

    return plan_cache.stats()


def _parallel_source() -> Dict[str, Any]:
    from ..parallel import parallel_stats

    return parallel_stats()


def _views_source() -> Dict[str, Any]:
    from ..incremental import view_stats

    return view_stats()


def _columnar_source() -> Dict[str, Any]:
    from ..columnar import columnar_stats

    return columnar_stats()


def _storage_source() -> Dict[str, Any]:
    from ..storage import storage_stats

    return storage_stats()


def _make_default_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.register("plan_cache", _plan_cache_source)
    registry.register("parallel", _parallel_source)
    registry.register("views", _views_source)
    registry.register("columnar", _columnar_source)
    registry.register("storage", _storage_source)
    return registry


#: The process-wide registry behind ``CertaintyEngine.metrics()``.
default_registry = _make_default_registry()


def collect_metrics() -> EngineMetrics:
    """Snapshot the default registry (what ``engine.metrics()`` returns)."""
    return default_registry.collect()
