"""Observability: structured tracing, plan profiling, unified metrics.

The engine has six execution strategies (interpreted, rewriting,
compiled, sql, incremental, parallel); this package makes all of them
*measurable* instead of inferable from end-to-end wall clock:

* :mod:`repro.obs.trace` — a :class:`Tracer` with nestable spans
  (monotonic-clock timings, counters, tags), a zero-overhead no-op
  default, and JSONL export (``REPRO_TRACE_FILE`` / ``--trace-out``);
* :mod:`repro.obs.profile` — per-operator plan profiling
  (:class:`PlanProfile`) and the ``EXPLAIN ANALYZE``-style renderers
  behind ``repro plan --analyze`` and ``repro certain --trace``;
* :mod:`repro.obs.metrics` — :class:`EngineMetrics` /
  :class:`MetricsRegistry`, the one consistent schema subsuming the
  former ``plan_cache_stats`` / ``parallel_stats`` / ``view_stats``
  static trio (now deprecated shims on the engine);
* :mod:`repro.obs.config` — :class:`RunConfig`, consolidating the
  env-var sprawl (``REPRO_MAX_WORKERS``, ``REPRO_PARALLEL_MIN_FACTS``,
  ``REPRO_TRACE_FILE``, ``BENCH_PARALLEL_SMOKE``) behind one dataclass
  with env vars as fallback defaults;
* :mod:`repro.obs.options` — :class:`ExecutionOptions`, the frozen
  per-call request object (method, jobs, trace, routing gates) built
  on :class:`RunConfig`, with a strict JSON round-trip that doubles as
  the ``repro serve`` wire form (``docs/serve.schema.json``);
* :mod:`repro.obs.schema` — a dependency-free JSON-Schema-subset
  validator used by the ``trace-smoke`` CI job against
  ``docs/trace.schema.json``.

See ``docs/OBSERVABILITY.md`` for the span model, the metrics schema,
and the migration table from the old static stats endpoints.
"""

from .config import RunConfig
from .metrics import EngineMetrics, MetricsRegistry, collect_metrics, default_registry
from .options import KNOWN_METHODS, ExecutionOptions, OptionsError
from .profile import (
    OperatorStats,
    PlanProfile,
    profile_tree,
    render_profile,
    trace_payload,
)
from .schema import SchemaError, validate
from .trace import NULL_TRACER, NullTracer, Span, Tracer, read_jsonl, render_spans

__all__ = [
    "EngineMetrics",
    "ExecutionOptions",
    "KNOWN_METHODS",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "OperatorStats",
    "OptionsError",
    "PlanProfile",
    "RunConfig",
    "SchemaError",
    "Span",
    "Tracer",
    "collect_metrics",
    "default_registry",
    "profile_tree",
    "read_jsonl",
    "render_profile",
    "render_spans",
    "trace_payload",
    "validate",
]
