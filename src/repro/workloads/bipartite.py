"""Bipartite graph workloads for the q1 / BPM experiments (E1).

The generators produce graphs with and without perfect matchings so the
benchmark exercises both answers of CERTAINTY(q1).
"""

from __future__ import annotations

import random
from typing import Optional

from ..matching.hopcroft_karp import BipartiteGraph


def random_bipartite(
    m: int,
    edge_probability: float = 0.5,
    rng: Optional[random.Random] = None,
) -> BipartiteGraph:
    """A random balanced bipartite graph G(m, m, p)."""
    rng = rng or random.Random()
    g = BipartiteGraph(left=[("g", i) for i in range(m)],
                       right=[("b", j) for j in range(m)])
    for i in range(m):
        for j in range(m):
            if rng.random() < edge_probability:
                g.add_edge(("g", i), ("b", j))
    return g


def bipartite_with_perfect_matching(
    m: int,
    extra_edge_probability: float = 0.3,
    rng: Optional[random.Random] = None,
) -> BipartiteGraph:
    """A graph guaranteed to contain a perfect matching: a random
    permutation matching plus noise edges."""
    rng = rng or random.Random()
    g = BipartiteGraph(left=[("g", i) for i in range(m)],
                       right=[("b", j) for j in range(m)])
    perm = list(range(m))
    rng.shuffle(perm)
    for i, j in enumerate(perm):
        g.add_edge(("g", i), ("b", j))
    for i in range(m):
        for j in range(m):
            if rng.random() < extra_edge_probability:
                g.add_edge(("g", i), ("b", j))
    return g


def bipartite_without_perfect_matching(
    m: int,
    rng: Optional[random.Random] = None,
) -> BipartiteGraph:
    """A graph guaranteed to have no perfect matching: two left vertices
    share a single common neighbour and touch nothing else (a Hall
    violator of size two), the rest is random."""
    if m < 2:
        raise ValueError("need m >= 2 to plant a Hall violator")
    rng = rng or random.Random()
    g = random_bipartite(m, edge_probability=0.5, rng=rng)
    bottleneck = ("b", 0)
    for i in (0, 1):
        u = ("g", i)
        g.adj[u] = {bottleneck}
    return g


def figure_1_graph() -> BipartiteGraph:
    """The Alice/Maria/Bob/George/John database of Figure 1, as the
    bipartite graph E = {(g, b) : R(g,b) and S(b,g) both present}."""
    g = BipartiteGraph(left=["Alice", "Maria"], right=["Bob", "George"])
    # R: Alice knows Bob, George; Maria knows Bob, John.
    # S: Bob knows Alice, Maria; George knows Alice, Maria.
    g.add_edge("Alice", "Bob")      # R(Alice,Bob) & S(Bob,Alice)
    g.add_edge("Alice", "George")   # R(Alice,George) & S(George,Alice)
    g.add_edge("Maria", "Bob")      # R(Maria,Bob) & S(Bob,Maria)
    return g
