"""Exhaustive enumeration of small sjfBCQ¬ queries.

The paper's classification task is *per query*; random sampling can
miss structural corner cases.  This module enumerates EVERY query (up
to relation renaming) within a size budget — atom shapes over a fixed
variable pool with all arities, key sizes, and polarities — so the
dichotomy machinery can be validated on the complete space.

An *atom shape* is a (arity, key_size, terms) template; a query is a
set of positive shapes and negated shapes satisfying self-join-freeness
(guaranteed by numbering relations) and safety (filtered).
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Sequence, Tuple

from ..core.atoms import Atom, RelationSchema
from ..core.query import Query, QueryError
from ..core.terms import Constant, Term, Variable


def atom_shapes(
    variables: Sequence[Variable],
    max_arity: int = 2,
    constants: Sequence[Constant] = (),
) -> List[Tuple[Term, ...]]:
    """All (terms, key_size) shape pairs, flattened as term tuples with
    every legal key size.

    Returns a list of (terms, key_size) pairs.
    """
    pool: List[Term] = list(variables) + list(constants)
    shapes: List[Tuple[Tuple[Term, ...], int]] = []
    for arity in range(1, max_arity + 1):
        for terms in itertools.product(pool, repeat=arity):
            for key_size in range(1, arity + 1):
                shapes.append((tuple(terms), key_size))
    return shapes


def enumerate_queries(
    variables: Sequence[Variable] = (Variable("x"), Variable("y")),
    max_positive: int = 2,
    max_negative: int = 2,
    max_arity: int = 2,
    constants: Sequence[Constant] = (),
    require_some_variable: bool = True,
) -> Iterator[Query]:
    """Every safe sjfBCQ¬ query within the budget, up to renaming.

    Relations are named P0, P1 (positive) and N0, N1 (negated), so the
    enumeration is canonical up to relation names.  Shape multisets are
    generated order-insensitively (combinations with replacement) to
    avoid trivially isomorphic duplicates.
    """
    shapes = atom_shapes(variables, max_arity, constants)

    def build(shape, name):
        terms, key_size = shape
        schema = RelationSchema(name, len(terms), key_size)
        return Atom(schema, terms)

    for n_pos in range(1, max_positive + 1):
        for pos_shapes in itertools.combinations_with_replacement(
                shapes, n_pos):
            positives = [build(s, f"P{i}") for i, s in enumerate(pos_shapes)]
            if require_some_variable and not any(a.vars for a in positives):
                continue
            for n_neg in range(0, max_negative + 1):
                for neg_shapes in itertools.combinations_with_replacement(
                        shapes, n_neg):
                    negatives = [build(s, f"N{i}")
                                 for i, s in enumerate(neg_shapes)]
                    try:
                        yield Query(positives, negatives)
                    except QueryError:
                        continue


def enumerate_wg_not_guarded_queries() -> Iterator[Query]:
    """Every weakly-guarded-but-NOT-guarded query of the canonical
    shape: three binary positive atoms covering the variable pairs
    {x,y}, {x,z}, {y,z}, plus one negated ternary atom over a
    permutation of (x, y, z).

    With arities ≤ 2 weak guardedness collapses to guardedness (a
    negated atom has ≤ 2 variables, and its co-occurrence requirement
    already forces a guard), so this is the smallest family exercising
    the paper's distinctive regime — note these queries are not in GNFO
    (Section 2).  1152 queries.
    """
    x, y, z = Variable("x"), Variable("y"), Variable("z")

    def binary_variants(u: Variable, v: Variable, name: str):
        out = []
        for terms in ((u, v), (v, u)):
            for key_size in (1, 2):
                schema = RelationSchema(name, 2, key_size)
                out.append(Atom(schema, terms))
        return out

    pair_atoms = [
        binary_variants(x, y, "P0"),
        binary_variants(x, z, "P1"),
        binary_variants(y, z, "P2"),
    ]
    for positives in itertools.product(*pair_atoms):
        for perm in itertools.permutations((x, y, z)):
            for key_size in (1, 2, 3):
                schema = RelationSchema("N0", 3, key_size)
                negated = Atom(schema, perm)
                query = Query(list(positives), [negated])
                assert query.has_weakly_guarded_negation
                assert not query.has_guarded_negation
                yield query


def census_size(
    variables: Sequence[Variable] = (Variable("x"), Variable("y")),
    max_positive: int = 2,
    max_negative: int = 2,
    max_arity: int = 2,
    constants: Sequence[Constant] = (),
) -> int:
    """The number of queries the enumeration yields."""
    return sum(1 for _ in enumerate_queries(
        variables, max_positive, max_negative, max_arity, constants))
