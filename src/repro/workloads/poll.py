"""The town-poll workload of Example 4.6.

Schema: Likes(p̲ t̲) (all-key: a person may like many towns),
Born(p̲, t), Lives(p̲, t) (simple-key: one town each — inconsistency
means conflicting records), Mayor(t̲, p).
"""

from __future__ import annotations

import random
from typing import Optional

from ..core.atoms import RelationSchema
from ..db.database import Database

POLL_SCHEMAS = (
    RelationSchema("Likes", 2, 2),
    RelationSchema("Born", 2, 1),
    RelationSchema("Lives", 2, 1),
    RelationSchema("Mayor", 2, 1),
)


def empty_poll_database() -> Database:
    """A database with the Example 4.6 schema and no facts."""
    return Database(POLL_SCHEMAS)


def random_poll_database(
    n_people: int = 10,
    n_towns: int = 5,
    likes_per_person: int = 2,
    conflict_rate: float = 0.4,
    rng: Optional[random.Random] = None,
) -> Database:
    """A random poll database with controlled inconsistency.

    Every person has Born and Lives records; with probability
    *conflict_rate* a second conflicting record is added (violating the
    primary key).  Every town has one or two Mayor records likewise.
    """
    rng = rng or random.Random()
    people = [f"p{i}" for i in range(n_people)]
    towns = [f"t{j}" for j in range(n_towns)]
    db = empty_poll_database()
    for p in people:
        for _ in range(rng.randint(0, likes_per_person)):
            db.add("Likes", (p, rng.choice(towns)))
        for relation in ("Born", "Lives"):
            db.add(relation, (p, rng.choice(towns)))
            if rng.random() < conflict_rate:
                db.add(relation, (p, rng.choice(towns)))
    for t in towns:
        db.add("Mayor", (t, rng.choice(people)))
        if rng.random() < conflict_rate:
            db.add("Mayor", (t, rng.choice(people)))
    return db


def adversarial_poll_database(
    n_people: int = 1000,
    n_towns: int = 50,
    certain_fraction: float = 0.05,
    rng: Optional[random.Random] = None,
) -> Database:
    """A poll database where most candidates are *not* certain answers.

    The interesting regime for consistent query answering: for
    ``q_A = Lives(p|t), ¬Born(p|t), ¬Likes(p,t)``, a person with a
    conflicting Lives block is a certain answer only when *every*
    block town survives both negations.  Here each person gets a
    two-town Lives block; for all but a ``certain_fraction`` of
    people, ``Likes`` facts cover both block towns (defeating every
    repair's witness), while certain people like only towns outside
    their block.  Answer counts therefore stay small and controlled
    while the fact count — and the per-relation index mass the
    monolithic executor must grind through — grows linearly, which is
    exactly the shape the sharded parallel path is built for.

    Facts are bulk-loaded per relation via ``add_all``.
    """
    rng = rng or random.Random()
    if n_towns < 3:
        raise ValueError("adversarial_poll_database needs n_towns >= 3")
    towns = [f"t{j}" for j in range(n_towns)]
    lives: list = []
    born: list = []
    likes: list = []
    mayor: list = []
    for i in range(n_people):
        p = f"p{i}"
        t1, t2 = rng.sample(towns, 2)
        lives.append((p, t1))
        lives.append((p, t2))
        certain = rng.random() < certain_fraction
        if certain:
            # Born and Likes avoid the block towns entirely.
            outside = [t for t in (rng.choice(towns) for _ in range(8))
                       if t not in (t1, t2)]
            born.append((p, outside[0] if outside else towns[0]))
            for t in outside[1:3]:
                likes.append((p, t))
        else:
            born.append((p, rng.choice(towns)))
            likes.append((p, t1))
            likes.append((p, t2))
    for t in towns:
        mayor.append((t, f"p{rng.randrange(n_people)}"))
    db = empty_poll_database()
    db.add_all("Lives", lives)
    db.add_all("Born", born)
    db.add_all("Likes", likes)
    db.add_all("Mayor", mayor)
    return db


def paper_flavoured_poll_database() -> Database:
    """A small hand-written instance exercising all four queries."""
    db = empty_poll_database()
    rows = {
        "Likes": [("ann", "mons"), ("ann", "madison"), ("bea", "mons"),
                  ("cal", "houston")],
        "Born": [("ann", "mons"), ("bea", "madison"), ("bea", "mons"),
                 ("cal", "houston")],
        "Lives": [("ann", "madison"), ("ann", "mons"), ("bea", "mons"),
                  ("cal", "madison")],
        "Mayor": [("mons", "bea"), ("madison", "ann"), ("madison", "cal"),
                  ("houston", "cal")],
    }
    for relation, facts in rows.items():
        db.add_all(relation, facts)
    return db
