"""A customer-data-integration workload: the classic CQA motivation.

Two source systems were merged; per-customer records conflict on the
primary keys.  Schema:

* ``Customer(id̲ | city)`` — one registered city per customer;
* ``Email(id̲ | addr)`` — one primary address per customer;
* ``Blocklist(addr̲)`` — all-key set of undeliverable addresses;
* ``Consent(id̲)`` — all-key set of marketing consents;
* ``Ships(city̲ | id)`` — per city, the designated pilot customer.

Canonical queries (classifications are asserted in the tests):

* :func:`crm_deliverable` — someone consented and their email is
  certainly not blocked (acyclic → FO);
* :func:`crm_blocked` — someone's email is certainly blocked
  (negation-free, acyclic → FO);
* :func:`crm_pilot_mismatch` — some city's pilot customer certainly is
  not registered in that city (the q1 two-cycle → NL-hard).
"""

from __future__ import annotations

import random
from typing import Optional

from ..core.atoms import RelationSchema, atom
from ..core.query import Query
from ..core.terms import Variable
from ..db.database import Database

CRM_SCHEMAS = (
    RelationSchema("Customer", 2, 1),
    RelationSchema("Email", 2, 1),
    RelationSchema("Blocklist", 1, 1),
    RelationSchema("Consent", 1, 1),
    RelationSchema("Ships", 2, 1),
)


def empty_crm_database() -> Database:
    """A database with the CRM schema and no facts."""
    return Database(CRM_SCHEMAS)


def crm_deliverable() -> Query:
    """{Consent(i̲), Email(i̲, a), ¬Blocklist(a̲)}."""
    i, a = Variable("i"), Variable("a")
    return Query(
        [atom("Consent", [i]), atom("Email", [i], [a])],
        [atom("Blocklist", [a])],
    )


def crm_blocked() -> Query:
    """{Email(i̲, a), Blocklist(a̲)} — no negation."""
    i, a = Variable("i"), Variable("a")
    return Query([atom("Email", [i], [a]), atom("Blocklist", [a])])


def crm_pilot_mismatch() -> Query:
    """{Ships(c̲, i), ¬Customer(i̲, c)} — the q1 shape, NL-hard."""
    c, i = Variable("c"), Variable("i")
    return Query([atom("Ships", [c], [i])], [atom("Customer", [i], [c])])


def random_crm_database(
    n_customers: int = 20,
    n_cities: int = 6,
    conflict_rate: float = 0.4,
    blocklist_rate: float = 0.3,
    consent_rate: float = 0.6,
    rng: Optional[random.Random] = None,
) -> Database:
    """A random merged-CRM database with controlled key violations."""
    rng = rng or random.Random()
    customers = [f"cust{i}" for i in range(n_customers)]
    cities = [f"city{j}" for j in range(n_cities)]
    addresses = [f"addr{i}" for i in range(n_customers + 5)]
    db = empty_crm_database()
    for cust in customers:
        db.add("Customer", (cust, rng.choice(cities)))
        if rng.random() < conflict_rate:
            db.add("Customer", (cust, rng.choice(cities)))
        db.add("Email", (cust, rng.choice(addresses)))
        if rng.random() < conflict_rate:
            db.add("Email", (cust, rng.choice(addresses)))
        if rng.random() < consent_rate:
            db.add("Consent", (cust,))
    for addr in addresses:
        if rng.random() < blocklist_rate:
            db.add("Blocklist", (addr,))
    for city in cities:
        db.add("Ships", (city, rng.choice(customers)))
        if rng.random() < conflict_rate:
            db.add("Ships", (city, rng.choice(customers)))
    return db
