"""Adversarial / worst-case instance constructors.

* Hall-critical S-COVERING instances: exactly solvable, but removing
  any single membership breaks solvability (tight for the q_Hall
  rewriting's block search);
* bipartite graphs at the perfect-matching threshold: one forced
  augmenting path of maximal length (worst case for Hopcroft–Karp);
* maximal-repair-count databases for a fixed fact budget: block sizes
  balanced near e ≈ 2.7, i.e. all blocks of size 3 (maximizes the
  product of block sizes subject to a fixed sum).
"""

from __future__ import annotations

from typing import List

from ..core.atoms import RelationSchema
from ..db.database import Database
from ..matching.hall import SCoveringInstance
from ..matching.hopcroft_karp import BipartiteGraph


def hall_critical_instance(n: int) -> SCoveringInstance:
    """A tight S-COVERING instance: n elements, n sets forming a
    'staircase' T_i = {e_1, ..., e_i}.

    Solvable (match e_i to T_i), but every subset family T_1..T_k
    covers only k elements — Hall's condition holds with equality
    everywhere, so any deletion breaks it.
    """
    if n < 1:
        raise ValueError("n must be positive")
    elements = [f"e{i}" for i in range(1, n + 1)]
    subsets = [elements[:i] for i in range(1, n + 1)]
    return SCoveringInstance(elements, subsets)


def long_augmenting_path_graph(m: int) -> BipartiteGraph:
    """A bipartite graph whose unique perfect matching is found only
    through a chain of augmenting paths: g_i - b_i and g_i - b_{i-1}.
    """
    if m < 1:
        raise ValueError("m must be positive")
    g = BipartiteGraph(left=[("g", i) for i in range(m)],
                       right=[("b", i) for i in range(m)])
    for i in range(m):
        g.add_edge(("g", i), ("b", i))
        if i > 0:
            g.add_edge(("g", i), ("b", i - 1))
    return g


def max_repair_database(
    fact_budget: int,
    relation: str = "R",
    arity: int = 2,
) -> Database:
    """A database maximizing the repair count for a given fact budget.

    With block sizes summing to n, the product is maximized by blocks
    of size 3 (and a 2 or 4 for the remainder) — the classic integer
    partition result.  Facts are (key, i) rows of one simple-key
    relation.
    """
    if fact_budget < 1:
        raise ValueError("fact_budget must be positive")
    if arity < 2:
        raise ValueError("need a value position (arity >= 2)")
    sizes: List[int] = []
    remaining = fact_budget
    while remaining > 4:
        sizes.append(3)
        remaining -= 3
    if remaining:
        sizes.append(remaining)
    db = Database([RelationSchema(relation, arity, 1)])
    for key, size in enumerate(sizes):
        for i in range(size):
            row = (f"k{key}",) + tuple(f"v{i}" for _ in range(arity - 1))
            db.add(relation, row)
    return db


def repair_count_upper_bound(fact_budget: int) -> int:
    """The maximum repair count achievable with *fact_budget* facts in
    one simple-key relation (3^k-style partition bound)."""
    if fact_budget <= 0:
        return 1
    if fact_budget == 1:
        return 1
    if fact_budget % 3 == 0:
        return 3 ** (fact_budget // 3)
    if fact_budget % 3 == 1:
        return 4 * 3 ** ((fact_budget - 4) // 3)
    return 2 * 3 ** ((fact_budget - 2) // 3)
