"""Two-component forest workloads for the UFA experiments (E4)."""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..reductions.ufa import Forest


def random_tree_edges(
    labels: List, rng: random.Random
) -> List[Tuple]:
    """A random tree over *labels* (each new vertex attaches uniformly)."""
    edges = []
    for i in range(1, len(labels)):
        parent = labels[rng.randrange(i)]
        edges.append((parent, labels[i]))
    return edges


def random_two_component_forest(
    size_a: int,
    size_b: int,
    rng: Optional[random.Random] = None,
) -> Tuple[Forest, List, List]:
    """A forest with two random trees; returns (forest, nodes_a, nodes_b).

    Both components contain at least one edge, as required by the
    reduction of Lemma 5.3.
    """
    if size_a < 2 or size_b < 2:
        raise ValueError("each component needs at least two vertices")
    rng = rng or random.Random()
    nodes_a = [("a", i) for i in range(size_a)]
    nodes_b = [("b", i) for i in range(size_b)]
    forest = Forest()
    for e in random_tree_edges(nodes_a, rng):
        forest.add_edge(*e)
    for e in random_tree_edges(nodes_b, rng):
        forest.add_edge(*e)
    return forest, nodes_a, nodes_b


def ufa_instance(
    size_a: int,
    size_b: int,
    connected: bool,
    rng: Optional[random.Random] = None,
) -> Tuple[Forest, Tuple, Tuple]:
    """A UFA instance (forest, u, v) with the requested answer."""
    rng = rng or random.Random()
    forest, nodes_a, nodes_b = random_two_component_forest(size_a, size_b, rng)
    u = rng.choice(nodes_a)
    if connected:
        v = rng.choice([n for n in nodes_a if n != u])
    else:
        v = rng.choice(nodes_b)
    return forest, u, v
