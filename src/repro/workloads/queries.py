"""The paper's canonical queries, by example/lemma number.

Primary keys are the leading positions, exactly as underlined in the
paper.  All constructors return fresh Query objects.
"""

from __future__ import annotations

from typing import Tuple

from ..core.atoms import atom
from ..core.query import Query
from ..core.terms import Constant, Variable

_X, _Y, _P, _T = Variable("x"), Variable("y"), Variable("p"), Variable("t")


def q0() -> Query:
    """Section 5.1: q0 = {R(x̲, y), S(y̲, x)} — the classic cyclic pair
    without negation (L-hard by [19])."""
    x, y = Variable("x"), Variable("y")
    return Query([atom("R", [x], [y]), atom("S", [y], [x])])


def q1() -> Query:
    """Example 1.1 / Lemma 5.2: q1 = {R(x̲, y), ¬S(y̲, x)} — equivalent
    to the complement of BIPARTITE PERFECT MATCHING (NL-hard)."""
    x, y = Variable("x"), Variable("y")
    return Query([atom("R", [x], [y])], [atom("S", [y], [x])])


def q2() -> Query:
    """Section 5.1 / Lemma 5.3: q2 = {R(x̲ y̲), ¬S(x̲, y), ¬T(y̲, x)} —
    L-hard via Undirected Forest Accessibility.

    R is all-key (the proof of Lemma 5.3 keeps several R-facts with the
    same first component in one repair, and Lemma 5.7 needs the attack
    two-cycle to run between the two *negated* atoms); the query is
    Example 4.1's up to renaming.
    """
    x, y = Variable("x"), Variable("y")
    return Query(
        [atom("R", [x, y])],
        [atom("S", [x], [y]), atom("T", [y], [x])],
    )


def q2_example41() -> Query:
    """Example 4.1: q2 = {P(x̲ y̲), ¬R(x̲, y), ¬S(y̲, x)} with an all-key
    positive atom; its attack graph has four edges."""
    x, y = Variable("x"), Variable("y")
    return Query(
        [atom("P", [x, y])],
        [atom("R", [x], [y]), atom("S", [y], [x])],
    )


def q3(constant="c") -> Query:
    """Examples 4.2 / 4.5: q3 = {P(x̲, y), ¬N(c̲, y)} — acyclic attack
    graph, hence a consistent FO rewriting exists."""
    x, y = Variable("x"), Variable("y")
    return Query([atom("P", [x], [y])], [atom("N", [Constant(constant)], [y])])


def q4() -> Query:
    """Example 7.1: q4 = {X(x̲), Y(y̲), ¬R(x̲, y), ¬S(y̲, x)} — negation
    NOT weakly guarded; cyclic attack graph yet in FO (combinatorially)."""
    x, y = Variable("x"), Variable("y")
    return Query(
        [atom("X", [x]), atom("Y", [y])],
        [atom("R", [x], [y]), atom("S", [y], [x])],
    )


def q_hall(num_sets: int, constant="c") -> Query:
    """Examples 1.2 / 6.12: q_Hall = {S(x̲), ¬N_1(c̲, x), ..., ¬N_l(c̲, x)}.

    The complement of CERTAINTY(q_Hall) captures S-COVERING; the query
    is acyclic, and Figure 2 shows its rewriting for l = 3.
    """
    if num_sets < 0:
        raise ValueError("num_sets must be non-negative")
    x = Variable("x")
    c = Constant(constant)
    return Query(
        [atom("S", [x])],
        [atom(f"N{i}", [c], [x]) for i in range(1, num_sets + 1)],
    )


def q_example32_not_weakly_guarded() -> Query:
    """Example 3.2 (first query): {X(x̲), Y(y̲), ¬R(x̲, y), ¬S(y̲, x)} —
    x and y co-occur negated but never positively."""
    return q4()


def q_example32_weakly_guarded_not_guarded() -> Query:
    """Example 3.2 (second query): weakly guarded but not guarded:
    {R(x̲, y, z, u), S(y̲, w, z), T(x̲, u, w), ¬N(x̲, y, z, u, w)}."""
    x, y, z, u, w = (Variable(n) for n in "xyzuw")
    return Query(
        [
            atom("R", [x], [y, z, u]),
            atom("S", [y], [w, z]),
            atom("T", [x], [u, w]),
        ],
        [atom("N", [x], [y, z, u, w])],
    )


def q_gnfo_example() -> Query:
    """Section 2's non-GNFO example:
    {R(x̲, y), S(y̲, z), T(z̲, x), ¬N(x̲, y, z)}."""
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    return Query(
        [atom("R", [x], [y]), atom("S", [y], [z]), atom("T", [z], [x])],
        [atom("N", [x], [y, z])],
    )


def q_example611(constant="c", value="a") -> Query:
    """Example 6.11: q = {P(y̲), ¬N(c̲, a, y, y)} — a negated atom whose
    value positions mix a constant with a repeated variable."""
    y = Variable("y")
    return Query(
        [atom("P", [y])],
        [atom("N", [Constant(constant)], [Constant(value), y, y])],
    )


# ----------------------------------------------------------------------
# Example 4.6: the town-poll schema
# ----------------------------------------------------------------------


def poll_q1() -> Query:
    """Ex 4.6: q1 = {Mayor(t̲, p), ¬Lives(p̲, t)} — towns whose mayor
    does not live there.  Cyclic attack graph."""
    p, t = Variable("p"), Variable("t")
    return Query([atom("Mayor", [t], [p])], [atom("Lives", [p], [t])])


def poll_q2() -> Query:
    """Ex 4.6: q2 = {Likes(p̲ t̲), ¬Lives(p̲, t), ¬Mayor(t̲, p)}.
    Cyclic attack graph."""
    p, t = Variable("p"), Variable("t")
    return Query(
        [atom("Likes", [p, t])],
        [atom("Lives", [p], [t]), atom("Mayor", [t], [p])],
    )


def poll_qa() -> Query:
    """Ex 4.6: q_a = {Lives(p̲, t), ¬Born(p̲, t), ¬Likes(p̲ t̲)} —
    acyclic; its only attack goes from Lives to Likes."""
    p, t = Variable("p"), Variable("t")
    return Query(
        [atom("Lives", [p], [t])],
        [atom("Born", [p], [t]), atom("Likes", [p, t])],
    )


def poll_qb() -> Query:
    """Ex 4.6: q_b = {Likes(p̲ t̲), ¬Born(p̲, t), ¬Lives(p̲, t)} —
    acyclic; both attacks end in Likes."""
    p, t = Variable("p"), Variable("t")
    return Query(
        [atom("Likes", [p, t])],
        [atom("Born", [p], [t]), atom("Lives", [p], [t])],
    )


def all_named_queries() -> Tuple[Tuple[str, Query], ...]:
    """Every canonical query with a short label (for tests and benches)."""
    return (
        ("q0", q0()),
        ("q1", q1()),
        ("q2", q2()),
        ("q2_ex41", q2_example41()),
        ("q3", q3()),
        ("q4", q4()),
        ("q_hall_2", q_hall(2)),
        ("q_hall_3", q_hall(3)),
        ("q_ex32_wg", q_example32_weakly_guarded_not_guarded()),
        ("q_gnfo", q_gnfo_example()),
        ("q_ex611", q_example611()),
        ("poll_q1", poll_q1()),
        ("poll_q2", poll_q2()),
        ("poll_qa", poll_qa()),
        ("poll_qb", poll_qb()),
    )
