"""Synthetic inconsistent databases and random queries.

The paper has no datasets; CERTAINTY complexity depends only on block
structure, so the generators expose exactly those knobs: number of
blocks, block-size distribution, and domain size.  Random queries are
used to property-test the dichotomy machinery and to benchmark the
polynomial-time classifier (experiment E8).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.atoms import Atom, RelationSchema
from ..core.query import Query, QueryError
from ..core.terms import Constant, Variable, is_variable
from ..db.database import Database


@dataclass(frozen=True)
class DatabaseParams:
    """Knobs for random inconsistent database generation.

    Attributes
    ----------
    blocks_per_relation: how many distinct key values per relation.
    max_block_size: block sizes are uniform in [1, max_block_size];
        sizes above 1 make the database inconsistent.
    domain_size: values are drawn from range(domain_size).
    inconsistent_fraction: fraction of blocks receiving more than one
        fact (the rest stay singletons).
    """

    blocks_per_relation: int = 4
    max_block_size: int = 3
    domain_size: int = 6
    inconsistent_fraction: float = 0.5


def random_database(
    query: Query,
    params: DatabaseParams = DatabaseParams(),
    rng: Optional[random.Random] = None,
) -> Database:
    """A random database over the query's schema.

    Constants appearing in the query are added to the value pool so that
    queries with constants (q3, q_Hall, ...) are exercised nontrivially.
    """
    rng = rng or random.Random()
    pool: List = list(range(params.domain_size))
    for a in query.atoms:
        for t in a.terms:
            if not is_variable(t) and t.value not in pool:
                pool.append(t.value)

    db = Database()
    for a in query.atoms:
        db.add_relation(a.schema)
    for a in query.atoms:
        schema = a.schema
        n_value = schema.arity - schema.key_size
        keys = set()
        while len(keys) < params.blocks_per_relation:
            keys.add(tuple(rng.choice(pool) for _ in range(schema.key_size)))
            if len(keys) >= params.domain_size ** schema.key_size:
                break
        for key in keys:
            if rng.random() < params.inconsistent_fraction:
                size = rng.randint(1, params.max_block_size)
            else:
                size = 1
            for _ in range(size):
                db.add(
                    schema.name,
                    key + tuple(rng.choice(pool) for _ in range(n_value)),
                )
    return db


def random_small_database(
    query: Query,
    rng: Optional[random.Random] = None,
    domain_size: int = 4,
    facts_per_relation: int = 4,
) -> Database:
    """A tiny fully random database: suited to brute-force comparison."""
    rng = rng or random.Random()
    pool: List = list(range(domain_size))
    for a in query.atoms:
        for t in a.terms:
            if not is_variable(t) and t.value not in pool:
                pool.append(t.value)
    db = Database()
    for a in query.atoms:
        db.add_relation(a.schema)
        for _ in range(rng.randint(0, facts_per_relation)):
            db.add(a.relation, tuple(rng.choice(pool) for _ in range(a.schema.arity)))
    return db


@dataclass(frozen=True)
class QueryParams:
    """Knobs for random sjfBCQ¬ query generation."""

    n_positive: int = 3
    n_negative: int = 2
    max_arity: int = 3
    n_variables: int = 4
    constant_probability: float = 0.1
    require_weakly_guarded: bool = True


def random_query(
    params: QueryParams = QueryParams(),
    rng: Optional[random.Random] = None,
    max_attempts: int = 200,
) -> Query:
    """A random safe self-join-free query (weakly guarded if requested).

    Raises RuntimeError when no valid query is found in *max_attempts*
    draws (only plausible for contradictory parameter choices).
    """
    rng = rng or random.Random()
    for _ in range(max_attempts):
        q = _try_random_query(params, rng)
        if q is None:
            continue
        if params.require_weakly_guarded and not q.has_weakly_guarded_negation:
            continue
        return q
    raise RuntimeError(f"could not generate a valid query with {params}")


def _try_random_query(params: QueryParams, rng: random.Random) -> Optional[Query]:
    variables = [Variable(f"v{i}") for i in range(params.n_variables)]

    def draw_terms(count: int, pool: Sequence[Variable]) -> Tuple:
        out = []
        for _ in range(count):
            if rng.random() < params.constant_probability:
                out.append(Constant(rng.randint(0, 2)))
            else:
                out.append(rng.choice(list(pool)))
        return tuple(out)

    positives = []
    for i in range(params.n_positive):
        arity = rng.randint(1, params.max_arity)
        key_size = rng.randint(1, arity)
        schema = RelationSchema(f"P{i}", arity, key_size)
        positives.append(Atom(schema, draw_terms(arity, variables)))

    positive_vars = sorted(set().union(*(a.vars for a in positives)) or set())
    if not positive_vars:
        return None

    negatives = []
    for i in range(params.n_negative):
        arity = rng.randint(1, params.max_arity)
        key_size = rng.randint(1, arity)
        schema = RelationSchema(f"N{i}", arity, key_size)
        negatives.append(Atom(schema, draw_terms(arity, positive_vars)))

    try:
        return Query(positives, negatives)
    except QueryError:
        return None
