"""Synthetic inconsistent databases and random queries.

The paper has no datasets; CERTAINTY complexity depends only on block
structure, so the generators expose exactly those knobs: number of
blocks, block-size distribution, and domain size.  Random queries are
used to property-test the dichotomy machinery and to benchmark the
polynomial-time classifier (experiment E8).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.atoms import Atom, RelationSchema
from ..core.query import Query, QueryError
from ..core.terms import Constant, Variable, is_variable
from ..db.database import Database


@dataclass(frozen=True)
class DatabaseParams:
    """Knobs for random inconsistent database generation.

    Attributes
    ----------
    blocks_per_relation: how many distinct key values per relation.
    max_block_size: block sizes are uniform in [1, max_block_size];
        sizes above 1 make the database inconsistent.
    domain_size: values are drawn from range(domain_size).
    inconsistent_fraction: fraction of blocks receiving more than one
        fact (the rest stay singletons).
    """

    blocks_per_relation: int = 4
    max_block_size: int = 3
    domain_size: int = 6
    inconsistent_fraction: float = 0.5


def random_database(
    query: Query,
    params: DatabaseParams = DatabaseParams(),
    rng: Optional[random.Random] = None,
) -> Database:
    """A random database over the query's schema.

    Constants appearing in the query are added to the value pool so that
    queries with constants (q3, q_Hall, ...) are exercised nontrivially.
    """
    rng = rng or random.Random()
    pool: List = list(range(params.domain_size))
    for a in query.atoms:
        for t in a.terms:
            if not is_variable(t) and t.value not in pool:
                pool.append(t.value)

    db = Database()
    for a in query.atoms:
        db.add_relation(a.schema)
    for a in query.atoms:
        schema = a.schema
        n_value = schema.arity - schema.key_size
        keys = set()
        while len(keys) < params.blocks_per_relation:
            keys.add(tuple(rng.choice(pool) for _ in range(schema.key_size)))
            if len(keys) >= params.domain_size ** schema.key_size:
                break
        for key in keys:
            if rng.random() < params.inconsistent_fraction:
                size = rng.randint(1, params.max_block_size)
            else:
                size = 1
            for _ in range(size):
                db.add(
                    schema.name,
                    key + tuple(rng.choice(pool) for _ in range(n_value)),
                )
    return db


def random_small_database(
    query: Query,
    rng: Optional[random.Random] = None,
    domain_size: int = 4,
    facts_per_relation: int = 4,
) -> Database:
    """A tiny fully random database: suited to brute-force comparison."""
    rng = rng or random.Random()
    pool: List = list(range(domain_size))
    for a in query.atoms:
        for t in a.terms:
            if not is_variable(t) and t.value not in pool:
                pool.append(t.value)
    db = Database()
    for a in query.atoms:
        db.add_relation(a.schema)
        for _ in range(rng.randint(0, facts_per_relation)):
            db.add(a.relation, tuple(rng.choice(pool) for _ in range(a.schema.arity)))
    return db


@dataclass(frozen=True)
class UpdateStreamParams:
    """Knobs for random update streams over an existing database.

    Attributes
    ----------
    n_batches: number of committed batches in the stream.
    batch_size: mutations per batch.
    delete_fraction: probability that an op deletes a live fact instead
        of inserting one (deletions are what flip certainty *on*).
    churn: probability that an insert re-targets an existing block
        (growing it, i.e. adding inconsistency) rather than opening a
        fresh key.
    fresh_value_rate: probability that an inserted non-key value is a
        brand-new domain constant (``u0``, ``u1``, ...) instead of one
        drawn from the current active domain.
    """

    n_batches: int = 50
    batch_size: int = 4
    delete_fraction: float = 0.5
    churn: float = 0.5
    fresh_value_rate: float = 0.05


UpdateOp = Tuple[bool, str, Tuple]  # (insert?, relation, row)


def random_update_stream(
    db: Database,
    params: UpdateStreamParams = UpdateStreamParams(),
    rng: Optional[random.Random] = None,
) -> List[List[UpdateOp]]:
    """A pre-materialized update-heavy workload for *db*.

    Returns batches of ``(insert, relation, row)`` ops meant to be
    applied in order (each batch inside one ``db.batch()`` scope).  The
    stream is simulated against the database's current contents while
    being drawn, so every deletion hits a fact that is live at its point
    in the stream and duplicate inserts are avoided; *db* itself is not
    touched.  The same stream can therefore be replayed on independent
    copies — exactly what comparing incremental maintenance against
    full recompute requires.
    """
    rng = rng or random.Random()
    relations = [name for name in db.relations()]
    if not relations:
        return [[] for _ in range(params.n_batches)]
    # Live simulation state: per relation a list (O(1) swap-pop removal
    # and uniform choice) plus a membership set.
    live = {name: sorted(db.facts(name), key=repr) for name in relations}
    member = {name: set(rows) for name, rows in live.items()}
    pool: List = sorted(db.active_domain(), key=repr) or [0]
    fresh_counter = 0

    def draw_value():
        nonlocal fresh_counter
        if rng.random() < params.fresh_value_rate:
            value = f"u{fresh_counter}"
            fresh_counter += 1
            pool.append(value)
            return value
        return rng.choice(pool)

    batches: List[List[UpdateOp]] = []
    for _ in range(params.n_batches):
        batch: List[UpdateOp] = []
        for _ in range(params.batch_size):
            name = rng.choice(relations)
            schema = db.schemas[name]
            rows = live[name]
            if rows and rng.random() < params.delete_fraction:
                i = rng.randrange(len(rows))
                row = rows[i]
                rows[i] = rows[-1]
                rows.pop()
                member[name].discard(row)
                batch.append((False, name, row))
                continue
            if rows and rng.random() < params.churn:
                key = rng.choice(rows)[:schema.key_size]
            else:
                key = tuple(draw_value() for _ in range(schema.key_size))
            row = key + tuple(
                draw_value() for _ in range(schema.arity - schema.key_size)
            )
            if row in member[name]:
                continue  # duplicate insert would be a no-op anyway
            rows.append(row)
            member[name].add(row)
            batch.append((True, name, row))
        batches.append(batch)
    return batches


def apply_update_stream(
    db: Database, batches: Sequence[Sequence[UpdateOp]]
) -> int:
    """Replay a stream from :func:`random_update_stream`, one committed
    batch per entry; returns the number of ops applied."""
    applied = 0
    for batch in batches:
        with db.batch():
            for insert, relation, row in batch:
                if insert:
                    db.add(relation, row)
                else:
                    db.discard(relation, row)
                applied += 1
    return applied


@dataclass(frozen=True)
class QueryParams:
    """Knobs for random sjfBCQ¬ query generation."""

    n_positive: int = 3
    n_negative: int = 2
    max_arity: int = 3
    n_variables: int = 4
    constant_probability: float = 0.1
    require_weakly_guarded: bool = True


def random_query(
    params: QueryParams = QueryParams(),
    rng: Optional[random.Random] = None,
    max_attempts: int = 200,
) -> Query:
    """A random safe self-join-free query (weakly guarded if requested).

    Raises RuntimeError when no valid query is found in *max_attempts*
    draws (only plausible for contradictory parameter choices).
    """
    rng = rng or random.Random()
    for _ in range(max_attempts):
        q = _try_random_query(params, rng)
        if q is None:
            continue
        if params.require_weakly_guarded and not q.has_weakly_guarded_negation:
            continue
        return q
    raise RuntimeError(f"could not generate a valid query with {params}")


def _try_random_query(params: QueryParams, rng: random.Random) -> Optional[Query]:
    variables = [Variable(f"v{i}") for i in range(params.n_variables)]

    def draw_terms(count: int, pool: Sequence[Variable]) -> Tuple:
        out = []
        for _ in range(count):
            if rng.random() < params.constant_probability:
                out.append(Constant(rng.randint(0, 2)))
            else:
                out.append(rng.choice(list(pool)))
        return tuple(out)

    positives = []
    for i in range(params.n_positive):
        arity = rng.randint(1, params.max_arity)
        key_size = rng.randint(1, arity)
        schema = RelationSchema(f"P{i}", arity, key_size)
        positives.append(Atom(schema, draw_terms(arity, variables)))

    positive_vars = sorted(set().union(*(a.vars for a in positives)) or set())
    if not positive_vars:
        return None

    negatives = []
    for i in range(params.n_negative):
        arity = rng.randint(1, params.max_arity)
        key_size = rng.randint(1, arity)
        schema = RelationSchema(f"N{i}", arity, key_size)
        negatives.append(Atom(schema, draw_terms(arity, positive_vars)))

    try:
        return Query(positives, negatives)
    except QueryError:
        return None
