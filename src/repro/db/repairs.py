"""Repair enumeration, counting, and sampling.

A repair of **db** is a maximal consistent subset: it picks exactly one
fact from every block.  The number of repairs is therefore the product of
all block sizes, which makes exhaustive enumeration exponential — that is
precisely the baseline the paper's FO rewritings beat.
"""

from __future__ import annotations

import itertools
import random
from typing import Callable, Iterator, List, Optional, Tuple

from .database import Database


def _block_list(db: Database) -> List[Tuple[str, Tuple[Tuple, ...]]]:
    """Deterministically ordered blocks as (relation, rows) pairs."""
    return [
        (relation, tuple(sorted(rows, key=repr)))
        for relation, _, rows in db.all_blocks()
    ]


def _materialize(db: Database, blocks, choice) -> Database:
    out = Database(db.schemas.values())
    for (relation, _), row in zip(blocks, choice):
        out.add(relation, row)
    return out


def iter_repairs(db: Database) -> Iterator[Database]:
    """Enumerate every repair of *db* (the set rset(db)).

    The empty database has exactly one repair: itself.
    """
    blocks = _block_list(db)
    for choice in itertools.product(*(rows for _, rows in blocks)):
        yield _materialize(db, blocks, choice)


def count_repairs(db: Database) -> int:
    """|rset(db)| without enumeration."""
    return db.repair_count()


def sample_repair(db: Database, rng: Optional[random.Random] = None) -> Database:
    """One uniformly random repair."""
    rng = rng or random.Random()
    blocks = _block_list(db)
    choice = tuple(rng.choice(rows) for _, rows in blocks)
    return _materialize(db, blocks, choice)


def sample_repairs(
    db: Database, n: int, rng: Optional[random.Random] = None
) -> Iterator[Database]:
    """*n* independent uniformly random repairs (with replacement)."""
    rng = rng or random.Random()
    for _ in range(n):
        yield sample_repair(db, rng)


def find_repair_where(
    db: Database, predicate: Callable[[Database], bool]
) -> Optional[Database]:
    """The first repair satisfying *predicate*, or None.

    Used with a query-falsification predicate this is the certificate
    extractor for non-certainty: a repair where the query fails.
    """
    for repair in iter_repairs(db):
        if predicate(repair):
            return repair
    return None


def is_repair_of(candidate: Database, db: Database) -> bool:
    """Check the repair definition directly: consistent, subset, and
    containing one fact from every block."""
    if not candidate.is_consistent:
        return False
    for relation in db.relations():
        if relation not in candidate.schemas:
            return False
        if not candidate.facts(relation) <= db.facts(relation):
            return False
    picked_keys = {
        relation: {db.schemas[relation].key_of(r) for r in candidate.facts(relation)}
        for relation in db.relations()
    }
    for relation, key, _ in db.all_blocks():
        if key not in picked_keys[relation]:
            return False
    return True
