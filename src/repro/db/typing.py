"""Typed databases (Section 3 of the paper).

The paper assumes, for every variable x, an infinite set type(x) of
constants with distinct variables having disjoint types, and notes that
"because of the absence of self-joins, a database db can be trivially
transformed into a database db' that is typed relative to q such that
CERTAINTY(q) yields the same answer on db and db'".

This module implements that transformation:

* a value in a position held by variable x becomes ``("ty", x.name, v)``
  — injective per position, so blocks are preserved, and disjoint
  across variables, so only columns of the same variable can join;
* a position held in the query by a constant c keeps values equal to c
  and maps mismatching values to an inert junk value (the fact must
  stay in its block to keep the repair structure, but can never match
  the query);
* facts whose *key* positions mismatch a query constant belong to
  blocks that can never be key-relevant, yet are kept (inert) for
  uniformity.

The equivalence CERTAINTY(q)(db) == CERTAINTY(q)(db') is property-tested
against brute force for every canonical query.
"""

from __future__ import annotations

from typing import Tuple

from ..core.query import Query
from ..core.terms import is_variable
from .database import Database


def type_value(variable_name: str, value) -> Tuple:
    """The typed image of *value* in variable *variable_name*'s type."""
    return ("ty", variable_name, value)


def junk_value(relation: str, position: int, value) -> Tuple:
    """An inert value for a constant-position mismatch (never equals a
    query constant and lives in no variable's type)."""
    return ("junk", relation, position, value)


def typed_database(query: Query, db: Database) -> Database:
    """The typed transform of *db* relative to *query*.

    Relations of *db* not mentioned by the query are dropped: they never
    influence CERTAINTY(q).
    """
    atoms_by_relation = {a.relation: a for a in query.atoms}
    out = Database()
    for name, atom_obj in atoms_by_relation.items():
        out.add_relation(atom_obj.schema)
        if name not in db.schemas:
            continue
        if db.schemas[name].arity != atom_obj.schema.arity:
            raise ValueError(
                f"arity mismatch for {name}: query {atom_obj.schema.arity}, "
                f"database {db.schemas[name].arity}"
            )
        for row in db.facts(name):
            new_row = []
            for i, (term, value) in enumerate(zip(atom_obj.terms, row)):
                if is_variable(term):
                    new_row.append(type_value(term.name, value))
                elif term.value == value:
                    new_row.append(value)
                else:
                    new_row.append(junk_value(name, i, value))
            out.add(name, tuple(new_row))
    return out


def is_typed(query: Query, db: Database) -> bool:
    """Is *db* typed relative to *query* (Section 3's definition)?

    Variable positions must hold values of that variable's type; the
    values must not occur in the query; constant positions must hold
    either the query constant or a value outside every type.
    """
    query_constants = {
        t.value for a in query.atoms for t in a.terms if not is_variable(t)
    }
    for a in query.atoms:
        if a.relation not in db.schemas:
            continue
        for row in db.facts(a.relation):
            for term, value in zip(a.terms, row):
                if is_variable(term):
                    ok = (
                        isinstance(value, tuple)
                        and len(value) == 3
                        and value[0] == "ty"
                        and value[1] == term.name
                        and value not in query_constants
                    )
                    if not ok:
                        return False
    return True
