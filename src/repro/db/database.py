"""(Possibly inconsistent) databases, blocks, and consistency.

A database is a finite set of facts over a fixed schema with one primary
key per relation.  Facts are stored as raw value tuples grouped by
relation name, which keeps repair enumeration cheap.  A *block* is a
maximal set of key-equal facts; a database is consistent when every
block is a singleton (Section 3 of the paper).
"""

from __future__ import annotations

import contextlib
from typing import Callable, Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..core.atoms import Atom, RelationSchema
from .changelog import Changelog, Delta


class SchemaError(ValueError):
    """Raised on arity/signature mismatches."""


class BatchError(RuntimeError):
    """Raised on mismatched begin_batch/commit calls."""


class Database:
    """A set of facts over relations with primary keys.

    The schema maps relation names to :class:`RelationSchema`.  Relations
    may be registered eagerly (:meth:`add_relation`) or implicitly when
    the first fact arrives with an explicit schema.
    """

    def __init__(self, schemas: Iterable[RelationSchema] = ()):
        self.schemas: Dict[str, RelationSchema] = {}
        self._facts: Dict[str, set] = {}
        # Lazy column indexes: (relation, positions) -> {key: rows},
        # tagged with the relation version they were built against.
        self._versions: Dict[str, int] = {}
        self._indexes: Dict[Tuple[str, Tuple[int, ...]], Tuple[int, Dict]] = {}
        # Change capture: a monotone clock over all mutations, an open
        # batch of per-relation net deltas (None outside begin_batch/
        # commit), and subscribers receiving one Changelog per commit.
        self._clock: int = 0
        self._batch: Optional[Dict[str, Delta]] = None
        self._listeners: List[Callable[[Changelog], None]] = []
        for s in schemas:
            self.add_relation(s)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add_relation(self, schema: RelationSchema) -> None:
        """Register a relation; re-registering the same signature is a no-op."""
        existing = self.schemas.get(schema.name)
        if existing is not None:
            if existing != schema:
                raise SchemaError(
                    f"conflicting signatures for {schema.name}: "
                    f"{existing!r} vs {schema!r}"
                )
            return
        self.schemas[schema.name] = schema
        self._facts[schema.name] = set()
        self._versions[schema.name] = 0

    def add(self, relation: str, row: Sequence) -> None:
        """Add the fact relation(row) to the database."""
        schema = self.schemas.get(relation)
        if schema is None:
            raise SchemaError(f"unknown relation {relation!r}; add_relation first")
        row = tuple(row)
        if len(row) != schema.arity:
            raise SchemaError(
                f"{relation} has arity {schema.arity}, got row of length {len(row)}"
            )
        # set.add already dedupes; comparing sizes detects a genuine
        # insertion without a separate membership probe, and the version
        # only moves (invalidating lazy indexes) when the relation
        # actually changed.
        rows = self._facts[relation]
        before = len(rows)
        rows.add(row)
        if len(rows) != before:
            self._changed(relation, inserted=(row,))

    def add_fact(self, fact: Atom) -> None:
        """Add a ground atom, registering its schema if necessary."""
        self.add_relation(fact.schema)
        self.add(fact.relation, fact.as_row())

    def add_all(self, relation: str, rows: Iterable[Sequence]) -> None:
        """Add many facts of one relation in one shot.

        Unlike a loop of :meth:`add`, the relation version is bumped at
        most once, so lazy indexes built before the bulk load are
        invalidated a single time instead of once per row.  Arity is
        validated for the whole batch before anything is inserted.
        """
        schema = self.schemas.get(relation)
        if schema is None:
            raise SchemaError(f"unknown relation {relation!r}; add_relation first")
        staged = [tuple(row) for row in rows]
        for row in staged:
            if len(row) != schema.arity:
                raise SchemaError(
                    f"{relation} has arity {schema.arity}, "
                    f"got row of length {len(row)}"
                )
        target = self._facts[relation]
        fresh = [row for row in staged if row not in target]
        if fresh:
            target.update(fresh)
            self._changed(relation, inserted=fresh)

    def discard(self, relation: str, row: Sequence) -> None:
        """Remove a fact if present."""
        rows = self._facts.get(relation)
        if rows is None:
            return
        row = tuple(row)
        if row in rows:
            rows.discard(row)
            self._changed(relation, deleted=(row,))

    def discard_all(self, relation: str, rows: Iterable[Sequence]) -> None:
        """Remove many facts of one relation in one shot.

        The deletion mirror of :meth:`add_all`: the relation version is
        bumped at most once for the whole batch, so lazy indexes are
        invalidated a single time instead of once per row.  Rows not
        present are ignored, like :meth:`discard`.
        """
        target = self._facts.get(relation)
        if target is None:
            return
        doomed = {tuple(row) for row in rows}
        doomed &= target
        if doomed:
            target -= doomed
            self._changed(relation, deleted=doomed)

    def clear_relation(self, relation: str) -> None:
        """Remove every fact of one relation (schema stays registered)."""
        if relation in self._facts and self._facts[relation]:
            gone = self._facts[relation]
            self._facts[relation] = set()
            self._changed(relation, deleted=gone)

    # ------------------------------------------------------------------
    # change capture
    # ------------------------------------------------------------------

    def _changed(self, relation: str,
                 inserted: Iterable[Tuple] = (),
                 deleted: Iterable[Tuple] = ()) -> None:
        """Record one genuine mutation: bump versions and either fold
        the rows into the open batch or emit a single-op changelog."""
        self._versions[relation] = self._versions.get(relation, 0) + 1
        self._clock += 1
        if self._batch is not None:
            delta = self._batch.get(relation)
            if delta is None:
                delta = self._batch[relation] = Delta(relation)
            for row in inserted:
                delta.record_insert(row)
            for row in deleted:
                delta.record_delete(row)
        elif self._listeners:
            log = Changelog(
                self._clock, {relation: Delta(relation, inserted, deleted)}
            )
            self._notify(log)

    def _notify(self, log: Changelog) -> None:
        if not log.is_empty:
            for listener in tuple(self._listeners):
                listener(log)

    @property
    def clock(self) -> int:
        """A monotone counter bumped on every genuine mutation."""
        return self._clock

    def relation_version(self, relation: str) -> int:
        """The mutation counter of one relation (0 if never touched).

        Bumped once per genuine mutation batch, like the lazy hash
        indexes use internally; external caches (the columnar store's
        encoded columns, for one) tag entries with it to invalidate on
        updates and ``discard_all`` without polling the fact sets.
        """
        return self._versions.get(relation, 0)

    @property
    def in_batch(self) -> bool:
        """Is a begin_batch/commit batch currently open?"""
        return self._batch is not None

    def begin_batch(self) -> None:
        """Start staging mutations into one net delta per relation.

        Until :meth:`commit`, subscribers see nothing; mutations apply
        to the database immediately (reads stay consistent) but their
        deltas are folded together, with add-then-discard of the same
        row cancelling out.
        """
        if self._batch is not None:
            raise BatchError("a batch is already open; commit it first")
        self._batch = {}

    def commit(self) -> Changelog:
        """Close the open batch and publish its net changelog."""
        if self._batch is None:
            raise BatchError("no open batch; call begin_batch first")
        staged, self._batch = self._batch, None
        log = Changelog(self._clock, staged)
        self._notify(log)
        return log

    @contextlib.contextmanager
    def batch(self) -> Iterator[None]:
        """``with db.batch(): ...`` — begin_batch/commit as a scope."""
        self.begin_batch()
        try:
            yield
        finally:
            self.commit()

    def subscribe(self, listener: Callable[[Changelog], None]) -> None:
        """Register a callback receiving one Changelog per commit (and
        per mutation outside any batch).  Empty changelogs are skipped."""
        if listener not in self._listeners:
            self._listeners.append(listener)

    def unsubscribe(self, listener: Callable[[Changelog], None]) -> None:
        """Remove a previously subscribed callback (no-op if absent)."""
        if listener in self._listeners:
            self._listeners.remove(listener)

    def index(
        self, relation: str, positions: Tuple[int, ...]
    ) -> Dict[Tuple, FrozenSet[Tuple]]:
        """A hash index on *positions* of one relation, built lazily and
        rebuilt automatically after mutations.

        Maps each projection ``tuple(row[i] for i in positions)`` to the
        set of rows sharing it.  Used by the satisfaction engine and the
        FO evaluator to avoid scanning whole relations when some
        positions are already bound.
        """
        positions = tuple(positions)
        version = self._versions.get(relation, 0)
        cached = self._indexes.get((relation, positions))
        if cached is not None and cached[0] == version:
            return cached[1]
        built: Dict[Tuple, set] = {}
        for row in self._facts.get(relation, ()):
            built.setdefault(tuple(row[i] for i in positions), set()).add(row)
        frozen = {k: frozenset(v) for k, v in built.items()}
        self._indexes[(relation, positions)] = (version, frozen)
        return frozen

    def lookup(
        self, relation: str, bindings: Dict[int, object]
    ) -> FrozenSet[Tuple]:
        """All rows whose columns match *bindings* (position -> value).

        Empty bindings return every row of the relation.
        """
        if not bindings:
            return self.facts(relation)
        positions = tuple(sorted(bindings))
        key = tuple(bindings[i] for i in positions)
        return self.index(relation, positions).get(key, frozenset())

    def copy(self) -> "Database":
        """An independent copy sharing schema objects."""
        out = Database(self.schemas.values())
        for name, rows in self._facts.items():
            out._facts[name] = set(rows)
        return out

    def union(self, other: "Database") -> "Database":
        """A new database containing the facts of both operands."""
        out = self.copy()
        for schema in other.schemas.values():
            out.add_relation(schema)
        for name, rows in other._facts.items():
            out._facts[name] |= rows
        return out

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    def facts(self, relation: str) -> FrozenSet[Tuple]:
        """All rows of one relation (empty for registered-but-empty)."""
        return frozenset(self._facts.get(relation, ()))

    def contains(self, relation: str, row: Sequence) -> bool:
        """Is the fact in the database?"""
        return tuple(row) in self._facts.get(relation, ())

    def relations(self) -> Tuple[str, ...]:
        """All registered relation names, sorted."""
        return tuple(sorted(self.schemas))

    def size(self) -> int:
        """Total number of facts."""
        return sum(len(rows) for rows in self._facts.values())

    def blocks(self, relation: str) -> Dict[Tuple, FrozenSet[Tuple]]:
        """The blocks of one relation: key value -> set of rows."""
        schema = self.schemas[relation]
        out: Dict[Tuple, set] = {}
        for row in self._facts.get(relation, ()):
            out.setdefault(schema.key_of(row), set()).add(row)
        return {k: frozenset(v) for k, v in out.items()}

    def block_of(self, relation: str, key: Sequence) -> FrozenSet[Tuple]:
        """The rows whose key equals *key* (possibly empty)."""
        schema = self.schemas[relation]
        key = tuple(key)
        return frozenset(
            row for row in self._facts.get(relation, ()) if schema.key_of(row) == key
        )

    def all_blocks(self) -> Iterator[Tuple[str, Tuple, FrozenSet[Tuple]]]:
        """Iterate (relation, key, rows) over every block of the database."""
        for relation in sorted(self.schemas):
            for key, rows in sorted(self.blocks(relation).items(), key=lambda kv: repr(kv[0])):
                yield relation, key, rows

    @property
    def is_consistent(self) -> bool:
        """True when every block is a singleton."""
        for relation in self.schemas:
            keys = set()
            schema = self.schemas[relation]
            for row in self._facts.get(relation, ()):
                key = schema.key_of(row)
                if key in keys:
                    return False
                keys.add(key)
        return True

    def repair_count(self) -> int:
        """The number of repairs: the product of all block sizes."""
        count = 1
        for _, _, rows in self.all_blocks():
            count *= len(rows)
        return count

    def active_domain(self) -> FrozenSet:
        """All constants (raw values) occurring in some fact."""
        dom = set()
        for rows in self._facts.values():
            for row in rows:
                dom.update(row)
        return frozenset(dom)

    def restrict(self, relations: Iterable[str]) -> "Database":
        """The sub-database over the given relations only."""
        keep = set(relations)
        out = Database(s for s in self.schemas.values() if s.name in keep)
        for name in keep & set(self._facts):
            out._facts[name] = set(self._facts[name])
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        if self.schemas != other.schemas:
            return False
        names = set(self.schemas)
        return all(self._facts[n] == other._facts.get(n, set()) for n in names)

    def __hash__(self) -> int:
        items = tuple(
            (name, frozenset(rows)) for name, rows in sorted(self._facts.items())
        )
        return hash(items)

    def __len__(self) -> int:
        return self.size()

    def __repr__(self) -> str:
        parts = []
        for name in sorted(self._facts):
            for row in sorted(self._facts[name], key=repr):
                parts.append(f"{name}{row!r}")
        return "Database{" + ", ".join(parts) + "}"


def database_from_facts(facts: Iterable[Atom]) -> Database:
    """Build a database from ground atoms."""
    db = Database()
    for f in facts:
        db.add_fact(f)
    return db
