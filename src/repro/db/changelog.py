"""Change capture for databases: per-relation deltas at block granularity.

A :class:`Delta` is the *net* effect of a batch of mutations on one
relation — rows genuinely inserted and rows genuinely deleted, with
add-then-discard (and discard-then-add) of the same row inside one
batch cancelling out.  A :class:`Changelog` groups the deltas of one
committed batch together with the database clock value at commit time.

Because every relation carries a primary key, a delta can also be read
at *block* granularity: :meth:`Delta.touched_keys` reports the key
values whose blocks gained or lost facts, which is exactly the unit at
which repairs (and hence certain answers) can change.  The incremental
view subsystem (:mod:`repro.incremental`) consumes changelogs row-wise
and exposes block-level reporting through these helpers.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Set, Tuple

from ..core.atoms import RelationSchema

Row = Tuple


class Delta:
    """The net row-level change of one relation over one batch."""

    __slots__ = ("relation", "inserted", "deleted")

    def __init__(self, relation: str,
                 inserted: Iterable[Row] = (), deleted: Iterable[Row] = ()):
        self.relation = relation
        self.inserted: Set[Row] = set(inserted)
        self.deleted: Set[Row] = set(deleted)

    def record_insert(self, row: Row) -> None:
        """Fold one genuine insertion into the net delta."""
        if row in self.deleted:
            self.deleted.discard(row)
        else:
            self.inserted.add(row)

    def record_delete(self, row: Row) -> None:
        """Fold one genuine deletion into the net delta."""
        if row in self.inserted:
            self.inserted.discard(row)
        else:
            self.deleted.add(row)

    @property
    def is_empty(self) -> bool:
        return not self.inserted and not self.deleted

    def touched_keys(self, schema: RelationSchema) -> FrozenSet[Tuple]:
        """The primary-key values whose blocks changed in this delta."""
        if schema.name != self.relation:
            raise ValueError(
                f"schema {schema.name!r} does not match delta relation "
                f"{self.relation!r}"
            )
        keys = {schema.key_of(row) for row in self.inserted}
        keys.update(schema.key_of(row) for row in self.deleted)
        return frozenset(keys)

    def __len__(self) -> int:
        return len(self.inserted) + len(self.deleted)

    def __repr__(self) -> str:
        return (f"Delta({self.relation!r}, +{len(self.inserted)}, "
                f"-{len(self.deleted)})")


class Changelog:
    """The net deltas of one committed batch, tagged with the database
    clock (:attr:`version`) observed at commit time."""

    __slots__ = ("version", "deltas")

    def __init__(self, version: int, deltas: Dict[str, Delta]):
        self.version = version
        self.deltas: Dict[str, Delta] = {
            name: d for name, d in deltas.items() if not d.is_empty
        }

    @property
    def is_empty(self) -> bool:
        return not self.deltas

    @property
    def relations(self) -> FrozenSet[str]:
        """The relations whose contents actually changed."""
        return frozenset(self.deltas)

    def delta(self, relation: str) -> Delta:
        """The delta of one relation (empty if it did not change)."""
        found = self.deltas.get(relation)
        return found if found is not None else Delta(relation)

    def rows_touched(self) -> int:
        """Total inserted + deleted rows across all relations."""
        return sum(len(d) for d in self.deltas.values())

    def touched_blocks(
        self, schemas: Dict[str, RelationSchema]
    ) -> Iterator[Tuple[str, Tuple]]:
        """Iterate ``(relation, key)`` over every block the batch touched."""
        for name in sorted(self.deltas):
            schema = schemas.get(name)
            if schema is None:
                continue
            for key in sorted(self.deltas[name].touched_keys(schema), key=repr):
                yield name, key

    def __repr__(self) -> str:
        inner = ", ".join(repr(d) for _, d in sorted(self.deltas.items()))
        return f"Changelog(v{self.version}, [{inner}])"
