"""Loading databases into sqlite and running compiled rewritings.

This realizes the paper's practicality claim: a consistent first-order
rewriting is a single SQL query answerable by a stock SQL engine over
the *inconsistent* database, with no repair enumeration.
"""

from __future__ import annotations

import sqlite3
from typing import Iterable, Mapping, Optional

from ..core.atoms import RelationSchema
from ..fo.formula import Formula, schemas_of
from ..fo.sql import compile_to_sql, encode_value, table_name
from .database import Database


def create_tables(
    conn: sqlite3.Connection, schemas: Iterable[RelationSchema]
) -> None:
    """Create one table per relation: columns c0..c{n-1}, TEXT, set semantics."""
    cur = conn.cursor()
    for schema in schemas:
        cols = ", ".join(f"c{i} TEXT NOT NULL" for i in range(schema.arity))
        col_names = ", ".join(f"c{i}" for i in range(schema.arity))
        cur.execute(
            f"CREATE TABLE IF NOT EXISTS {table_name(schema.name)} "
            f"({cols}, UNIQUE ({col_names}))"
        )
    conn.commit()


def load_database(db: Database, conn: Optional[sqlite3.Connection] = None) -> sqlite3.Connection:
    """Materialize *db* into a (by default in-memory) sqlite connection."""
    conn = conn or sqlite3.connect(":memory:")
    create_tables(conn, db.schemas.values())
    cur = conn.cursor()
    for name in db.relations():
        schema = db.schemas[name]
        placeholders = ", ".join("?" for _ in range(schema.arity))
        rows = [
            tuple(encode_value(v) for v in row) for row in db.facts(name)
        ]
        cur.executemany(
            f"INSERT OR IGNORE INTO {table_name(name)} VALUES ({placeholders})",
            rows,
        )
    conn.commit()
    return conn


def run_sentence_sql(
    formula: Formula,
    db: Database,
    extra_schemas: Mapping[str, RelationSchema] = (),
    conn: Optional[sqlite3.Connection] = None,
) -> bool:
    """Compile *formula* to SQL and evaluate it on *db* via sqlite.

    Relations mentioned by the formula but absent from *db* are created
    empty so the query references only existing tables.
    """
    own_conn = conn is None
    conn = load_database(db) if conn is None else conn
    try:
        needed = dict(schemas_of(formula))
        needed.update(dict(extra_schemas))
        missing = [s for name, s in needed.items() if name not in db.schemas]
        if missing:
            create_tables(conn, missing)
        all_schemas = dict(db.schemas)
        all_schemas.update(needed)
        sql = compile_to_sql(formula, all_schemas)
        row = conn.execute(sql).fetchone()
        return bool(row[0])
    finally:
        if own_conn:
            conn.close()
