"""JSON serialization for databases.

Format::

    {
      "relations": {
        "R": {"arity": 2, "key": 1,
              "facts": [["ann", "mons"], ["ann", "paris"]]},
        ...
      }
    }

Values may be strings, integers, booleans, or (nested) lists — lists
are converted to tuples on load, mirroring the structured constants
used by the reduction gadgets.
"""

from __future__ import annotations

import json
import pathlib
from typing import IO, Union

from ..core.atoms import RelationSchema
from .database import Database

PathLike = Union[str, pathlib.Path]


def _freeze(value):
    if isinstance(value, list):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    raise TypeError(f"unsupported value in database JSON: {value!r}")


def _thaw(value):
    if isinstance(value, tuple):
        return [_thaw(v) for v in value]
    if isinstance(value, (str, int, bool)):
        return value
    raise TypeError(f"unsupported value in database: {value!r}")


def database_to_dict(db: Database) -> dict:
    """A JSON-ready dict for *db*."""
    relations = {}
    for name in db.relations():
        schema = db.schemas[name]
        relations[name] = {
            "arity": schema.arity,
            "key": schema.key_size,
            "facts": sorted(
                ([_thaw(v) for v in row] for row in db.facts(name)),
                key=repr,
            ),
        }
    return {"relations": relations}


def database_from_dict(data: dict) -> Database:
    """Rebuild a database from :func:`database_to_dict` output."""
    if "relations" not in data:
        raise ValueError("database JSON needs a 'relations' key")
    db = Database()
    for name, spec in data["relations"].items():
        schema = RelationSchema(name, int(spec["arity"]), int(spec["key"]))
        db.add_relation(schema)
        for row in spec.get("facts", []):
            db.add(name, tuple(_freeze(v) for v in row))
    return db


def save_database(db: Database, path: PathLike) -> None:
    """Write *db* to a JSON file."""
    pathlib.Path(path).write_text(
        json.dumps(database_to_dict(db), indent=2, sort_keys=True) + "\n"
    )


def load_database_file(path: PathLike) -> Database:
    """Read a database from a JSON file."""
    return database_from_dict(json.loads(pathlib.Path(path).read_text()))


def dump_database(db: Database, fp: IO[str]) -> None:
    """Write *db* as JSON to an open file object."""
    json.dump(database_to_dict(db), fp, indent=2, sort_keys=True)


def parse_database(fp: IO[str]) -> Database:
    """Read a database from an open JSON file object."""
    return database_from_dict(json.load(fp))
