"""Evaluation of sjfBCQ¬≠ queries on databases.

``db ⊨ q`` holds when some valuation θ over vars(q) sends every positive
atom into the database, no negated atom into the database, and satisfies
every disequality (Section 3 / Definition 6.3).

The evaluator is a straightforward backtracking join over the positive
atoms (most-bound-first ordering), followed by the negative and
disequality checks.  It is used both to evaluate queries on repairs
(brute-force certainty) and as the base case of the interpreted
Algorithm 1.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..core.atoms import Atom
from ..core.query import Diseq, Query
from ..core.terms import Variable, is_variable
from .database import Database

Valuation = Dict[Variable, object]


def _match_atom(atom: Atom, row: Tuple, env: Valuation) -> Optional[Valuation]:
    """Try to extend *env* so the atom maps onto *row*; None on clash."""
    new_env = None
    for term, value in zip(atom.terms, row):
        if is_variable(term):
            bound = env.get(term, _UNBOUND) if new_env is None else new_env.get(
                term, env.get(term, _UNBOUND)
            )
            if bound is _UNBOUND:
                if new_env is None:
                    new_env = {}
                new_env[term] = value
            elif bound != value:
                return None
        else:
            if term.value != value:
                return None
    if new_env is None:
        return dict(env)
    merged = dict(env)
    merged.update(new_env)
    return merged


class _Unbound:
    __slots__ = ()


_UNBOUND = _Unbound()


def _ground_atom_row(atom: Atom, env: Valuation) -> Optional[Tuple]:
    """The row an atom denotes under *env*, or None if a variable is free."""
    row = []
    for term in atom.terms:
        if is_variable(term):
            if term not in env:
                return None
            row.append(env[term])
        else:
            row.append(term.value)
    return tuple(row)


def _diseq_holds(d: Diseq, env: Valuation) -> bool:
    for lhs, rhs in d.pairs:
        lv = env[lhs] if is_variable(lhs) else lhs.value
        rv = env[rhs] if is_variable(rhs) else rhs.value
        if lv != rv:
            return True
    return False


def _order_positives(query: Query) -> List[Atom]:
    """Join order: repeatedly pick the atom sharing most variables with
    the already-bound set (greedy, deterministic)."""
    remaining = list(query.positives)
    ordered: List[Atom] = []
    bound: set = set()
    while remaining:
        best = max(
            remaining,
            key=lambda a: (len(a.vars & bound), -len(a.vars), -remaining.index(a)),
        )
        remaining.remove(best)
        ordered.append(best)
        bound |= best.vars
    return ordered


def satisfying_valuations(query: Query, db: Database) -> Iterator[Valuation]:
    """All valuations over vars(q) witnessing db ⊨ q.

    Relations mentioned by the query but absent from the database are
    treated as empty (positive atoms over them never match; negated atoms
    over them are vacuously satisfied).
    """
    ordered = _order_positives(query)

    def backtrack(i: int, env: Valuation) -> Iterator[Valuation]:
        if i == len(ordered):
            if not query.vars <= set(env):
                # A variable occurring only in a negated atom or diseq is
                # impossible for safe queries; guard anyway.
                return
            for n in query.negatives:
                row = _ground_atom_row(n, env)
                if row is not None and db.contains(n.relation, row):
                    return
            for d in query.diseqs:
                if not _diseq_holds(d, env):
                    return
            yield env
            return
        atom = ordered[i]
        if atom.relation not in db.schemas:
            return
        bindings = {}
        for position, term in enumerate(atom.terms):
            if is_variable(term):
                if term in env:
                    bindings[position] = env[term]
            else:
                bindings[position] = term.value
        for row in db.lookup(atom.relation, bindings):
            extended = _match_atom(atom, row, env)
            if extended is not None:
                yield from backtrack(i + 1, extended)

    yield from backtrack(0, {})


def satisfies(db: Database, query: Query) -> bool:
    """db ⊨ q?"""
    for _ in satisfying_valuations(query, db):
        return True
    return False


def key_relevant_facts(query: Query, atom_obj: Atom, repair: Database) -> frozenset:
    """The facts of *repair* that are key-relevant for q (Section 3).

    A fact A with the relation name of F is key-relevant when some
    valuation θ with repair ⊨ θ(q) has θ(F) key-equal to A.
    """
    schema = atom_obj.schema
    relevant_keys = set()
    for env in satisfying_valuations(query, repair):
        key = []
        for term in atom_obj.key_terms:
            key.append(env[term] if is_variable(term) else term.value)
        relevant_keys.add(tuple(key))
    return frozenset(
        row
        for row in repair.facts(atom_obj.relation)
        if schema.key_of(row) in relevant_keys
    )
