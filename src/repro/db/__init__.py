"""Databases, blocks, repairs, satisfaction, and the sqlite backend."""

from .changelog import Changelog, Delta
from .database import BatchError, Database, SchemaError, database_from_facts
from .profile import (
    DatabaseProfile,
    RelationProfile,
    profile_database,
    profile_relation,
)
from .io import (
    database_from_dict,
    database_to_dict,
    load_database_file,
    save_database,
)
from .repairs import (
    count_repairs,
    find_repair_where,
    is_repair_of,
    iter_repairs,
    sample_repair,
    sample_repairs,
)
from .satisfaction import key_relevant_facts, satisfies, satisfying_valuations
from .sqlite_backend import create_tables, load_database, run_sentence_sql

__all__ = [
    "BatchError",
    "Changelog",
    "Database",
    "Delta",
    "DatabaseProfile",
    "RelationProfile",
    "SchemaError",
    "count_repairs",
    "create_tables",
    "database_from_dict",
    "database_from_facts",
    "database_to_dict",
    "find_repair_where",
    "is_repair_of",
    "iter_repairs",
    "key_relevant_facts",
    "load_database",
    "load_database_file",
    "profile_database",
    "profile_relation",
    "run_sentence_sql",
    "sample_repair",
    "save_database",
    "sample_repairs",
    "satisfies",
    "satisfying_valuations",
]
