"""Inconsistency profiling for databases.

Summarizes the block structure that drives CERTAINTY's difficulty: per
relation, how many blocks exist, how many violate the key, how large
they get, and the resulting repair count.  Useful both for workload
characterization (the E-series experiments) and as a production "how
dirty is this database" report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from .database import Database


@dataclass(frozen=True)
class RelationProfile:
    """Block statistics of one relation."""

    relation: str
    facts: int
    blocks: int
    inconsistent_blocks: int
    max_block_size: int
    repair_choices: int  # product of this relation's block sizes

    @property
    def inconsistency_ratio(self) -> float:
        """Fraction of blocks violating the primary key."""
        return self.inconsistent_blocks / self.blocks if self.blocks else 0.0


@dataclass(frozen=True)
class DatabaseProfile:
    """Inconsistency profile of a whole database."""

    relations: Tuple[RelationProfile, ...]

    @property
    def facts(self) -> int:
        return sum(r.facts for r in self.relations)

    @property
    def repair_count(self) -> int:
        count = 1
        for r in self.relations:
            count *= r.repair_choices
        return count

    @property
    def log10_repairs(self) -> float:
        """log10 of the repair count (finite even when huge)."""
        total = 0.0
        for r in self.relations:
            if r.repair_choices > 0:
                total += math.log10(r.repair_choices)
        return total

    @property
    def is_consistent(self) -> bool:
        return all(r.inconsistent_blocks == 0 for r in self.relations)

    def worst_relations(self, top: int = 3) -> Tuple[RelationProfile, ...]:
        """Relations sorted by inconsistency ratio, worst first."""
        ranked = sorted(self.relations,
                        key=lambda r: (-r.inconsistency_ratio, r.relation))
        return tuple(ranked[:top])

    def render(self) -> str:
        lines = [
            f"{'relation':12s} {'facts':>6} {'blocks':>7} {'violating':>10} "
            f"{'max block':>10} {'ratio':>6}"
        ]
        for r in self.relations:
            lines.append(
                f"{r.relation:12s} {r.facts:>6} {r.blocks:>7} "
                f"{r.inconsistent_blocks:>10} {r.max_block_size:>10} "
                f"{r.inconsistency_ratio:>6.2f}"
            )
        lines.append(
            f"total: {self.facts} facts, ~10^{self.log10_repairs:.1f} repairs, "
            f"consistent={self.is_consistent}"
        )
        return "\n".join(lines)


def profile_relation(db: Database, relation: str) -> RelationProfile:
    """The block statistics of one relation."""
    blocks = db.blocks(relation)
    sizes = [len(rows) for rows in blocks.values()]
    choices = 1
    for s in sizes:
        choices *= s
    return RelationProfile(
        relation=relation,
        facts=sum(sizes),
        blocks=len(sizes),
        inconsistent_blocks=sum(1 for s in sizes if s > 1),
        max_block_size=max(sizes, default=0),
        repair_choices=choices,
    )


def profile_database(db: Database) -> DatabaseProfile:
    """Profile every relation of the database."""
    return DatabaseProfile(tuple(
        profile_relation(db, name) for name in db.relations()
    ))
