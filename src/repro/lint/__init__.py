"""Static analysis for sjfBCQ¬ queries (codes QL000–QL010).

The linter checks the static preconditions of the paper's dichotomy
(Theorem 4.3) — self-join-freeness, weakly guarded negation, safety —
and reports span-anchored, coded diagnostics instead of ad-hoc error
strings.  See ``docs/LINTING.md`` for the full catalogue.

>>> from repro.lint import lint_text
>>> result = lint_text("P(x | y), not N(z | y)")
>>> [d.code for d in result.errors]
['QL002', 'QL003']
"""

from .context import LintContext, LintDiseq, LintLiteral
from .diagnostics import Diagnostic, RuleInfo, Severity
from .linter import (
    LintError,
    LintResult,
    dedupe_diagnostics,
    lint_query,
    lint_text,
    require_clean,
)
from .rules import RULES, rule, run_rules

__all__ = [
    "Diagnostic",
    "LintContext",
    "LintDiseq",
    "LintError",
    "LintLiteral",
    "LintResult",
    "RULES",
    "RuleInfo",
    "Severity",
    "dedupe_diagnostics",
    "lint_query",
    "lint_text",
    "require_clean",
    "rule",
    "run_rules",
]
