"""The lint rules, QL001–QL010.

Each rule checks one static precondition or opportunity from the paper:

========  ========  =====================================================
code      severity  meaning
========  ========  =====================================================
QL000     error     syntax error (reported by the parser, catalogued here)
QL001     error     self-join: query leaves the sjfBCQ¬ class
QL002     error     negation not weakly guarded (Thm 4.3 precondition)
QL003     error     unsafe variable (occurs only negated / in ≠)
QL004     error     cyclic attack graph: no FO rewriting (Thm 4.3(1))
QL005     info      atom with variable-free primary key is eliminable
QL006     hint      unattacked key variables are reifiable (Cor. 6.9)
QL007     warning   variable occurs only once (wildcard join)
QL008     info      constant-only atom (single-fact membership test)
QL009     error*    duplicate literal (* duplicate disequality: warning)
QL010     error     atom with an empty primary key
========  ========  =====================================================

Rules are registered with the :func:`rule` decorator; the registry
(:data:`RULES`) doubles as the machine-readable catalogue rendered by
``docs/LINTING.md`` and the CLI.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from ..core.attack_graph import AttackGraph
from ..core.classify import Verdict, classify
from ..core.terms import Variable
from .context import LintContext, LintLiteral
from .diagnostics import Diagnostic, RuleInfo, Severity

Checker = Callable[[RuleInfo, LintContext], Iterable[Diagnostic]]

RULES: Dict[str, RuleInfo] = {}
_CHECKERS: List[Tuple[RuleInfo, Checker]] = []


def rule(
    code: str,
    name: str,
    severity: Severity,
    summary: str,
    citation: str = "",
) -> Callable[[Checker], Checker]:
    """Register a rule checker under a stable diagnostic code."""
    info = RuleInfo(code, name, severity, summary, citation)
    if code in RULES:
        raise ValueError(f"duplicate rule code {code}")
    RULES[code] = info

    def decorate(checker: Checker) -> Checker:
        _CHECKERS.append((info, checker))
        return checker

    return decorate


def register_info(
    code: str, name: str, severity: Severity, summary: str, citation: str = ""
) -> RuleInfo:
    """Catalogue a code that has no checker (parser-reported codes)."""
    info = RuleInfo(code, name, severity, summary, citation)
    RULES[code] = info
    return info


def run_rules(ctx: LintContext) -> List[Diagnostic]:
    """Run every registered checker over the context."""
    diagnostics: List[Diagnostic] = []
    for info, checker in _CHECKERS:
        diagnostics.extend(checker(info, ctx))
    return diagnostics


# ----------------------------------------------------------------------
# parser-reported codes
# ----------------------------------------------------------------------

SYNTAX_ERROR = register_info(
    "QL000",
    "syntax-error",
    Severity.ERROR,
    "the query text does not parse",
    "query grammar, repro.core.parser module docstring",
)

EMPTY_KEY = register_info(
    "QL010",
    "empty-key",
    Severity.ERROR,
    "atom declares an empty primary key",
    "Section 3: a signature [n, k] requires 1 <= k <= n",
)


# ----------------------------------------------------------------------
# structural scope rules (errors)
# ----------------------------------------------------------------------


@rule(
    "QL001",
    "self-join",
    Severity.ERROR,
    "two distinct atoms share a relation name; the query leaves sjfBCQ¬",
    "Section 3: the dichotomy of Theorem 4.3 is for self-join-free queries",
)
def check_self_join(info: RuleInfo, ctx: LintContext) -> Iterator[Diagnostic]:
    first_seen: Dict[str, LintLiteral] = {}
    for lit in ctx.literals:
        name = lit.atom.relation
        previous = first_seen.get(name)
        if previous is None:
            first_seen[name] = lit
            continue
        if previous.atom == lit.atom and previous.negated == lit.negated:
            continue  # an exact duplicate: QL009 reports it
        yield info.diagnostic(
            f"self-join detected: relation {name!r} occurs more than once; "
            f"the query is outside sjfBCQ¬ and Theorem 4.3 does not apply",
            span=lit.best_span(),
            fix=f"rename one occurrence of {name!r} (e.g. {name}_2) and "
                f"duplicate its data, or split the query",
        )


@rule(
    "QL009",
    "duplicate-literal",
    Severity.ERROR,
    "the same literal occurs twice",
    "Section 3: atoms of a query form a set; repeats are self-joins",
)
def check_duplicates(info: RuleInfo, ctx: LintContext) -> Iterator[Diagnostic]:
    seen_literals = set()
    for lit in ctx.literals:
        key = (lit.negated, lit.atom)
        if key in seen_literals:
            yield info.diagnostic(
                f"duplicate literal {lit.describe()}: sjfBCQ¬ forbids "
                f"repeated relation names",
                span=lit.best_span(),
                fix="remove the redundant copy",
            )
        seen_literals.add(key)
    seen_diseqs = set()
    for d in ctx.diseqs:
        if d.diseq in seen_diseqs:
            yield info.diagnostic(
                f"duplicate disequality {d.diseq!r} is redundant",
                span=d.span,
                severity=Severity.WARNING,
                fix="remove the redundant copy",
            )
        seen_diseqs.add(d.diseq)


def _unguarded_pair(
    vars_set: frozenset, positives: List[LintLiteral]
) -> Optional[Tuple[Variable, Variable]]:
    """A pair of co-occurring variables witnessing a weak-guardedness
    violation (possibly x = x), or None when guarded."""
    ordered = sorted(vars_set)
    for i, x in enumerate(ordered):
        for y in ordered[i:]:
            if not any(
                x in lit.atom.vars and y in lit.atom.vars for lit in positives
            ):
                return (x, y)
    return None


@rule(
    "QL002",
    "unguarded-negation",
    Severity.ERROR,
    "variables of a negated atom (or ≠) do not co-occur positively",
    "Section 3 (weak guardedness); Theorem 4.3 assumes it, and Section 7 "
    "shows the dichotomy fails without it",
)
def check_weak_guardedness(
    info: RuleInfo, ctx: LintContext
) -> Iterator[Diagnostic]:
    positives = ctx.positives
    for lit in ctx.negatives:
        pair = _unguarded_pair(lit.atom.vars, positives)
        if pair is None:
            continue
        x, y = pair
        if x == y:
            detail = f"variable {x.name!r} occurs in no positive atom"
        else:
            detail = (
                f"variables {x.name!r} and {y.name!r} co-occur in the "
                f"negation but in no positive atom"
            )
        yield info.diagnostic(
            f"negation of {lit.atom} is not weakly guarded: {detail}",
            span=lit.best_span(),
            fix="add a positive atom covering the variable pair, or drop "
                "the negated atom",
        )
    for d in ctx.diseqs:
        pair = _unguarded_pair(d.diseq.vars, positives)
        if pair is None:
            continue
        x, y = pair
        yield info.diagnostic(
            f"disequality {d.diseq!r} is not weakly guarded: variables "
            f"{x.name!r}, {y.name!r} do not co-occur in a positive atom",
            span=d.span,
            fix="add a positive atom covering the variable pair",
        )


@rule(
    "QL003",
    "unsafe-variable",
    Severity.ERROR,
    "a variable occurs only in negated atoms or disequalities",
    "Section 3 (safety / range restriction): every variable of a negated "
    "atom must occur in a positive atom",
)
def check_safety(info: RuleInfo, ctx: LintContext) -> Iterator[Diagnostic]:
    positive_vars = ctx.positive_vars
    reported = set()
    for lit in ctx.negatives:
        for i, term in enumerate(lit.atom.terms):
            if not isinstance(term, Variable):
                continue
            if term in positive_vars or term in reported:
                continue
            reported.add(term)
            yield info.diagnostic(
                f"unsafe variable {term.name!r}: it occurs in "
                f"{lit.describe()} but in no positive atom",
                span=lit.term_span(i),
                fix=f"bind {term.name!r} in a positive atom or replace it "
                    f"with a constant",
            )
    for d in ctx.diseqs:
        for i, pair in enumerate(d.diseq.pairs):
            for side, term in enumerate(pair):
                if not isinstance(term, Variable):
                    continue
                if term in positive_vars or term in reported:
                    continue
                reported.add(term)
                yield info.diagnostic(
                    f"unsafe variable {term.name!r}: it occurs in the "
                    f"disequality {d.diseq!r} but in no positive atom",
                    span=d.pair_span(i, side),
                    fix=f"bind {term.name!r} in a positive atom",
                )


@rule(
    "QL004",
    "cyclic-attack-graph",
    Severity.ERROR,
    "the attack graph has a directed cycle: CERTAINTY(q) is not in FO",
    "Theorem 4.3(1); hardness by Lemmas 5.5 (L-hard), 5.6 (NL-hard), "
    "or 5.7 (L-hard) on a 2-cycle (Lemma 4.9)",
)
def check_attack_cycle(info: RuleInfo, ctx: LintContext) -> Iterator[Diagnostic]:
    query = ctx.query
    if query is None:
        return  # self-join: QL001 already explains why we stop here
    graph = AttackGraph(query)
    cycle = graph.find_cycle()
    if cycle is None:
        return
    witness = " ~> ".join(a.relation for a in cycle) + f" ~> {cycle[0].relation}"
    result = classify(query, graph)
    span = ctx.span_of_atom(cycle[0])
    if result.verdict is Verdict.NOT_IN_FO:
        yield info.diagnostic(
            f"cyclic attack graph (witness cycle: {witness}): no consistent "
            f"first-order rewriting exists — {result.reason}",
            span=span,
            fix="use the brute-force or counting solver for this query; "
                "only acyclic queries admit an FO rewriting",
        )
    else:
        # Not weakly guarded and no hardness lemma applies: outside the
        # dichotomy, so report the cycle as a warning only (QL002 already
        # carries the error).
        yield info.diagnostic(
            f"attack graph is cyclic (witness cycle: {witness}) but "
            f"negation is not weakly guarded; Theorem 4.3 does not apply "
            f"(Section 7)",
            span=span,
            severity=Severity.WARNING,
        )


# ----------------------------------------------------------------------
# opportunity and hygiene rules (warnings / info / hints)
# ----------------------------------------------------------------------


@rule(
    "QL005",
    "variable-free-key",
    Severity.INFO,
    "an atom with a variable-free primary key can be eliminated first",
    "Lemma 6.2 (ground negated atom), Lemma 6.5/6.6 (negated, variables "
    "in value positions), Lemma 6.1 (positive case)",
)
def check_variable_free_key(
    info: RuleInfo, ctx: LintContext
) -> Iterator[Diagnostic]:
    for lit in ctx.literals:
        atom = lit.atom
        if atom.key_vars or atom.is_all_key:
            continue
        if lit.negated:
            lemma = "Lemma 6.2" if not atom.vars else "Lemma 6.5/6.6"
        else:
            lemma = "Lemma 6.1 (positive elimination)"
        yield info.diagnostic(
            f"{lit.describe()} has a variable-free primary key: Algorithm 1 "
            f"eliminates it by {lemma}",
            span=lit.best_span(),
        )


@rule(
    "QL006",
    "reifiable-key",
    Severity.HINT,
    "unattacked key variables can be reified as constants",
    "Corollary 6.9: unattacked variables of a weakly-guarded query are "
    "reifiable",
)
def check_reifiable_keys(info: RuleInfo, ctx: LintContext) -> Iterator[Diagnostic]:
    query = ctx.query
    if query is None or not query.has_weakly_guarded_negation:
        return
    unattacked = AttackGraph(query).unattacked_variables()
    for lit in ctx.literals:
        key_vars = lit.atom.key_vars
        if not key_vars or not key_vars <= unattacked:
            continue
        names = ", ".join(sorted(v.name for v in key_vars))
        yield info.diagnostic(
            f"key variable(s) {names} of {lit.atom} are unattacked: "
            f"Algorithm 1 reifies them as constants (Corollary 6.9)",
            span=lit.best_span(),
        )


@rule(
    "QL007",
    "unused-variable",
    Severity.WARNING,
    "a variable occurs only once and joins nothing",
    "a single-occurrence variable is an anonymous existential; it cannot "
    "affect which repairs satisfy the query body beyond its own atom",
)
def check_unused_variables(
    info: RuleInfo, ctx: LintContext
) -> Iterator[Diagnostic]:
    occurrences = ctx.variable_occurrences()
    counts: Dict[Variable, int] = {}
    for variable, _ in occurrences:
        counts[variable] = counts.get(variable, 0) + 1
    for variable, span in occurrences:
        if counts[variable] == 1:
            yield info.diagnostic(
                f"variable {variable.name!r} occurs only once; it acts as "
                f"a wildcard",
                span=span,
                fix="reuse it in another literal if a join was intended",
            )


@rule(
    "QL008",
    "constant-only-atom",
    Severity.INFO,
    "an atom without variables tests membership of a single fact",
    "Section 3: a ground atom's block is determined by its key value",
)
def check_constant_only(info: RuleInfo, ctx: LintContext) -> Iterator[Diagnostic]:
    for lit in ctx.literals:
        if not lit.atom.is_fact:
            continue
        polarity = "absent from" if lit.negated else "present in"
        yield info.diagnostic(
            f"constant-only {lit.describe()}: it only tests that one fact "
            f"is {polarity} every repair",
            span=lit.best_span(),
        )
