"""Entry points of the query linter.

:func:`lint_text` lints query source text (spans included);
:func:`lint_query` lints an already-built :class:`Query`
(no spans, used by the CQA engine to fail fast with coded diagnostics).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import List, Optional

from ..core.parser import ParseError, parse_query_spanned
from ..core.query import Query
from ..core.spans import SourceText
from .context import LintContext
from .diagnostics import Diagnostic, Severity
from .rules import EMPTY_KEY, RULES, SYNTAX_ERROR, run_rules


class LintError(ValueError):
    """Raised by :func:`require_clean` when a query has error diagnostics.

    ``str()`` is a single line naming every error code; the full
    diagnostics are available on the ``diagnostics`` attribute.
    """

    def __init__(self, result: "LintResult"):
        self.result = result
        self.diagnostics = result.errors
        summary = "; ".join(
            d.one_line(result.source) for d in result.errors
        )
        super().__init__(summary or "lint failed")


@dataclass
class LintResult:
    """All diagnostics for one query, with rendering helpers."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    source: Optional[SourceText] = None
    query: Optional[Query] = None

    def by_severity(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> List[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def has_errors(self) -> bool:
        return bool(self.errors)

    @property
    def ok(self) -> bool:
        """True when evaluation/rewriting may proceed (no errors)."""
        return not self.has_errors

    def codes(self) -> List[str]:
        """The distinct diagnostic codes present, sorted."""
        return sorted({d.code for d in self.diagnostics})

    def summary(self) -> str:
        counts = {
            severity: len(self.by_severity(severity)) for severity in Severity
        }
        parts = [
            f"{count} {severity.value}(s)"
            for severity, count in counts.items()
            if count
        ]
        return ", ".join(parts) if parts else "no diagnostics"

    def render_text(self) -> str:
        """Compiler-style report: one block per diagnostic + a summary."""
        if not self.diagnostics:
            return "ok: no diagnostics"
        blocks = [d.render(self.source) for d in self.diagnostics]
        return "\n\n".join(blocks) + f"\n\n{self.summary()}"

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "summary": {
                severity.value: len(self.by_severity(severity))
                for severity in Severity
            },
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)


def _sort_key(diagnostic: Diagnostic) -> tuple:
    start = diagnostic.span.start if diagnostic.span is not None else 1 << 30
    return (start, diagnostic.severity.rank, diagnostic.code)


def dedupe_diagnostics(diagnostics: List[Diagnostic]) -> List[Diagnostic]:
    """Drop findings identical in ``(code, span, message)``.

    Overlapping rules (and merged QL+QP reports, see
    :mod:`repro.analysis.report`) can surface the same finding twice;
    the first occurrence wins, and the result is re-sorted into the
    stable report order: span start, then severity, then rule code.
    """
    seen = set()
    unique: List[Diagnostic] = []
    for d in diagnostics:
        key = (d.code, d.span, d.message)
        if key in seen:
            continue
        seen.add(key)
        unique.append(d)
    return sorted(unique, key=_sort_key)


def _finish(
    diagnostics: List[Diagnostic],
    source: Optional[SourceText],
    query: Optional[Query],
) -> LintResult:
    return LintResult(dedupe_diagnostics(diagnostics), source, query)


def lint_text(text: str) -> LintResult:
    """Lint query source text; spans point into *text*.

    A syntax error yields a single ``QL000`` diagnostic instead of
    raising; empty-key atoms are recovered and reported as ``QL010``.
    """
    source = SourceText(text)
    try:
        parsed = parse_query_spanned(text, recover=True)
    except ParseError as exc:
        diagnostic = SYNTAX_ERROR.diagnostic(exc.message, span=exc.span)
        return _finish([diagnostic], exc.source or source, None)
    context = LintContext.from_parsed(parsed)
    diagnostics = [
        RULES.get(problem.code, EMPTY_KEY).diagnostic(
            problem.message, span=problem.span
        )
        for problem in parsed.problems
    ]
    diagnostics += run_rules(context)
    return _finish(diagnostics, parsed.source, context.query)


def lint_query(query: Query) -> LintResult:
    """Lint an already-built query (no source text, spans are None)."""
    context = LintContext.from_query(query)
    return _finish(run_rules(context), None, query)


def require_clean(query: Query) -> LintResult:
    """Lint *query* and raise :class:`LintError` on error diagnostics."""
    result = lint_query(query)
    if result.has_errors:
        raise LintError(result)
    return result
