"""The linter's view of a query.

Lint rules must be able to inspect queries that :class:`Query` itself
would reject (self-joins, unsafe variables), and must also work on
queries built programmatically with no source text at all.  A
:class:`LintContext` normalizes both inputs into one shape: a list of
:class:`LintLiteral`/:class:`LintDiseq` views whose spans are optional.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import List, Optional, Tuple

from ..core.atoms import Atom
from ..core.parser import ParsedQuery, ParseProblem
from ..core.query import Diseq, Query, QueryError
from ..core.spans import SourceText, Span
from ..core.terms import Variable


@dataclass(frozen=True)
class LintLiteral:
    """A positive or negated atom, with spans when the source is known."""

    negated: bool
    atom: Atom
    span: Optional[Span] = None
    atom_span: Optional[Span] = None
    name_span: Optional[Span] = None
    term_spans: Optional[Tuple[Span, ...]] = None
    empty_key: bool = False

    def term_span(self, index: int) -> Optional[Span]:
        """The span of ``atom.terms[index]``, when known."""
        if self.term_spans is None or index >= len(self.term_spans):
            return self.atom_span or self.span
        return self.term_spans[index]

    def best_span(self) -> Optional[Span]:
        return self.atom_span or self.span

    def describe(self) -> str:
        """``"negated atom N(z|y)"`` / ``"atom P(x|y)"``."""
        prefix = "negated atom " if self.negated else "atom "
        return prefix + str(self.atom)


@dataclass(frozen=True)
class LintDiseq:
    """A disequality constraint, with spans when the source is known."""

    diseq: Diseq
    span: Optional[Span] = None
    pair_spans: Optional[Tuple[Tuple[Span, Span], ...]] = None

    def pair_span(self, index: int, side: int) -> Optional[Span]:
        """Span of one side of pair *index* (side 0 = lhs, 1 = rhs)."""
        if self.pair_spans is None or index >= len(self.pair_spans):
            return self.span
        return self.pair_spans[index][side]


@dataclass
class LintContext:
    """Everything the rule checkers need about one query."""

    literals: List[LintLiteral] = field(default_factory=list)
    diseqs: List[LintDiseq] = field(default_factory=list)
    problems: List[ParseProblem] = field(default_factory=list)
    source: Optional[SourceText] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_parsed(cls, parsed: ParsedQuery) -> "LintContext":
        """Context for source text parsed with ``parse_query_spanned``."""
        literals = [
            LintLiteral(
                negated=lit.negated,
                atom=lit.atom,
                span=lit.span,
                atom_span=lit.atom_span,
                name_span=lit.name_span,
                term_spans=lit.term_spans,
                empty_key=lit.empty_key,
            )
            for lit in parsed.literals
        ]
        diseqs = [
            LintDiseq(diseq=d.diseq, span=d.span, pair_spans=d.pair_spans)
            for d in parsed.diseqs
        ]
        return cls(literals, diseqs, list(parsed.problems), parsed.source)

    @classmethod
    def from_query(cls, query: Query) -> "LintContext":
        """Context for a programmatically built query (no spans)."""
        literals = [LintLiteral(negated=False, atom=a) for a in query.positives]
        literals += [LintLiteral(negated=True, atom=a) for a in query.negatives]
        diseqs = [LintDiseq(diseq=d) for d in query.diseqs]
        return cls(literals, diseqs)

    # ------------------------------------------------------------------
    # structural views
    # ------------------------------------------------------------------

    @property
    def positives(self) -> List[LintLiteral]:
        return [lit for lit in self.literals if not lit.negated]

    @property
    def negatives(self) -> List[LintLiteral]:
        return [lit for lit in self.literals if lit.negated]

    @cached_property
    def positive_vars(self) -> frozenset:
        vs: frozenset = frozenset()
        for lit in self.positives:
            vs |= lit.atom.vars
        return vs

    @cached_property
    def is_self_join_free(self) -> bool:
        names = [lit.atom.relation for lit in self.literals]
        return len(names) == len(set(names))

    @cached_property
    def query(self) -> Optional[Query]:
        """The :class:`Query`, or None when it cannot be built; rules
        that need the attack graph are skipped in that case (a coded
        diagnostic already explains why)."""
        try:
            return Query(
                [lit.atom for lit in self.positives],
                [lit.atom for lit in self.negatives],
                [d.diseq for d in self.diseqs],
                check_safety=False,
            )
        except QueryError:
            return None

    def span_of_atom(self, atom: Atom) -> Optional[Span]:
        """The span of the literal carrying *atom*, when known."""
        for lit in self.literals:
            if lit.atom == atom:
                return lit.best_span()
        return None

    def variable_occurrences(self) -> List[Tuple[Variable, Optional[Span]]]:
        """Every variable occurrence in source order, with its span."""
        occurrences: List[Tuple[Variable, Optional[Span]]] = []
        for lit in self.literals:
            for i, term in enumerate(lit.atom.terms):
                if isinstance(term, Variable):
                    occurrences.append((term, lit.term_span(i)))
        for d in self.diseqs:
            for i, (lhs, rhs) in enumerate(d.diseq.pairs):
                if isinstance(lhs, Variable):
                    occurrences.append((lhs, d.pair_span(i, 0)))
                if isinstance(rhs, Variable):
                    occurrences.append((rhs, d.pair_span(i, 1)))
        return occurrences
