"""Diagnostic objects for the query linter.

A :class:`Diagnostic` is one finding of one rule: a stable code
(``QL001`` … ``QL010``), a :class:`Severity`, a message, an optional
source :class:`~repro.core.spans.Span`, the paper citation backing the
rule, and an optional suggested fix.  Diagnostics render both as
compiler-style text (with caret-underlined excerpts when the source text
is known) and as JSON for tooling.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..core.spans import SourceText, Span


class Severity(enum.Enum):
    """Severity of a diagnostic, ordered from most to least severe."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"
    HINT = "hint"

    @property
    def rank(self) -> int:
        """Smaller is more severe; used to sort reports."""
        order = (Severity.ERROR, Severity.WARNING, Severity.INFO, Severity.HINT)
        return order.index(self)


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one lint rule."""

    code: str
    severity: Severity
    message: str
    span: Optional[Span] = None
    citation: str = ""
    fix: str = ""

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (spans as ``{"start", "end"}``)."""
        payload: Dict[str, Any] = {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "span": self.span.to_dict() if self.span is not None else None,
        }
        if self.citation:
            payload["citation"] = self.citation
        if self.fix:
            payload["fix"] = self.fix
        return payload

    def render(self, source: Optional[SourceText] = None) -> str:
        """Compiler-style multi-line rendering::

            error[QL002]: negation of N is not weakly guarded: ...
              --> line 1, column 11
              P(x | y), not N(z | y)
                        ^^^^^^^^^^^^
              = note: Definition of weak guardedness, Section 3
        """
        head = f"{self.severity.value}[{self.code}]: {self.message}"
        lines = [head]
        if self.span is not None and source is not None:
            line, column = source.position(self.span.start)
            lines.append(f"  --> line {line}, column {column}")
            lines += source.excerpt_lines(self.span, indent="  ")
        if self.citation:
            lines.append(f"  = note: {self.citation}")
        if self.fix:
            lines.append(f"  = help: {self.fix}")
        return "\n".join(lines)

    def one_line(self, source: Optional[SourceText] = None) -> str:
        """Single-line rendering for CLI error paths."""
        position = ""
        if self.span is not None and source is not None:
            line, column = source.position(self.span.start)
            position = f" at line {line}, column {column}"
        return f"{self.severity.value}[{self.code}]{position}: {self.message}"


@dataclass(frozen=True)
class RuleInfo:
    """Registry metadata for one lint rule (see :mod:`repro.lint.rules`)."""

    code: str
    name: str
    severity: Severity
    summary: str
    citation: str = ""

    def diagnostic(
        self,
        message: str,
        span: Optional[Span] = None,
        severity: Optional[Severity] = None,
        fix: str = "",
    ) -> Diagnostic:
        """Build a diagnostic for this rule (severity defaults to the
        rule's registered severity)."""
        return Diagnostic(
            code=self.code,
            severity=severity or self.severity,
            message=message,
            span=span,
            citation=self.citation,
            fix=fix,
        )
