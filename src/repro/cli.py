"""Command-line interface.

    python -m repro classify "R(x | y), not S(y | x)"
    python -m repro lint     "P(x | y), not N(z | y)" --format json
    python -m repro rewrite  "P(x | y), not N('c' | y)" --pretty --sql
    python -m repro plan     "P(x | y), not N('c' | y)"
    python -m repro certain  "P(x | y), not N('c' | y)" --db poll.json
    python -m repro answers  "Lives(p | t), not Born(p | t)" --free p --db poll.json
    python -m repro graph    "R(x | y), not S(y | x)"          # DOT output
    python -m repro report   -o EXPERIMENTS.md

Databases are JSON files in the ``repro.db.io`` format.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core.attack_graph import AttackGraph
from .core.classify import classify
from .core.parser import ParseError, parse_query
from .core.query import QueryError
from .core.terms import Variable
from .cqa.certain_answers import (
    OpenQuery,
    certain_answers,
    certain_answers_sql_query,
    open_rewriting,
)
from .cqa.engine import CertaintyEngine, METHODS
from .cqa.explain import explain
from .cqa.rewriting import NotInFO, Rewriter
from .db.io import load_database_file
from .db.profile import profile_database
from .fo.parser import FormulaParseError, parse_sentence
from .fo.sql import compile_to_sql
from .fo.stats import pretty, stats
from .lint import LintError, lint_text
from .obs import (
    ExecutionOptions,
    PlanProfile,
    RunConfig,
    collect_metrics,
    profile_tree,
    render_profile,
    render_spans,
    trace_payload,
)


def _parse_query_arg(text: str):
    try:
        return parse_query(text)
    except ParseError as exc:
        raise SystemExit(f"error: cannot parse query: {exc}")


def _load_db(args: argparse.Namespace, required: bool = True):
    """The database a query command runs on.

    ``--db`` loads a JSON snapshot into memory (the historical path);
    ``--db-path`` opens a durable store (:mod:`repro.storage`) whose
    facts, registered views, and sqlite mirror survive between
    invocations.  The caller must pass the result to :func:`_close_db`.
    """
    db_path = getattr(args, "db_path", None)
    db_file = getattr(args, "db", None)
    if db_path and db_file:
        raise SystemExit("error: --db and --db-path are mutually exclusive")
    if db_path:
        from .storage import StorageError, open_database

        try:
            return open_database(db_path)
        except StorageError as exc:
            raise SystemExit(f"error: {exc}")
    if db_file:
        return load_database_file(db_file)
    if required:
        raise SystemExit("error: one of --db or --db-path is required")
    return None


def _close_db(db) -> None:
    close = getattr(db, "close", None)
    if close is not None:
        close()


def cmd_classify(args: argparse.Namespace) -> int:
    query = _parse_query_arg(args.query)
    result = classify(query)
    graph = AttackGraph(query)
    print(f"query:          {query}")
    print(f"weakly guarded: {result.weakly_guarded}")
    print(f"guarded:        {result.guarded}")
    edges = sorted(f"{f.relation}->{g.relation}" for f, g in graph.edges)
    print(f"attack edges:   {edges or 'none'}")
    print(f"verdict:        {result.verdict.value}"
          + (f" ({result.hardness.value})" if result.hardness.value != "none" else ""))
    print(f"reason:         {result.reason}")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    result = lint_text(args.query)
    if args.format == "json":
        print(result.to_json())
    else:
        print(result.render_text())
    return 1 if result.has_errors else 0


def cmd_rewrite(args: argparse.Namespace) -> int:
    query = _parse_query_arg(args.query)
    try:
        rewriter = Rewriter(query, trace=args.trace)
        formula = rewriter.rewrite()
    except NotInFO as exc:
        print(f"no consistent first-order rewriting: {exc}", file=sys.stderr)
        return 1
    s = stats(formula)
    print(f"rewriting size: {s.nodes} nodes, {s.atoms} atoms, "
          f"{s.quantifiers} quantifiers")
    if args.pretty:
        print(pretty(formula))
    else:
        print(repr(formula))
    if args.sql:
        print()
        print(compile_to_sql(formula))
    if args.trace:
        print()
        print("Algorithm 1 trace:")
        for step in rewriter.trace:
            print("  " + step.render())
    return 0


def _not_in_fo_diagnostics(query_text: str, exc: NotInFO) -> str:
    """Coded diagnostics for a query with no FO rewriting.

    The linter's own error diagnostics (QL004 for a cyclic attack
    graph, QL001–QL003 for scope violations) carry spans and paper
    citations; when the linter sees no error (an undecided corner),
    fall back to a bare QL004-coded line so the output stays
    machine-parseable either way.
    """
    result = lint_text(query_text)
    if result.errors:
        return "\n\n".join(d.render(result.source) for d in result.errors)
    return (f"error[QL004]: no consistent first-order rewriting: {exc}")


def _columnar_explain(plan) -> str:
    """The static vectorized view: one line per operator, annotated with
    how the columnar backend executes it (batch vs decode fallback)."""
    from .fo.plan import AdomEq, AdomGuard, AdomProduct

    lines: List[str] = []

    def walk(node, depth: int) -> None:
        cols = ", ".join(v.name for v in node.cols)
        if isinstance(node, (AdomProduct, AdomGuard, AdomEq)):
            mode = "decode-to-tuples fallback (QP109)"
        else:
            mode = "batch"
        lines.append("  " * depth + f"{node.label()}  -> [{cols}]  [{mode}]")
        for child in node.children():
            walk(child, depth + 1)

    walk(plan, 0)
    return "\n".join(lines)


def cmd_plan(args: argparse.Namespace) -> int:
    from .fo.compile import compile_formula
    from .fo.plan import plan_nodes

    if args.analyze and not args.db:
        raise SystemExit("error: --analyze requires --db (a database to "
                         "execute the plan against)")
    if args.json and not args.analyze:
        raise SystemExit("error: --json requires --analyze")
    query = _parse_query_arg(args.query)
    try:
        if args.free:
            free = [Variable(n.strip()) for n in args.free.split(",") if n.strip()]
            formula = open_rewriting(OpenQuery(query, free))
            compiled = compile_formula(formula, free)
        else:
            formula = Rewriter(query).rewrite()
            compiled = compile_formula(formula)
    except NotInFO as exc:
        print(_not_in_fo_diagnostics(args.query, exc), file=sys.stderr)
        return 2
    n_nodes = sum(1 for _ in plan_nodes(compiled.plan))
    cols = ", ".join(v.name for v in compiled.free) or "(boolean)"
    if args.check:
        from .analysis import verification_report

        report = verification_report(compiled.plan,
                                     expected_cols=compiled.free)
        if report.ok:
            extras = []
            if report.uses_adom:
                extras.append("uses active domain")
            if report.probe_safe:
                extras.append("probe-safe")
            suffix = f"   ({', '.join(extras)})" if extras else ""
            print(f"plan verifier: ok   {report.nodes} operators "
                  f"checked{suffix}")
        else:
            print(f"plan verifier: FAILED   {report.error}",
                  file=sys.stderr)
            return 1
    if not args.analyze:
        print(f"plan: {n_nodes} operators, output columns: {cols}")
        if args.columnar:
            print(_columnar_explain(compiled.plan))
        else:
            print(compiled.explain())
        return 0
    import json

    db = load_database_file(args.db)
    profile = PlanProfile()
    if compiled.free:
        result = len(compiled.rows(db, profile=profile))
        outcome = f"{result} answer rows"
    else:
        result = compiled.holds(db, profile=profile)
        outcome = f"CERTAINTY = {result}"
    if not args.columnar:
        if args.json:
            print(json.dumps(profile_tree(compiled.plan, profile),
                             indent=2, sort_keys=True))
        else:
            print(f"plan: {n_nodes} operators, output columns: {cols}")
            print(f"executed on {args.db} ({db.size()} facts): {outcome}")
            print(render_profile(compiled.plan, profile))
        return 0
    # --columnar --analyze: run the vectorized backend alongside the
    # row-at-a-time one and show both operator profiles (the columnar
    # side carries the batches / decode_fallbacks counters).
    from .columnar import columnar_holds, columnar_rows

    col_profile = PlanProfile()
    if compiled.free:
        col_result = len(columnar_rows(compiled, db, profile=col_profile))
    else:
        col_result = columnar_holds(compiled, db, profile=col_profile)
    if col_result != result:
        print(f"error: columnar backend disagrees with the tuple "
              f"executor: {col_result!r} != {result!r}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(
            {"row": profile_tree(compiled.plan, profile),
             "columnar": profile_tree(compiled.plan, col_profile)},
            indent=2, sort_keys=True))
    else:
        print(f"plan: {n_nodes} operators, output columns: {cols}")
        print(f"executed on {args.db} ({db.size()} facts): {outcome}")
        print("row executor:")
        print(render_profile(compiled.plan, profile))
        print("columnar executor:")
        print(render_profile(compiled.plan, col_profile))
    return 0


def _print_stats() -> None:
    """The --stats payload: the unified EngineMetrics document."""
    print(collect_metrics().to_json())


def _execution_options(args: argparse.Namespace) -> ExecutionOptions:
    """The ExecutionOptions for a query command: --method/--jobs plus
    the trace flags, with env fallbacks included (overrides beat env)."""
    if getattr(args, "json", False) and not args.trace:
        raise SystemExit("error: --json requires --trace")
    method = _method_with_jobs(args)
    return ExecutionOptions.from_env(
        method=method,
        jobs=args.jobs if method == "parallel" else None,
        trace=args.trace,
        trace_file=args.trace_out,
    )


def _print_trace(tracer) -> None:
    """Human-readable span forest + per-operator profiles."""
    print()
    print("trace:")
    print(render_spans(tracer))
    for plan, profile, tags in tracer.profiles:
        label = " ".join(f"{k}={v}" for k, v in sorted(tags.items()))
        print()
        print(f"operators{f' ({label})' if label else ''}:")
        print(render_profile(plan, profile))


def _flush_trace(tracer, config) -> None:
    """Append the span JSONL when a trace file is configured.

    ``config`` is anything with a ``trace_file`` field (a
    :class:`RunConfig` or an :class:`ExecutionOptions`).
    """
    if tracer is not None and config.trace_file:
        n = tracer.write_jsonl(config.trace_file)
        print(f"wrote {n} span records to {config.trace_file}",
              file=sys.stderr)


def _method_with_jobs(args: argparse.Namespace) -> str:
    """Resolve --method against --jobs.

    ``--jobs`` belongs to the parallel executor: with the default
    ``--method auto`` it simply selects ``parallel``; any explicit
    serial method plus ``--jobs`` is a contradiction and is rejected.
    """
    method = args.method
    if args.jobs is None:
        return method
    if args.jobs < 1:
        raise SystemExit("error: --jobs must be a positive integer")
    if method == "auto":
        return "parallel"
    if method != "parallel":
        raise SystemExit(
            f"error: --jobs only applies to --method parallel "
            f"(got --method {method})"
        )
    return method


def cmd_certain(args: argparse.Namespace) -> int:
    import json

    query = _parse_query_arg(args.query)
    options = _execution_options(args)
    method = options.method
    tracer = options.make_tracer()
    db = _load_db(args)
    try:
        engine = CertaintyEngine(query)
        answer = engine.certain(db, options, tracer=tracer)
        if args.json:
            payload = trace_payload(args.query, method, tracer, answer=answer)
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            print(f"CERTAINTY = {answer}   (method: {method}, "
                  f"{db.size()} facts, {db.repair_count()} repairs)")
            if tracer is not None:
                _print_trace(tracer)
    finally:
        _close_db(db)
    _flush_trace(tracer, options)
    if args.stats:
        _print_stats()
    return 0


def cmd_answers(args: argparse.Namespace) -> int:
    import json

    query = _parse_query_arg(args.query)
    options = _execution_options(args)
    method = options.method
    tracer = options.make_tracer()
    free = [Variable(name.strip()) for name in args.free.split(",") if name.strip()]
    open_query = OpenQuery(query, free)
    db = _load_db(args)
    try:
        if args.show_sql and not args.json:
            print(certain_answers_sql_query(open_query, db))
            print()
        answers = certain_answers(open_query, db, options, tracer=tracer)
        if args.json:
            payload = trace_payload(
                args.query, method, tracer,
                free=[v.name for v in free], answers=len(answers),
            )
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            names = ", ".join(v.name for v in free)
            print(f"certain answers ({names}): {len(answers)}")
            for row in sorted(answers, key=repr):
                print("  " + ", ".join(repr(v) for v in row))
            if tracer is not None:
                _print_trace(tracer)
    finally:
        _close_db(db)
    _flush_trace(tracer, options)
    if args.stats:
        _print_stats()
    return 0


def _parse_stream_value(token: str):
    """A stream value: int when int-like, else a (possibly quoted) string."""
    if len(token) >= 2 and token[0] == token[-1] and token[0] in "'\"":
        return token[1:-1]
    try:
        return int(token)
    except ValueError:
        return token


def cmd_watch(args: argparse.Namespace) -> int:
    """Tail a fact stream and print certain-answer diffs as they land.

    Stream protocol (one op per line; values are whitespace-separated,
    int-like tokens become ints, quotes force strings):

        + R ann mons        insert R(ann, mons), commit immediately
        - R ann mons        delete R(ann, mons), commit immediately
        begin               start staging ops into one batch
        commit              commit the staged batch (one diff)
        # ...               comment; blank lines are skipped

    Each commit that changes the view prints one line per answer-set
    change, prefixed with the database clock:  ``v12 +('ann',)``.
    Boolean views (no --free) print certainty flips instead.
    """
    from .incremental import view_manager

    query = _parse_query_arg(args.query)
    config = RunConfig.from_env(trace_file=args.trace_out)
    tracer = config.make_tracer()
    db = _load_db(args)
    free = [Variable(n.strip()) for n in args.free.split(",") if n.strip()]
    manager = view_manager(db, tracer=tracer)
    view = manager.register_view(query, free)

    if free:
        print(f"watching {len(view.answers)} certain answers at v{db.clock}")
    else:
        print(f"watching CERTAINTY = {view.holds} at v{db.clock}")

    stream = sys.stdin if args.stream in (None, "-") else open(args.stream)
    commits = 0
    last_holds = view.holds
    last_version = view.version
    interrupted = False
    try:
        for lineno, raw in enumerate(stream, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            op, _, rest = line.partition(" ")
            try:
                if op == "begin":
                    db.begin_batch()
                elif op == "commit":
                    db.commit()
                elif op in ("+", "-"):
                    tokens = rest.split()
                    if not tokens:
                        raise ValueError("missing relation name")
                    relation = tokens[0]
                    row = tuple(_parse_stream_value(t) for t in tokens[1:])
                    if op == "+":
                        db.add(relation, row)
                    else:
                        db.discard(relation, row)
                else:
                    raise ValueError(
                        f"unknown op {op!r} (expected +, -, begin, commit)"
                    )
            except Exception as exc:
                print(f"error: stream line {lineno}: {exc}", file=sys.stderr)
                return 1
            if db.in_batch or view.version == last_version:
                continue
            commits += 1
            if free:
                ins, dels = view.changed_since(last_version)
                for row in sorted(dels, key=repr):
                    print(f"v{db.clock} -{row!r}")
                for row in sorted(ins, key=repr):
                    print(f"v{db.clock} +{row!r}")
            elif view.holds != last_holds:
                print(f"v{db.clock} CERTAINTY -> {view.holds}")
                last_holds = view.holds
            last_version = view.version
    except KeyboardInterrupt:
        # Ctrl-C ends the watch like EOF would: commit any staged
        # batch, release pools, close the store, print the summary.
        interrupted = True
    finally:
        if stream is not sys.stdin:
            stream.close()
        if db.in_batch:
            db.commit()
        # Warm forked pools (a prior --jobs run, or auto-parallel view
        # maintenance) hold strong references to the database; release
        # them explicitly so an interrupted watch exits promptly.
        from .parallel import release_database

        release_database(db)
        # A --db-path store is closed here; committed batches are
        # already durable, and the final summary only reads memory.
        _close_db(db)
    if interrupted:
        print("interrupted", file=sys.stderr)
    if free:
        print(f"final: {len(view.answers)} certain answers at v{db.clock} "
              f"({commits} update batches)")
    else:
        print(f"final: CERTAINTY = {view.holds} at v{db.clock} "
              f"({commits} update batches)")
    _flush_trace(tracer, config)
    if args.stats:
        _print_stats()
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the long-running CQA HTTP/JSON service (docs/SERVE.md).

    Owns the database (and, with --db-path, the durable store) until
    shutdown; prints one readiness line — ``listening on http://...``
    — once the socket is bound, so wrappers can wait for it.  SIGINT/
    SIGTERM drain connections, release the warm worker pools, and
    close the store cleanly.
    """
    import asyncio
    import signal

    from .serve import ReproServer

    db = _load_db(args)
    server = ReproServer(db, host=args.host, port=args.port,
                         jobs=args.jobs, trace_file=args.trace_out)

    async def _serve() -> None:
        await server.start()
        print(f"listening on http://{server.host}:{server.port}", flush=True)
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, server.request_shutdown)
            except NotImplementedError:  # non-Unix event loops
                pass
        assert server._closing is not None
        try:
            await server._closing.wait()
        finally:
            await server.shutdown()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        # Signal handler not installable (or second Ctrl-C): the
        # server teardown in _serve's finally already ran.
        pass
    print("server stopped", file=sys.stderr)
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    query = _parse_query_arg(args.query)
    db = load_database_file(args.db)
    print(explain(query, db).render())
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    from .analysis import analyze_text

    config = RunConfig.from_env(trace_file=args.trace_out)
    tracer = config.make_tracer()
    free = tuple(
        Variable(n.strip()) for n in args.free.split(",") if n.strip()
    )
    db = _load_db(args, required=False)
    try:
        report = analyze_text(args.query, free=free, db=db, tracer=tracer)
        if args.format == "json":
            print(report.to_json())
        elif args.format == "github":
            print(report.render_github())
        else:
            print(report.render_text())
    finally:
        _close_db(db) if db is not None else None
    _flush_trace(tracer, config)
    return 1 if report.errors else 0


def cmd_profile(args: argparse.Namespace) -> int:
    db = load_database_file(args.db)
    print(profile_database(db).render())
    return 0


def cmd_eval(args: argparse.Namespace) -> int:
    try:
        formula = parse_sentence(args.formula)
    except FormulaParseError as exc:
        raise SystemExit(f"error: cannot parse formula: {exc}")
    db = load_database_file(args.db)
    if args.method == "sql":
        from .db.sqlite_backend import run_sentence_sql

        answer = run_sentence_sql(formula, db)
    else:
        from .fo.eval import Evaluator

        answer = Evaluator(formula, db).evaluate()
    print(f"{answer}   (method: {args.method}, {db.size()} facts)")
    return 0


def cmd_graph(args: argparse.Namespace) -> int:
    query = _parse_query_arg(args.query)
    print(AttackGraph(query).to_dot())
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from .experiments import ALL_EXPERIMENTS
    from .experiments.harness import render_report

    parts = []
    for title, runner in ALL_EXPERIMENTS:
        print(f"running {title} ...", file=sys.stderr)
        parts.append(render_report(runner(), heading=f"# {title}"))
    text = "\n".join(parts)
    if args.output:
        with open(args.output, "w") as fp:
            fp.write(text)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text)
    return 0


def cmd_db_init(args: argparse.Namespace) -> int:
    import pathlib

    from .storage import PersistentDatabase, StorageError

    directory = pathlib.Path(args.path)
    if directory.is_dir() and (list(directory.glob("snapshot-*.snap"))
                               or list(directory.glob("wal-*.log"))):
        raise SystemExit(f"error: {directory} is already a store")
    try:
        store = PersistentDatabase(directory)
    except StorageError as exc:
        raise SystemExit(f"error: {exc}")
    try:
        if args.from_json:
            seed = load_database_file(args.from_json)
            for schema in seed.schemas.values():
                store.add_relation(schema)
            with store.batch():
                for name in seed.relations():
                    store.add_all(name, seed.facts(name))
            store.checkpoint()
            print(f"seeded {store.size()} facts from {args.from_json}")
        status = store.storage_status()
    finally:
        store.close()
    print(f"initialized store at {status['path']} "
          f"(clock {status['clock']}, {status['facts']} facts)")
    return 0


def cmd_db_open(args: argparse.Namespace) -> int:
    from .storage import StorageError, open_database

    try:
        store = open_database(args.path)
    except StorageError as exc:
        raise SystemExit(f"error: {exc}")
    try:
        recovery = dict(store.last_recovery)
        status = store.storage_status()
    finally:
        store.close()
    print(f"store:          {status['path']}")
    print(f"clock:          {status['clock']}")
    print(f"snapshot clock: {status['snapshot_clock']}")
    print(f"wal:            {status['wal_records']} records, "
          f"{status['wal_bytes']} bytes, {status['wal_segments']} segment(s)")
    print(f"facts:          {status['facts']} in {status['relations']} "
          f"relation(s), {status['views']} view(s)")
    print(f"recovery:       replayed {recovery['replayed_records']} "
          f"record(s) over snapshot clock {recovery['snapshot_clock']} "
          f"in {recovery['replay_ms']:.2f} ms")
    return 0


def cmd_db_checkpoint(args: argparse.Namespace) -> int:
    from .storage import StorageError, open_database

    try:
        store = open_database(args.path)
    except StorageError as exc:
        raise SystemExit(f"error: {exc}")
    try:
        size = store.checkpoint()
        status = store.storage_status()
    finally:
        store.close()
    print(f"checkpoint: snapshot-{status['snapshot_clock']:016d}.snap "
          f"({size} bytes), WAL pruned to {status['wal_bytes']} bytes")
    return 0


def cmd_db_verify(args: argparse.Namespace) -> int:
    import json as _json

    from .storage import verify_store

    report = verify_store(args.path, integrity=args.integrity_check)
    if args.json:
        print(_json.dumps(report, indent=2, default=str))
        return 0 if report["ok"] else 1
    print(f"store: {report['path']}")
    for snap in report["snapshots"]:
        state = (f"ok, clock {snap['clock']}, {snap['facts']} facts"
                 if snap["ok"] else f"CORRUPT: {snap['error']}")
        print(f"  snapshot {snap['file']}: {state}")
    for seg in report["segments"]:
        damage = f", damage: {seg['damage']}" if seg["damage"] else ""
        print(f"  segment  {seg['file']}: {seg['records']} record(s)"
              f"{damage}")
    if "integrity" in report:
        audit = report["integrity"]
        print(f"  integrity: clock {audit['recovered_clock']}, "
              f"{audit['facts']} facts, "
              f"{audit['key_violating_blocks']} key-violating block(s)"
              + (f", {audit['repairs']} repair(s)"
                 if audit["repairs"] is not None else ""))
    for error in report["errors"]:
        print(f"  error: {error}")
    print("verdict: " + ("ok" if report["ok"] else "CORRUPT"))
    return 0 if report["ok"] else 1


def cmd_db_stats(args: argparse.Namespace) -> int:
    import json as _json

    from .storage import StorageError, open_database, sql_mirror
    from .storage.stats import storage_stats

    try:
        store = open_database(args.path)
    except StorageError as exc:
        raise SystemExit(f"error: {exc}")
    try:
        status = store.storage_status()
        mirror = sql_mirror(store)
        assert mirror is not None  # an open store is always mirror-capable
        report = {
            "store": {"path": status["path"], "clock": status["clock"],
                      "facts": status["facts"],
                      "relations": status["relations"]},
            "mirror": mirror.stats(),
            "pushdown": storage_stats()["pushdown"],
        }
    finally:
        store.close()
    if args.json:
        print(_json.dumps(report, indent=2, default=str))
        return 0
    mirror_stats = report["mirror"]
    print(f"store:  {report['store']['path']} "
          f"(clock {report['store']['clock']}, "
          f"{report['store']['facts']} facts)")
    print(f"mirror: format {mirror_stats['format']}, "
          f"clock {mirror_stats['clock']} "
          f"({'in sync' if mirror_stats['clock'] == report['store']['clock'] else 'STALE'}), "
          f"{mirror_stats['dictionary_codes']} dictionary code(s), "
          f"{mirror_stats['adom_values']} active-domain value(s)")
    for name, info in mirror_stats["tables"].items():
        print(f"  table {name}: {info['rows']} row(s), "
              f"{info['indexes']} index(es)")
    cache = mirror_stats["stmt_cache"]
    rate = ("n/a" if cache["hit_rate"] is None
            else f"{cache['hit_rate']:.2%}")
    print(f"statement cache: {cache['entries']}/{cache['capacity']} "
          f"entries, {cache['hits']} hit(s), {cache['misses']} miss(es), "
          f"hit rate {rate}")
    pd = report["pushdown"]
    print(f"pushdown: {pd['native_sql']} native, {pd['legacy_sql']} legacy, "
          f"{pd['fallback_unsupported']} unsupported-plan fallback(s), "
          f"{pd['fallback_small']} below-threshold fallback(s), "
          f"{pd['mirror_rebuilds']} rebuild(s), "
          f"{pd['mirror_delta_rows']} delta row(s)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Consistent query answering for primary keys and "
                    "conjunctive queries with negated atoms (PODS 2018).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("classify", help="run the Theorem 4.3 classifier")
    p.add_argument("query")
    p.set_defaults(func=cmd_classify)

    p = sub.add_parser("lint",
                       help="static diagnostics for a query "
                            "(codes QL000-QL010, see docs/LINTING.md)")
    p.add_argument("query")
    p.add_argument("--format", default="text", choices=("text", "json"),
                   help="report format (default: text)")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser("rewrite", help="construct the consistent FO rewriting")
    p.add_argument("query")
    p.add_argument("--pretty", action="store_true",
                   help="indented rendering instead of one line")
    p.add_argument("--sql", action="store_true",
                   help="also print the compiled SQL")
    p.add_argument("--trace", action="store_true",
                   help="show Algorithm 1's elimination steps")
    p.set_defaults(func=cmd_rewrite)

    p = sub.add_parser("plan",
                       help="show the set-at-a-time relational plan the "
                            "compiled method runs for a query's rewriting")
    p.add_argument("query")
    p.add_argument("--free", default="",
                   help="comma-separated free variable names "
                        "(empty: Boolean certainty plan)")
    p.add_argument("--analyze", action="store_true",
                   help="EXPLAIN ANALYZE: execute the plan on --db and "
                        "annotate each operator with times/cardinalities")
    p.add_argument("--db", help="database JSON file (required by --analyze)")
    p.add_argument("--json", action="store_true",
                   help="emit the analyzed operator tree as JSON "
                        "(requires --analyze)")
    p.add_argument("--check", action="store_true",
                   help="run the plan-IR verifier (codes PV001-PV013, "
                        "see docs/ANALYSIS.md) on the compiled plan")
    p.add_argument("--columnar", action="store_true",
                   help="show the vectorized (batch) operator view; with "
                        "--analyze, run both executors and print the "
                        "row-at-a-time and columnar profiles side by side")
    p.set_defaults(func=cmd_plan)

    p = sub.add_parser("certain", help="answer CERTAINTY(q) on a database")
    p.add_argument("query")
    p.add_argument("--db", default=None, help="database JSON file")
    p.add_argument("--db-path", default=None, metavar="DIR",
                   help="durable store directory (repro db init); "
                        "mutually exclusive with --db")
    p.add_argument("--method", default="auto",
                   choices=("auto",) + METHODS,
                   help="solving strategy (auto: compiled when in FO, "
                        "else brute)")
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="worker count for --method parallel (implies it "
                        "when --method is auto; Boolean certainty falls "
                        "back to the serial compiled plan)")
    p.add_argument("--trace", action="store_true",
                   help="collect spans and per-operator timings; print an "
                        "EXPLAIN ANALYZE report after the answer")
    p.add_argument("--json", action="store_true",
                   help="emit the trace document as JSON instead of text "
                        "(requires --trace; shape: docs/trace.schema.json)")
    p.add_argument("--trace-out", default=None, metavar="FILE",
                   help="append span JSONL records to FILE (implies "
                        "tracing; env fallback: REPRO_TRACE_FILE)")
    p.add_argument("--stats", action="store_true",
                   help="also print the unified EngineMetrics JSON")
    p.set_defaults(func=cmd_certain)

    p = sub.add_parser("answers",
                       help="certain answers for a query with free variables")
    p.add_argument("query")
    p.add_argument("--free", required=True,
                   help="comma-separated free variable names")
    p.add_argument("--db", default=None, help="database JSON file")
    p.add_argument("--db-path", default=None, metavar="DIR",
                   help="durable store directory (repro db init); "
                        "mutually exclusive with --db")
    p.add_argument("--method", default="auto",
                   choices=("auto", "brute", "interpreted", "rewriting",
                            "compiled", "sql", "parallel", "columnar"),
                   help="solving strategy (auto: compiled when in FO, "
                        "else brute; columnar runs the vectorized batch "
                        "executor)")
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="worker count for --method parallel (implies it "
                        "when --method is auto)")
    p.add_argument("--show-sql", action="store_true",
                   help="print the single SQL query first")
    p.add_argument("--trace", action="store_true",
                   help="collect spans and per-operator timings; print an "
                        "EXPLAIN ANALYZE report after the answers")
    p.add_argument("--json", action="store_true",
                   help="emit the trace document as JSON instead of text "
                        "(requires --trace; shape: docs/trace.schema.json)")
    p.add_argument("--trace-out", default=None, metavar="FILE",
                   help="append span JSONL records to FILE (implies "
                        "tracing; env fallback: REPRO_TRACE_FILE)")
    p.add_argument("--stats", action="store_true",
                   help="also print the unified EngineMetrics JSON")
    p.set_defaults(func=cmd_answers)

    p = sub.add_parser("watch",
                       help="maintain a query's certain answers under a "
                            "fact stream and print answer-set diffs")
    p.add_argument("query")
    p.add_argument("--db", default=None,
                   help="database JSON file with the initial facts")
    p.add_argument("--db-path", default=None, metavar="DIR",
                   help="durable store directory: the stream's committed "
                        "batches are WAL-logged and survive the process; "
                        "mutually exclusive with --db")
    p.add_argument("--free", default="",
                   help="comma-separated free variable names "
                        "(empty: watch Boolean certainty)")
    p.add_argument("--stream", default="-",
                   help="fact stream file, '-' for stdin (lines: "
                        "'+ R v1 v2', '- R v1 v2', 'begin', 'commit')")
    p.add_argument("--trace-out", default=None, metavar="FILE",
                   help="append maintenance span JSONL records to FILE at "
                        "EOF (env fallback: REPRO_TRACE_FILE)")
    p.add_argument("--stats", action="store_true",
                   help="print the unified EngineMetrics JSON at EOF")
    p.set_defaults(func=cmd_watch)

    p = sub.add_parser("serve",
                       help="run the long-running CQA HTTP/JSON service "
                            "(docs/SERVE.md)")
    p.add_argument("--db", default=None,
                   help="serve an in-memory copy of a database JSON file")
    p.add_argument("--db-path", default=None, metavar="DIR",
                   help="serve a durable store directory (writes go "
                        "through the WAL; views survive restarts); "
                        "mutually exclusive with --db")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default: loopback only)")
    p.add_argument("--port", type=int, default=8100,
                   help="TCP port; 0 picks a free port (printed in the "
                        "readiness line)")
    p.add_argument("--jobs", type=int, default=None,
                   help="admission width and the default worker count "
                        "for method='parallel' requests")
    p.add_argument("--trace-out", default=None, metavar="FILE",
                   help="append one span tree per request as JSONL "
                        "records to FILE")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("explain",
                       help="explain a certainty answer (falsifying "
                            "repair or sampled witnesses)")
    p.add_argument("query")
    p.add_argument("--db", required=True, help="database JSON file")
    p.set_defaults(func=cmd_explain)

    p = sub.add_parser("analyze",
                       help="unified static analysis: structural report, "
                            "QL+QP diagnostics, plan verifier verdict and "
                            "cost estimate (docs/ANALYSIS.md)")
    p.add_argument("query")
    p.add_argument("--free", default="",
                   help="comma-separated free variable names (empty: "
                        "analyze the Boolean certainty plan)")
    p.add_argument("--db", default=None,
                   help="database JSON file: use its real cardinalities "
                        "in the cost model (default: textbook estimates)")
    p.add_argument("--db-path", default=None, metavar="DIR",
                   help="durable store directory to analyze against "
                        "(enables the storage rules QP110/QP111); "
                        "mutually exclusive with --db")
    p.add_argument("--format", default="text",
                   choices=("text", "json", "github"),
                   help="report format; json is pinned by "
                        "docs/diagnostics.schema.json, github emits "
                        "workflow-command annotations")
    p.add_argument("--trace-out", default=None, metavar="FILE",
                   help="append analysis span JSONL records to FILE "
                        "(env fallback: REPRO_TRACE_FILE)")
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("profile",
                       help="inconsistency profile of a database "
                            "(blocks, violations, repair count)")
    p.add_argument("--db", required=True, help="database JSON file")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("eval",
                       help="evaluate an arbitrary FO sentence on a database "
                            "(active-domain semantics)")
    p.add_argument("formula")
    p.add_argument("--db", required=True, help="database JSON file")
    p.add_argument("--method", default="python", choices=("python", "sql"))
    p.set_defaults(func=cmd_eval)

    p = sub.add_parser("graph", help="print the attack graph as DOT")
    p.add_argument("query")
    p.set_defaults(func=cmd_graph)

    p = sub.add_parser("report", help="run all experiments (E1-E14)")
    p.add_argument("-o", "--output", help="write to file instead of stdout")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("db",
                       help="manage durable stores (WAL + snapshots, "
                            "see docs/STORAGE.md)")
    dbsub = p.add_subparsers(dest="db_command", required=True)

    q = dbsub.add_parser("init", help="create a new store directory")
    q.add_argument("path")
    q.add_argument("--from", dest="from_json", default=None, metavar="JSON",
                   help="seed the store from a database JSON file and "
                        "checkpoint immediately")
    q.set_defaults(func=cmd_db_init)

    q = dbsub.add_parser("open",
                         help="recover a store and print its vitals")
    q.add_argument("path")
    q.set_defaults(func=cmd_db_open)

    q = dbsub.add_parser("checkpoint",
                         help="compact the WAL into a fresh snapshot")
    q.add_argument("path")
    q.set_defaults(func=cmd_db_checkpoint)

    q = dbsub.add_parser("verify",
                         help="offline CRC sweep of snapshots and WAL "
                              "segments; exit 1 on unrecoverable damage")
    q.add_argument("path")
    q.add_argument("--integrity-check", action="store_true",
                   help="also replay the consistent prefix in memory and "
                        "audit schemas and primary keys")
    q.add_argument("--json", action="store_true",
                   help="emit the verification report as JSON")
    q.set_defaults(func=cmd_db_verify)

    q = dbsub.add_parser("stats",
                         help="attach the SQL-pushdown mirror and print "
                              "its vitals: clock sync, per-table row and "
                              "index counts, statement-cache hit rate")
    q.add_argument("path")
    q.add_argument("--json", action="store_true",
                   help="emit the stats report as JSON")
    q.set_defaults(func=cmd_db_stats)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ParseError as exc:
        print(f"error: cannot parse query: {exc}", file=sys.stderr)
    except FormulaParseError as exc:
        print(f"error: cannot parse formula: {exc}", file=sys.stderr)
    except LintError as exc:
        print(f"error: {exc}", file=sys.stderr)
    except QueryError as exc:
        print(f"error: invalid query: {exc}", file=sys.stderr)
    except NotInFO as exc:
        print(f"error: {exc}", file=sys.stderr)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
