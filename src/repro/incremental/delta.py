"""Delta execution for the plan IR: materialized per-operator state.

A :class:`CompiledQuery` plan is a tree (occasionally a DAG, through
seeded lowering) of set-valued operators.  :class:`IncrementalPlan`
materializes the output of *every* node once, then keeps all of them up
to date under the row-level deltas a :class:`~repro.db.changelog.Changelog`
carries — classic incremental view maintenance, specialized to the
twelve operators of :mod:`repro.fo.plan`:

``Scan``/``Project``/``Union``
    maintain a derivation counter per output row (several base rows or
    parts can support the same output row), emitting a delta only on
    0↔positive transitions;
``Select``
    is one-to-one on rows, so child deltas are simply filtered;
``Join``
    keeps both inputs hash-indexed on the shared columns; because the
    output columns are the union of the input columns, every output row
    has exactly one derivation and no counting is needed;
``SemiJoin``/``AntiJoin``
    keep the left input indexed by join key and a per-key counter of
    right matches; a key whose counter hits zero *inserts* rows into an
    anti-join's output — the retraction-induced insertions that make
    a query certain when a fact leaves a block;
``Difference``
    the same, with the whole row as the key;
``Literal``
    never changes.

``AdomProduct``/``AdomGuard``/``AdomEq`` depend on the active domain of
the whole database, whose membership can shrink under deletion; they
(and any operator without a delta rule) use the escape hatch instead:
*recompute-from-dirty-subtree* — re-execute the node with a fresh
:class:`~repro.fo.plan.Executor` and diff against its stored output, so
maintenance stays correct for every plan the compiler can emit.  The
``fallback_recomputes`` counter makes that path observable.

Deltas propagate bottom-up in one pass per batch; clean subtrees (no
dirty relation below, active domain untouched) are skipped entirely.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..analysis.verifier import ADOM_NODES
from ..db.changelog import Changelog
from ..db.database import Database
from ..fo.plan import (
    AntiJoin,
    Difference,
    Executor,
    Join,
    Literal,
    Plan,
    Project,
    Scan,
    Select,
    SemiJoin,
    Union,
    _tuple_getter,
)

Row = Tuple
RowDelta = Tuple[Set[Row], Set[Row]]  # (inserted, deleted)

_EMPTY: RowDelta = (frozenset(), frozenset())  # type: ignore[assignment]


class DeltaError(RuntimeError):
    """Raised when maintained state is found inconsistent (a bug)."""


def _apply_counted(
    counts: Dict[Row, int], dec: Iterable[Row], inc: Iterable[Row]
) -> RowDelta:
    """Apply ±1 multiplicity changes and report 0↔positive transitions.

    ``dec``/``inc`` carry multiplicity (the same row may occur several
    times); zero-count entries are dropped so ``row in counts`` means
    "currently derivable".
    """
    touched: Dict[Row, int] = {}
    for row in dec:
        if row not in touched:
            touched[row] = counts.get(row, 0)
        counts[row] = counts.get(row, 0) - 1
    for row in inc:
        if row not in touched:
            touched[row] = counts.get(row, 0)
        counts[row] = counts.get(row, 0) + 1
    ins: Set[Row] = set()
    dels: Set[Row] = set()
    for row, old in touched.items():
        new = counts.get(row, 0)
        if new < 0:
            raise DeltaError(f"negative derivation count for {row!r}")
        if new == 0:
            del counts[row]
        if old == 0 and new > 0:
            ins.add(row)
        elif old > 0 and new == 0:
            dels.add(row)
    return ins, dels


def _index_rows(rows: Iterable[Row], key) -> Dict[Row, Set[Row]]:
    out: Dict[Row, Set[Row]] = {}
    for row in rows:
        out.setdefault(key(row), set()).add(row)
    return out


def _index_add(index: Dict[Row, Set[Row]], rows: Iterable[Row], key) -> None:
    for row in rows:
        index.setdefault(key(row), set()).add(row)


def _index_remove(index: Dict[Row, Set[Row]], rows: Iterable[Row], key) -> None:
    for row in rows:
        k = key(row)
        bucket = index.get(k)
        if bucket is not None:
            bucket.discard(row)
            if not bucket:
                del index[k]


class _NodeState:
    """Materialized output rows plus operator-specific auxiliaries."""

    __slots__ = ("rows", "counts", "lindex", "rindex", "rcounts",
                 "lset", "rset", "lkey", "rkey", "emit")

    def __init__(self, rows: Set[Row]):
        self.rows: Set[Row] = rows
        self.counts: Optional[Dict[Row, int]] = None
        self.lindex: Optional[Dict[Row, Set[Row]]] = None
        self.rindex: Optional[Dict[Row, Set[Row]]] = None
        self.rcounts: Optional[Dict[Row, int]] = None
        self.lset: Optional[Set[Row]] = None
        self.rset: Optional[Set[Row]] = None
        self.lkey = None
        self.rkey = None
        self.emit = None


class _NodeInfo:
    """Static per-node facts: which relations the subtree reads, whether
    it touches the active domain, and whether it must always recompute."""

    __slots__ = ("relations", "uses_adom", "always_dirty")

    def __init__(self, relations: FrozenSet[str], uses_adom: bool,
                 always_dirty: bool):
        self.relations = relations
        self.uses_adom = uses_adom
        self.always_dirty = always_dirty


def _binary_keys(node) -> Tuple[Callable, Callable]:
    shared = node.shared
    lkey = _tuple_getter([node.left.cols.index(c) for c in shared])
    rkey = _tuple_getter([node.right.cols.index(c) for c in shared])
    return lkey, rkey


class IncrementalPlan:
    """One materialized plan, maintained under changelog batches.

    ``constants`` must be the compiled query's constant pool so fallback
    re-executions see the same active domain as a fresh run.
    """

    def __init__(self, plan: Plan, db: Database, constants: Iterable = ()):
        self.plan = plan
        self.constants: Tuple = tuple(constants)
        self.deltas_applied = 0
        self.rows_touched = 0
        self.fallback_recomputes = 0
        self._info: Dict[int, _NodeInfo] = {}
        self._state: Dict[int, _NodeState] = {}
        self._order: List[Plan] = []
        self._collect(plan, set())
        self._materialize(db)
        # Per-batch scratch, valid only inside apply():
        self._memo: Dict[int, RowDelta] = {}
        self._dirty: FrozenSet[str] = frozenset()
        self._adom_changed = False
        self._db: Optional[Database] = None
        self._log: Optional[Changelog] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _collect(self, node: Plan, seen: Set[int]) -> None:
        if id(node) in seen:
            return
        seen.add(id(node))
        for child in node.children():
            self._collect(child, seen)
        kind = type(node)
        relations: FrozenSet[str] = frozenset()
        uses_adom = False
        always_dirty = False
        if kind is Scan:
            relations = frozenset((node.atom.relation,))
        elif kind is Literal:
            pass
        elif kind in ADOM_NODES:
            uses_adom = True
        elif kind in _COMPOSITE:
            for child in node.children():
                info = self._info[id(child)]
                relations |= info.relations
                uses_adom = uses_adom or info.uses_adom
                always_dirty = always_dirty or info.always_dirty
        else:
            # Unknown operator: no delta rule and no dependency model —
            # recompute it whenever anything at all changes.
            for child in node.children():
                relations |= self._info[id(child)].relations
            always_dirty = True
        self._info[id(node)] = _NodeInfo(relations, uses_adom, always_dirty)
        self._order.append(node)

    @property
    def uses_adom(self) -> bool:
        """Does any node depend on active-domain membership?"""
        return self._info[id(self.plan)].uses_adom

    @property
    def relations(self) -> FrozenSet[str]:
        """The database relations the plan reads."""
        return self._info[id(self.plan)].relations

    @property
    def rows(self) -> Set[Row]:
        """The maintained output of the root (do not mutate)."""
        return self._state[id(self.plan)].rows

    def _materialize(self, db: Database) -> None:
        ex = Executor(db, None, self.constants)
        for node in self._order:
            state = _NodeState(set(ex.run(node)))
            kind = type(node)
            if kind is Scan:
                state.counts = {}
                getter = _tuple_getter(node.proj)
                for row in self._scan_source(node, db.facts(node.atom.relation)):
                    out = getter(row)
                    state.counts[out] = state.counts.get(out, 0) + 1
            elif kind is Project:
                state.counts = {}
                getter = _tuple_getter(node.positions)
                for row in ex.run(node.child):
                    out = getter(row)
                    state.counts[out] = state.counts.get(out, 0) + 1
            elif kind is Union:
                state.counts = {}
                for part in node.parts:
                    for row in ex.run(part):
                        state.counts[row] = state.counts.get(row, 0) + 1
            elif kind is Join:
                state.lkey, state.rkey = _binary_keys(node)
                width = len(node.left.cols)
                state.emit = _tuple_getter(
                    [i if side == 0 else width + i for side, i in node.emit]
                )
                state.lindex = _index_rows(ex.run(node.left), state.lkey)
                state.rindex = _index_rows(ex.run(node.right), state.rkey)
            elif kind in (SemiJoin, AntiJoin):
                state.lkey, state.rkey = _binary_keys(node)
                state.lindex = _index_rows(ex.run(node.left), state.lkey)
                state.rcounts = {}
                for row in ex.run(node.right):
                    k = state.rkey(row)
                    state.rcounts[k] = state.rcounts.get(k, 0) + 1
            elif kind is Difference:
                state.lset = set(ex.run(node.left))
                state.rset = set(ex.run(node.right))
            self._state[id(node)] = state

    @staticmethod
    def _scan_source(node: Scan, rows: Iterable[Row]) -> Iterable[Row]:
        """Base rows surviving the scan's constant/equality pattern."""
        consts = node.consts
        checks = node.eq_checks
        for row in rows:
            if consts and any(row[i] != v for i, v in consts.items()):
                continue
            if checks and any(row[i] != row[j] for i, j in checks):
                continue
            yield row

    # ------------------------------------------------------------------
    # delta application
    # ------------------------------------------------------------------

    def apply(self, log: Changelog, db: Database,
              adom_changed: bool = False) -> RowDelta:
        """Propagate one committed batch; returns the net answer delta.

        Must be called for *every* commit on the database, in order,
        with ``db`` already in its post-commit state (exactly what a
        changelog subscriber observes).  ``adom_changed`` reports
        whether active-domain membership moved, net of this plan's
        constant pool; callers without Adom* operators may pass False
        unconditionally (see :attr:`uses_adom`).
        """
        self._memo = {}
        self._dirty = log.relations
        self._adom_changed = adom_changed
        self._db = db
        self._log = log
        try:
            ins, dels = self._delta(self.plan)
        finally:
            self._db = None
            self._log = None
        self.deltas_applied += 1
        return ins, dels

    def _is_dirty(self, node: Plan) -> bool:
        info = self._info[id(node)]
        return bool(
            info.always_dirty
            or (info.relations & self._dirty)
            or (info.uses_adom and self._adom_changed)
        )

    def _delta(self, node: Plan) -> RowDelta:
        found = self._memo.get(id(node))
        if found is not None:
            return found
        if not self._is_dirty(node):
            result = _EMPTY
        else:
            handler = self._DELTA_HANDLERS.get(type(node))
            if handler is None:
                result = self._fallback(node)
            else:
                result = handler(self, node)
        self._memo[id(node)] = result
        ins, dels = result
        if ins or dels:
            state = self._state[id(node)]
            state.rows.difference_update(dels)
            state.rows.update(ins)
            self.rows_touched += len(ins) + len(dels)
        return result

    def _fallback(self, node: Plan) -> RowDelta:
        """Escape hatch: recompute the dirty subtree and diff.

        Children are still delta-processed first so their own state
        remains current for later batches; the recomputation itself
        reads only the database.
        """
        for child in node.children():
            self._delta(child)
        self.fallback_recomputes += 1
        new = Executor(self._db, None, self.constants).run(node)
        old = self._state[id(node)].rows
        return set(new - old), set(old - new)

    # -- per-operator delta rules --------------------------------------

    def _d_scan(self, node: Scan) -> RowDelta:
        state = self._state[id(node)]
        schema = self._db.schemas.get(node.atom.relation)
        if schema is None or schema.arity != node.atom.schema.arity:
            return _EMPTY
        delta = self._log.deltas.get(node.atom.relation)
        if delta is None:
            return _EMPTY
        getter = _tuple_getter(node.proj)
        dec = [getter(r) for r in self._scan_source(node, delta.deleted)]
        inc = [getter(r) for r in self._scan_source(node, delta.inserted)]
        return _apply_counted(state.counts, dec, inc)

    def _d_literal(self, node: Literal) -> RowDelta:
        return _EMPTY

    def _d_select(self, node: Select) -> RowDelta:
        cins, cdels = self._delta(node.child)
        if not cins and not cdels:
            return _EMPTY
        preds = []
        for lhs, rhs, equal in node.conds:
            getl = Executor._operand_getter(lhs)
            getr = Executor._operand_getter(rhs)
            preds.append((getl, getr, equal))

        def passes(row: Row) -> bool:
            return all(
                (getl(row) == getr(row)) == equal for getl, getr, equal in preds
            )

        return {r for r in cins if passes(r)}, {r for r in cdels if passes(r)}

    def _d_project(self, node: Project) -> RowDelta:
        cins, cdels = self._delta(node.child)
        if not cins and not cdels:
            return _EMPTY
        state = self._state[id(node)]
        getter = _tuple_getter(node.positions)
        return _apply_counted(
            state.counts, [getter(r) for r in cdels], [getter(r) for r in cins]
        )

    def _d_union(self, node: Union) -> RowDelta:
        state = self._state[id(node)]
        dec: List[Row] = []
        inc: List[Row] = []
        for part in node.parts:
            pins, pdels = self._delta(part)
            inc.extend(pins)
            dec.extend(pdels)
        if not inc and not dec:
            return _EMPTY
        return _apply_counted(state.counts, dec, inc)

    def _d_join(self, node: Join) -> RowDelta:
        state = self._state[id(node)]
        lins, ldel = self._delta(node.left)
        rins, rdel = self._delta(node.right)
        if not (lins or ldel or rins or rdel):
            return _EMPTY
        lkey, rkey, emit = state.lkey, state.rkey, state.emit
        lindex, rindex = state.lindex, state.rindex
        dels: Set[Row] = set()
        # Deletions pair against the *old* indexes ...
        for lrow in ldel:
            for r in rindex.get(lkey(lrow), ()):
                dels.add(emit(lrow + r))
        for r in rdel:
            for lrow in lindex.get(rkey(r), ()):
                dels.add(emit(lrow + r))
        _index_remove(lindex, ldel, lkey)
        _index_add(lindex, lins, lkey)
        _index_remove(rindex, rdel, rkey)
        _index_add(rindex, rins, rkey)
        # ... and insertions against the new ones (the (Δleft, Δright)
        # pair lands twice; the set dedupes).
        ins: Set[Row] = set()
        for lrow in lins:
            for r in rindex.get(lkey(lrow), ()):
                ins.add(emit(lrow + r))
        for r in rins:
            for lrow in lindex.get(rkey(r), ()):
                ins.add(emit(lrow + r))
        return ins, dels

    def _semi_transitions(self, node, state) -> Tuple[RowDelta, RowDelta, Callable]:
        """Shared semi/anti plumbing: child deltas, right-key membership
        transitions, and an old-membership probe."""
        left_delta = self._delta(node.left)
        rins, rdel = self._delta(node.right)
        rkey = state.rkey
        became_present, became_absent = _apply_counted(
            state.rcounts, [rkey(r) for r in rdel], [rkey(r) for r in rins]
        )

        def old_present(k: Row) -> bool:
            if k in became_present:
                return False
            if k in became_absent:
                return True
            return k in state.rcounts

        return left_delta, (became_present, became_absent), old_present

    def _d_semi_join(self, node: SemiJoin) -> RowDelta:
        state = self._state[id(node)]
        (lins, ldel), (became_present, became_absent), old_present = (
            self._semi_transitions(node, state)
        )
        lkey, lindex = state.lkey, state.lindex
        dels = {lrow for lrow in ldel if old_present(lkey(lrow))}
        for k in became_absent:
            dels.update(lindex.get(k, ()))  # old index: includes Δ⁻left rows
        _index_remove(lindex, ldel, lkey)
        _index_add(lindex, lins, lkey)
        ins = {lrow for lrow in lins if lkey(lrow) in state.rcounts}
        for k in became_present:
            ins.update(lindex.get(k, ()))
        return ins, dels

    def _d_anti_join(self, node: AntiJoin) -> RowDelta:
        state = self._state[id(node)]
        (lins, ldel), (became_present, became_absent), old_present = (
            self._semi_transitions(node, state)
        )
        lkey, lindex = state.lkey, state.lindex
        dels = {lrow for lrow in ldel if not old_present(lkey(lrow))}
        for k in became_present:
            dels.update(lindex.get(k, ()))
        _index_remove(lindex, ldel, lkey)
        _index_add(lindex, lins, lkey)
        ins = {lrow for lrow in lins if lkey(lrow) not in state.rcounts}
        # Retraction-induced insertions: a right key emptied out, so the
        # surviving left rows under it (re-)enter the output.
        for k in became_absent:
            ins.update(lindex.get(k, ()))
        return ins, dels

    def _d_difference(self, node: Difference) -> RowDelta:
        state = self._state[id(node)]
        lins, ldel = self._delta(node.left)
        rins, rdel = self._delta(node.right)
        if not (lins or ldel or rins or rdel):
            return _EMPTY
        lset, rset = state.lset, state.rset
        dels = {lrow for lrow in ldel if lrow not in rset}
        dels.update(r for r in rins if r in lset and r not in ldel)
        ins = {lrow for lrow in lins
               if (lrow not in rset or lrow in rdel) and lrow not in rins}
        # Retraction-induced insertions on the right operand:
        ins.update(r for r in rdel if (r in lset and r not in ldel) or r in lins)
        lset.difference_update(ldel)
        lset.update(lins)
        rset.difference_update(rdel)
        rset.update(rins)
        return ins, dels

    _DELTA_HANDLERS = {
        Scan: _d_scan,
        Literal: _d_literal,
        Select: _d_select,
        Project: _d_project,
        Union: _d_union,
        Join: _d_join,
        SemiJoin: _d_semi_join,
        AntiJoin: _d_anti_join,
        Difference: _d_difference,
        # AdomProduct / AdomGuard / AdomEq intentionally absent: they
        # take the recompute-from-dirty-subtree escape hatch.
    }

    def stats(self) -> Dict[str, int]:
        """Maintenance counters for this plan."""
        return {
            "deltas_applied": self.deltas_applied,
            "rows_touched": self.rows_touched,
            "fallback_recomputes": self.fallback_recomputes,
            "nodes": len(self._order),
        }


_COMPOSITE = (Select, Project, Join, SemiJoin, AntiJoin, Union, Difference)
