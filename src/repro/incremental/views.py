"""Materialized certain-answer views, maintained under updates.

A :class:`View` is the certain-answer set of one FO-rewritable query,
kept current as facts are inserted and deleted.  A :class:`ViewManager`
subscribes to a database's changelog (:meth:`Database.subscribe`) and
pushes every committed batch through each registered view's
:class:`~repro.incremental.delta.IncrementalPlan` — so after any
``commit()`` (or any single mutation outside a batch), ``view.answers``
is already up to date, without a full re-execution.

The manager also maintains an occurrence counter over the active
domain, because deletions can *shrink* it: a view whose plan contains
active-domain operators is recomputed through the escape hatch whenever
domain membership moves (net of the view's constant pool).  Guarded
rewritings — the common case — compile without Adom* operators and
never take that path.  ``repro analyze`` flags queries that *will*
take it before any view is built (rule QP104 in
:mod:`repro.analysis.rules`).

Stats mirror the plan cache: per-manager :meth:`ViewManager.stats` and
a process-wide :func:`view_stats`, surfaced as the ``views`` section
of ``engine.metrics()``.  Maintenance work is traceable — attach a
:class:`repro.obs.Tracer` via ``view_manager(db, tracer=...)`` for a
``view-maintain`` span per commit.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..core.classify import Verdict, classify
from ..core.query import Query
from ..core.terms import Variable
from ..db.changelog import Changelog
from ..db.database import Database
from ..fo.compile import plan_cache
from ..fo.formula import Formula, free_variables
from .delta import IncrementalPlan

Row = Tuple


class StaleVersionError(ValueError):
    """Raised by :meth:`View.changed_since` for trimmed-away versions."""


class _GlobalStats:
    """Process-wide counters, aggregated across all view managers."""

    __slots__ = ("views_registered", "commits_seen", "deltas_applied",
                 "rows_touched", "fallback_recomputes")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.views_registered = 0
        self.commits_seen = 0
        self.deltas_applied = 0
        self.rows_touched = 0
        self.fallback_recomputes = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "views_registered": self.views_registered,
            "commits_seen": self.commits_seen,
            "deltas_applied": self.deltas_applied,
            "rows_touched": self.rows_touched,
            "fallback_recomputes": self.fallback_recomputes,
        }


_GLOBAL = _GlobalStats()


def view_stats() -> Dict[str, int]:
    """Process-wide incremental-maintenance counters (all managers)."""
    return _GLOBAL.snapshot()


def reset_view_stats() -> None:
    """Zero the process-wide counters (test isolation hook)."""
    _GLOBAL.reset()


class View:
    """One maintained certain-answer set.

    ``answers`` is always current with the owning database;
    ``changed_since(version)`` reports the net answer diff since an
    earlier :attr:`version` (a :attr:`Database.clock` value).
    """

    def __init__(self, manager: "ViewManager", query: Optional[Query],
                 free: Tuple[Variable, ...], formula: Formula,
                 incremental: IncrementalPlan, version: int):
        self._manager = manager
        self.query = query
        self.free = free
        self.formula = formula
        self.incremental = incremental
        self._version = version
        self._registered_at = version
        # (version-after, inserted, deleted) per applied non-empty batch.
        self._history: List[Tuple[int, FrozenSet[Row], FrozenSet[Row]]] = []
        self._trimmed_before = version

    @property
    def answers(self) -> FrozenSet[Row]:
        """The current certain answers (aligned with :attr:`free`)."""
        return frozenset(self.incremental.rows)

    @property
    def holds(self) -> bool:
        """For a Boolean view (no free variables): is the query certain?"""
        return bool(self.incremental.rows)

    @property
    def version(self) -> int:
        """The database clock value this view is current with."""
        return self._version

    def changed_since(self, version: int) -> Tuple[FrozenSet[Row], FrozenSet[Row]]:
        """Net ``(inserted, deleted)`` answer rows since *version*.

        *version* must be a clock value at or after this view's
        registration that is still within the retained history window
        (:attr:`ViewManager.history_limit` batches).
        """
        if version >= self._version:
            return frozenset(), frozenset()
        if version < self._trimmed_before:
            raise StaleVersionError(
                f"version {version} predates retained view history "
                f"(oldest known: {self._trimmed_before})"
            )
        ins: Set[Row] = set()
        dels: Set[Row] = set()
        for after, step_ins, step_dels in self._history:
            if after <= version:
                continue
            for row in step_dels:
                if row in ins:  # inserted earlier in the window: nets out
                    ins.discard(row)
                else:
                    dels.add(row)
            for row in step_ins:
                if row in dels:  # deleted earlier in the window: nets out
                    dels.discard(row)
                else:
                    ins.add(row)
        return frozenset(ins), frozenset(dels)

    def _record(self, version: int, ins: FrozenSet[Row],
                dels: FrozenSet[Row], limit: int) -> None:
        self._version = version
        if not ins and not dels:
            return
        self._history.append((version, ins, dels))
        while len(self._history) > limit:
            dropped = self._history.pop(0)
            self._trimmed_before = dropped[0]

    def stats(self) -> Dict[str, int]:
        """Maintenance counters of this view's incremental plan."""
        return self.incremental.stats()

    def __repr__(self) -> str:
        names = ", ".join(v.name for v in self.free) or "boolean"
        return (f"View[{names}] v{self._version} "
                f"({len(self.incremental.rows)} answers)")


class ViewManager:
    """Keeps registered views current under one database's changelog.

    ``tracer`` (a :class:`repro.obs.Tracer`) records one
    ``view-maintain`` span per committed batch — delta sizes, rows
    touched, and fallback recomputes — plus a per-view event when a
    view's answers actually move.
    """

    def __init__(self, db: Database, history_limit: int = 256, tracer=None):
        from ..obs.trace import NULL_TRACER

        self.db = db
        self.history_limit = history_limit
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._views: List[View] = []
        self._adom_counts: Dict[object, int] = {}
        for name in db.relations():
            for row in db.facts(name):
                for value in row:
                    self._adom_counts[value] = self._adom_counts.get(value, 0) + 1
        self.commits_seen = 0
        db.subscribe(self._on_commit)

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------

    def register_view(self, query: Query,
                      free: Sequence[Variable] = ()) -> View:
        """Materialize and maintain the certain answers of *query*.

        With ``free`` empty this is a Boolean certainty view (query
        :attr:`View.holds`); otherwise the view maintains the certain
        answers over the given free variables.  Requires the (grounded)
        query to be in FO — the same condition as ``method="compiled"``.
        """
        from ..cqa.certain_answers import OpenQuery, _guarded_open_rewriting
        from ..cqa.rewriting import NotInFO, consistent_rewriting

        free = tuple(free)
        if free:
            open_query = OpenQuery(query, free)
            if not open_query.in_fo:
                raise NotInFO(
                    "incremental views require a consistent FO rewriting; "
                    "the grounded query's attack graph is cyclic"
                )
            formula = _guarded_open_rewriting(open_query)
        else:
            if classify(query).verdict is not Verdict.IN_FO:
                raise NotInFO(
                    "incremental views require a consistent FO rewriting; "
                    "the query's attack graph is cyclic"
                )
            formula = consistent_rewriting(query)
        return self._register(query, free, formula)

    def register_formula(self, formula: Formula,
                         free: Optional[Sequence[Variable]] = None) -> View:
        """Maintain an arbitrary FO formula's answer set (expert hook)."""
        out = tuple(free) if free is not None else tuple(
            sorted(free_variables(formula))
        )
        return self._register(None, out, formula)

    def _register(self, query: Optional[Query], free: Tuple[Variable, ...],
                  formula: Formula) -> View:
        compiled = plan_cache.get_or_compile(formula, self.db, free or None)
        incremental = IncrementalPlan(compiled.plan, self.db, compiled.constants)
        view = View(self, query, compiled.free, formula, incremental,
                    self.db.clock)
        self._views.append(view)
        _GLOBAL.views_registered += 1
        return view

    def unregister(self, view: View) -> None:
        """Stop maintaining a view (its answers freeze at this state)."""
        if view in self._views:
            self._views.remove(view)

    def close(self) -> None:
        """Detach from the database; all views freeze."""
        self.db.unsubscribe(self._on_commit)
        self._views.clear()

    @property
    def views(self) -> Tuple[View, ...]:
        return tuple(self._views)

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def _update_adom(self, log: Changelog) -> FrozenSet[object]:
        """Fold a batch into the domain-occurrence counter; returns the
        values whose active-domain membership flipped."""
        flipped: Set[object] = set()
        counts = self._adom_counts

        def toggle(value: object) -> None:
            # Net membership flip = odd number of 0↔positive transitions.
            if value in flipped:
                flipped.discard(value)
            else:
                flipped.add(value)

        for delta in log.deltas.values():
            for row in delta.deleted:
                for value in row:
                    counts[value] = counts.get(value, 0) - 1
                    if counts[value] == 0:
                        del counts[value]
                        toggle(value)
            for row in delta.inserted:
                for value in row:
                    before = counts.get(value, 0)
                    counts[value] = before + 1
                    if before == 0:
                        toggle(value)
        return frozenset(flipped)

    def _on_commit(self, log: Changelog) -> None:
        self.commits_seen += 1
        _GLOBAL.commits_seen += 1
        t = self.tracer
        delta_size = sum(
            len(d.inserted) + len(d.deleted) for d in log.deltas.values()
        )
        with t.span("view-maintain", version=log.version) as span:
            span.count("delta_size", delta_size)
            flipped = self._update_adom(log)
            for i, view in enumerate(self._views):
                inc = view.incremental
                adom_changed = bool(
                    inc.uses_adom
                    and any(v not in set(inc.constants) for v in flipped)
                )
                if not adom_changed and not (inc.relations & log.relations):
                    view._version = log.version
                    span.count("views_skipped")
                    continue
                before_touched = inc.rows_touched
                before_fallback = inc.fallback_recomputes
                ins, dels = inc.apply(log, self.db, adom_changed)
                touched = inc.rows_touched - before_touched
                fallbacks = inc.fallback_recomputes - before_fallback
                _GLOBAL.deltas_applied += 1
                _GLOBAL.rows_touched += touched
                _GLOBAL.fallback_recomputes += fallbacks
                span.count("deltas_applied")
                span.count("rows_touched", touched)
                span.count("fallback_recomputes", fallbacks)
                if ins or dels:
                    t.event("view-delta", view=i, inserted=len(ins),
                            deleted=len(dels))
                view._record(log.version, frozenset(ins), frozenset(dels),
                             self.history_limit)

    def stats(self) -> Dict[str, int]:
        """Counters across this manager's views (mirrors the plan
        cache's stats hook)."""
        out = {
            "views": len(self._views),
            "commits_seen": self.commits_seen,
            "deltas_applied": 0,
            "rows_touched": 0,
            "fallback_recomputes": 0,
        }
        for view in self._views:
            s = view.incremental.stats()
            out["deltas_applied"] += s["deltas_applied"]
            out["rows_touched"] += s["rows_touched"]
            out["fallback_recomputes"] += s["fallback_recomputes"]
        return out


def view_manager(db: Database, history_limit: int = 256,
                 tracer=None) -> ViewManager:
    """The database's attached view manager, created on first use.

    One manager per database keeps subscription bookkeeping in one
    place; repeated calls return the same instance.  Passing ``tracer``
    attaches it to the manager (including an already-existing one), so
    later commits are traced.
    """
    manager = getattr(db, "_view_manager", None)
    if manager is None:
        manager = ViewManager(db, history_limit, tracer=tracer)
        db._view_manager = manager  # type: ignore[attr-defined]
    elif tracer is not None:
        manager.tracer = tracer
    return manager
