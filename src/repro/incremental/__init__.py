"""Incremental certain-answer maintenance over the plan IR.

``IncrementalPlan`` materializes every operator of a compiled plan and
maintains it under changelog deltas; ``ViewManager``/``View`` expose
that as registered, always-current certain-answer sets on a database.
See docs/INCREMENTAL.md for the delta rules and fallback semantics.
"""

from .delta import DeltaError, IncrementalPlan
from .views import (
    StaleVersionError,
    View,
    ViewManager,
    reset_view_stats,
    view_manager,
    view_stats,
)

__all__ = [
    "DeltaError",
    "IncrementalPlan",
    "StaleVersionError",
    "View",
    "ViewManager",
    "reset_view_stats",
    "view_manager",
    "view_stats",
]
