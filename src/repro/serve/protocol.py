"""Wire encoding shared by the ``repro serve`` daemon and its clients.

Everything that crosses the HTTP boundary goes through here: answer
rows are (de)serialized with the same rules as the database JSON format
(:mod:`repro.db.io` — lists become tuples, values are strings /
integers / booleans / nested lists), and every answer set carries a
canonical ``sha256:`` digest so clients — and the bench harness — can
compare a server response against a direct
:func:`repro.cqa.certain_answers` call without shipping the rows.

The response documents themselves are described by
``docs/serve.schema.json``; ``scripts/validate_serve.py`` checks
captured responses against it with the in-tree validator
(:mod:`repro.obs.schema`).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..db.io import _freeze, _thaw

__all__ = [
    "SCHEMA_VERSION",
    "ERROR_CODES",
    "answers_digest",
    "error_payload",
    "row_from_wire",
    "rows_to_wire",
]

#: Version of every serve request/response document (bump on breaking
#: changes, mirroring the trace and metrics schemas).
SCHEMA_VERSION = 1

#: Machine-readable error codes a response's ``error.code`` may carry.
ERROR_CODES = (
    "bad-json",        # body is not valid JSON
    "bad-request",     # malformed HTTP or missing/ill-typed fields
    "bad-options",     # ExecutionOptions rejected the request options
    "parse-error",     # the query text does not parse
    "not-in-fo",       # certainty is not FO-rewritable for this method
    "not-found",       # unknown endpoint or view name
    "method-not-allowed",
    "stale-version",   # long-poll ``since`` predates retained history
    "shutting-down",   # server is draining; retry against a new one
    "internal",        # unexpected server-side failure
)


def rows_to_wire(rows: Iterable[Tuple]) -> List[List[Any]]:
    """Answer rows as sorted JSON-ready lists (tuples thawed)."""
    return sorted(([_thaw(v) for v in row] for row in rows), key=repr)


def row_from_wire(row: Any) -> Tuple:
    """One JSON row back into the engine's tuple-of-values form."""
    if not isinstance(row, list):
        raise TypeError(f"row must be a JSON array, got {row!r}")
    return tuple(_freeze(v) for v in row)


def answers_digest(rows: Iterable[Tuple]) -> str:
    """A canonical content digest of an answer set.

    Order-independent: each row is JSON-encoded compactly, the
    encodings are sorted, and the newline-joined result is hashed.  The
    same function runs on both sides of the wire — the server computes
    it from engine tuples, ``scripts/bench_serve.py`` recomputes it
    from a direct library call — so equal digests mean equal answers.
    """
    lines = sorted(
        json.dumps([_thaw(v) for v in row], separators=(",", ":"),
                   sort_keys=True)
        for row in rows
    )
    return "sha256:" + hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()


def wire_digest(rows: Iterable[List[Any]]) -> str:
    """:func:`answers_digest` for rows already in wire (list) form."""
    return answers_digest(tuple(row_from_wire(list(r))) for r in rows)


def error_payload(code: str, message: str, *,
                  request_id: Optional[str] = None,
                  **extra: Any) -> Dict[str, Any]:
    """The JSON body of every non-2xx response."""
    if code not in ERROR_CODES:
        raise ValueError(f"unknown error code {code!r}")
    error: Dict[str, Any] = {"code": code, "message": message}
    error.update(extra)
    payload: Dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "error": error,
    }
    if request_id is not None:
        payload["request_id"] = request_id
    return payload


def changes_payload(inserted: FrozenSet[Tuple],
                    deleted: FrozenSet[Tuple]) -> Dict[str, List[List[Any]]]:
    """The ``inserted``/``deleted`` halves of a view-changes response."""
    return {
        "inserted": rows_to_wire(inserted),
        "deleted": rows_to_wire(deleted),
    }
