"""A long-running HTTP/JSON service for consistent query answering.

``repro serve --db-path STORE`` boots a daemon that owns one
:class:`~repro.storage.store.PersistentDatabase` and keeps every
expensive artifact warm across requests — the FO plan cache, the SQL
statement cache and integer mirror, the forked parallel worker pools,
and registered incremental views.  Requests carry the same
:class:`repro.obs.ExecutionOptions` document the library takes, so the
wire API and the Python API describe execution identically.

Endpoints (see ``docs/SERVE.md`` and ``docs/serve.schema.json``):

- ``POST /v1/certain`` / ``POST /v1/answers`` — run a query with full
  method routing (brute/interpreted/rewriting/compiled/sql/parallel/
  columnar or ``auto``).
- ``POST /v1/facts`` — a batched write through the changelog (and the
  WAL, when serving a persistent store).
- ``POST /v1/views`` / ``GET /v1/views`` /
  ``GET /v1/views/{name}/changes?since=C&wait=S`` — named maintained
  views with composable long-polled diffs.
- ``GET /v1/metrics`` / ``GET /v1/healthz`` — ``engine.metrics()``,
  ``storage_status()``, and server counters.

The implementation is stdlib-only: :mod:`repro.serve.http` is a small
asyncio HTTP/1.1 layer, :mod:`repro.serve.protocol` the shared wire
encoding (including the canonical ``sha256:`` answers digest), and
:mod:`repro.serve.app` the server itself.
"""

from .app import ReproServer, SERVE_VIEWS_FILE
from .http import HttpError, Request
from .protocol import ERROR_CODES, SCHEMA_VERSION, answers_digest, rows_to_wire

__all__ = [
    "ERROR_CODES",
    "HttpError",
    "ReproServer",
    "Request",
    "SCHEMA_VERSION",
    "SERVE_VIEWS_FILE",
    "answers_digest",
    "rows_to_wire",
]
