"""A minimal asyncio HTTP/1.1 layer for the ``repro serve`` daemon.

The container ships no HTTP framework, and the daemon needs very
little: request-line + header parsing over :mod:`asyncio` streams,
``Content-Length`` bodies, keep-alive, and JSON responses.  This module
implements exactly that — a deliberate subset (no chunked encoding, no
multipart, no TLS) with hard limits on header and body sizes so a
misbehaving client cannot balloon the process.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional
from urllib.parse import parse_qsl, urlsplit

__all__ = ["HttpError", "Request", "read_request", "response_bytes",
           "json_body", "MAX_HEADER_BYTES", "MAX_BODY_BYTES"]

#: Request line plus headers must fit here (ample for JSON APIs).
MAX_HEADER_BYTES = 32 * 1024

#: Largest accepted request body (a generous batch of facts).
MAX_BODY_BYTES = 32 * 1024 * 1024

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A protocol-level failure with an HTTP status and error code."""

    def __init__(self, status: int, code: str, message: str,
                 **extra: Any):
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.extra = extra


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    target: str                      # path without the query string
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)  # lowercased keys
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request from the stream; ``None`` on clean EOF.

    Raises :class:`HttpError` on malformed input or exceeded limits —
    the caller answers with the error and closes the connection.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, "bad-request", "truncated request head")
    except asyncio.LimitOverrunError:
        raise HttpError(413, "bad-request", "request head too large")
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(413, "bad-request", "request head too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, "bad-request", f"malformed request line: {lines[0]!r}")
    method, raw_target, _version = parts
    split = urlsplit(raw_target)
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, "bad-request", f"malformed header: {line!r}")
        headers[name.strip().lower()] = value.strip()
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HttpError(400, "bad-request", "invalid Content-Length")
        if length < 0 or length > MAX_BODY_BYTES:
            raise HttpError(413, "bad-request", "request body too large")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise HttpError(400, "bad-request", "truncated request body")
    elif headers.get("transfer-encoding"):
        raise HttpError(400, "bad-request",
                        "chunked request bodies are not supported")
    return Request(
        method=method.upper(),
        target=split.path,
        query=dict(parse_qsl(split.query)),
        headers=headers,
        body=body,
    )


def json_body(request: Request) -> Any:
    """The request body decoded as JSON (an empty body is ``{}``)."""
    if not request.body:
        return {}
    try:
        return json.loads(request.body)
    except (ValueError, UnicodeDecodeError) as exc:
        raise HttpError(400, "bad-json", f"request body is not JSON: {exc}")


def response_bytes(
    status: int,
    payload: Any,
    *,
    keep_alive: bool = True,
    headers: Optional[Mapping[str, str]] = None,
) -> bytes:
    """A full HTTP/1.1 response frame with a JSON body."""
    body = json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8") + b"\n"
    reason = _STATUS_TEXT.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body
